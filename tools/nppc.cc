/**
 * @file
 * nppc — command-line inspector for the compilation pipeline. Picks one
 * of the built-in demo programs, then prints any combination of its IR,
 * the generated constraints, the candidate search outcome, the selected
 * mapping, the generated CUDA, and a simulated run.
 *
 *     nppc <program> [--strategy=multidim|1d|tbt|warp|consolidate]
 *                    [--size=key=N]...
 *                    [--ir] [--constraints] [--mapping] [--cuda]
 *                    [--run] [--explain] [--devices=N] [--trace=FILE]
 *                    [--stats=FILE] [--all]
 *     nppc serve --socket=PATH [--hold-eval-ms=N]
 *     nppc <program|ping|stats|shutdown> --client=PATH [...]
 *     nppc train-predictor [--dir=PATH] [--model=PATH] [--lambda=X]
 *     nppc show-predictor [--model=PATH]
 *
 * --explain prints the mapping-decision report (why this dim/block/span:
 * hard-filter verdicts, per-constraint score contributions, tie-breaks)
 * plus the block-classing verdict from a metrics-only run (how many
 * blocks were replicated from equivalence-class representatives, or why
 * classing did not engage).
 * --trace=FILE records pipeline spans and writes chrome://tracing JSON.
 * --stats=FILE runs the simulator metrics-only with per-site attribution
 * — per-site deltas replicate across block-equivalence classes, so the
 * export runs at classed speed — and writes the full counter export
 * (coalescing efficiency per trace site, occupancy, overhead shares,
 * EvalCache counters) as JSON.
 *
 * Simulated runs are memoized through the tiered EvalCache: point
 * NPP_EVAL_CACHE_DIR at a directory and a second nppc process replays
 * the first one's evaluation from disk (the --stats export's
 * "eval_cache" object reports the tier counters).
 *
 * --predict runs the empirical mapping sweep under the learned cost
 * model (predict/predict.h): candidates are ranked by predicted time
 * and only the top NPP_PREDICT_TOPK are exactly simulated; without a
 * trained model the sweep evaluates everything. Point NPP_PREDICT_DIR
 * at a directory to harvest every exact simulation as a training pair,
 * then `nppc train-predictor` fits the ridge model and
 * `nppc show-predictor` prints its weights. The --stats export's
 * "predict" object reports the pruning counters.
 *
 * `serve` turns the same pipeline into a long-lived mapping service on
 * a Unix socket (newline-delimited JSON requests; see src/server/
 * server.h for the protocol). `--client=PATH` sends the request to a
 * running server instead of evaluating locally: a program name becomes
 * an eval request (honoring --strategy/--size/--explain), and the
 * pseudo-programs ping / stats / shutdown become typed requests.
 *
 * programs: sumrows, sumcols, weightedrows, weightedcols, pagerank,
 *           mandelbrot, spmv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "analysis/consolidate.h"
#include "ir/printer.h"
#include "predict/predict.h"
#include "server/json.h"
#include "server/programs.h"
#include "server/server.h"
#include "sim/consolidation.h"
#include "sim/evalcache.h"
#include "sim/fleet.h"
#include "sim/gpu.h"
#include "support/strings.h"
#include "support/trace.h"

using namespace npp;

namespace {

/** One-line block-classing verdict for --run/--stats/--explain output. */
std::string
classingLine(const KernelStats &stats)
{
    if (stats.classReason.empty())
        return "block classing: " + std::to_string(stats.classedBlocks) +
               " of " + std::to_string(stats.totalBlocks) +
               " blocks replicated from class representatives";
    return "block classing: every block simulated (" + stats.classReason +
           ")";
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: nppc <program> [options]\n"
        "       nppc serve --socket=PATH [--hold-eval-ms=N]\n"
        "       nppc <program|ping|stats|shutdown> --client=PATH [...]\n"
        "       nppc train-predictor [--dir=PATH] [--model=PATH]"
        " [--lambda=X]\n"
        "       nppc show-predictor [--model=PATH]\n"
        "  programs: %s\n"
        "  options:  --strategy=multidim|1d|tbt|warp|consolidate\n"
        "            --size=key=N\n"
        "            --ir --constraints --mapping --cuda --run --all\n"
        "            --explain --devices=N --trace=FILE --stats=FILE\n"
        "            --predict\n",
        join(demoProgramNames(), " ").c_str());
    return 2;
}

int
runServe(int argc, char **argv)
{
    ServeOptions opts;
    for (int i = 2; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0)
            opts.socketPath = arg.substr(std::strlen("--socket="));
        else if (arg.rfind("--hold-eval-ms=", 0) == 0)
            opts.holdEvalMs =
                std::atoi(arg.c_str() + std::strlen("--hold-eval-ms="));
        else
            return usage();
    }
    if (opts.socketPath.empty()) {
        std::fprintf(stderr, "nppc serve: --socket=PATH is required\n");
        return 2;
    }
    initPredictFromEnv();
    MappingServer server(opts);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "nppc serve: %s\n", error.c_str());
        return 1;
    }
    std::printf("serving on %s (send {\"type\":\"shutdown\"} to stop)\n",
                opts.socketPath.c_str());
    std::fflush(stdout);
    server.wait();
    const ServerStats stats = server.stats();
    std::printf("served %llu requests (%llu evaluations, %llu simulated, "
                "%llu coalesced, %llu errors)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.evaluations),
                static_cast<unsigned long long>(stats.simulations),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.errors));
    return 0;
}

int
runTrainPredictor(int argc, char **argv)
{
    PredictOptions opts = predictOptionsFromEnv();
    double lambda = 1e-3;
    for (int i = 2; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--dir=", 0) == 0) {
            opts.sampleDir = arg.substr(std::strlen("--dir="));
            opts.modelPath = opts.sampleDir + "/model.nppprd";
        } else if (arg.rfind("--model=", 0) == 0)
            opts.modelPath = arg.substr(std::strlen("--model="));
        else if (arg.rfind("--lambda=", 0) == 0)
            lambda = std::atof(arg.c_str() + std::strlen("--lambda="));
        else
            return usage();
    }
    if (opts.sampleDir.empty()) {
        std::fprintf(stderr, "nppc train-predictor: no sample store "
                             "(--dir=PATH or NPP_PREDICT_DIR)\n");
        return 2;
    }
    SampleLoadStats loadStats;
    const std::vector<PredictSample> samples =
        loadPredictSamples(opts.sampleDir, &loadStats);
    std::printf("sample store %s: %llu files, %llu records (%llu "
                "rejected)\n",
                opts.sampleDir.c_str(),
                static_cast<unsigned long long>(loadStats.files),
                static_cast<unsigned long long>(loadStats.records),
                static_cast<unsigned long long>(loadStats.rejected));
    const std::optional<PredictModel> model =
        trainPredictModel(samples, lambda);
    if (!model) {
        std::fprintf(stderr,
                     "nppc train-predictor: no model (empty store or "
                     "singular fit)\n");
        return 1;
    }
    if (!savePredictModel(*model, opts.modelPath))
        return 1;
    std::printf("trained on %llu samples; wrote %s\n",
                static_cast<unsigned long long>(model->trainedSamples),
                opts.modelPath.c_str());
    return 0;
}

int
runShowPredictor(int argc, char **argv)
{
    PredictOptions opts = predictOptionsFromEnv();
    for (int i = 2; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0)
            opts.modelPath = arg.substr(std::strlen("--model="));
        else
            return usage();
    }
    if (opts.modelPath.empty()) {
        std::fprintf(stderr, "nppc show-predictor: no model path "
                             "(--model=PATH, NPP_PREDICT_MODEL, or "
                             "NPP_PREDICT_DIR)\n");
        return 2;
    }
    const std::optional<PredictModel> model =
        loadPredictModel(opts.modelPath);
    if (!model) {
        std::fprintf(stderr,
                     "nppc show-predictor: %s is not a usable model "
                     "(missing, corrupt, or stale schema)\n",
                     opts.modelPath.c_str());
        return 1;
    }
    std::printf("%s", formatPredictModel(*model).c_str());
    return 0;
}

/** Build the request JSON for client mode out of the CLI arguments. */
std::string
clientRequest(const std::string &name, const std::string &strategy,
              const std::map<std::string, int64_t> &sizes, bool explain,
              int devices)
{
    if (name == "ping" || name == "stats" || name == "shutdown")
        return fmt("{\"type\":\"{}\"}", name);
    std::string req = fmt("{\"type\":\"eval\",\"program\":\"{}\"",
                          jsonEscape(name));
    if (!strategy.empty())
        req += fmt(",\"strategy\":\"{}\"", strategy);
    if (!sizes.empty()) {
        req += ",\"sizes\":{";
        bool first = true;
        for (const auto &[key, val] : sizes) {
            if (!first)
                req += ",";
            req += fmt("\"{}\":{}", jsonEscape(key), val);
            first = false;
        }
        req += "}";
    }
    if (explain)
        req += ",\"explain\":true";
    if (devices > 1)
        req += fmt(",\"devices\":{}", devices);
    return req + "}";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    const std::string name = argv[1];
    if (name == "serve")
        return runServe(argc, argv);
    if (name == "train-predictor")
        return runTrainPredictor(argc, argv);
    if (name == "show-predictor")
        return runShowPredictor(argc, argv);

    bool showIr = false, showConstraints = false, showMapping = false,
         showCuda = false, doRun = false, explain = false,
         predict = false;
    std::string tracePath, statsPath, clientSocket, strategyStr;
    std::map<std::string, int64_t> sizes;
    Strategy strategy = Strategy::MultiDim;
    int devices = 1;
    for (int i = 2; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--ir")
            showIr = true;
        else if (arg == "--constraints")
            showConstraints = true;
        else if (arg == "--mapping")
            showMapping = true;
        else if (arg == "--cuda")
            showCuda = true;
        else if (arg == "--run")
            doRun = true;
        else if (arg == "--explain")
            explain = true;
        else if (arg == "--predict")
            predict = true;
        else if (arg.rfind("--trace=", 0) == 0)
            tracePath = arg.substr(std::strlen("--trace="));
        else if (arg.rfind("--stats=", 0) == 0)
            statsPath = arg.substr(std::strlen("--stats="));
        else if (arg.rfind("--client=", 0) == 0)
            clientSocket = arg.substr(std::strlen("--client="));
        else if (arg.rfind("--devices=", 0) == 0) {
            devices = std::atoi(arg.c_str() + std::strlen("--devices="));
            if (devices < 1 || devices > 64)
                return usage();
        }
        else if (arg.rfind("--size=", 0) == 0) {
            const std::string kv = arg.substr(std::strlen("--size="));
            const size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                return usage();
            sizes[kv.substr(0, eq)] =
                std::atoll(kv.c_str() + eq + 1);
        } else if (arg == "--all")
            showIr = showConstraints = showMapping = showCuda = doRun =
                explain = true;
        else if (arg == "--strategy=multidim")
            strategy = Strategy::MultiDim, strategyStr = "multidim";
        else if (arg == "--strategy=1d")
            strategy = Strategy::OneD, strategyStr = "1d";
        else if (arg == "--strategy=tbt")
            strategy = Strategy::ThreadBlockThread, strategyStr = "tbt";
        else if (arg == "--strategy=warp")
            strategy = Strategy::WarpBased, strategyStr = "warp";
        else if (arg == "--strategy=consolidate")
            strategy = Strategy::Consolidate, strategyStr = "consolidate";
        else
            return usage();
    }

    if (!clientSocket.empty()) {
        const std::string request =
            clientRequest(name, strategyStr, sizes, explain, devices);
        std::string response, error;
        if (!serveRoundTrip(clientSocket, request, &response, &error)) {
            std::fprintf(stderr, "nppc --client: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s\n", response.c_str());
        std::optional<JsonValue> parsed = parseJson(response);
        return parsed && parsed->get("ok") &&
                       parsed->get("ok")->asBool()
                   ? 0
                   : 1;
    }

    std::string demoError;
    std::unique_ptr<DemoProgram> demo =
        buildDemoProgram(name, sizes, &demoError);
    if (!demo) {
        std::fprintf(stderr, "nppc: %s\n", demoError.c_str());
        return usage();
    }

    if (!showIr && !showConstraints && !showMapping && !showCuda &&
        !doRun && !explain && statsPath.empty())
        showMapping = showCuda = true; // sensible default
    if (!statsPath.empty())
        doRun = true; // the counter export comes from a simulated run

    if (!tracePath.empty())
        Trace::instance().setEnabled(true);

    initPredictFromEnv();
    Gpu gpu;
    CompileOptions copts;
    copts.strategy = strategy;
    copts.paramValues = demo->params;
    copts.fuseMapReduce = demo->fuse;
    copts.explainSearch = explain;

    // Predictor-guided empirical sweep: rank candidates with the learned
    // model, exactly simulate the survivors, keep the fastest (full
    // sweep without a model).
    PredictSweep psweep;
    if (predict) {
        Bindings sweepArgs(*demo->prog);
        demo->bind(sweepArgs);
        psweep = PredictRuntime::instance().sweep(gpu, *demo->prog,
                                                  sweepArgs, copts);
    }

    CompileResult compiled =
        compileProgram(*demo->prog, gpu.config(), copts);
    if (predict) {
        compiled.explanation.predictNote = psweep.note();
        compiled.explanation.predictJson = psweep.toJson();
        if (!(compiled.spec.mapping == psweep.best)) {
            // The sweep beat the score-based selection: recompile the
            // rest of the pipeline against the empirical winner.
            CompileOptions fixed = copts;
            fixed.strategy = Strategy::Fixed;
            fixed.fixedMapping = psweep.best;
            fixed.explainSearch = false;
            CompileResult winner =
                compileProgram(*demo->prog, gpu.config(), fixed);
            compiled.spec = winner.spec;
            compiled.ownedProgram = winner.ownedProgram;
            copts = fixed; // the cachedRun seed must match this spec
        }
    }
    // Seed for cachedRun: identifies how the spec above was produced.
    const uint64_t specSeed = EvalCache::combine(
        EvalCache::combine(EvalCache::hashProgram(*demo->prog),
                           EvalCache::hashCompileOptions(copts)),
        EvalCache::hashDevice(gpu.config()));

    // Multi-device sweep: score (deviceCount, splitPoint) by fleet
    // simulation and attach the verdicts to the decision report.
    FleetChoice fleetChoice;
    if (devices > 1) {
        Bindings fleetArgs(*demo->prog);
        demo->bind(fleetArgs);
        ExecOptions fleetOpts;
        fleetOpts.metricsOnly = true;
        fleetChoice = searchFleet(gpu, compiled.spec, fleetArgs,
                                  fleetK20c(devices), fleetOpts, specSeed);
        compiled.spec.fleet.deviceCount = fleetChoice.deviceCount;
        compiled.spec.fleet.splitPoint = fleetChoice.splitPoint;
        compiled.spec.fleet.verdict = fleetChoice.best.plan.verdict;
        compiled.explanation.fleetNote = formatFleetChoice(fleetChoice);
        compiled.explanation.fleetJson = fleetChoiceJson(fleetChoice);
    }

    // Runtime-sized inner domains: sweep the consolidation candidates
    // so --explain names why consolidation won or lost against the best
    // static mapping.
    if (explain && hasDynamicInnerExtent(*demo->prog)) {
        Bindings consArgs(*demo->prog);
        demo->bind(consArgs);
        ExecOptions consOpts;
        consOpts.metricsOnly = true;
        const ConsolidationChoice consChoice = searchConsolidation(
            gpu, *demo->prog, consArgs, copts, consOpts);
        compiled.explanation.consolidationNote =
            formatConsolidationChoice(consChoice);
        compiled.explanation.consolidationJson =
            consolidationChoiceJson(consChoice);
    }

    if (showIr)
        std::printf("== IR ==\n%s\n", printProgram(*demo->prog).c_str());
    if (showConstraints) {
        AnalysisEnv env;
        env.prog = compiled.spec.prog;
        env.paramValues = demo->params;
        ConstraintSet cs =
            buildConstraints(*compiled.spec.prog, env, gpu.config());
        std::printf("== Constraints ==\n");
        for (const auto &c : cs.all)
            std::printf("  %s\n", c.toString().c_str());
        std::printf("\n");
    }
    if (showMapping) {
        std::printf("== Mapping (%s) ==\n%s   score=%.0f dop=%.0f",
                    strategyName(strategy),
                    compiled.spec.mapping.toString().c_str(),
                    compiled.spec.score, compiled.spec.dop);
        if (compiled.fusedPatterns)
            std::printf("   (fused %d map-reduce pairs)",
                        compiled.fusedPatterns);
        std::printf("\n\n");
    }
    if (explain) {
        std::printf("== Mapping decision ==\n%s\n",
                    formatSearchExplanation(compiled.explanation).c_str());
        if (!doRun) {
            // The classing verdict comes from execution, not from the
            // mapping search; a metrics-only run is cheap and shows
            // whether the simulator will merge equivalent blocks.
            Bindings args(*demo->prog);
            demo->bind(args);
            ExecOptions eopts;
            eopts.metricsOnly = true;
            SimReport verdict = cachedRun(gpu, compiled.spec, args, eopts,
                                          specSeed, /*wantOutputs=*/false);
            std::printf("%s\n\n", classingLine(verdict.stats).c_str());
        }
    }
    if (devices > 1 && !explain) {
        // --explain prints the sweep inside the decision report; give
        // everyone else a section of their own.
        std::printf("== Multi-device ==\n%s\n",
                    formatFleetChoice(fleetChoice).c_str());
    }
    if (predict && !explain)
        std::printf("== Predictive sweep ==\n%s\n", psweep.note().c_str());
    if (showCuda)
        std::printf("== CUDA ==\n%s\n", compiled.spec.cudaSource.c_str());
    if (doRun) {
        Bindings args(*demo->prog);
        demo->bind(args);
        ExecOptions eopts;
        eopts.siteStats = !statsPath.empty();
        // The counter export never reads the output arrays, so it can run
        // metrics-only and let block-equivalence classing replicate the
        // per-site buckets instead of simulating every block.
        eopts.metricsOnly = !statsPath.empty();
        EvalTier tier = EvalTier::Simulated;
        SimReport report =
            cachedRun(gpu, compiled.spec, args, eopts, specSeed,
                      /*wantOutputs=*/!eopts.metricsOnly, &tier);
        std::printf("== Simulated run (%s) ==\n%s\n%s\neval cache: %s\n",
                    gpu.config().name.c_str(), report.toString().c_str(),
                    classingLine(report.stats).c_str(),
                    evalTierName(tier));
        if (!statsPath.empty()) {
            std::string json =
                "{\"program\":\"" + name + "\",\"device\":\"" +
                gpu.config().name + "\",\"provenance\":\"" +
                evalTierName(tier) + "\",\"report\":" +
                report.toJson(gpu.config().transactionBytes) +
                ",\"eval_cache\":" + EvalCache::instance().stats().toJson() +
                ",\"predict\":" + predictStatsJson() +
                (devices > 1
                     ? ",\"fleet\":" + fleetChoiceJson(fleetChoice)
                     : std::string()) +
                "}\n";
            FILE *f = std::fopen(statsPath.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "nppc: cannot write %s\n",
                             statsPath.c_str());
                return 1;
            }
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("wrote simulator counters to %s\n",
                        statsPath.c_str());
        }
    }
    if (!tracePath.empty()) {
        Trace::instance().writeChromeTrace(tracePath);
        std::printf("wrote chrome://tracing events to %s\n",
                    tracePath.c_str());
    }
    return 0;
}
