/**
 * @file
 * nppc — command-line inspector for the compilation pipeline. Picks one
 * of the built-in demo programs, then prints any combination of its IR,
 * the generated constraints, the candidate search outcome, the selected
 * mapping, the generated CUDA, and a simulated run.
 *
 *     nppc <program> [--strategy=multidim|1d|tbt|warp]
 *                    [--ir] [--constraints] [--mapping] [--cuda]
 *                    [--run] [--explain] [--trace=FILE] [--stats=FILE]
 *                    [--all]
 *
 * --explain prints the mapping-decision report (why this dim/block/span:
 * hard-filter verdicts, per-constraint score contributions, tie-breaks)
 * plus the block-classing verdict from a metrics-only run (how many
 * blocks were replicated from equivalence-class representatives, or why
 * classing did not engage).
 * --trace=FILE records pipeline spans and writes chrome://tracing JSON.
 * --stats=FILE runs the simulator metrics-only with per-site attribution
 * — per-site deltas replicate across block-equivalence classes, so the
 * export runs at classed speed — and writes the full counter export
 * (coalescing efficiency per trace site, occupancy, overhead shares,
 * EvalCache counters) as JSON.
 *
 * programs: sumrows, sumcols, weightedrows, weightedcols, pagerank,
 *           mandelbrot
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/sums.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"
#include "support/rng.h"
#include "support/trace.h"

using namespace npp;

namespace {

struct Demo
{
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bind;
    std::unordered_map<int, double> params;
    bool fuse = false;
};

Demo
sumDemo(bool byCols, bool weighted)
{
    SumsProgram sp = buildSum(byCols, weighted);
    const int64_t R = 2048, C = 2048;
    Demo d;
    d.prog = sp.prog;
    d.params = {{sp.r.ref()->varId, static_cast<double>(R)},
                {sp.c.ref()->varId, static_cast<double>(C)}};
    d.bind = [sp, R, C](Bindings &args) {
        static std::vector<double> m, v, out;
        Rng rng(1);
        m.assign(R * C, 0.0);
        for (auto &x : m)
            x = rng.uniform(0, 1);
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, m);
        if (sp.weighted) {
            v.assign(std::max(R, C), 1.0);
            args.array(sp.v, v);
        }
        out.assign(sp.outputSize(R, C), 0.0);
        args.array(sp.out, out);
    };
    return d;
}

Demo
pagerankDemo()
{
    ProgramBuilder b("pagerank_step");
    Arr start = b.inI64("rowStart");
    Arr nbrs = b.inI64("nbrs");
    Arr deg = b.inF64("degree");
    Arr prev = b.inF64("prev");
    Ex n = b.paramI64("numNodes");
    Ex damp = b.paramF64("damp");
    Arr out = b.outF64("rank");
    Arr st = start, nb = nbrs, dg = deg, pv = prev;
    Ex np = n, dp = damp;
    b.map(np, out, [&](Body &fn, Ex v) {
        Ex begin = fn.let("begin", st(v));
        Ex cnt = fn.let("cnt", st(v + 1) - begin);
        Arr weights = fn.map(cnt, [&](Body &, Ex e) {
            return pv(nb(begin + e)) / dg(nb(begin + e));
        });
        Ex sum = fn.reduce(cnt, Op::Add,
                           [&](Body &, Ex e) { return weights(e); });
        return (1.0 - dp) / np + dp * sum;
    });
    Demo d;
    d.prog = std::make_shared<Program>(b.build());
    d.fuse = true;
    const int64_t N = 8192;
    d.params = {{n.ref()->varId, static_cast<double>(N)}};
    d.bind = [=](Bindings &args) {
        static std::vector<double> startD, nbrD, degD, prevD, rankD;
        if (startD.empty()) {
            Rng rng(3);
            startD.push_back(0);
            for (int64_t v = 0; v < N; v++) {
                const int64_t degN = 1 + rng.below(16);
                for (int64_t e = 0; e < degN; e++)
                    nbrD.push_back(static_cast<double>(rng.below(N)));
                startD.push_back(static_cast<double>(nbrD.size()));
            }
            degD.assign(N, 1.0);
            for (double x : nbrD)
                degD[static_cast<int64_t>(x)] += 1.0;
            prevD.assign(N, 1.0 / N);
        }
        rankD.assign(N, 0.0);
        args.scalar(n, static_cast<double>(N));
        args.scalar(damp, 0.85);
        args.array(start, startD);
        args.array(nbrs, nbrD);
        args.array(deg, degD);
        args.array(prev, prevD);
        args.array(out, rankD);
    };
    return d;
}

Demo
mandelDemo()
{
    ProgramBuilder b("mandelbrot");
    Ex h = b.paramI64("H"), w = b.paramI64("W");
    Arr img = b.outF64("img");
    Ex hp = h, wp = w;
    Arr im = img;
    b.foreach(hp, [&](Body &outer, Ex y) {
        outer.foreach(wp, [&](Body &fn, Ex x) {
            Ex cr = fn.let("cr", (Ex(x) * 3.5) / wp - 2.5);
            Ex ci = fn.let("ci", (Ex(y) * 2.0) / hp - 1.0);
            Mut zr = fn.mut("zr", Ex(0.0));
            Mut zi = fn.mut("zi", Ex(0.0));
            Mut steps = fn.mut("steps", Ex(0.0));
            fn.seqLoop(
                Ex(24),
                [&](Body &body, Ex) {
                    Ex nzr = body.let(
                        "nzr", zr.ex() * zr.ex() - zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi", zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            fn.store(im, y * wp + x, steps.ex());
        });
    });
    Demo d;
    d.prog = std::make_shared<Program>(b.build());
    const int64_t H = 256, W = 1024;
    d.params = {{h.ref()->varId, static_cast<double>(H)},
                {w.ref()->varId, static_cast<double>(W)}};
    d.bind = [=](Bindings &args) {
        static std::vector<double> imgD;
        imgD.assign(H * W, 0.0);
        args.scalar(h, static_cast<double>(H));
        args.scalar(w, static_cast<double>(W));
        args.array(img, imgD);
    };
    return d;
}

/** One-line block-classing verdict for --run/--stats/--explain output. */
std::string
classingLine(const KernelStats &stats)
{
    if (stats.classReason.empty())
        return "block classing: " + std::to_string(stats.classedBlocks) +
               " of " + std::to_string(stats.totalBlocks) +
               " blocks replicated from class representatives";
    return "block classing: every block simulated (" + stats.classReason +
           ")";
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: nppc <program> [options]\n"
        "  programs: sumrows sumcols weightedrows weightedcols pagerank "
        "mandelbrot\n"
        "  options:  --strategy=multidim|1d|tbt|warp\n"
        "            --ir --constraints --mapping --cuda --run --all\n"
        "            --explain --trace=FILE --stats=FILE\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    const std::string name = argv[1];
    Demo demo;
    if (name == "sumrows")
        demo = sumDemo(false, false);
    else if (name == "sumcols")
        demo = sumDemo(true, false);
    else if (name == "weightedrows")
        demo = sumDemo(false, true);
    else if (name == "weightedcols")
        demo = sumDemo(true, true);
    else if (name == "pagerank")
        demo = pagerankDemo();
    else if (name == "mandelbrot")
        demo = mandelDemo();
    else
        return usage();

    bool showIr = false, showConstraints = false, showMapping = false,
         showCuda = false, doRun = false, explain = false;
    std::string tracePath, statsPath;
    Strategy strategy = Strategy::MultiDim;
    for (int i = 2; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--ir")
            showIr = true;
        else if (arg == "--constraints")
            showConstraints = true;
        else if (arg == "--mapping")
            showMapping = true;
        else if (arg == "--cuda")
            showCuda = true;
        else if (arg == "--run")
            doRun = true;
        else if (arg == "--explain")
            explain = true;
        else if (arg.rfind("--trace=", 0) == 0)
            tracePath = arg.substr(std::strlen("--trace="));
        else if (arg.rfind("--stats=", 0) == 0)
            statsPath = arg.substr(std::strlen("--stats="));
        else if (arg == "--all")
            showIr = showConstraints = showMapping = showCuda = doRun =
                explain = true;
        else if (arg == "--strategy=multidim")
            strategy = Strategy::MultiDim;
        else if (arg == "--strategy=1d")
            strategy = Strategy::OneD;
        else if (arg == "--strategy=tbt")
            strategy = Strategy::ThreadBlockThread;
        else if (arg == "--strategy=warp")
            strategy = Strategy::WarpBased;
        else
            return usage();
    }
    if (!showIr && !showConstraints && !showMapping && !showCuda &&
        !doRun && !explain && statsPath.empty())
        showMapping = showCuda = true; // sensible default
    if (!statsPath.empty())
        doRun = true; // the counter export comes from a simulated run

    if (!tracePath.empty())
        Trace::instance().setEnabled(true);

    Gpu gpu;
    CompileOptions copts;
    copts.strategy = strategy;
    copts.paramValues = demo.params;
    copts.fuseMapReduce = demo.fuse;
    copts.explainSearch = explain;
    CompileResult compiled =
        compileProgram(*demo.prog, gpu.config(), copts);

    if (showIr)
        std::printf("== IR ==\n%s\n", printProgram(*demo.prog).c_str());
    if (showConstraints) {
        AnalysisEnv env;
        env.prog = compiled.spec.prog;
        env.paramValues = demo.params;
        ConstraintSet cs =
            buildConstraints(*compiled.spec.prog, env, gpu.config());
        std::printf("== Constraints ==\n");
        for (const auto &c : cs.all)
            std::printf("  %s\n", c.toString().c_str());
        std::printf("\n");
    }
    if (showMapping) {
        std::printf("== Mapping (%s) ==\n%s   score=%.0f dop=%.0f",
                    strategyName(strategy),
                    compiled.spec.mapping.toString().c_str(),
                    compiled.spec.score, compiled.spec.dop);
        if (compiled.fusedPatterns)
            std::printf("   (fused %d map-reduce pairs)",
                        compiled.fusedPatterns);
        std::printf("\n\n");
    }
    if (explain) {
        std::printf("== Mapping decision ==\n%s\n",
                    formatSearchExplanation(compiled.explanation).c_str());
        if (!doRun) {
            // The classing verdict comes from execution, not from the
            // mapping search; a metrics-only run is cheap and shows
            // whether the simulator will merge equivalent blocks.
            Bindings args(*demo.prog);
            demo.bind(args);
            ExecOptions eopts;
            eopts.metricsOnly = true;
            SimReport verdict = gpu.run(compiled.spec, args, eopts);
            std::printf("%s\n\n", classingLine(verdict.stats).c_str());
        }
    }
    if (showCuda)
        std::printf("== CUDA ==\n%s\n", compiled.spec.cudaSource.c_str());
    if (doRun) {
        Bindings args(*demo.prog);
        demo.bind(args);
        ExecOptions eopts;
        eopts.siteStats = !statsPath.empty();
        // The counter export never reads the output arrays, so it can run
        // metrics-only and let block-equivalence classing replicate the
        // per-site buckets instead of simulating every block.
        eopts.metricsOnly = !statsPath.empty();
        SimReport report = gpu.run(compiled.spec, args, eopts);
        std::printf("== Simulated run (%s) ==\n%s\n%s\n",
                    gpu.config().name.c_str(), report.toString().c_str(),
                    classingLine(report.stats).c_str());
        if (!statsPath.empty()) {
            std::string json =
                "{\"program\":\"" + name + "\",\"device\":\"" +
                gpu.config().name + "\",\"report\":" +
                report.toJson(gpu.config().transactionBytes) +
                ",\"eval_cache\":" + EvalCache::instance().stats().toJson() +
                "}\n";
            FILE *f = std::fopen(statsPath.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "nppc: cannot write %s\n",
                             statsPath.c_str());
                return 1;
            }
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("wrote simulator counters to %s\n",
                        statsPath.c_str());
        }
    }
    if (!tracePath.empty()) {
        Trace::instance().writeChromeTrace(tracePath);
        std::printf("wrote chrome://tracing events to %s\n",
                    tracePath.c_str());
    }
    return 0;
}
