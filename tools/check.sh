#!/usr/bin/env bash
# Full verification driver: the default build + ctest, then (optionally)
# sanitizer builds in separate build trees. Usage:
#
#   tools/check.sh              # default job: build + ctest
#   tools/check.sh asan         # AddressSanitizer + UBSan build + ctest
#   tools/check.sh tsan         # ThreadSanitizer build + ctest
#   tools/check.sh ubsan        # UBSan-only build + ctest
#   tools/check.sh differential # build + classed-vs-full suite only
#   tools/check.sh coalesce     # asan build + shift-invariance and
#                               # differential suites
#   tools/check.sh server       # mapping-service + disk-cache suite in
#                               # the default AND asan trees
#   tools/check.sh multidev     # multi-device sharding suite in the
#                               # default AND asan trees
#   tools/check.sh dynsize      # runtime-sized-domain suite (randomized
#                               # parity + consolidation differentials)
#                               # in the default AND asan trees
#   tools/check.sh predict      # learned-cost-model suite (featurizer
#                               # determinism, hostile model files,
#                               # pruned-vs-full sweep differential) in
#                               # the default AND asan trees
#   tools/check.sh all          # all four builds, in order
#
# Every ctest invocation runs the full suite, including the classed
# differential tests (labeled `differential`), the coalescing-model
# suite (labeled `coalesce`), the mapping-service suite (labeled
# `server`), and the multi-device sharding suite (labeled `multidev`); the `differential` job builds the default tree and runs
# just that label for a quick check of the block-classing bit-exactness
# contract, the `coalesce` job runs the coalescing-model contracts
# (shift invariance, classing regressions, classed-vs-full bit
# identity) under AddressSanitizer, and the `server` job runs the
# mapping-service protocol, request-coalescing, and hostile-disk-entry
# tests twice — default build for speed, asan build so corrupt cache
# files and malformed requests exercise the deserializer under
# sanitizers. The `multidev` job runs the outer-domain partitioner and
# fleet-sharding contracts (N=1 bit identity, shard/fleet cache-key
# separation) in the default and asan trees. The `dynsize` job runs the
# runtime-sized-domain suite (seeded randomized CSR parity, the
# consolidation-vs-static differential, and the mapping-service
# consolidation-verdict regression, labeled `dynsize`) in the default
# and asan trees. The `predict` job runs the learned-cost-model suite
# (featurizer determinism across rebuilds, corrupt/truncated/stale
# model files rejected as "no model", the pruned-vs-full sweep
# differential on every demo program, and NPP_PREDICT* env hardening,
# labeled `predict`) in the default and asan trees. Each server-suite
# test creates its own temp
# NPP_EVAL_CACHE_DIR, so parallel jobs never share cache state.
#
# Each job uses its own build directory (build/, build-asan/,
# build-tsan/, build-ubsan/) so sanitizer and plain objects never mix.
# Exits nonzero on the first failing configure, build, or test.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${1:-default}"

run_job() {
    local name="$1" dir="$2"
    shift 2
    echo "== check: ${name} (${dir}) =="
    cmake -B "${dir}" -S . "$@"
    cmake --build "${dir}" -j
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

case "${jobs}" in
default)
    run_job default build
    ;;
asan)
    run_job asan build-asan -DNPP_ASAN=ON
    ;;
tsan)
    run_job tsan build-tsan -DNPP_TSAN=ON
    ;;
ubsan)
    run_job ubsan build-ubsan -DNPP_UBSAN=ON
    ;;
differential)
    echo "== check: differential (build) =="
    cmake -B build -S .
    cmake --build build -j
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L differential
    ;;
coalesce)
    echo "== check: coalesce (build-asan) =="
    cmake -B build-asan -S . -DNPP_ASAN=ON
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
        -L 'coalesce|differential'
    ;;
server)
    echo "== check: server (build) =="
    cmake -B build -S .
    cmake --build build -j
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L server
    echo "== check: server (build-asan) =="
    cmake -B build-asan -S . -DNPP_ASAN=ON
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)" -L server
    ;;
multidev)
    echo "== check: multidev (build) =="
    cmake -B build -S .
    cmake --build build -j
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L multidev
    echo "== check: multidev (build-asan) =="
    cmake -B build-asan -S . -DNPP_ASAN=ON
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)" -L multidev
    ;;
dynsize)
    echo "== check: dynsize (build) =="
    cmake -B build -S .
    cmake --build build -j
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L dynsize
    echo "== check: dynsize (build-asan) =="
    cmake -B build-asan -S . -DNPP_ASAN=ON
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)" -L dynsize
    ;;
predict)
    echo "== check: predict (build) =="
    cmake -B build -S .
    cmake --build build -j
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L predict
    echo "== check: predict (build-asan) =="
    cmake -B build-asan -S . -DNPP_ASAN=ON
    cmake --build build-asan -j
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)" -L predict
    ;;
all)
    run_job default build
    run_job asan build-asan -DNPP_ASAN=ON
    run_job tsan build-tsan -DNPP_TSAN=ON
    run_job ubsan build-ubsan -DNPP_UBSAN=ON
    ;;
*)
    echo "usage: tools/check.sh [default|asan|tsan|ubsan|differential|coalesce|server|multidev|dynsize|predict|all]" >&2
    exit 2
    ;;
esac

echo "== check: ${jobs} OK =="
