/**
 * @file
 * Multi-device sharding (sim/fleet.h + ExecOptions root shards): the
 * N=1 invisibility contract (one-device fleet runs and [0, size)
 * shards are bit-identical to the plain simulation), functional
 * equality of sharded runs against unsharded outputs for map and
 * reduce roots (odd remainders included), hard-filter verdicts
 * surfacing through the fleet search, and EvalCache key separation
 * across shard bounds and fleet sizes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/sums.h"
#include "codegen/compile.h"
#include "ir/builder.h"
#include "sim/evalcache.h"
#include "sim/fleet.h"
#include "sim/metrics.h"

namespace npp {
namespace {

/** Dyadic-rational inputs: every partial sum is exact in binary64, so
 *  reassociating the fleet's shard combine cannot perturb a bit. */
std::shared_ptr<std::vector<double>>
dyadicData(int64_t n)
{
    auto m = std::make_shared<std::vector<double>>(std::max<int64_t>(n, 1));
    for (int64_t i = 0; i < static_cast<int64_t>(m->size()); i++)
        (*m)[i] = static_cast<double>((i * 7 + 3) % 64) * 0.25;
    return m;
}

struct SumSetup
{
    SumsProgram sp;
    CompileResult compiled;
    std::shared_ptr<std::vector<double>> mData;
    std::shared_ptr<std::vector<double>> outData;
    std::unique_ptr<Bindings> args;
};

SumSetup
makeSumRows(const Gpu &gpu, int64_t R, int64_t C)
{
    SumSetup s;
    s.sp = buildSum(/*byCols=*/false, /*weighted=*/false);
    s.compiled = compileProgram(*s.sp.prog, gpu.config(), {});
    s.mData = dyadicData(R * C);
    s.outData = std::make_shared<std::vector<double>>(R, 0.0);
    s.args = std::make_unique<Bindings>(*s.sp.prog);
    s.args->scalar(s.sp.r, static_cast<double>(R));
    s.args->scalar(s.sp.c, static_cast<double>(C));
    s.args->array(s.sp.m, *s.mData);
    s.args->array(s.sp.out, *s.outData);
    return s;
}

struct DotSetup
{
    std::shared_ptr<Program> prog;
    CompileResult compiled;
    std::shared_ptr<std::vector<double>> xData, yData, outData;
    std::unique_ptr<Bindings> args;
};

DotSetup
makeDot(const Gpu &gpu, int64_t N)
{
    ProgramBuilder b("dotShard");
    Arr x = b.inF64("x");
    Arr y = b.inF64("y");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Add, out,
             [&](Body &, Ex i) { return x(i) * y(i); });
    DotSetup s;
    s.prog = std::make_shared<Program>(b.build());
    s.compiled = compileProgram(*s.prog, gpu.config(), {});
    s.xData = dyadicData(N);
    s.yData = dyadicData(N + 17);
    s.yData->resize(N);
    s.outData = std::make_shared<std::vector<double>>(1, 0.0);
    s.args = std::make_unique<Bindings>(*s.prog);
    s.args->scalar(n, static_cast<double>(N));
    s.args->array(x, *s.xData);
    s.args->array(y, *s.yData);
    s.args->array(out, *s.outData);
    return s;
}

TEST(MultiDev, OneDeviceFleetIsBitIdentical)
{
    Gpu gpu;
    SumSetup s = makeSumRows(gpu, 300, 64);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const SimReport base = gpu.run(s.compiled.spec, *s.args, eopts);
    const FleetReport one =
        runOnFleet(gpu, s.compiled.spec, *s.args, fleetK20c(1), eopts);
    ASSERT_TRUE(one.plan.valid);
    ASSERT_EQ(one.perDevice.size(), 1u);
    EXPECT_TRUE(reportsBitIdentical(base, one.perDevice[0]));
    EXPECT_DOUBLE_EQ(one.interMs, 0.0);
    EXPECT_DOUBLE_EQ(one.fleetMs, one.perDevice[0].totalMs);
}

TEST(MultiDev, FullDomainShardIsBitIdentical)
{
    Gpu gpu;
    SumSetup s = makeSumRows(gpu, 300, 64);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const SimReport base = gpu.run(s.compiled.spec, *s.args, eopts);
    ExecOptions shardOpts = eopts;
    shardOpts.rootShardLo = 0;
    shardOpts.rootShardHi = 300;
    ASSERT_TRUE(shardOpts.sharded());
    const SimReport whole = gpu.run(s.compiled.spec, *s.args, shardOpts);
    EXPECT_TRUE(reportsBitIdentical(base, whole));
}

TEST(MultiDev, MapRootShardsReproduceTheUnshardedOutputs)
{
    Gpu gpu;
    const int64_t R = 301; // odd: 3 devices get 101 + 100 + 100
    SumSetup s = makeSumRows(gpu, R, 64);
    gpu.run(s.compiled.spec, *s.args, {});
    const std::vector<double> expected = *s.outData;

    std::fill(s.outData->begin(), s.outData->end(), -1.0);
    const FleetReport fleet = runOnFleet(gpu, s.compiled.spec, *s.args,
                                         fleetK20c(3));
    ASSERT_TRUE(fleet.plan.valid);
    ASSERT_EQ(fleet.perDevice.size(), 3u);
    EXPECT_EQ(fleet.plan.shards[0].size(), 101);
    EXPECT_EQ(fleet.plan.shards[1].size(), 100);
    EXPECT_EQ(fleet.plan.shards[2].size(), 100);
    for (int64_t i = 0; i < R; i++)
        EXPECT_EQ((*s.outData)[i], expected[i]) << "row " << i;
    EXPECT_GT(fleet.interMs, 0.0);
    EXPECT_GE(fleet.fleetMs, fleet.interMs);
}

TEST(MultiDev, ReduceRootCombinesShardPartialsExactly)
{
    Gpu gpu;
    const int64_t N = 3001; // odd remainder across 4 shards
    DotSetup s = makeDot(gpu, N);
    gpu.run(s.compiled.spec, *s.args, {});
    const double expected = (*s.outData)[0];
    ASSERT_NE(expected, 0.0);

    (*s.outData)[0] = -1.0;
    const FleetReport fleet = runOnFleet(gpu, s.compiled.spec, *s.args,
                                         fleetK20c(4));
    ASSERT_TRUE(fleet.plan.valid);
    ASSERT_EQ(fleet.perDevice.size(), 4u);
    // Dyadic inputs: the host-side shard combine is exact, so the
    // sharded total matches the single-device total bit for bit.
    EXPECT_EQ((*s.outData)[0], expected);
}

TEST(MultiDev, TooSmallDomainFallsBackToOneDevice)
{
    Gpu gpu;
    SumSetup s = makeSumRows(gpu, 4, 64);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const FleetChoice choice = searchFleet(gpu, s.compiled.spec, *s.args,
                                           fleetK20c(4), eopts);
    EXPECT_EQ(choice.deviceCount, 1);
    ASSERT_GE(choice.candidates.size(), 2u);
    bool sawFilter = false;
    for (const FleetCandidate &c : choice.candidates) {
        if (c.deviceCount == 1) {
            EXPECT_TRUE(c.feasible);
            continue;
        }
        EXPECT_FALSE(c.feasible);
        EXPECT_NE(c.verdict.find("outer domain too small"),
                  std::string::npos);
        sawFilter = true;
    }
    EXPECT_TRUE(sawFilter);
    // The verdict must surface in both renderings of the sweep.
    EXPECT_NE(formatFleetChoice(choice).find("hard-filtered"),
              std::string::npos);
    EXPECT_NE(fleetChoiceJson(choice).find("outer domain too small"),
              std::string::npos);
}

TEST(MultiDev, SearchPicksAProfitableFleet)
{
    Gpu gpu;
    SumSetup s = makeSumRows(gpu, 2048, 2048);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const FleetChoice choice = searchFleet(gpu, s.compiled.spec, *s.args,
                                           fleetK20c(4), eopts);
    EXPECT_GT(choice.deviceCount, 1);
    EXPECT_GT(choice.speedup, 1.0);
    EXPECT_LT(choice.fleetMs, choice.singleMs);
    // The single-device candidate anchors the sweep.
    ASSERT_FALSE(choice.candidates.empty());
    EXPECT_EQ(choice.candidates[0].deviceCount, 1);
    EXPECT_DOUBLE_EQ(choice.candidates[0].fleetMs, choice.singleMs);
}

TEST(MultiDev, ShardBoundsJoinTheExecHash)
{
    ExecOptions flat;
    ExecOptions sharded;
    sharded.rootShardLo = 0;
    sharded.rootShardHi = 128;
    ExecOptions shifted;
    shifted.rootShardLo = 128;
    shifted.rootShardHi = 256;
    EXPECT_FALSE(flat.sharded());
    EXPECT_TRUE(sharded.sharded());
    EXPECT_NE(EvalCache::hashExec(flat), EvalCache::hashExec(sharded));
    EXPECT_NE(EvalCache::hashExec(sharded), EvalCache::hashExec(shifted));
}

TEST(MultiDev, FleetHashSeparatesFleetConfigs)
{
    const uint64_t two = EvalCache::hashFleet(fleetK20c(2));
    const uint64_t four = EvalCache::hashFleet(fleetK20c(4));
    EXPECT_NE(two, four);
    FleetConfig slowLink = fleetK20c(2);
    slowLink.peerBandwidthGBs = 5.0;
    EXPECT_NE(EvalCache::hashFleet(slowLink), two);
}

TEST(MultiDev, ShardRunsNeverReuseWholeDomainCacheEntries)
{
    Gpu gpu;
    SumSetup s = makeSumRows(gpu, 320, 64);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const uint64_t specSeed = EvalCache::combine(
        EvalCache::combine(EvalCache::hashProgram(*s.sp.prog),
                           EvalCache::hashCompileOptions({})),
        EvalCache::hashDevice(gpu.config()));

    EvalCache::instance().clear();
    EvalCache::instance().resetCounters();
    // Prime the cache with the whole-domain report...
    cachedRun(gpu, s.compiled.spec, *s.args, eopts, specSeed,
              /*wantOutputs=*/false);
    const uint64_t missesAfterPrime = EvalCache::instance().stats().misses;
    EXPECT_EQ(EvalCache::instance().stats().hits, 0u);

    // ...then a shard run with the same program/bindings must miss: a
    // whole-domain report must never satisfy a shard request.
    ExecOptions shardOpts = eopts;
    shardOpts.rootShardLo = 0;
    shardOpts.rootShardHi = 160;
    cachedRun(gpu, s.compiled.spec, *s.args, shardOpts, specSeed,
              /*wantOutputs=*/false);
    EXPECT_EQ(EvalCache::instance().stats().hits, 0u);
    EXPECT_GT(EvalCache::instance().stats().misses, missesAfterPrime);

    // Identical shard bounds do hit.
    cachedRun(gpu, s.compiled.spec, *s.args, shardOpts, specSeed,
              /*wantOutputs=*/false);
    EXPECT_EQ(EvalCache::instance().stats().hits, 1u);
    EvalCache::instance().clear();
    EvalCache::instance().resetCounters();
}

} // namespace
} // namespace npp
