/**
 * @file
 * Determinism regression tests for the parallel evaluation pipeline.
 * The optimizations that make evaluation fast — metrics-only trials,
 * block-equivalence-class simulation, the EvalCache, parallel autotune —
 * are only legal because they are report-*identical* to the plain serial
 * functional simulation. These tests enforce that bit-for-bit:
 *
 *  - functional, metrics-only exact, and metrics-only classed execution
 *    produce the same SimReport (modulo the classedBlocks diagnostic);
 *  - metrics-only runs never touch the caller's output buffers;
 *  - rebuilding an identical program/app yields identical reports
 *    (trace-site ids are structural, not node addresses);
 *  - serial and parallel autotune pick the same winner with the same
 *    trial measurements, with the cache disabled.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/rodinia.h"
#include "apps/sums.h"
#include "codegen/autotune.h"
#include "ir/builder.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"
#include "support/parallel.h"

namespace npp {
namespace {

/** Bitwise SimReport comparison; the classing diagnostics (classedBlocks
 *  and classReason) are the only fields allowed to differ between exact
 *  and classed execution, and siteTraffic is compared only when both
 *  runs collected it (the sited mode's aggregate must still match the
 *  plain baseline bit for bit). */
void
expectSameReport(const SimReport &a, const SimReport &b, const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.totalMs, b.totalMs);
    EXPECT_EQ(a.computeMs, b.computeMs);
    EXPECT_EQ(a.memoryMs, b.memoryMs);
    EXPECT_EQ(a.launchMs, b.launchMs);
    EXPECT_EQ(a.blockOverheadMs, b.blockOverheadMs);
    EXPECT_EQ(a.mallocMs, b.mallocMs);
    EXPECT_EQ(a.combinerMs, b.combinerMs);
    EXPECT_EQ(a.compactionMs, b.compactionMs);
    EXPECT_EQ(a.achievedBandwidth, b.achievedBandwidth);
    EXPECT_EQ(a.residentWarps, b.residentWarps);
    EXPECT_EQ(a.blocksPerSM, b.blocksPerSM);
    EXPECT_EQ(a.occupancy, b.occupancy);
    EXPECT_EQ(a.coalescingEfficiency, b.coalescingEfficiency);

    const KernelStats &s = a.stats;
    const KernelStats &t = b.stats;
    EXPECT_EQ(s.warpInstructions, t.warpInstructions);
    EXPECT_EQ(s.transactions, t.transactions);
    EXPECT_EQ(s.usefulBytes, t.usefulBytes);
    EXPECT_EQ(s.smemAccesses, t.smemAccesses);
    EXPECT_EQ(s.syncs, t.syncs);
    EXPECT_EQ(s.mallocs, t.mallocs);
    EXPECT_EQ(s.totalBlocks, t.totalBlocks);
    EXPECT_EQ(s.threadsPerBlock, t.threadsPerBlock);
    EXPECT_EQ(s.sharedMemPerBlock, t.sharedMemPerBlock);
    EXPECT_EQ(s.hasCombiner, t.hasCombiner);
    EXPECT_EQ(s.combinerTransactions, t.combinerTransactions);
    EXPECT_EQ(s.combinerOps, t.combinerOps);
    EXPECT_EQ(s.combinerThreads, t.combinerThreads);
    EXPECT_EQ(s.hasCompaction, t.hasCompaction);
    EXPECT_EQ(s.compactionTransactions, t.compactionTransactions);
    EXPECT_EQ(s.compactionOps, t.compactionOps);
    EXPECT_EQ(s.compactionThreads, t.compactionThreads);
    EXPECT_EQ(s.sampledFraction, t.sampledFraction);
    if (!s.siteTraffic.empty() && !t.siteTraffic.empty()) {
        ASSERT_EQ(s.siteTraffic.size(), t.siteTraffic.size());
        for (size_t i = 0; i < s.siteTraffic.size(); i++)
            EXPECT_TRUE(s.siteTraffic[i] == t.siteTraffic[i])
                << "site index " << i;
    }
}

/** One mini-app: a program plus bound synthetic inputs. */
struct Workload
{
    std::shared_ptr<Program> prog;
    std::unique_ptr<Bindings> args;
    std::vector<std::vector<double>> storage; //!< owns bound arrays
};

/** sumRows-style map+reduce nest (dense, classable). */
Workload
makeRowSums(int64_t r, int64_t c)
{
    Workload w;
    ProgramBuilder b("det_rowsums");
    Arr in = b.inF64("in");
    Ex rows = b.paramI64("R");
    Ex cols = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(rows, out, [&](Body &fn, Ex i) {
        return fn.reduce(cols, Op::Add, [&](Body &, Ex j) {
            return in(i * cols + j);
        });
    });
    w.prog = std::make_shared<Program>(b.build());

    w.storage.emplace_back(r * c);
    for (int64_t i = 0; i < r * c; i++)
        w.storage.back()[i] = 0.25 * static_cast<double>(i % 97) + 1.0;
    w.storage.emplace_back(r, 0.0);

    w.args = std::make_unique<Bindings>(*w.prog);
    w.args->scalar(rows, static_cast<double>(r));
    w.args->scalar(cols, static_cast<double>(c));
    w.args->array(in, w.storage[0]);
    w.args->array(out, w.storage[1]);
    return w;
}

/** Escape-time loop (data-dependent trip count: divergence accounting). */
Workload
makeEscape(int64_t n)
{
    Workload w;
    ProgramBuilder b("det_escape");
    Ex size = b.paramI64("n");
    Arr out = b.outF64("out");
    b.foreach(size, [&](Body &fn, Ex i) {
        Mut v = fn.mut("v", i * 0.013);
        Mut steps = fn.mut("steps", Ex(0.0));
        fn.seqLoop(
            Ex(24),
            [&](Body &body, Ex) {
                body.assign(v, v.ex() * v.ex() * 0.5 + 0.3);
                body.assign(steps, steps.ex() + 1.0);
            },
            v.ex() > 2.0);
        fn.store(out, i, steps.ex());
    });
    w.prog = std::make_shared<Program>(b.build());

    w.storage.emplace_back(n, 0.0);
    w.args = std::make_unique<Bindings>(*w.prog);
    w.args->scalar(size, static_cast<double>(n));
    w.args->array(out, w.storage[0]);
    return w;
}

/** Indirect gather (BFS-flavored: index arithmetic through an array). */
Workload
makeGather(int64_t n)
{
    Workload w;
    ProgramBuilder b("det_gather");
    Arr idx = b.inF64("idx");
    Arr val = b.inF64("val");
    Ex size = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(size, out, [&](Body &, Ex i) {
        return val(idx(i)) + val(i);
    });
    w.prog = std::make_shared<Program>(b.build());

    w.storage.emplace_back(n);
    for (int64_t i = 0; i < n; i++)
        w.storage.back()[i] =
            static_cast<double>((i * 7919 + 13) % n);
    w.storage.emplace_back(n);
    for (int64_t i = 0; i < n; i++)
        w.storage[1][i] = 0.5 * static_cast<double>(i % 31);
    w.storage.emplace_back(n, 0.0);

    w.args = std::make_unique<Bindings>(*w.prog);
    w.args->scalar(size, static_cast<double>(n));
    w.args->array(idx, w.storage[0]);
    w.args->array(val, w.storage[1]);
    w.args->array(out, w.storage[2]);
    return w;
}

struct Mode
{
    const char *name;
    bool metricsOnly;
    bool blockClasses;
    bool siteStats;
};

constexpr Mode kModes[] = {
    {"functional", false, false, false},
    {"metrics-exact", true, false, false},
    {"metrics-classed", true, true, false},
    {"metrics-classed-sites", true, true, true},
};

TEST(Determinism, ExecutionModesAreReportIdentical)
{
    Gpu gpu;
    Workload loads[] = {makeRowSums(96, 64), makeEscape(4096),
                        makeGather(2048)};
    for (Workload &w : loads) {
        SCOPED_TRACE(w.prog->name());
        SimReport base;
        for (const Mode &mode : kModes) {
            ExecOptions eo;
            eo.metricsOnly = mode.metricsOnly;
            eo.blockClasses = mode.blockClasses;
            eo.siteStats = mode.siteStats;
            SimReport rep = gpu.compileAndRun(*w.prog, *w.args, {}, eo);
            rep.stats.classedBlocks = 0;
            rep.stats.classReason.clear();
            if (&mode == &kModes[0])
                base = rep;
            else
                expectSameReport(base, rep, mode.name);
        }
    }
}

TEST(Determinism, MetricsOnlyNeverWritesCallerBuffers)
{
    Gpu gpu;
    Workload w = makeRowSums(64, 64);
    const std::vector<double> outBefore = w.storage[1];
    ExecOptions eo;
    eo.metricsOnly = true;
    gpu.compileAndRun(*w.prog, *w.args, {}, eo);
    EXPECT_EQ(w.storage[1], outBefore) << "metricsOnly leaked stores";

    gpu.compileAndRun(*w.prog, *w.args, {}, {});
    EXPECT_NE(w.storage[1], outBefore) << "functional run must store";
}

TEST(Determinism, ClassedModeActuallyMergesBlocks)
{
    // A dense uniform nest must be classable: with many more blocks than
    // classes, most blocks are replicated rather than simulated.
    Gpu gpu;
    Workload w = makeRowSums(512, 64);
    ExecOptions eo;
    eo.metricsOnly = true;
    eo.blockClasses = true;
    SimReport rep = gpu.compileAndRun(*w.prog, *w.args, {}, eo);
    EXPECT_GT(rep.stats.classedBlocks, 0)
        << "equivalence classing never engaged";
}

TEST(Determinism, RebuiltProgramsSimulateIdentically)
{
    // Trace-site ids are structural, so destroying and rebuilding the
    // same program must not move any simulated metric by even one ULP
    // (this regressed when probe keys hashed node addresses).
    Gpu gpu;
    SimReport first;
    for (int round = 0; round < 2; round++) {
        Workload w = makeGather(2048);
        SimReport rep = gpu.compileAndRun(*w.prog, *w.args, {}, {});
        if (round == 0)
            first = rep;
        else
            expectSameReport(first, rep, "rebuild");
    }
}

TEST(Determinism, RebuiltAppsRunIdentically)
{
    // End-to-end: fresh instances of real multi-kernel apps (BFS's
    // level-synchronous loop was the original nondeterministic case).
    // Cache off so the second run re-simulates instead of replaying.
    EvalCache &cache = EvalCache::instance();
    const int64_t savedCapacity = cache.capacityBytes();
    cache.setCapacityBytes(0);

    Gpu gpu;
    const auto factories = {
        +[]() { return makeBfs(4096, 8); },
        +[]() { return makeHotspot(64, 2); },
        +[]() { return makeMandelbrot(32, 128, 12); },
    };
    for (auto factory : factories) {
        AppResult a = factory()->run(gpu, Strategy::MultiDim, true);
        AppResult b = factory()->run(gpu, Strategy::MultiDim, true);
        SCOPED_TRACE(factory()->name());
        EXPECT_EQ(a.gpuMs, b.gpuMs);
        EXPECT_EQ(a.maxError, b.maxError);
        EXPECT_EQ(a.cpuMs, b.cpuMs);
    }

    cache.setCapacityBytes(savedCapacity);
}

TEST(Determinism, ExplanationStableAcrossRebuilds)
{
    // The decision-explanation report is part of the debugging workflow
    // (nppc --explain); it must render identically when the same program
    // is destroyed and rebuilt — constraint order, weights, tie tallies
    // and the formatted text are all structural, never address-derived.
    std::string first;
    for (int round = 0; round < 2; round++) {
        Workload w = makeRowSums(96, 64);
        CompileOptions copts;
        copts.explainSearch = true;
        Gpu gpu;
        CompileResult res =
            compileProgram(*w.prog, gpu.config(), copts);
        ASSERT_TRUE(res.explanation.valid);
        const std::string text =
            formatSearchExplanation(res.explanation);
        const std::string json = searchExplanationJson(res.explanation);
        if (round == 0)
            first = text + "\n" + json;
        else
            EXPECT_EQ(first, text + "\n" + json);
    }
}

TEST(Determinism, SiteStatsDoNotPerturbTheReport)
{
    // Per-site attribution is a pure observer: the aggregate report with
    // siteStats on must be bit-identical to the plain run, and the site
    // buckets must sum to the aggregate traffic they decompose.
    Gpu gpu;
    Workload loads[] = {makeRowSums(96, 64), makeGather(2048)};
    for (Workload &w : loads) {
        SCOPED_TRACE(w.prog->name());
        SimReport plain = gpu.compileAndRun(*w.prog, *w.args, {}, {});
        ExecOptions eo;
        eo.siteStats = true;
        SimReport sited = gpu.compileAndRun(*w.prog, *w.args, {}, eo);
        ASSERT_FALSE(sited.stats.siteTraffic.empty());
        expectSameReport(plain, sited, "siteStats observer");

        double siteBytes = 0.0;
        for (const SiteTraffic &st : sited.stats.siteTraffic)
            siteBytes += st.usefulBytes;
        EXPECT_DOUBLE_EQ(siteBytes, sited.stats.usefulBytes);

        // And the attribution itself is deterministic across runs.
        SimReport again = gpu.compileAndRun(*w.prog, *w.args, {}, eo);
        ASSERT_EQ(again.stats.siteTraffic.size(),
                  sited.stats.siteTraffic.size());
        for (size_t i = 0; i < sited.stats.siteTraffic.size(); i++)
            EXPECT_TRUE(again.stats.siteTraffic[i] ==
                        sited.stats.siteTraffic[i]);
    }
}

TEST(Determinism, AutotuneSerialAndParallelAgree)
{
    Gpu gpu;
    Workload w = makeRowSums(128, 96);

    AutotuneOptions serial;
    serial.parallel = false;
    serial.useCache = false;
    AutotuneOptions parallel;
    parallel.parallel = true;
    parallel.useCache = false;

    setParallelThreadCount(4);
    AutotuneResult p = autotune(*w.prog, gpu, *w.args, {}, parallel);
    setParallelThreadCount(0);
    AutotuneResult s = autotune(*w.prog, gpu, *w.args, {}, serial);

    EXPECT_EQ(s.best.mapping.hashValue(), p.best.mapping.hashValue());
    EXPECT_EQ(s.bestMs, p.bestMs);
    EXPECT_EQ(s.scoreChoiceMs, p.scoreChoiceMs);
    ASSERT_EQ(s.trials.size(), p.trials.size());
    for (size_t i = 0; i < s.trials.size(); i++) {
        EXPECT_EQ(s.trials[i].decision.hashValue(),
                  p.trials[i].decision.hashValue());
        EXPECT_EQ(s.trials[i].measuredMs, p.trials[i].measuredMs);
    }
}

} // namespace
} // namespace npp
