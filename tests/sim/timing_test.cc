/**
 * @file
 * Qualitative tests of the timing model: the mechanisms the paper's
 * analysis exploits must move model time in the right direction —
 * coalescing, DOP/latency hiding, block-scheduling overhead, malloc
 * cost, and the CPU/transfer baselines.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

struct SumPair
{
    std::shared_ptr<Program> prog;
    Ex r, c;
    Arr m, out;
};

SumPair
makeSum(bool rows)
{
    SumPair sp;
    ProgramBuilder b(rows ? "sumRows" : "sumCols");
    sp.m = b.inF64("m");
    sp.r = b.paramI64("R");
    sp.c = b.paramI64("C");
    sp.out = b.outF64("out");
    if (rows) {
        Ex c = sp.c;
        Arr m = sp.m;
        b.map(sp.r, sp.out, [&](Body &fn, Ex i) {
            return fn.reduce(c, Op::Add,
                             [&](Body &, Ex j) { return m(i * c + j); });
        });
    } else {
        Ex r = sp.r, c = sp.c;
        Arr m = sp.m;
        b.map(sp.c, sp.out, [&](Body &fn, Ex j) {
            return fn.reduce(r, Op::Add,
                             [&](Body &, Ex i) { return m(i * c + j); });
        });
    }
    sp.prog = std::make_shared<Program>(b.build());
    return sp;
}

SimReport
runSum(const SumPair &sp, int64_t R, int64_t C, Strategy strategy)
{
    static std::vector<double> m;
    const int64_t need = R * C;
    if (static_cast<int64_t>(m.size()) < need) {
        m.resize(need);
        Rng rng(1);
        for (auto &v : m)
            v = rng.uniform(0, 1);
    }
    const bool rowsProgram = sp.prog->name() == "sumRows";
    std::vector<double> out(rowsProgram ? R : C, 0.0);
    Bindings args(*sp.prog);
    args.scalar(sp.r, static_cast<double>(R));
    args.scalar(sp.c, static_cast<double>(C));
    args.array(sp.m, m);
    args.array(sp.out, out);

    CompileOptions copts;
    copts.strategy = strategy;
    // The compiler sees the actual sizes (runtime parameter tuning).
    copts.paramValues = {{sp.r.ref()->varId, static_cast<double>(R)},
                         {sp.c.ref()->varId, static_cast<double>(C)}};
    return Gpu().compileAndRun(*sp.prog, args, copts);
}

constexpr int64_t kDim = 1024; // square matrices for direction checks

TEST(TimingModel, UncoalescedSumRows1DMuchSlower)
{
    // Enough rows that the resident threads' lines thrash the cache
    // (at small sizes the line-reuse model legitimately saves 1D).
    SumPair rows = makeSum(true);
    SimReport best = runSum(rows, 4096, kDim, Strategy::MultiDim);
    SimReport oneD = runSum(rows, 4096, kDim, Strategy::OneD);
    // 1D sumRows strides rows across warp lanes: ~16x the transactions.
    EXPECT_GT(oneD.stats.transactions, 8 * best.stats.transactions);
    EXPECT_GT(oneD.totalMs, 5 * best.totalMs);
}

TEST(TimingModel, MultiDimMatchesWarpBasedOnSumRows)
{
    SumPair rows = makeSum(true);
    SimReport best = runSum(rows, kDim, kDim, Strategy::MultiDim);
    SimReport warp = runSum(rows, kDim, kDim, Strategy::WarpBased);
    // Warp-based coalesces sumRows too; MultiDim must be at least as
    // good and within ~2x of it (same traffic class).
    EXPECT_LE(best.totalMs, warp.totalMs * 1.05);
    EXPECT_LT(warp.totalMs, best.totalMs * 3);
}

TEST(TimingModel, SumColsPunishesWarpBased)
{
    SumPair cols = makeSum(false);
    SimReport best = runSum(cols, kDim, kDim, Strategy::MultiDim);
    SimReport warp = runSum(cols, kDim, kDim, Strategy::WarpBased);
    // Warp-based puts the strided (column) walk on the warp lanes:
    // uncoalesced.
    EXPECT_GT(warp.stats.transactions, 8 * best.stats.transactions);
    EXPECT_GT(warp.totalMs, 3 * best.totalMs);
}

TEST(TimingModel, LowDopIsLatencyBound)
{
    // sumCols on a [64K, 64] matrix: only 64 columns of outer
    // parallelism for 1D -> latency bound.
    SumPair cols = makeSum(false);
    SimReport oneD = runSum(cols, 16384, 64, Strategy::OneD);
    SimReport best = runSum(cols, 16384, 64, Strategy::MultiDim);
    EXPECT_LT(oneD.achievedBandwidth, 30.0)
        << "64 threads cannot saturate DRAM";
    EXPECT_GT(best.totalMs * 4, 0.0);
    EXPECT_GT(oneD.totalMs, 2 * best.totalMs);
}

TEST(TimingModel, OptimalIsFlatAcrossShapes)
{
    // The paper's headline: with the right mapping, all shapes of the
    // same total size take the same time (Fig 3 discussion).
    SumPair rows = makeSum(true);
    SumPair cols = makeSum(false);
    const int64_t total = 1 << 22;
    SimReport a = runSum(rows, 1 << 14, total >> 14, Strategy::MultiDim);
    SimReport b = runSum(rows, 1 << 11, total >> 11, Strategy::MultiDim);
    SimReport c = runSum(cols, 1 << 11, total >> 11, Strategy::MultiDim);
    EXPECT_LT(a.totalMs / b.totalMs, 2.0);
    EXPECT_GT(a.totalMs / b.totalMs, 0.5);
    EXPECT_LT(a.totalMs / c.totalMs, 2.0);
    EXPECT_GT(a.totalMs / c.totalMs, 0.5);
}

TEST(TimingModel, TooManyTinyBlocksCostsTime)
{
    KernelStats few;
    few.totalBlocks = 64;
    few.threadsPerBlock = 256;
    few.transactions = 1000;
    KernelStats many = few;
    many.totalBlocks = 1 << 20;
    many.threadsPerBlock = 1; // degenerate tiny blocks

    const DeviceConfig dev = teslaK20c();
    SimReport a = computeTiming(few, dev);
    SimReport b = computeTiming(many, dev);
    EXPECT_GT(b.blockOverheadMs, 100 * a.blockOverheadMs);
}

TEST(TimingModel, OccupancyLimitedBySharedMemory)
{
    KernelStats stats;
    stats.totalBlocks = 1000;
    stats.threadsPerBlock = 256;
    stats.transactions = 1e6;
    const DeviceConfig dev = teslaK20c();

    stats.sharedMemPerBlock = 0;
    SimReport free = computeTiming(stats, dev);
    stats.sharedMemPerBlock = 24 * 1024; // two blocks per SM max
    SimReport heavy = computeTiming(stats, dev);
    EXPECT_LT(heavy.blocksPerSM, free.blocksPerSM);
    EXPECT_LE(heavy.residentWarps, free.residentWarps);
}

TEST(TimingModel, MallocDominatesWhenPresent)
{
    KernelStats stats;
    stats.totalBlocks = 1000;
    stats.threadsPerBlock = 256;
    stats.transactions = 1e5;
    stats.mallocs = 256000;
    const DeviceConfig dev = teslaK20c();
    SimReport r = computeTiming(stats, dev);
    EXPECT_GT(r.mallocMs, r.memoryMs);
}

TEST(TimingModel, LaunchOverheadFloorsTinyKernels)
{
    KernelStats stats;
    stats.totalBlocks = 1;
    stats.threadsPerBlock = 32;
    stats.transactions = 1;
    const DeviceConfig dev = teslaK20c();
    SimReport r = computeTiming(stats, dev);
    EXPECT_GE(r.totalMs, dev.kernelLaunchOverheadUs * 1e-3);
}

TEST(Baselines, CpuRooflineDirections)
{
    // Bandwidth-bound work: time tracks bytes.
    double t1 = cpuTimeMs(1e6, 1e9);
    double t2 = cpuTimeMs(1e6, 2e9);
    EXPECT_NEAR(t2 / t1, 2.0, 0.3);
    // Compute-bound work: time tracks ops.
    double t3 = cpuTimeMs(4e9, 1e6);
    double t4 = cpuTimeMs(8e9, 1e6);
    EXPECT_NEAR(t4 / t3, 2.0, 0.3);
}

TEST(Baselines, TransferTimeTracksBytes)
{
    const DeviceConfig dev = teslaK20c();
    EXPECT_NEAR(transferMs(6e9, dev), 1000.0, 20.0);
    EXPECT_LT(transferMs(0, dev), 0.1);
}

TEST(TimingModel, ReportPrints)
{
    KernelStats stats;
    stats.totalBlocks = 10;
    stats.threadsPerBlock = 128;
    stats.transactions = 1000;
    SimReport r = computeTiming(stats, teslaK20c());
    EXPECT_NE(r.toString().find("total"), std::string::npos);
}

} // namespace
} // namespace npp
