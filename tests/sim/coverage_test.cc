/**
 * @file
 * Property tests for the executor's index-domain coverage: under ANY
 * hard-feasible mapping, every point of the logical domain must be
 * visited exactly once by the innermost work — spans, splits, trimmed
 * blocks, and partial warps included. A counting kernel (each visit
 * increments its cell) makes over- and under-coverage directly visible.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/gpu.h"

namespace npp {
namespace {

struct CountProgram
{
    std::shared_ptr<Program> prog;
    Arr out;
    Ex sizes[3];
    int levels;
};

/** foreach nest incrementing out[linear index] once per innermost visit. */
CountProgram
makeCounter(int levels)
{
    CountProgram cp;
    cp.levels = levels;
    ProgramBuilder b("counter");
    cp.sizes[0] = b.paramI64("n0");
    if (levels > 1)
        cp.sizes[1] = b.paramI64("n1");
    if (levels > 2)
        cp.sizes[2] = b.paramI64("n2");
    cp.out = b.outF64("out");
    Arr out = cp.out;

    if (levels == 1) {
        Ex n0 = cp.sizes[0];
        b.foreach(n0, [&](Body &fn, Ex i) {
            fn.store(out, i, out(i) + 1.0);
        });
    } else if (levels == 2) {
        Ex n0 = cp.sizes[0], n1 = cp.sizes[1];
        b.foreach(n0, [&](Body &outer, Ex i) {
            outer.foreach(n1, [&](Body &fn, Ex j) {
                fn.store(out, i * n1 + j, out(i * n1 + j) + 1.0);
            });
        });
    } else {
        Ex n0 = cp.sizes[0], n1 = cp.sizes[1], n2 = cp.sizes[2];
        b.foreach(n0, [&](Body &o0, Ex i) {
            o0.foreach(n1, [&](Body &o1, Ex j) {
                o1.foreach(n2, [&](Body &fn, Ex k) {
                    Ex lin = fn.let("lin", (Ex(i) * n1 + j) * n2 + k);
                    fn.store(out, lin, out(lin) + 1.0);
                });
            });
        });
    }
    cp.prog = std::make_shared<Program>(b.build());
    return cp;
}

/** Run the counter under a fixed mapping; expect every cell == 1. */
void
expectExactCoverage(const CountProgram &cp,
                    const std::vector<int64_t> &sizes,
                    const MappingDecision &mapping)
{
    int64_t total = 1;
    for (int64_t s : sizes)
        total *= s;
    std::vector<double> counts(total, 0.0);

    Bindings args(*cp.prog);
    for (int lv = 0; lv < cp.levels; lv++)
        args.scalar(cp.sizes[lv], static_cast<double>(sizes[lv]));
    args.array(cp.out, counts);

    Gpu gpu;
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = mapping;
    gpu.compileAndRun(*cp.prog, args, copts);

    int64_t bad = -1;
    for (int64_t i = 0; i < total; i++) {
        if (counts[i] != 1.0) {
            bad = i;
            break;
        }
    }
    EXPECT_EQ(bad, -1) << "cell " << bad << " visited "
                       << (bad >= 0 ? counts[bad] : 0) << " times under "
                       << mapping.toString() << " sizes=" << sizes[0];
}

/** Odd sizes exercise trimmed blocks and partial warps. */
const std::vector<std::vector<int64_t>> kSizes2d = {
    {1, 1}, {7, 3}, {33, 65}, {128, 31}, {5, 1000}, {257, 2}};

TEST(Coverage, TwoLevelSpanOneGrids)
{
    CountProgram cp = makeCounter(2);
    for (const auto &sz : kSizes2d) {
        for (int64_t b0 : {1, 4, 64}) {
            for (int64_t b1 : {1, 32}) {
                MappingDecision d;
                d.levels = {{1, b0, SpanType::one()},
                            {0, b1, SpanType::one()}};
                expectExactCoverage(cp, sz, d);
            }
        }
    }
}

TEST(Coverage, TwoLevelSpanAllAndN)
{
    CountProgram cp = makeCounter(2);
    for (const auto &sz : kSizes2d) {
        {
            MappingDecision d;
            d.levels = {{1, 8, SpanType::one()},
                        {0, 32, SpanType::all()}};
            expectExactCoverage(cp, sz, d);
        }
        {
            MappingDecision d;
            d.levels = {{1, 8, SpanType::n(3)},
                        {0, 32, SpanType::one()}};
            expectExactCoverage(cp, sz, d);
        }
        {
            MappingDecision d;
            d.levels = {{0, 64, SpanType::n(5)},
                        {1, 2, SpanType::all()}};
            expectExactCoverage(cp, sz, d);
        }
    }
}

TEST(Coverage, ThreeLevelMappings)
{
    CountProgram cp = makeCounter(3);
    const std::vector<std::vector<int64_t>> sizes = {
        {3, 5, 7}, {16, 16, 16}, {2, 40, 9}};
    for (const auto &sz : sizes) {
        {
            MappingDecision d;
            d.levels = {{2, 2, SpanType::one()},
                        {1, 4, SpanType::one()},
                        {0, 32, SpanType::one()}};
            expectExactCoverage(cp, sz, d);
        }
        {
            MappingDecision d;
            d.levels = {{2, 1, SpanType::all()},
                        {1, 8, SpanType::n(2)},
                        {0, 32, SpanType::all()}};
            expectExactCoverage(cp, sz, d);
        }
    }
}

TEST(Coverage, OneLevelDegenerateBlocks)
{
    CountProgram cp = makeCounter(1);
    for (int64_t n : {1, 31, 32, 33, 1025}) {
        for (int64_t bs : {1, 32, 1024}) {
            for (SpanType span :
                 {SpanType::one(), SpanType::n(7), SpanType::all()}) {
                MappingDecision d;
                d.levels = {{0, bs, span}};
                expectExactCoverage(cp, {n}, d);
            }
        }
    }
}

/** Parameterized split sweep: reduce with Split(k) must equal the
 *  reference sum for every k (combiner correctness). */
class SplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(SplitSweep, ReduceSplitEqualsReference)
{
    const int64_t splitK = GetParam();
    ProgramBuilder b("rows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();

    const int64_t R = 13, C = 517;
    std::vector<double> data(R * C);
    for (int64_t i = 0; i < R * C; i++)
        data[i] = static_cast<double>((i * 37) % 101) - 50.0;
    std::vector<double> expect(R, 0.0), got(R, 0.0);
    {
        Bindings args(p);
        args.scalar(r, R);
        args.scalar(c, C);
        args.array(m, data);
        args.array(out, expect);
        ReferenceInterp().run(p, args);
    }
    {
        Bindings args(p);
        args.scalar(r, R);
        args.scalar(c, C);
        args.array(m, data);
        args.array(out, got);
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping.levels = {
            {1, 4, SpanType::one()},
            {0, 32, SpanType::split(splitK)}};
        Gpu().compileAndRun(p, args, copts);
    }
    EXPECT_LE(maxRelDiff(expect, got), 1e-9) << "split(" << splitK << ")";
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 26, 64));

} // namespace
} // namespace npp
