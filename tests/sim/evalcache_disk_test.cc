/**
 * @file
 * Disk-tier tests for the EvalCache: round trips through the on-disk
 * entry format, promotion into the memory tier, rejection (never
 * trusting) of truncated / corrupt / wrong-version / renamed files, the
 * byte-accounting fix (entry footprints charge the report's real heap
 * payload, not a flat guess), and the resetCounters fix (evictions
 * reset with the other effectiveness counters). Runs under the `server`
 * ctest label so the asan job covers the deserializer against hostile
 * files.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/sums.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"
#include "support/rng.h"

using namespace npp;

namespace {

/** Fresh temp directory per test; removed (with contents) on teardown. */
class EvalCacheDiskTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/nppevc_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        EvalCache &cache = EvalCache::instance();
        savedCapacity_ = cache.capacityBytes();
        savedDiskDir_ = cache.diskDir();
        cache.setCapacityBytes(int64_t(1) << 30);
        cache.setDiskDir(dir_);
        cache.clear();
    }

    void
    TearDown() override
    {
        EvalCache &cache = EvalCache::instance();
        cache.setDiskDir(savedDiskDir_);
        cache.setCapacityBytes(savedCapacity_);
        cache.clear();
        const std::string cmd = "rm -rf '" + dir_ + "'";
        (void)!std::system(cmd.c_str());
    }

    /** The single .nppeval file in the cache directory (fails the test
     *  when there is not exactly one). */
    std::string
    onlyEntryPath()
    {
        std::vector<std::string> found;
        FILE *pipe =
            ::popen(("ls '" + dir_ + "'").c_str(), "r");
        EXPECT_NE(pipe, nullptr);
        char line[512];
        while (pipe && std::fgets(line, sizeof line, pipe)) {
            std::string name = line;
            while (!name.empty() &&
                   (name.back() == '\n' || name.back() == '\r'))
                name.pop_back();
            if (name.size() > 8 &&
                name.compare(name.size() - 8, 8, ".nppeval") == 0)
                found.push_back(dir_ + "/" + name);
        }
        if (pipe)
            ::pclose(pipe);
        EXPECT_EQ(found.size(), 1u);
        return found.empty() ? std::string() : found[0];
    }

    std::string dir_;
    std::string savedDiskDir_;
    int64_t savedCapacity_ = 0;
};

/** A report with every serialized field set to a distinctive value. */
SimReport
makeReport()
{
    SimReport r;
    r.totalMs = 1.25;
    r.computeMs = 0.5;
    r.memoryMs = 0.25;
    r.launchMs = 0.125;
    r.blockOverheadMs = 0.0625;
    r.mallocMs = 0.03125;
    r.combinerMs = 0.015625;
    r.compactionMs = 0.0078125;
    r.achievedBandwidth = 208.0;
    r.residentWarps = 832.0;
    r.blocksPerSM = 13;
    r.occupancy = 0.8125;
    r.coalescingEfficiency = 0.72544642857142849; // not representable round
    r.stats.warpInstructions = 9216.0;
    r.stats.transactions = 1433.6;
    r.stats.usefulBytes = 133120.0;
    r.stats.totalBlocks = 32;
    r.stats.threadsPerBlock = 1024;
    r.stats.hasCombiner = true;
    r.stats.combinerThreads = 128;
    r.stats.classedBlocks = 27;
    r.stats.classReason = "split span carries cross-block partials";
    r.stats.siteTraffic = {{3, 100.0, 12800.0, 400.0},
                           {7, 33.6, 4096.5, 128.0}};
    return r;
}

void
expectSameReport(const SimReport &a, const SimReport &b)
{
    // Bit-identical replay is the contract (doubles travel as bit
    // patterns), so exact equality — not EXPECT_NEAR — is correct here.
    EXPECT_EQ(a.totalMs, b.totalMs);
    EXPECT_EQ(a.computeMs, b.computeMs);
    EXPECT_EQ(a.memoryMs, b.memoryMs);
    EXPECT_EQ(a.launchMs, b.launchMs);
    EXPECT_EQ(a.blockOverheadMs, b.blockOverheadMs);
    EXPECT_EQ(a.combinerMs, b.combinerMs);
    EXPECT_EQ(a.coalescingEfficiency, b.coalescingEfficiency);
    EXPECT_EQ(a.blocksPerSM, b.blocksPerSM);
    EXPECT_EQ(a.stats.warpInstructions, b.stats.warpInstructions);
    EXPECT_EQ(a.stats.transactions, b.stats.transactions);
    EXPECT_EQ(a.stats.totalBlocks, b.stats.totalBlocks);
    EXPECT_EQ(a.stats.hasCombiner, b.stats.hasCombiner);
    EXPECT_EQ(a.stats.classedBlocks, b.stats.classedBlocks);
    EXPECT_EQ(a.stats.classReason, b.stats.classReason);
    ASSERT_EQ(a.stats.siteTraffic.size(), b.stats.siteTraffic.size());
    for (size_t i = 0; i < a.stats.siteTraffic.size(); i++) {
        EXPECT_EQ(a.stats.siteTraffic[i].site, b.stats.siteTraffic[i].site);
        EXPECT_EQ(a.stats.siteTraffic[i].transactions,
                  b.stats.siteTraffic[i].transactions);
        EXPECT_EQ(a.stats.siteTraffic[i].usefulBytes,
                  b.stats.siteTraffic[i].usefulBytes);
        EXPECT_EQ(a.stats.siteTraffic[i].accesses,
                  b.stats.siteTraffic[i].accesses);
    }
}

TEST_F(EvalCacheDiskTest, RoundTripSurvivesMemoryClear)
{
    EvalCache &cache = EvalCache::instance();
    const uint64_t key = 0x1234abcd5678ef01ULL;
    const SimReport report = makeReport();
    cache.store(key, report, nullptr);
    EXPECT_EQ(cache.stats().diskStores, 1u);

    // clear() drops the memory tier only; the next probe must fall
    // through to disk, replay bit-identically, and promote.
    cache.clear();
    EvalTier tier = EvalTier::Simulated;
    auto hit = cache.find(key, /*wantOutputs=*/false, nullptr, &tier);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(tier, EvalTier::Disk);
    expectSameReport(report, *hit);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Promoted: the second probe is a memory hit, no disk traffic.
    tier = EvalTier::Simulated;
    hit = cache.find(key, false, nullptr, &tier);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(tier, EvalTier::Memory);
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST_F(EvalCacheDiskTest, FunctionalRoundTripReplaysOutputs)
{
    EvalCache &cache = EvalCache::instance();
    Gpu gpu;
    SumsProgram sp = buildSum(false, false);
    const int64_t R = 64, C = 64;
    CompileOptions copts;
    copts.paramValues = {{sp.r.ref()->varId, double(R)},
                         {sp.c.ref()->varId, double(C)}};

    std::vector<double> m(R * C), out(sp.outputSize(R, C), 0.0);
    Rng rng(1);
    for (auto &x : m)
        x = rng.uniform(0, 1);
    const auto bind = [&](Bindings &args, std::vector<double> &outBuf) {
        args.scalar(sp.r, double(R));
        args.scalar(sp.c, double(C));
        args.array(sp.m, m);
        args.array(sp.out, outBuf);
    };

    Bindings args(*sp.prog);
    bind(args, out);
    EvalTier tier = EvalTier::Simulated;
    const SimReport first = cachedCompileAndRun(
        gpu, *sp.prog, args, copts, {}, /*wantOutputs=*/true, &tier);
    EXPECT_EQ(tier, EvalTier::Simulated);
    const std::vector<double> expected = out;

    // New process simulated by dropping the memory tier: the functional
    // replay must come from disk, outputs included.
    cache.clear();
    std::vector<double> out2(sp.outputSize(R, C), 0.0);
    Bindings args2(*sp.prog);
    bind(args2, out2);
    tier = EvalTier::Simulated;
    const SimReport second = cachedCompileAndRun(
        gpu, *sp.prog, args2, copts, {}, /*wantOutputs=*/true, &tier);
    EXPECT_EQ(tier, EvalTier::Disk);
    expectSameReport(first, second);
    EXPECT_EQ(maxAbsDiff(expected, out2), 0.0);
}

TEST_F(EvalCacheDiskTest, ReportOnlyEntryCannotServeFunctionalLookup)
{
    EvalCache &cache = EvalCache::instance();
    Gpu gpu;
    SumsProgram sp = buildSum(false, false);
    const int64_t R = 32, C = 32;
    CompileOptions copts;
    copts.paramValues = {{sp.r.ref()->varId, double(R)},
                         {sp.c.ref()->varId, double(C)}};
    std::vector<double> m(R * C, 0.5), out(sp.outputSize(R, C), 0.0);
    Bindings args(*sp.prog);
    args.scalar(sp.r, double(R));
    args.scalar(sp.c, double(C));
    args.array(sp.m, m);
    args.array(sp.out, out);

    // Metrics-only evaluation stores a report-only entry on disk.
    cachedCompileAndRun(gpu, *sp.prog, args, copts, {},
                        /*wantOutputs=*/false);
    cache.clear();

    // A functional lookup of the same evaluation must re-simulate, not
    // replay a report that has no outputs to give.
    EvalTier tier = EvalTier::Memory;
    cachedCompileAndRun(gpu, *sp.prog, args, copts, {},
                        /*wantOutputs=*/true, &tier);
    EXPECT_EQ(tier, EvalTier::Simulated);
    EXPECT_GT(out[0], 0.0); // outputs actually produced
}

TEST_F(EvalCacheDiskTest, TruncatedFilesAreRejectedNotTrusted)
{
    EvalCache &cache = EvalCache::instance();
    const uint64_t key = 0xfeedface12345678ULL;
    cache.store(key, makeReport(), nullptr);
    const std::string path = onlyEntryPath();
    ASSERT_FALSE(path.empty());

    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    // Every truncation point — empty file, mid-header, mid-payload —
    // must read as a clean reject.
    for (const off_t len : {off_t(0), off_t(5), off_t(20), st.st_size / 2,
                            st.st_size - 1}) {
        ASSERT_EQ(::truncate(path.c_str(), len), 0);
        cache.clear();
        EXPECT_FALSE(
            cache.find(key, false, nullptr).has_value())
            << "truncated to " << len << " bytes";
        EXPECT_EQ(cache.stats().diskRejects, 1u);
        // Restore the full entry for the next truncation point. The
        // truncated file must go first: a report-only store politely
        // declines to clobber an existing file.
        ASSERT_EQ(::unlink(path.c_str()), 0);
        cache.store(key, makeReport(), nullptr);
    }
}

TEST_F(EvalCacheDiskTest, CorruptHeaderOrPayloadIsRejected)
{
    EvalCache &cache = EvalCache::instance();
    const uint64_t key = 0x0123456789abcdefULL;
    cache.store(key, makeReport(), nullptr);
    const std::string path = onlyEntryPath();
    ASSERT_FALSE(path.empty());

    std::ifstream in(path, std::ios::binary);
    std::string good((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(good.size(), 40u);

    const auto writeMutated = [&](size_t offset) {
        std::string bad = good;
        bad[offset] ^= 0x5a;
        std::ofstream outF(path, std::ios::binary | std::ios::trunc);
        outF.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    };

    // Offsets cover each guard: magic (0), format version (9), model
    // tag length (14), tag bytes (30), key (38), payload size (46),
    // checksum (50), payload body (tail).
    const size_t offsets[] = {0, 9, 14, 30, 38, 46, 50, good.size() - 3};
    uint64_t expectedRejects = 0;
    for (const size_t offset : offsets) {
        writeMutated(offset);
        cache.clear();
        EXPECT_FALSE(cache.find(key, false, nullptr).has_value())
            << "flipped byte at offset " << offset;
        EXPECT_EQ(cache.stats().diskRejects, 1u)
            << "flipped byte at offset " << offset;
        expectedRejects++;
    }
    (void)expectedRejects;

    // The pristine bytes still load — the rejects above were the
    // mutations, not the reader.
    std::ofstream outF(path, std::ios::binary | std::ios::trunc);
    outF.write(good.data(), static_cast<std::streamsize>(good.size()));
    outF.close();
    cache.clear();
    EXPECT_TRUE(cache.find(key, false, nullptr).has_value());
}

TEST_F(EvalCacheDiskTest, WrongFormatVersionIsRejected)
{
    EvalCache &cache = EvalCache::instance();
    const uint64_t key = 0x1111222233334444ULL;
    cache.store(key, makeReport(), nullptr);
    const std::string path = onlyEntryPath();
    ASSERT_FALSE(path.empty());

    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    // The u32 format version sits right after the 8-byte magic.
    const uint32_t bogusVersion = kEvalCacheDiskFormatVersion + 1;
    std::memcpy(bytes.data() + 8, &bogusVersion, sizeof bogusVersion);
    std::ofstream outF(path, std::ios::binary | std::ios::trunc);
    outF.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    outF.close();

    cache.clear();
    EXPECT_FALSE(cache.find(key, false, nullptr).has_value());
    EXPECT_EQ(cache.stats().diskRejects, 1u);
}

TEST_F(EvalCacheDiskTest, RenamedEntryFailsKeyCheck)
{
    EvalCache &cache = EvalCache::instance();
    const uint64_t key = 0xaaaabbbbccccddddULL;
    const uint64_t otherKey = 0x5555666677778888ULL;
    cache.store(key, makeReport(), nullptr);
    const std::string path = onlyEntryPath();
    ASSERT_FALSE(path.empty());

    // A file renamed to another key's name must not satisfy that key:
    // the key baked into the header is authoritative.
    char name[32];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(otherKey));
    const std::string renamed = dir_ + "/" + name + ".nppeval";
    ASSERT_EQ(std::rename(path.c_str(), renamed.c_str()), 0);

    cache.clear();
    EXPECT_FALSE(cache.find(otherKey, false, nullptr).has_value());
    EXPECT_EQ(cache.stats().diskRejects, 1u);
}

TEST_F(EvalCacheDiskTest, AccountedBytesTrackRealEntrySize)
{
    EvalCache &cache = EvalCache::instance();
    cache.setDiskDir(""); // memory-tier accounting only

    // A stats-heavy report: the heap payload dwarfs sizeof(SimReport),
    // which is exactly the case the old flat sizeof+64 estimate lost.
    SimReport heavy = makeReport();
    heavy.stats.siteTraffic.assign(20000, {1, 2.0, 3.0, 4.0});
    const uint64_t heapBytes = heavy.heapBytes();
    ASSERT_GT(heapBytes, 600000u); // 20k sites * 32 bytes

    cache.store(0x9999u, heavy, nullptr);
    const uint64_t accounted = cache.stats().bytes;
    // Accounted bytes must cover the heap payload and stay within a
    // small factor of it (struct + bookkeeping overhead only).
    EXPECT_GE(accounted, heapBytes);
    EXPECT_LE(accounted, 2 * heapBytes);
}

TEST_F(EvalCacheDiskTest, UndersizedBudgetActuallyEvicts)
{
    EvalCache &cache = EvalCache::instance();
    cache.setDiskDir("");
    SimReport heavy = makeReport();
    heavy.stats.siteTraffic.assign(20000, {1, 2.0, 3.0, 4.0});

    // Budget for ~2 heavy entries; under the old flat estimate (~500
    // bytes/entry) all 8 would have been admitted without any eviction.
    cache.setCapacityBytes(
        static_cast<int64_t>(2 * heavy.heapBytes() + 8192));
    for (uint64_t k = 1; k <= 8; k++)
        cache.store(k, heavy, nullptr);
    const EvalCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 3u);
    EXPECT_LE(stats.bytes, static_cast<uint64_t>(cache.capacityBytes()));
}

TEST_F(EvalCacheDiskTest, ResetCountersResetsEverything)
{
    EvalCache &cache = EvalCache::instance();

    // Generate nonzero values for every counter class: memory hit and
    // miss, disk store/hit/reject, and evictions.
    const SimReport report = makeReport();
    cache.store(1, report, nullptr);
    cache.find(1, false, nullptr);            // memory hit
    cache.find(2, false, nullptr);            // miss both tiers
    cache.clear();
    cache.find(1, false, nullptr);            // disk hit
    const std::string path = onlyEntryPath();
    ASSERT_EQ(::truncate(path.c_str(), 4), 0);
    cache.clear();
    cache.find(1, false, nullptr);            // disk reject
    SimReport heavy = makeReport();
    heavy.stats.siteTraffic.assign(20000, {1, 2.0, 3.0, 4.0});
    cache.setCapacityBytes(static_cast<int64_t>(heavy.heapBytes() + 4096));
    cache.store(3, heavy, nullptr);
    cache.store(4, heavy, nullptr); // evicts 3

    EvalCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.diskRejects, 0u);

    // resetCounters must zero *all* effectiveness counters — the old
    // version forgot evictions — while keeping the entries resident.
    const uint64_t entriesBefore = stats.entries;
    cache.resetCounters();
    stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.diskMisses, 0u);
    EXPECT_EQ(stats.diskStores, 0u);
    EXPECT_EQ(stats.diskRejects, 0u);
    EXPECT_EQ(stats.entries, entriesBefore);
    EXPECT_GT(stats.bytes, 0u);
}

} // namespace
