/**
 * @file
 * Seeded randomized property test for runtime-sized nested domains.
 * A deterministic generator assembles CSR-shaped workloads (SpMV and
 * BFS frontier expansion) over random shapes and row-length
 * distributions — skewed, uniform, and empty-heavy — and checks the
 * simulator against the sequential reference interpreter for exact bit
 * parity under every fixed strategy, the searched mapping, and both
 * consolidation granularities. The consolidated queue consumes each
 * parent's children in ascending order (parent-major concatenation), so
 * even floating-point reductions must match the reference bit for bit.
 * Any failure reproduces exactly from the seed in the SCOPED_TRACE.
 */

#include <gtest/gtest.h>

#include "apps/dynsize.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

/** One strategy point of the sweep: a strategy plus (for Consolidate)
 *  the bin granularity. */
struct StrategyPoint
{
    const char *name;
    Strategy strategy;
    BinGranularity granularity;
};

const StrategyPoint kSweep[] = {
    {"MultiDim", Strategy::MultiDim, BinGranularity::Warp},
    {"OneD", Strategy::OneD, BinGranularity::Warp},
    {"ThreadBlockThread", Strategy::ThreadBlockThread, BinGranularity::Warp},
    {"WarpBased", Strategy::WarpBased, BinGranularity::Warp},
    {"ConsolidateWarp", Strategy::Consolidate, BinGranularity::Warp},
    {"ConsolidateBlock", Strategy::Consolidate, BinGranularity::Block},
};

/** Empty arrays are rejected by the binding layer; an all-empty CSR
 *  matrix (possible under EmptyHeavy with few rows) gets one slot of
 *  padding that no rowStart window ever references. */
void
padEmpty(CsrMatrix &m)
{
    if (m.cols.empty()) {
        m.cols.push_back(0.0);
        m.vals.push_back(0.0);
    }
}

RowDist
pickDist(Rng &rng)
{
    switch (rng.below(3)) {
      case 0: return RowDist::Uniform;
      case 1: return RowDist::Skewed;
      default: return RowDist::EmptyHeavy;
    }
}

/** Reference-vs-simulator parity for SpMV on one random matrix, under
 *  one strategy point. Outputs must be bit-identical (tolerance 0). */
void
checkSpmv(const CsrMatrix &mIn, const StrategyPoint &sp)
{
    SCOPED_TRACE(std::string("spmv under ") + sp.name);
    CsrMatrix m = mIn;
    padEmpty(m);
    SpmvProgram s = buildSpmv();

    std::vector<double> x(m.rows, 0.0);
    Rng rng(97);
    for (auto &v : x)
        v = rng.uniform(-1, 1);

    std::vector<double> refY(m.rows, 0.0);
    {
        std::vector<double> xr = x;
        Bindings args = s.bind(m, xr, refY);
        ReferenceInterp().run(*s.prog, args);
    }

    std::vector<double> simY(m.rows, 0.0);
    {
        std::vector<double> xr = x;
        Bindings args = s.bind(m, xr, simY);
        CompileOptions copts;
        copts.strategy = sp.strategy;
        copts.binGranularity = sp.granularity;
        Gpu gpu;
        gpu.compileAndRun(*s.prog, args, copts);
    }
    EXPECT_LE(maxAbsDiff(refY, simY), 0.0);
}

/** Reference-vs-simulator parity for one BFS frontier expansion over a
 *  random graph, under one strategy point. The `next` marks are
 *  idempotent constant stores and `deg` holds per-vertex degrees, so
 *  both outputs are order-independent and must be bit-identical. */
void
checkBfs(const CsrMatrix &gIn, const StrategyPoint &sp, Rng &rng)
{
    SCOPED_TRACE(std::string("bfs under ") + sp.name);
    CsrMatrix g = gIn;
    padEmpty(g);
    BfsFrontierProgram b = buildBfsFrontier();

    const int64_t fsize = 1 + rng.below(g.rows);
    std::vector<double> frontier(fsize);
    for (auto &v : frontier)
        v = static_cast<double>(rng.below(g.rows));

    std::vector<double> refNext(g.rows, 0.0), refDeg(fsize, 0.0);
    {
        std::vector<double> f = frontier;
        Bindings args = b.bind(g, f, refNext, refDeg);
        ReferenceInterp().run(*b.prog, args);
    }

    std::vector<double> simNext(g.rows, 0.0), simDeg(fsize, 0.0);
    {
        std::vector<double> f = frontier;
        Bindings args = b.bind(g, f, simNext, simDeg);
        CompileOptions copts;
        copts.strategy = sp.strategy;
        copts.binGranularity = sp.granularity;
        Gpu gpu;
        gpu.compileAndRun(*b.prog, args, copts);
    }
    EXPECT_LE(maxAbsDiff(refNext, simNext), 0.0);
    EXPECT_LE(maxAbsDiff(refDeg, simDeg), 0.0);
}

class DynSizeRandom : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DynSizeRandom, SpmvParityEveryStrategy)
{
    const uint64_t seed = GetParam();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const int64_t rows = 1 + rng.below(400);
    const int64_t avgDeg = 1 + rng.below(12);
    const RowDist dist = pickDist(rng);
    SCOPED_TRACE(std::string(rowDistName(dist)) + " rows=" +
                 std::to_string(rows) + " avgDeg=" +
                 std::to_string(avgDeg));
    const CsrMatrix m = makeCsr(rows, avgDeg, dist, seed * 7919 + 1);
    for (const StrategyPoint &sp : kSweep)
        checkSpmv(m, sp);
}

TEST_P(DynSizeRandom, BfsParityEveryStrategy)
{
    const uint64_t seed = GetParam();
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed ^ 0x5eed);
    const int64_t rows = 2 + rng.below(300);
    const int64_t avgDeg = 1 + rng.below(10);
    const RowDist dist = pickDist(rng);
    SCOPED_TRACE(std::string(rowDistName(dist)) + " rows=" +
                 std::to_string(rows) + " avgDeg=" +
                 std::to_string(avgDeg));
    const CsrMatrix g = makeCsr(rows, avgDeg, dist, seed * 6271 + 3);
    for (const StrategyPoint &sp : kSweep)
        checkBfs(g, sp, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynSizeRandom,
                         ::testing::Range<uint64_t>(1, 13));

//
// Degenerate shapes the generator may miss: every strategy point must
// survive a single row, a single heavy row, and an all-empty matrix.
//

TEST(DynSizeEdge, SingleRow)
{
    const CsrMatrix m = makeCsr(1, 6, RowDist::Uniform, 5);
    for (const StrategyPoint &sp : kSweep)
        checkSpmv(m, sp);
}

TEST(DynSizeEdge, OneHeavyRowAmongEmpties)
{
    CsrMatrix m = makeCsr(64, 1, RowDist::EmptyHeavy, 9);
    for (const StrategyPoint &sp : kSweep)
        checkSpmv(m, sp);
}

TEST(DynSizeEdge, AllRowsEmpty)
{
    CsrMatrix m;
    m.rows = 37;
    m.rowStart.assign(m.rows + 1, 0.0);
    for (const StrategyPoint &sp : kSweep)
        checkSpmv(m, sp);
}

} // namespace
} // namespace npp
