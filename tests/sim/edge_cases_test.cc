/**
 * @file
 * Edge cases and failure injection for the executor and pipeline: empty
 * domains, identity reductions, single-element domains, filters that
 * keep nothing/everything, degenerate graphs, and device-sensitivity
 * directions (a bigger GPU must not slow anything down).
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/gpu.h"

namespace npp {
namespace {

TEST(EdgeCases, EmptyMapDomainWritesNothing)
{
    ProgramBuilder b("empty");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i) * 2.0; });
    Program p = b.build();

    std::vector<double> inData(4, 1.0), outData(4, -7.0);
    Bindings args(p);
    args.scalar(n, 0);
    args.array(in, inData);
    args.array(out, outData);
    Gpu().compileAndRun(p, args);
    for (double v : outData)
        EXPECT_DOUBLE_EQ(v, -7.0) << "no element may be touched";
}

TEST(EdgeCases, EmptyReduceYieldsIdentity)
{
    for (Op op : {Op::Add, Op::Mul, Op::Min, Op::Max}) {
        ProgramBuilder b("emptyReduce");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.reduce(n, op, out, [&](Body &, Ex i) { return in(i); });
        Program p = b.build();

        std::vector<double> inData(4, 3.0), outData(1, -1.0);
        Bindings args(p);
        args.scalar(n, 0);
        args.array(in, inData);
        args.array(out, outData);
        Gpu().compileAndRun(p, args);
        EXPECT_DOUBLE_EQ(outData[0], combinerIdentity(op))
            << opName(op);
    }
}

TEST(EdgeCases, EmptyInnerDomains)
{
    // Nested reduce with size 0 for every outer iteration.
    ProgramBuilder b("innerEmpty");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex) {
        return fn.reduce(Ex(0), Op::Add,
                         [&](Body &, Ex) { return Ex(1.0); });
    });
    Program p = b.build();

    std::vector<double> outData(8, -1.0);
    Bindings args(p);
    args.scalar(n, 8);
    args.array(out, outData);
    Gpu().compileAndRun(p, args);
    for (double v : outData)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, SingleElementEverything)
{
    ProgramBuilder b("one");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        return fn.reduce(Ex(1), Op::Add,
                         [&](Body &, Ex) { return in(i); });
    });
    Program p = b.build();
    std::vector<double> inData = {42.0}, outData = {0.0};
    Bindings args(p);
    args.scalar(n, 1);
    args.array(in, inData);
    args.array(out, outData);
    Gpu().compileAndRun(p, args);
    EXPECT_DOUBLE_EQ(outData[0], 42.0);
}

TEST(EdgeCases, FilterKeepsNothingAndEverything)
{
    ProgramBuilder b("f");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Ex cut = b.paramF64("cut");
    Arr out = b.outF64("out");
    Arr cnt = b.outF64("cnt");
    b.filter(n, out, cnt, [&](Body &, Ex i) {
        return FilterItem{in(i) > cut, in(i)};
    });
    Program p = b.build();

    std::vector<double> inData = {1, 2, 3, 4, 5};
    for (double threshold : {100.0, -100.0}) {
        std::vector<double> outData(5, 0.0), cntData(1, -1.0);
        Bindings args(p);
        args.scalar(n, 5);
        args.scalar(cut, threshold);
        args.array(in, inData);
        args.array(out, outData);
        args.array(cnt, cntData);
        Gpu().compileAndRun(p, args);
        EXPECT_DOUBLE_EQ(cntData[0], threshold > 0 ? 0.0 : 5.0);
        if (threshold < 0) {
            for (int i = 0; i < 5; i++)
                EXPECT_DOUBLE_EQ(outData[i], inData[i]);
        }
    }
}

TEST(EdgeCases, GroupByAllOneKey)
{
    ProgramBuilder b("g");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
        return KeyedValue{Ex(0), vals(i)};
    });
    Program p = b.build();
    std::vector<double> valData = {1, 2, 3}, outData = {99.0, 99.0};
    Bindings args(p);
    args.scalar(n, 3);
    args.array(vals, valData);
    args.array(out, outData);
    Gpu().compileAndRun(p, args);
    EXPECT_DOUBLE_EQ(outData[0], 6.0);
    EXPECT_DOUBLE_EQ(outData[1], combinerIdentity(Op::Add))
        << "untouched keys hold the identity";
}

TEST(EdgeCases, SeqLoopZeroTrips)
{
    ProgramBuilder b("z");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex) {
        Mut acc = fn.mut("acc", Ex(5.0));
        fn.seqLoop(Ex(0), [&](Body &body, Ex) {
            body.assign(acc, acc.ex() + 1.0);
        });
        return acc.ex();
    });
    Program p = b.build();
    std::vector<double> outData(3, 0.0);
    Bindings args(p);
    args.scalar(n, 3);
    args.array(out, outData);
    Gpu().compileAndRun(p, args);
    for (double v : outData)
        EXPECT_DOUBLE_EQ(v, 5.0);
}

//
// Device sensitivity: scaling the hardware must move model time in the
// right direction.
//

SimReport
runSumRowsOn(const DeviceConfig &dev, int64_t R, int64_t C)
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr mm = m;
    Ex cc = c;
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(cc, Op::Add,
                         [&](Body &, Ex j) { return mm(i * cc + j); });
    });
    Program p = b.build();

    std::vector<double> data(R * C, 1.0), result(R, 0.0);
    Bindings args(p);
    args.scalar(r, static_cast<double>(R));
    args.scalar(c, static_cast<double>(C));
    args.array(m, data);
    args.array(out, result);
    Gpu gpu(dev);
    CompileOptions copts;
    copts.paramValues = {{1, static_cast<double>(R)},
                         {2, static_cast<double>(C)}};
    return gpu.compileAndRun(p, args, copts);
}

TEST(DeviceSensitivity, MoreBandwidthSpeedsUpMemoryBoundKernels)
{
    DeviceConfig base = teslaK20c();
    DeviceConfig fat = base;
    fat.dramBandwidthGBs *= 2;
    const double t1 = runSumRowsOn(base, 2048, 2048).totalMs;
    const double t2 = runSumRowsOn(fat, 2048, 2048).totalMs;
    EXPECT_LT(t2, t1);
    EXPECT_NEAR(t1 / t2, 2.0, 0.5) << "sumRows is bandwidth bound";
}

TEST(DeviceSensitivity, MoreSMsNeverSlower)
{
    DeviceConfig base = teslaK20c();
    DeviceConfig big = base;
    big.numSMs = 26;
    const double t1 = runSumRowsOn(base, 2048, 2048).totalMs;
    const double t2 = runSumRowsOn(big, 2048, 2048).totalMs;
    EXPECT_LE(t2, t1 * 1.01);
}

TEST(DeviceSensitivity, MinDopScalesWithDevice)
{
    DeviceConfig base = teslaK20c();
    DeviceConfig big = base;
    big.numSMs = 26;
    EXPECT_EQ(big.minDop(), 2 * base.minDop());
    EXPECT_EQ(big.maxDop(), 2 * base.maxDop());
}

TEST(DeviceSensitivity, MappingAdaptsToDeviceDopWindow)
{
    // The C2050's MIN_DOP (14 x 1536) differs from the K20c's
    // (13 x 2048); the DOP-repair decisions must follow the target.
    const DeviceConfig fermi = teslaC2050();
    const DeviceConfig kepler = teslaK20c();
    EXPECT_NE(fermi.minDop(), kepler.minDop());

    ProgramBuilder b("sumCols");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr mm = m;
    Ex rr = r, cc = c;
    b.map(cc, out, [&](Body &fn, Ex j) {
        return fn.reduce(rr, Op::Add,
                         [&](Body &, Ex i) { return mm(i * cc + j); });
    });
    Program p = b.build();

    for (const DeviceConfig &dev : {fermi, kepler}) {
        AnalysisEnv env;
        env.prog = &p;
        env.paramValues = {{1, 65536.0}, {2, 512.0}};
        ConstraintSet cs = buildConstraints(p, env, dev);
        MappingSearch search(dev);
        SearchResult res = search.search(cs);
        EXPECT_GE(res.bestDop, static_cast<double>(dev.minDop()))
            << dev.name << ": " << res.best.toString();
        EXPECT_LE(res.bestDop, static_cast<double>(dev.maxDop()));
    }
}

TEST(DeviceSensitivity, SlowerLaunchHurtsIterativeKernels)
{
    DeviceConfig base = teslaK20c();
    DeviceConfig slowLaunch = base;
    slowLaunch.kernelLaunchOverheadUs = 50.0;
    const double t1 = runSumRowsOn(base, 64, 64).totalMs;
    const double t2 = runSumRowsOn(slowLaunch, 64, 64).totalMs;
    EXPECT_GT(t2, t1 + 0.04) << "tiny kernels are launch bound";
}

} // namespace
} // namespace npp
