/**
 * @file
 * Differential tests for the consolidation mapping: consolidated and
 * static mappings of the same runtime-sized program must produce
 * bit-identical outputs (and both match the reference interpreter), the
 * EvalCache must never collide a consolidated evaluation with a static
 * one (the key mixes strategy and bin granularity), the queue-build
 * stage must be charged and exported, ineligible programs must fall
 * back with a named verdict, the --explain surfaces must name why
 * consolidation won or lost, and the emitter must render the bin-build
 * prologue. The classed fixture pins full-vs-classed bit identity for
 * the consolidated executor path (which always falls back to exact
 * simulation with a named reason).
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/consolidate.h"
#include "analysis/search.h"
#include "apps/dynsize.h"
#include "classed_fixture.h"
#include "sim/consolidation.h"
#include "sim/evalcache.h"
#include "sim/fleet.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

/** A fixed skewed matrix for the differential cases. */
CsrMatrix
skewedMatrix()
{
    return makeCsr(/*rows=*/512, /*avgDeg=*/6, RowDist::Skewed,
                   /*seed=*/41);
}

std::vector<double>
denseVector(int64_t n, uint64_t seed)
{
    std::vector<double> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = rng.uniform(-1, 1);
    return v;
}

/** Run SpMV once under the given options; returns y. */
std::vector<double>
runSpmv(const SpmvProgram &s, const CsrMatrix &mIn,
        const std::vector<double> &xIn, const CompileOptions &copts,
        SimReport *report = nullptr)
{
    CsrMatrix m = mIn;
    std::vector<double> x = xIn;
    std::vector<double> y(m.rows, 0.0);
    Bindings args = s.bind(m, x, y);
    Gpu gpu;
    SimReport r = gpu.compileAndRun(*s.prog, args, copts);
    if (report)
        *report = r;
    return y;
}

CompileOptions
consolidateOpts(BinGranularity g)
{
    CompileOptions copts;
    copts.strategy = Strategy::Consolidate;
    copts.binGranularity = g;
    return copts;
}

//
// Differential: consolidated output == static output == reference,
// bit for bit. The queue consumes each row's entries in ascending
// order, so even the floating-point reduction must agree exactly.
//

TEST(DynSizeDifferential, ConsolidatedMatchesStaticAndReference)
{
    const CsrMatrix m = skewedMatrix();
    const std::vector<double> x = denseVector(m.rows, 23);
    SpmvProgram s = buildSpmv();

    std::vector<double> refY(m.rows, 0.0);
    {
        CsrMatrix mr = m;
        std::vector<double> xr = x;
        Bindings args = s.bind(mr, xr, refY);
        ReferenceInterp().run(*s.prog, args);
    }

    CompileOptions staticOpts; // searched MultiDim mapping
    const std::vector<double> staticY = runSpmv(s, m, x, staticOpts);
    const std::vector<double> warpY =
        runSpmv(s, m, x, consolidateOpts(BinGranularity::Warp));
    const std::vector<double> blockY =
        runSpmv(s, m, x, consolidateOpts(BinGranularity::Block));

    EXPECT_LE(maxAbsDiff(refY, staticY), 0.0);
    EXPECT_LE(maxAbsDiff(refY, warpY), 0.0);
    EXPECT_LE(maxAbsDiff(refY, blockY), 0.0);
}

//
// EvalCache keys: a consolidated evaluation must never replay a static
// one (or the other granularity's), so the compile-options hash has to
// separate all strategy points on the same program and inputs.
//

TEST(DynSizeDifferential, CacheKeysNeverCollideAcrossStrategies)
{
    SpmvProgram s = buildSpmv();
    std::vector<CompileOptions> points;
    for (Strategy st :
         {Strategy::MultiDim, Strategy::OneD,
          Strategy::ThreadBlockThread, Strategy::WarpBased}) {
        CompileOptions c;
        c.strategy = st;
        points.push_back(c);
    }
    points.push_back(consolidateOpts(BinGranularity::Warp));
    points.push_back(consolidateOpts(BinGranularity::Block));

    std::set<uint64_t> seen;
    for (const CompileOptions &c : points) {
        const uint64_t key =
            EvalCache::combine(EvalCache::hashProgram(*s.prog),
                               EvalCache::hashCompileOptions(c));
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate cache key for strategy "
            << strategyName(c.strategy);
    }
    EXPECT_EQ(seen.size(), points.size());
}

//
// The queue-build stage is charged, exported, and consistent with the
// matrix: one parent per row, one entry per nonzero.
//

TEST(DynSizeDifferential, QueueBuildStageChargedAndExported)
{
    const CsrMatrix m = skewedMatrix();
    const std::vector<double> x = denseVector(m.rows, 29);
    SpmvProgram s = buildSpmv();

    SimReport report;
    runSpmv(s, m, x, consolidateOpts(BinGranularity::Warp), &report);

    EXPECT_TRUE(report.stats.hasConsolidation);
    EXPECT_EQ(report.stats.consolidationParents, m.rows);
    EXPECT_EQ(report.stats.consolidationEntries, m.nnz());
    EXPECT_GT(report.stats.consolidationGroups, 0);
    EXPECT_GE(report.stats.consolidationWaves,
              report.stats.consolidationEntries / 32);
    EXPECT_GT(report.stats.queueBuildTransactions, 0.0);
    EXPECT_GT(report.stats.queueBuildOps, 0.0);
    EXPECT_GT(report.stats.queueBuildThreads, 0);
    EXPECT_GT(report.stats.binFill, 0.0);
    EXPECT_LE(report.stats.binFill, 1.0);
    EXPECT_GT(report.queueBuildMs, 0.0);
    EXPECT_GE(report.totalMs, report.queueBuildMs);

    const std::string json = report.toJson(128);
    EXPECT_NE(json.find("\"has_consolidation\":true"), std::string::npos);
    EXPECT_NE(json.find("\"queue_build_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"bin_fill\""), std::string::npos);

    // A static mapping of the same program must not pay for the stage.
    SimReport staticReport;
    CompileOptions staticOpts;
    runSpmv(s, m, x, staticOpts, &staticReport);
    EXPECT_FALSE(staticReport.stats.hasConsolidation);
    EXPECT_DOUBLE_EQ(staticReport.queueBuildMs, 0.0);
}

//
// Classing: consolidated bins depend on the bound extents, so the
// executor must simulate every group exactly — with the named reason —
// and classed-mode requests must still be bit-identical to full runs.
//

TEST(DynSizeDifferential, ConsolidatedRunsExactWithNamedReason)
{
    auto mData = std::make_shared<CsrMatrix>(skewedMatrix());
    ASSERT_GT(mData->nnz(), 0);
    SpmvProgram s = buildSpmv();
    auto xData =
        std::make_shared<std::vector<double>>(denseVector(mData->rows, 31));

    difftest::DiffCase c;
    c.name = "spmv-consolidated";
    c.prog = s.prog;
    c.bindInputs = [=](Bindings &args) {
        args.scalar(s.nParam, static_cast<double>(mData->rows));
        args.array(s.startArr, mData->rowStart);
        args.array(s.colArr, mData->cols);
        args.array(s.valArr, mData->vals);
        args.array(s.xArr, *xData);
    };
    c.outputs = {{s.outArr, mData->rows}};

    const SimReport classed = difftest::runDifferential(
        c, consolidateOpts(BinGranularity::Warp));
    EXPECT_EQ(classed.stats.classReason,
              "consolidated bins are data-dependent; every group "
              "simulated exactly");
    EXPECT_EQ(classed.stats.classedBlocks, 0);
}

//
// Eligibility: programs without a runtime-sized inner domain fall back
// to the static search with a named verdict, both at compile time and
// in the sweep.
//

std::shared_ptr<Program>
staticSumProgram()
{
    ProgramBuilder b("denseSum");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(cc, Op::Add,
                         [&](Body &, Ex j) { return m(i * cc + j); });
    });
    return std::make_shared<Program>(b.build());
}

TEST(DynSizeDifferential, IneligibleProgramFallsBackNamed)
{
    auto prog = staticSumProgram();
    EXPECT_FALSE(hasDynamicInnerExtent(*prog));
    EXPECT_TRUE(hasDynamicInnerExtent(*buildSpmv().prog));

    Gpu gpu;
    CompileResult res = compileProgram(
        *prog, gpu.config(), consolidateOpts(BinGranularity::Warp));
    EXPECT_FALSE(res.spec.consolidation.enabled);
    EXPECT_NE(res.spec.consolidation.verdict.find("not consolidated:"),
              std::string::npos)
        << res.spec.consolidation.verdict;

    // A consolidation-eligible shape still compiles — and runs — under
    // every static strategy; requesting Consolidate on the static
    // program quietly produced a legal static mapping above.
    EXPECT_GE(res.spec.mapping.numLevels(), 1);
}

TEST(DynSizeDifferential, SweepNamesWhyConsolidationWonOrLost)
{
    const CsrMatrix m = skewedMatrix();
    SpmvProgram s = buildSpmv();
    CsrMatrix mr = m;
    std::vector<double> x = denseVector(m.rows, 37);
    std::vector<double> y(m.rows, 0.0);
    Bindings args = s.bind(mr, x, y);

    Gpu gpu;
    CompileOptions base;
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const ConsolidationChoice choice =
        searchConsolidation(gpu, *s.prog, args, base, eopts);

    // Both granularities competed, and the selected verdict names the
    // outcome either way.
    EXPECT_EQ(choice.candidates.size(), 3u); // static + warp + block
    EXPECT_FALSE(choice.verdict.empty());
    EXPECT_NE(choice.verdict.find("consolidated"), std::string::npos);

    const std::string text = formatConsolidationChoice(choice);
    EXPECT_NE(text.find("consolidation sweep"), std::string::npos);
    EXPECT_NE(text.find("selected:"), std::string::npos);

    const std::string json = consolidationChoiceJson(choice);
    EXPECT_NE(json.find("\"consolidated\":"), std::string::npos);
    EXPECT_NE(json.find("\"candidates\":"), std::string::npos);

    // The explain surfaces thread the note and the JSON through.
    SearchExplanation ex;
    ex.valid = true;
    ex.consolidationNote = text;
    ex.consolidationJson = json;
    EXPECT_NE(formatSearchExplanation(ex).find("consolidation sweep"),
              std::string::npos);
    EXPECT_NE(searchExplanationJson(ex).find("\"consolidation\":"),
              std::string::npos);

    // A static-shaped program's sweep reports ineligibility by name
    // (its static baseline still evaluates, so real bindings are
    // required).
    const int64_t R = 64, C = 32;
    ProgramBuilder sb("denseSumBound");
    Arr sm = sb.inF64("m");
    Ex sr = sb.paramI64("R"), sc = sb.paramI64("C");
    Arr sout = sb.outF64("out");
    sb.map(sr, sout, [&](Body &fn, Ex i) {
        return fn.reduce(sc, Op::Add,
                         [&](Body &, Ex j) { return sm(i * sc + j); });
    });
    auto staticProg = std::make_shared<Program>(sb.build());
    std::vector<double> md(R * C, 1.0), od(R, 0.0);
    Bindings staticArgs(*staticProg);
    staticArgs.scalar(sr, static_cast<double>(R));
    staticArgs.scalar(sc, static_cast<double>(C));
    staticArgs.array(sm, md);
    staticArgs.array(sout, od);
    const ConsolidationChoice staticChoice = searchConsolidation(
        gpu, *staticProg, staticArgs, base, eopts);
    EXPECT_FALSE(staticChoice.consolidated);
    EXPECT_NE(staticChoice.verdict.find("no runtime-sized inner domain"),
              std::string::npos)
        << staticChoice.verdict;
}

//
// Fleet sweep: a runtime-sized OUTER extent reaches the partitioner as
// a placeholder, so every N>1 candidate must be hard-filtered with the
// runtime-size verdict (not "empty outer domain"), while the N=1 row
// stays feasible and wins.
//

TEST(DynSizeDifferential, FleetSweepNamesRuntimeSizedOuter)
{
    ProgramBuilder b("dynRoot");
    Arr n = b.inI64("n");
    Arr v = b.inF64("v");
    Arr out = b.outF64("out");
    b.map(n(Ex(0)), out, [&](Body &, Ex i) { return v(i) * 2.0; });
    auto prog = std::make_shared<Program>(b.build());

    std::vector<double> nData = {16.0};
    std::vector<double> vData(16, 1.5), outData(16, 0.0);
    Bindings args(*prog);
    args.array(n, nData);
    args.array(v, vData);
    args.array(out, outData);

    Gpu gpu;
    CompileOptions copts;
    CompileResult res = compileProgram(*prog, gpu.config(), copts);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    const FleetChoice choice =
        searchFleet(gpu, res.spec, args, fleetK20c(4), eopts, 1234);

    EXPECT_EQ(choice.deviceCount, 1);
    bool namedVerdict = false;
    for (const FleetCandidate &c : choice.candidates) {
        if (c.deviceCount <= 1)
            continue;
        EXPECT_FALSE(c.feasible);
        EXPECT_EQ(c.verdict.find("empty outer domain"),
                  std::string::npos)
            << c.verdict;
        if (c.verdict.find("not known at launch") != std::string::npos)
            namedVerdict = true;
    }
    EXPECT_TRUE(namedVerdict)
        << "no N>1 candidate carried the runtime-size verdict:\n"
        << formatFleetChoice(choice);
    EXPECT_NE(fleetChoiceJson(choice).find("not known at launch"),
              std::string::npos);
    EXPECT_NE(formatFleetChoice(choice).find("hard-filtered"),
              std::string::npos);
}

//
// Emitter: the consolidated kernel renders the bin-build prologue, the
// consumption loop, and the plan comment; static compiles of the same
// program render none of it.
//

TEST(DynSizeDifferential, EmitterRendersBinBuildPrologue)
{
    SpmvProgram s = buildSpmv();
    Gpu gpu;

    CompileResult cons = compileProgram(
        *s.prog, gpu.config(), consolidateOpts(BinGranularity::Warp));
    ASSERT_TRUE(cons.spec.consolidation.enabled)
        << cons.spec.consolidation.verdict;
    const std::string cuda = cons.spec.cudaSource;
    EXPECT_NE(cuda.find("bin-build prologue"), std::string::npos) << cuda;
    EXPECT_NE(cuda.find("__q_off"), std::string::npos);
    EXPECT_NE(cuda.find("consolidated consumption"), std::string::npos);
    EXPECT_NE(cuda.find("__shfl_up_sync"), std::string::npos);

    CompileResult block = compileProgram(
        *s.prog, gpu.config(), consolidateOpts(BinGranularity::Block));
    ASSERT_TRUE(block.spec.consolidation.enabled);
    EXPECT_NE(block.spec.cudaSource.find("block-wide exclusive scan"),
              std::string::npos);

    CompileOptions staticOpts;
    CompileResult stat =
        compileProgram(*s.prog, gpu.config(), staticOpts);
    EXPECT_EQ(stat.spec.cudaSource.find("__q_off"), std::string::npos);
}

} // namespace
} // namespace npp
