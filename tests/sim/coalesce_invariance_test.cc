/**
 * @file
 * Shift-invariance property suite for the relative-base coalescing
 * model. The probe counts memory transactions against each warp
 * group's minimum address, so translating every array's simulated
 * device address space by a uniform delta — any delta, aligned to the
 * transaction size or not — must leave the whole report bit-identical:
 * aggregate KernelStats, derived timing, and per-site attribution.
 *
 * The suite exercises both simulator paths (exact every-block and
 * block-equivalence classed) and pins the regressions that motivated
 * the model: the dense shapes whose classing used to be refused by the
 * spread probe ("block N diverged") now verify and merge.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/sums.h"
#include "classed_fixture.h"
#include "sim/metrics.h"
#include "support/rng.h"

namespace npp {
namespace {

using difftest::DiffCase;

/** Same fixed two-level mapping the differential suite uses: outer
 *  partitioned across blocks, inner span-all — many more blocks than
 *  classes, so classable programs must actually merge. */
CompileOptions
partitionedOuter(int64_t outerBs = 16, int64_t innerBs = 32)
{
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, outerBs, SpanType::one()},
                                 {1, innerBs, SpanType::all()}};
    return copts;
}

std::vector<double>
signedData(int64_t n, uint64_t seed)
{
    std::vector<double> m(std::max<int64_t>(n, 1));
    Rng rng(seed);
    for (auto &x : m)
        x = rng.uniform(-1, 1);
    return m;
}

/** Dense sum kernel (classes under partitionedOuter). */
DiffCase
sumCase(bool byCols, bool weighted, int64_t R, int64_t C)
{
    SumsProgram sp = buildSum(byCols, weighted);
    DiffCase c;
    c.name = sp.prog->name();
    c.prog = sp.prog;
    auto mData = std::make_shared<std::vector<double>>(
        signedData(R * C, 0xfeedULL));
    auto vData = std::make_shared<std::vector<double>>(
        signedData(std::max(R, C), 0xbeefULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        if (sp.weighted)
            args.array(sp.v, *vData);
    };
    c.outputs = {{sp.out, sp.outputSize(R, C)}};
    return c;
}

/** Data-dependent filter kernel: never classes, so the classed run
 *  falls back to the exact path — covering shift invariance of the
 *  fallback (prefetch accounting, divergence settling and all). */
DiffCase
sumPositivesCase(bool byCols, int64_t R, int64_t C)
{
    SumsProgram sp = buildSumPositives(byCols);
    DiffCase c;
    c.name = sp.prog->name();
    c.prog = sp.prog;
    auto mData = std::make_shared<std::vector<double>>(
        signedData(R * C, 0xfeedULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
    };
    c.outputs = {{sp.out, sp.outputSize(R, C)}};
    return c;
}

/** One uncached metrics-only simulation with every bound array's
 *  address space translated by deltaElems after binding. Per-site
 *  attribution is always on (the stricter comparison). */
SimReport
runShifted(const Gpu &gpu, const KernelSpec &spec, const DiffCase &c,
           std::vector<std::vector<double>> &outStorage, bool classed,
           int64_t deltaElems)
{
    Bindings args(*c.prog);
    c.bindInputs(args);
    for (size_t i = 0; i < c.outputs.size(); i++)
        args.array(c.outputs[i].first, outStorage[i]);
    args.shiftAddrBases(deltaElems);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    eopts.blockClasses = classed;
    eopts.siteStats = true;
    return gpu.run(spec, args, eopts);
}

/** Translation deltas in elements (8 bytes each here). Covers one whole
 *  transaction (16 x 8B = 128B), sub-transaction and odd misaligned
 *  shifts, a negative shift, and a large one that crosses every
 *  power-of-two boundary the address math might care about. */
constexpr int64_t kDeltas[] = {16, 1, 163, -37, 1000003};

void
expectShiftInvariant(const DiffCase &c, const CompileOptions &copts)
{
    SCOPED_TRACE(c.name);
    Gpu gpu;
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);
    std::vector<std::vector<double>> outStorage;
    for (const auto &[arr, size] : c.outputs)
        outStorage.emplace_back(std::max<int64_t>(size, 1), 0.0);

    for (const bool classed : {false, true}) {
        SCOPED_TRACE(classed ? "classed" : "exact");
        const SimReport base =
            runShifted(gpu, compiled.spec, c, outStorage, classed, 0);
        for (const int64_t delta : kDeltas) {
            SCOPED_TRACE("delta " + std::to_string(delta));
            const SimReport shifted = runShifted(gpu, compiled.spec, c,
                                                 outStorage, classed, delta);
            difftest::expectBitIdentical(base, shifted,
                                         "shifted vs unshifted");
            EXPECT_EQ(base.stats.classedBlocks, shifted.stats.classedBlocks);
            EXPECT_EQ(base.stats.classReason, shifted.stats.classReason);
        }
    }
}

TEST(CoalesceInvariance, DenseSumsUnderTranslation)
{
    expectShiftInvariant(sumCase(false, false, 192, 160),
                         partitionedOuter());
    expectShiftInvariant(sumCase(false, true, 192, 160), partitionedOuter());
    expectShiftInvariant(sumCase(true, false, 160, 192), partitionedOuter());
}

TEST(CoalesceInvariance, ExactFallbackUnderTranslation)
{
    expectShiftInvariant(sumPositivesCase(false, 96, 96), partitionedOuter());
}

TEST(CoalesceInvariance, DefaultMappingUnderTranslation)
{
    // Searched mapping instead of the fixed fixture one: whatever the
    // optimizer picks must also be translation-invariant.
    expectShiftInvariant(sumCase(false, true, 128, 128), CompileOptions{});
}

//
// Regressions: shapes the old absolute-address model refused to class
// ("block N diverged" from the spread probe) now verify and merge.
//

SimReport
runClassed(const DiffCase &c, const CompileOptions &copts)
{
    Gpu gpu;
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);
    std::vector<std::vector<double>> outStorage;
    for (const auto &[arr, size] : c.outputs)
        outStorage.emplace_back(std::max<int64_t>(size, 1), 0.0);
    return runShifted(gpu, compiled.spec, c, outStorage, /*classed=*/true, 0);
}

TEST(CoalesceInvariance, FormerAnomalyShapesNowClass)
{
    {
        // sumWeightedRows @ 512^2: used to refuse with "block 11
        // diverged" and fall back to exact simulation (~1x in
        // BENCH_classing).
        const SimReport rep =
            runClassed(sumCase(false, true, 512, 512), partitionedOuter());
        EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
        EXPECT_GT(rep.stats.classedBlocks, 0);
    }
    {
        // sumCols @ 1024^2: used to refuse with "block 2 diverged".
        const SimReport rep =
            runClassed(sumCase(true, false, 1024, 1024), partitionedOuter());
        EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
        EXPECT_GT(rep.stats.classedBlocks, 0);
    }
}

TEST(CoalesceInvariance, ModelVersionExported)
{
    const SimReport rep =
        runClassed(sumCase(false, false, 64, 64), partitionedOuter());
    const std::string json = rep.toJson();
    EXPECT_NE(json.find(std::string("\"coalesce_model\":\"") +
                        kCoalesceModelVersion + "\""),
              std::string::npos)
        << json;
}

} // namespace
} // namespace npp
