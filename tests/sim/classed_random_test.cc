/**
 * @file
 * Seeded randomized differential test for block-equivalence classing.
 * A deterministic generator (fixed seeds, no wall-clock randomness)
 * assembles nested programs mixing Map/Reduce/Filter/GroupBy with both
 * class-invariant and data-dependent predicates and keys, over random
 * shapes including degenerate ones (single row, single column). Every
 * generated program runs through the shared differential fixture under
 * two strategies: classed and full simulation must be bit-identical
 * whether classing engages or falls back, with and without per-site
 * attribution. Any mismatch reproduces exactly from the seed printed by
 * the SCOPED_TRACE.
 */

#include <gtest/gtest.h>

#include "classed_fixture.h"
#include "support/rng.h"

namespace npp {
namespace {

using difftest::DiffCase;
using difftest::runDifferential;

/** Inner-pattern flavors the generator picks from. */
enum class Inner
{
    Reduce,          //!< dense reduce (classable baseline)
    MapReduce,       //!< zipWith temporary + reduce
    InvariantFilter, //!< index-only predicate: classable cursor
    DataFilter,      //!< predicate reads the matrix: exact fallback
    InvariantGroupBy, //!< cyclic key: classable bins
    DataGroupBy,      //!< key array: exact fallback
    Count
};

DiffCase
randomCase(uint64_t seed)
{
    Rng rng(seed);
    const int64_t R = 1 + rng.below(48);
    const int64_t C = 1 + rng.below(64);
    const int64_t K = 2 + rng.below(7);
    const auto inner =
        static_cast<Inner>(rng.below(static_cast<int64_t>(Inner::Count)));
    const int64_t modv = 2 + rng.below(4);
    const int64_t pick = rng.below(modv);

    ProgramBuilder b("rand_seed" + std::to_string(seed));
    Arr m = b.inF64("m");
    Arr keys = b.inI64("keys");
    Ex r = b.paramI64("R"), cc = b.paramI64("C"), k = b.paramI64("K");
    Arr out = b.outF64("out");

    b.map(r, out, [&](Body &fn, Ex i) -> Ex {
        switch (inner) {
          case Inner::Reduce:
            return fn.reduce(cc, Op::Add, [&](Body &, Ex j) {
                return m(i * cc + j);
            });
          case Inner::MapReduce: {
            Arr temp = fn.zipWith(cc, [&](Body &, Ex j) {
                return m(i * cc + j) * 0.5;
            });
            return fn.reduce(cc, Op::Add,
                             [&](Body &, Ex j) { return temp(j); });
          }
          case Inner::InvariantFilter: {
            Filtered kept = fn.filter(cc, [&](Body &, Ex j) {
                return FilterItem{Ex(j) % modv == pick, m(i * cc + j)};
            });
            return fn.reduce(kept.count, Op::Add, [&](Body &, Ex j) {
                return kept.items(j);
            });
          }
          case Inner::DataFilter: {
            Filtered kept = fn.filter(cc, [&](Body &, Ex j) {
                return FilterItem{m(i * cc + j) > 0.0, m(i * cc + j)};
            });
            return fn.reduce(kept.count, Op::Add, [&](Body &, Ex j) {
                return kept.items(j);
            });
          }
          case Inner::InvariantGroupBy: {
            Arr hist = fn.groupBy(cc, k, Op::Add, [&](Body &, Ex j) {
                return KeyedValue{Ex(j) % k, m(i * cc + j)};
            });
            return fn.reduce(k, Op::Add, [&](Body &, Ex g) {
                return hist(g) * (Ex(g) + 1.0);
            });
          }
          case Inner::DataGroupBy: {
            Arr hist = fn.groupBy(cc, k, Op::Add, [&](Body &, Ex j) {
                return KeyedValue{keys(i * cc + j), Ex(1.0)};
            });
            return fn.reduce(k, Op::Add, [&](Body &, Ex g) {
                return hist(g) * (Ex(g) + 1.0);
            });
          }
          case Inner::Count:
            break;
        }
        return Ex(0.0);
    });

    DiffCase c;
    c.name = "rand_seed" + std::to_string(seed);
    c.prog = std::make_shared<Program>(b.build());

    auto mData = std::make_shared<std::vector<double>>(R * C);
    auto keyData = std::make_shared<std::vector<double>>(R * C);
    for (int64_t i = 0; i < R * C; i++) {
        (*mData)[i] = rng.uniform(-1, 1);
        (*keyData)[i] = static_cast<double>(rng.below(K));
    }
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.scalar(k, static_cast<double>(K));
        args.array(m, *mData);
        args.array(keys, *keyData);
    };
    c.outputs = {{out, R}};
    return c;
}

class ClassedRandom : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ClassedRandom, DifferentialUnderSearchedMapping)
{
    DiffCase c = randomCase(GetParam());
    CompileOptions copts;
    copts.strategy = Strategy::MultiDim;
    runDifferential(c, copts);
}

TEST_P(ClassedRandom, DifferentialUnderOneD)
{
    DiffCase c = randomCase(GetParam());
    CompileOptions copts;
    copts.strategy = Strategy::OneD;
    runDifferential(c, copts);
}

TEST_P(ClassedRandom, DifferentialUnderFixedPartitionedOuter)
{
    DiffCase c = randomCase(GetParam());
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, 8, SpanType::one()},
                                 {1, 32, SpanType::all()}};
    runDifferential(c, copts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassedRandom,
                         ::testing::Range<uint64_t>(1, 17),
                         [](const ::testing::TestParamInfo<uint64_t> &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace npp
