/**
 * @file
 * Differential suite for block-equivalence classing on variable-size
 * programs and per-site attribution. Every case runs through the shared
 * fixture (classed_fixture.h): full and classed metrics-only simulation,
 * with and without siteStats, must produce bit-identical reports —
 * whether classing engages (invariant filter predicates / groupBy keys,
 * dense nests) or falls back to exact simulation (data-dependent
 * predicates, root filters, split spans). The fallback cases also pin
 * the human-readable classReason strings surfaced by nppc --explain and
 * the --stats JSON export.
 */

#include <gtest/gtest.h>

#include "apps/sums.h"
#include "classed_fixture.h"
#include "sim/classify.h"
#include "support/rng.h"

namespace npp {
namespace {

using difftest::DiffCase;
using difftest::runDifferential;

/** Fixed two-level mapping: outer partitioned across blocks, inner
 *  span-all inside the block — many more blocks than classes, so a
 *  classable program must actually merge. The coalescing model counts
 *  segments against each warp group's minimum address, so per-block
 *  output shifts of any size (aligned or not) leave traffic invariant
 *  and never refuse classing. */
CompileOptions
partitionedOuter(int64_t outerBs = 16, int64_t innerBs = 32)
{
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, outerBs, SpanType::one()},
                                 {1, innerBs, SpanType::all()}};
    return copts;
}

std::vector<double>
signedData(int64_t n, uint64_t seed)
{
    std::vector<double> m(std::max<int64_t>(n, 1));
    Rng rng(seed);
    for (auto &x : m)
        x = rng.uniform(-1, 1);
    return m;
}

//
// Case builders.
//

/** The paper's dense sum kernels (Fig 1 / Fig 15). */
DiffCase
sumCase(bool byCols, bool weighted, int64_t R, int64_t C)
{
    SumsProgram sp = buildSum(byCols, weighted);
    DiffCase c;
    c.name = sp.prog->name();
    c.prog = sp.prog;
    auto mData = std::make_shared<std::vector<double>>(
        signedData(R * C, 0xfeedULL));
    auto vData = std::make_shared<std::vector<double>>(
        signedData(std::max(R, C), 0xbeefULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        if (sp.weighted)
            args.array(sp.v, *vData);
    };
    c.outputs = {{sp.out, sp.outputSize(R, C)}};
    return c;
}

/** Fig 16's variable-size kernel: the nested filter's predicate reads
 *  the matrix, so each block keeps a different count — never classable,
 *  but the exact fallback must stay bit-identical. */
DiffCase
sumPositivesCase(bool byCols, int64_t R, int64_t C)
{
    SumsProgram sp = buildSumPositives(byCols);
    DiffCase c;
    c.name = sp.prog->name();
    c.prog = sp.prog;
    auto mData = std::make_shared<std::vector<double>>(
        signedData(R * C, 0xfeedULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
    };
    c.outputs = {{sp.out, sp.outputSize(R, C)}};
    return c;
}

enum class FilterData { Mixed, AllPass, AllReject };

/** Per row: compact the positive entries, store the count, copy the
 *  kept prefix (same shape as nested_varsize_test's rowCompact). The
 *  predicate reads data, so classing must fall back in every variant. */
DiffCase
rowCompactCase(int64_t R, int64_t C, FilterData data)
{
    ProgramBuilder b("rowCompact");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr cnts = b.outF64("counts");
    b.foreach(r, [&](Body &outer, Ex i) {
        Filtered kept = outer.filter(cc, [&](Body &, Ex j) {
            return FilterItem{m(i * cc + j) > 0.0, m(i * cc + j) * 2.0};
        });
        outer.store(cnts, i, kept.count);
        outer.foreach(cc, [&](Body &fn, Ex j) {
            fn.branch(Ex(j) < kept.count, [&](Body &t) {
                t.store(out, i * cc + j, kept.items(j));
            });
        });
    });
    DiffCase c;
    c.name = "rowCompact";
    c.prog = std::make_shared<Program>(b.build());
    auto mData = std::make_shared<std::vector<double>>(
        std::max<int64_t>(R * C, 1));
    Rng rng(21);
    for (auto &x : *mData) {
        const double mag = static_cast<double>(1 + rng.below(100));
        switch (data) {
          case FilterData::Mixed:
            x = rng.below(2) ? mag : -mag;
            break;
          case FilterData::AllPass:
            x = mag;
            break;
          case FilterData::AllReject:
            x = -mag;
            break;
        }
    }
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
    };
    c.outputs = {{out, R * C}, {cnts, R}};
    return c;
}

/** Same compaction shape but the predicate depends only on the inner
 *  index and a launch parameter — identical cursor walk in every block,
 *  so the launch is classable even though the kept *values* differ. */
DiffCase
bandCompactCase(int64_t R, int64_t C)
{
    ProgramBuilder b("bandCompact");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr cnts = b.outF64("counts");
    b.foreach(r, [&](Body &outer, Ex i) {
        Filtered kept = outer.filter(cc, [&](Body &, Ex j) {
            return FilterItem{Ex(j) * 2 < cc, m(i * cc + j) * 2.0};
        });
        outer.store(cnts, i, kept.count);
        outer.foreach(cc, [&](Body &fn, Ex j) {
            fn.branch(Ex(j) < kept.count, [&](Body &t) {
                t.store(out, i * cc + j, kept.items(j));
            });
        });
    });
    DiffCase c;
    c.name = "bandCompact";
    c.prog = std::make_shared<Program>(b.build());
    auto mData =
        std::make_shared<std::vector<double>>(signedData(R * C, 0x5eedULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
    };
    c.outputs = {{out, R * C}, {cnts, R}};
    return c;
}

/** Striped keep pattern (j % 3 == 0) reduced through the kept count —
 *  exercises a class-invariant count var sizing an inner reduce. */
DiffCase
stripedSumCase(int64_t R, int64_t C)
{
    ProgramBuilder b("stripedSum");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Filtered kept = fn.filter(cc, [&](Body &, Ex j) {
            return FilterItem{Ex(j) % 3 == 0, m(i * cc + j)};
        });
        return fn.reduce(kept.count, Op::Add,
                         [&](Body &, Ex j) { return kept.items(j); });
    });
    DiffCase c;
    c.name = "stripedSum";
    c.prog = std::make_shared<Program>(b.build());
    auto mData =
        std::make_shared<std::vector<double>>(signedData(R * C, 0xabcdULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
    };
    c.outputs = {{out, R}};
    return c;
}

/** Per row: histogram with data keys (rowHist shape) — data-dependent
 *  bins, never classable. */
DiffCase
rowHistCase(int64_t R, int64_t C, int64_t K, bool skew)
{
    ProgramBuilder b("rowHist");
    Arr keys = b.inI64("keys");
    Ex r = b.paramI64("R"), cc = b.paramI64("C"), k = b.paramI64("K");
    Arr out = b.outF64("out");
    b.foreach(r, [&](Body &outer, Ex i) {
        Arr hist = outer.groupBy(cc, k, Op::Add, [&](Body &, Ex j) {
            return KeyedValue{keys(i * cc + j), Ex(1.0)};
        });
        outer.foreach(k, [&](Body &fn, Ex g) {
            fn.store(out, i * k + g, hist(g));
        });
    });
    DiffCase c;
    c.name = "rowHist";
    c.prog = std::make_shared<Program>(b.build());
    auto keyData = std::make_shared<std::vector<double>>(R * C);
    Rng rng(33);
    for (auto &x : *keyData)
        x = skew ? 0.0 : static_cast<double>(rng.below(K));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.scalar(k, static_cast<double>(K));
        args.array(keys, *keyData);
    };
    c.outputs = {{out, R * K}};
    return c;
}

/** Cyclic-key histogram: the key is j % K, identical bin walk in every
 *  block, so the groupBy classes; the combined values still read data. */
DiffCase
cyclicHistCase(int64_t R, int64_t C, int64_t K)
{
    ProgramBuilder b("cyclicHist");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C"), k = b.paramI64("K");
    Arr out = b.outF64("out");
    b.foreach(r, [&](Body &outer, Ex i) {
        Arr hist = outer.groupBy(cc, k, Op::Add, [&](Body &, Ex j) {
            return KeyedValue{Ex(j) % k, m(i * cc + j)};
        });
        outer.foreach(k, [&](Body &fn, Ex g) {
            fn.store(out, i * k + g, hist(g));
        });
    });
    DiffCase c;
    c.name = "cyclicHist";
    c.prog = std::make_shared<Program>(b.build());
    auto mData =
        std::make_shared<std::vector<double>>(signedData(R * C, 0x777ULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.scalar(k, static_cast<double>(K));
        args.array(m, *mData);
    };
    c.outputs = {{out, R * K}};
    return c;
}

/** Root-level filter: the compaction cursor threads through every block
 *  of the grid, so classing must always refuse — even with a predicate
 *  that is otherwise class-invariant. */
DiffCase
rootFilterCase(int64_t N)
{
    ProgramBuilder b("rootEvens");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    Arr cnt = b.outF64("cnt");
    b.filter(n, out, cnt, [&](Body &, Ex i) {
        return FilterItem{Ex(i) % 2 == 0, in(i)};
    });
    DiffCase c;
    c.name = "rootEvens";
    c.prog = std::make_shared<Program>(b.build());
    auto data =
        std::make_shared<std::vector<double>>(signedData(N, 0x321ULL));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(n, static_cast<double>(N));
        args.array(in, *data);
    };
    c.outputs = {{out, N}, {cnt, 1}};
    return c;
}

//
// Dense baselines: the originally-classable programs must stay
// bit-identical now that siteStats runs through the classed path too.
//

TEST(ClassedVsFull, DenseSums)
{
    for (const bool byCols : {false, true}) {
        for (const bool weighted : {false, true}) {
            DiffCase c = sumCase(byCols, weighted, 192, 192);
            runDifferential(c);
        }
    }
}

TEST(ClassedVsFull, DenseFixedMappingMergesBlocks)
{
    DiffCase c = sumCase(false, false, 192, 64);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
    EXPECT_GT(rep.stats.classedBlocks, 0);
}

TEST(ClassedVsFull, FormerScatteredAnomalyNowClasses)
{
    // sumWeightedRows at 512^2 used to diverge on a handful of
    // scattered blocks: the old probe hashed (site, signature, tile)
    // into one 64-bit pending-map key, and simultaneously-alive warp
    // groups could collide and merge, inflating segment counts in a
    // block-dependent way. With exact group keys and min-base relative
    // segment counting the per-block traffic is identical everywhere,
    // so the 1/3-spread probe verifies the class and the launch must
    // actually merge — while staying bit-identical to the full run.
    DiffCase c = sumCase(false, /*weighted=*/true, 512, 512);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
    EXPECT_GT(rep.stats.classedBlocks, 0);
}

//
// Variable-size fallback cases: data-dependent cursors and bins.
//

TEST(ClassedVsFull, SumPositivesFallsBackIdentically)
{
    for (const bool byCols : {false, true}) {
        DiffCase c = sumPositivesCase(byCols, 96, 96);
        SimReport rep = runDifferential(c);
        EXPECT_EQ(rep.stats.classedBlocks, 0);
        EXPECT_FALSE(rep.stats.classReason.empty());
    }
}

TEST(ClassedVsFull, DataFilterReasonNamesThePredicate)
{
    DiffCase c = sumPositivesCase(false, 96, 64);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_NE(rep.stats.classReason.find("filter predicate"),
              std::string::npos)
        << rep.stats.classReason;
}

TEST(ClassedVsFull, NestedFilterEdgeCases)
{
    runDifferential(rowCompactCase(24, 50, FilterData::Mixed));
    runDifferential(rowCompactCase(8, 33, FilterData::AllPass));
    runDifferential(rowCompactCase(8, 33, FilterData::AllReject));
    runDifferential(rowCompactCase(0, 16, FilterData::Mixed));
}

TEST(ClassedVsFull, NestedGroupByFallsBackIdentically)
{
    runDifferential(rowHistCase(16, 40, 8, /*skew=*/false));
    runDifferential(rowHistCase(12, 64, 8, /*skew=*/true));
}

TEST(ClassedVsFull, DataGroupByReasonNamesTheKey)
{
    DiffCase c = rowHistCase(96, 32, 8, /*skew=*/false);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_NE(rep.stats.classReason.find("groupBy key"),
              std::string::npos)
        << rep.stats.classReason;
}

//
// Class-invariant variable-size cases: the cursor/bin walk is provably
// identical across blocks, so classing must engage AND stay bit-exact.
//

TEST(ClassedVsFull, InvariantFilterClasses)
{
    DiffCase c = bandCompactCase(192, 64);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
    EXPECT_GT(rep.stats.classedBlocks, 0);
    EXPECT_TRUE(rep.stats.hasCompaction);
    EXPECT_GT(rep.compactionMs, 0.0);
}

TEST(ClassedVsFull, InvariantFilterCountSizesInnerReduce)
{
    DiffCase c = stripedSumCase(192, 66);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
    EXPECT_GT(rep.stats.classedBlocks, 0);
}

TEST(ClassedVsFull, InvariantGroupByClasses)
{
    DiffCase c = cyclicHistCase(192, 64, 8);
    SimReport rep = runDifferential(c, partitionedOuter());
    EXPECT_TRUE(rep.stats.classReason.empty()) << rep.stats.classReason;
    EXPECT_GT(rep.stats.classedBlocks, 0);
}

TEST(ClassedVsFull, InvariantCasesUnderSearchedMappings)
{
    // Same programs under the searched strategies: whatever mapping the
    // search picks, classed and full simulation must agree.
    for (const Strategy strategy : {Strategy::MultiDim, Strategy::OneD}) {
        CompileOptions copts;
        copts.strategy = strategy;
        runDifferential(bandCompactCase(64, 48), copts);
        runDifferential(stripedSumCase(64, 48), copts);
        runDifferential(cyclicHistCase(64, 48, 4), copts);
    }
}

//
// Structural refusals and their surfaced reasons.
//

TEST(ClassedVsFull, RootFilterNeverClasses)
{
    // Differential property under the compiled mapping: the hard span
    // constraint pins a root filter to a span-all (one-block) level, so
    // the launch falls back before the analyzer even runs — classed and
    // full must still agree.
    DiffCase c = rootFilterCase(4096);
    SimReport rep = runDifferential(c);
    EXPECT_EQ(rep.stats.classedBlocks, 0);
    EXPECT_FALSE(rep.stats.classReason.empty());
}

TEST(ClassedVsFull, RootFilterAnalyzerReason)
{
    // The analyzer's own refusal is unreachable through compiled specs
    // (they never partition a root filter), so probe it directly with a
    // hypothetical partitioned geometry: even an index-only predicate
    // must be refused, because the output cursor threads through every
    // block of the grid.
    DiffCase c = rootFilterCase(4096);
    Gpu gpu;
    CompileResult compiled = compileProgram(*c.prog, gpu.config());
    MappingDecision d;
    d.levels = {{0, 64, SpanType::one()}};
    const std::vector<int64_t> sizes = {4096};
    const LaunchGeometry geom = makeGeometry(d, sizes);
    ASSERT_GT(geom.totalBlocks, 2);
    EvalCtx ctx(*c.prog);
    for (const auto &v : c.prog->vars()) {
        if (v.role == VarRole::ScalarParam)
            ctx.scalars[v.id] = 4096.0;
    }
    const BlockClassPlan plan = analyzeBlockClasses(
        compiled.spec, geom, sizes, ctx, gpu.config());
    EXPECT_FALSE(plan.classable);
    EXPECT_NE(plan.reason.find("root filter"), std::string::npos)
        << plan.reason;
}

TEST(ClassedVsFull, SplitSpanReasonSurfaced)
{
    DiffCase c = sumCase(false, false, 13, 517);
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{1, 4, SpanType::one()},
                                 {0, 32, SpanType::split(4)}};
    SimReport rep = runDifferential(c, copts);
    EXPECT_EQ(rep.stats.classedBlocks, 0);
    EXPECT_NE(rep.stats.classReason.find("split span"), std::string::npos)
        << rep.stats.classReason;
}

TEST(ClassedVsFull, ClassReasonExportedInStatsJson)
{
    // The --stats export carries the verdict: a fallback run names its
    // reason, a classed run exports the empty string.
    Gpu gpu;
    DiffCase fallback = sumPositivesCase(false, 96, 64);
    CompileResult compiled = compileProgram(
        *fallback.prog, gpu.config(), partitionedOuter());
    Bindings args(*fallback.prog);
    fallback.bindInputs(args);
    std::vector<std::vector<double>> storage;
    for (const auto &[arr, size] : fallback.outputs) {
        storage.emplace_back(std::max<int64_t>(size, 1), 0.0);
        args.array(arr, storage.back());
    }
    ExecOptions eopts;
    eopts.metricsOnly = true;
    eopts.siteStats = true;
    SimReport rep = gpu.run(compiled.spec, args, eopts);
    const std::string json = rep.toJson(gpu.config().transactionBytes);
    EXPECT_NE(json.find("\"class_reason\":\""), std::string::npos);
    EXPECT_NE(json.find("filter predicate"), std::string::npos) << json;
}

} // namespace
} // namespace npp
