/**
 * @file
 * Shared differential fixture for the block-equivalence-classing suite.
 * A DiffCase (program + synthetic inputs) is compiled once and executed
 * four ways — full (every-block) and classed metrics-only simulation,
 * each with and without per-site attribution — and the full/classed
 * report pairs are asserted bit-identical field by field. The classing
 * diagnostics (classedBlocks, classReason) are the only fields allowed
 * to differ; the fixture returns the classed report so callers can make
 * assertions about them (classing engaged, or failed for the expected
 * reason).
 *
 * The fixture calls compileProgram + Gpu::run directly: those paths are
 * uncached, so every run truly re-simulates (the EvalCache would
 * otherwise replay one mode's report for the other and the comparison
 * would be vacuous).
 */

#ifndef NPP_TESTS_SIM_CLASSED_FIXTURE_H
#define NPP_TESTS_SIM_CLASSED_FIXTURE_H

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/builder.h"
#include "sim/gpu.h"

namespace npp {
namespace difftest {

/** One differential case: a program plus input bindings and the output
 *  arrays it declares (bound but never written — all runs are
 *  metrics-only). */
struct DiffCase
{
    std::string name;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bindInputs;
    std::vector<std::pair<Arr, int64_t>> outputs;
};

/** Field-by-field bitwise comparison of a full-simulation report against
 *  a classed one. Granular EXPECT_EQs so a mismatch names the field that
 *  diverged; the reportsBitIdentical() cross-check guards fields added
 *  to SimReport after this list was written. */
inline void
expectBitIdentical(const SimReport &full, const SimReport &classed,
                   const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(full.totalMs, classed.totalMs);
    EXPECT_EQ(full.computeMs, classed.computeMs);
    EXPECT_EQ(full.memoryMs, classed.memoryMs);
    EXPECT_EQ(full.launchMs, classed.launchMs);
    EXPECT_EQ(full.blockOverheadMs, classed.blockOverheadMs);
    EXPECT_EQ(full.mallocMs, classed.mallocMs);
    EXPECT_EQ(full.combinerMs, classed.combinerMs);
    EXPECT_EQ(full.compactionMs, classed.compactionMs);
    EXPECT_EQ(full.queueBuildMs, classed.queueBuildMs);
    EXPECT_EQ(full.achievedBandwidth, classed.achievedBandwidth);
    EXPECT_EQ(full.residentWarps, classed.residentWarps);
    EXPECT_EQ(full.blocksPerSM, classed.blocksPerSM);
    EXPECT_EQ(full.occupancy, classed.occupancy);
    EXPECT_EQ(full.coalescingEfficiency, classed.coalescingEfficiency);

    const KernelStats &s = full.stats;
    const KernelStats &t = classed.stats;
    EXPECT_EQ(s.warpInstructions, t.warpInstructions);
    EXPECT_EQ(s.transactions, t.transactions);
    EXPECT_EQ(s.usefulBytes, t.usefulBytes);
    EXPECT_EQ(s.smemAccesses, t.smemAccesses);
    EXPECT_EQ(s.syncs, t.syncs);
    EXPECT_EQ(s.mallocs, t.mallocs);
    EXPECT_EQ(s.totalBlocks, t.totalBlocks);
    EXPECT_EQ(s.threadsPerBlock, t.threadsPerBlock);
    EXPECT_EQ(s.sharedMemPerBlock, t.sharedMemPerBlock);
    EXPECT_EQ(s.hasCombiner, t.hasCombiner);
    EXPECT_EQ(s.combinerTransactions, t.combinerTransactions);
    EXPECT_EQ(s.combinerOps, t.combinerOps);
    EXPECT_EQ(s.combinerThreads, t.combinerThreads);
    EXPECT_EQ(s.hasCompaction, t.hasCompaction);
    EXPECT_EQ(s.compactionTransactions, t.compactionTransactions);
    EXPECT_EQ(s.compactionOps, t.compactionOps);
    EXPECT_EQ(s.compactionThreads, t.compactionThreads);
    EXPECT_EQ(s.hasConsolidation, t.hasConsolidation);
    EXPECT_EQ(s.queueBuildTransactions, t.queueBuildTransactions);
    EXPECT_EQ(s.queueBuildOps, t.queueBuildOps);
    EXPECT_EQ(s.queueBuildThreads, t.queueBuildThreads);
    EXPECT_EQ(s.consolidationGroups, t.consolidationGroups);
    EXPECT_EQ(s.consolidationParents, t.consolidationParents);
    EXPECT_EQ(s.consolidationEntries, t.consolidationEntries);
    EXPECT_EQ(s.consolidationWaves, t.consolidationWaves);
    EXPECT_EQ(s.binFill, t.binFill);
    EXPECT_EQ(s.sampledFraction, t.sampledFraction);

    ASSERT_EQ(s.siteTraffic.size(), t.siteTraffic.size());
    for (size_t i = 0; i < s.siteTraffic.size(); i++) {
        SCOPED_TRACE("site index " + std::to_string(i));
        EXPECT_EQ(s.siteTraffic[i].site, t.siteTraffic[i].site);
        EXPECT_EQ(s.siteTraffic[i].transactions,
                  t.siteTraffic[i].transactions);
        EXPECT_EQ(s.siteTraffic[i].usefulBytes,
                  t.siteTraffic[i].usefulBytes);
        EXPECT_EQ(s.siteTraffic[i].accesses, t.siteTraffic[i].accesses);
    }

    EXPECT_TRUE(reportsBitIdentical(full, classed))
        << "reports differ in a field not covered above";
}

/** Run the case once in the given mode. Bindings are rebuilt per run
 *  (cheap) so no run can observe another's state. */
inline SimReport
runMode(const Gpu &gpu, const KernelSpec &spec, const DiffCase &c,
        std::vector<std::vector<double>> &outStorage, bool classed,
        bool sites)
{
    Bindings args(*c.prog);
    c.bindInputs(args);
    for (size_t i = 0; i < c.outputs.size(); i++)
        args.array(c.outputs[i].first, outStorage[i]);
    ExecOptions eopts;
    eopts.metricsOnly = true;
    eopts.blockClasses = classed;
    eopts.siteStats = sites;
    return gpu.run(spec, args, eopts);
}

/** The differential harness: compile once, simulate full vs classed with
 *  and without per-site attribution, assert both pairs bit-identical.
 *  Returns the classed (aggregate) report for classedBlocks/classReason
 *  assertions. */
inline SimReport
runDifferential(const DiffCase &c, const CompileOptions &copts = {})
{
    SCOPED_TRACE(c.name);
    Gpu gpu;
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);

    std::vector<std::vector<double>> outStorage;
    for (const auto &[arr, size] : c.outputs)
        outStorage.emplace_back(std::max<int64_t>(size, 1), 0.0);

    SimReport classedAggregate;
    for (const bool sites : {false, true}) {
        const SimReport full =
            runMode(gpu, compiled.spec, c, outStorage, false, sites);
        const SimReport classed =
            runMode(gpu, compiled.spec, c, outStorage, true, sites);
        expectBitIdentical(full, classed,
                           sites ? "with siteStats" : "aggregate only");
        // Full simulation must never report classing activity.
        EXPECT_EQ(full.stats.classedBlocks, 0);
        EXPECT_FALSE(full.stats.classReason.empty());
        if (!sites)
            classedAggregate = classed;
        else
            EXPECT_EQ(classed.stats.classReason,
                      classedAggregate.stats.classReason)
                << "siteStats changed the classing verdict";
    }
    return classedAggregate;
}

} // namespace difftest
} // namespace npp

#endif // NPP_TESTS_SIM_CLASSED_FIXTURE_H
