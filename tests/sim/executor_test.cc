/**
 * @file
 * Integration tests for the GPU-simulator executor: for every mapping
 * strategy, the mapped execution must produce exactly the same outputs as
 * the sequential reference interpreter — the core correctness invariant
 * of the whole compilation pipeline.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

/** A reusable program-under-test with its bindings and outputs. */
struct Case
{
    std::string name;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bindInputs;
    std::vector<std::pair<Arr, int64_t>> outputs; // array handle + size
};

/** Run `prog` on the reference and on the simulator; compare outputs. */
void
expectEquivalentOpts(const Case &c, const CompileOptions &copts,
                     double tolerance)
{
    Gpu gpu;

    // Reference run.
    std::vector<std::vector<double>> refOut;
    {
        Bindings args(*c.prog);
        c.bindInputs(args);
        refOut.reserve(c.outputs.size());
        for (const auto &[arr, size] : c.outputs) {
            refOut.emplace_back(size, 0.0);
        }
        for (size_t i = 0; i < c.outputs.size(); i++)
            args.array(c.outputs[i].first, refOut[i]);
        ReferenceInterp().run(*c.prog, args);
    }

    // Simulated run.
    std::vector<std::vector<double>> simOut;
    {
        Bindings args(*c.prog);
        c.bindInputs(args);
        simOut.reserve(c.outputs.size());
        for (const auto &[arr, size] : c.outputs)
            simOut.emplace_back(size, 0.0);
        for (size_t i = 0; i < c.outputs.size(); i++)
            args.array(c.outputs[i].first, simOut[i]);
        gpu.compileAndRun(*c.prog, args, copts);
    }

    for (size_t i = 0; i < c.outputs.size(); i++) {
        EXPECT_LE(maxRelDiff(refOut[i], simOut[i]), tolerance)
            << c.name << " output " << i << " under "
            << strategyName(copts.strategy);
    }
}

void
expectEquivalent(const Case &c, Strategy strategy, double tolerance = 1e-9)
{
    CompileOptions copts;
    copts.strategy = strategy;
    expectEquivalentOpts(c, copts, tolerance);
}

void
expectEquivalentFixed(const Case &c, const MappingDecision &decision,
                      double tolerance = 1e-9)
{
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = decision;
    expectEquivalentOpts(c, copts, tolerance);
}

//
// Shared inputs
//

std::vector<double> &
sharedMatrix(int64_t n)
{
    static std::vector<double> m;
    if (static_cast<int64_t>(m.size()) < n) {
        Rng rng(42);
        m.resize(n);
        for (auto &v : m)
            v = rng.uniform(-1, 1);
    }
    return m;
}

Case
sumRowsCase(int64_t R, int64_t C)
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(cc, Op::Add,
                         [&](Body &, Ex j) { return m(i * cc + j); });
    });
    Case c;
    c.name = "sumRows";
    c.prog = std::make_shared<Program>(b.build());
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, sharedMatrix(R * C));
    };
    c.outputs = {{out, R}};
    return c;
}

Case
sumColsCase(int64_t R, int64_t C)
{
    ProgramBuilder b("sumCols");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(cc, out, [&](Body &fn, Ex j) {
        return fn.reduce(r, Op::Add,
                         [&](Body &, Ex i) { return m(i * cc + j); });
    });
    Case c;
    c.name = "sumCols";
    c.prog = std::make_shared<Program>(b.build());
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, sharedMatrix(R * C));
    };
    c.outputs = {{out, C}};
    return c;
}

Case
weightedCase(int64_t R, int64_t C)
{
    // Fig 15: zipWith into a local temp, reduce the temp.
    ProgramBuilder b("sumWeightedRows");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            cc, [&](Body &, Ex j) { return m(i * cc + j) * v(j); });
        return fn.reduce(cc, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Case c;
    c.name = "sumWeightedRows";
    c.prog = std::make_shared<Program>(b.build());
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, sharedMatrix(R * C));
        static std::vector<double> w;
        if (static_cast<int64_t>(w.size()) != C) {
            w.assign(C, 0.0);
            Rng rng(7);
            for (auto &x : w)
                x = rng.uniform(0, 2);
        }
        args.array(v, w);
    };
    c.outputs = {{out, R}};
    return c;
}

Case
csrCase()
{
    // Dynamic inner sizes (graph-shaped).
    ProgramBuilder b("segSum");
    Arr start = b.inI64("start");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex begin = fn.let("begin", start(i));
        Ex cnt = fn.let("cnt", start(i + 1) - begin);
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex j) { return vals(begin + j); });
    });
    Case c;
    c.name = "segSum";
    c.prog = std::make_shared<Program>(b.build());
    const int64_t nodes = 300;
    c.bindInputs = [=](Bindings &args) {
        static std::vector<double> startData, valsData;
        if (startData.empty()) {
            Rng rng(3);
            startData.push_back(0);
            for (int64_t i = 0; i < nodes; i++) {
                startData.push_back(startData.back() +
                                    static_cast<double>(rng.below(70)));
            }
            valsData.resize(static_cast<size_t>(startData.back()));
            for (auto &v : valsData)
                v = rng.uniform(-1, 1);
        }
        args.scalar(n, nodes);
        args.array(start, startData);
        args.array(vals, valsData);
    };
    c.outputs = {{out, nodes}};
    return c;
}

Case
mandelCase()
{
    // Sequential escape-time loop inside a 2-level nest; the map over
    // rows yields the per-row sum of iteration counts.
    ProgramBuilder b2("mandel");
    Ex h2 = b2.paramI64("H"), w2 = b2.paramI64("W");
    Arr out2 = b2.outF64("out");
    b2.map(h2, out2, [&](Body &fn, Ex y) {
        return fn.reduce(w2, Op::Add, [&](Body &inner, Ex x) {
            Ex cr = inner.let("cr", (Ex(x) * 3.5) / w2 - 2.5);
            Ex ci = inner.let("ci", (Ex(y) * 2.0) / h2 - 1.0);
            Mut zr = inner.mut("zr", Ex(0.0));
            Mut zi = inner.mut("zi", Ex(0.0));
            Mut steps = inner.mut("steps", Ex(0.0));
            inner.seqLoop(
                Ex(32),
                [&](Body &body, Ex) {
                    Ex nzr = body.let("nzr",
                                      zr.ex() * zr.ex() -
                                          zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi",
                                      zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            return steps.ex();
        });
    });
    Case c;
    c.name = "mandel";
    c.prog = std::make_shared<Program>(b2.build());
    c.bindInputs = [=](Bindings &args) {
        args.scalar(h2, 40);
        args.scalar(w2, 120);
    };
    c.outputs = {{out2, 40}};
    return c;
}

//
// Parameterized over mapping strategies.
//

class StrategyEquivalence
    : public ::testing::TestWithParam<Strategy>
{};

TEST_P(StrategyEquivalence, SumRowsSquare)
{
    expectEquivalent(sumRowsCase(64, 96), GetParam());
}

TEST_P(StrategyEquivalence, SumRowsSkewedWide)
{
    expectEquivalent(sumRowsCase(8, 2048), GetParam());
}

TEST_P(StrategyEquivalence, SumRowsSkewedTall)
{
    expectEquivalent(sumRowsCase(2048, 8), GetParam());
}

TEST_P(StrategyEquivalence, SumCols)
{
    expectEquivalent(sumColsCase(96, 64), GetParam());
}

TEST_P(StrategyEquivalence, WeightedWithLocalArray)
{
    expectEquivalent(weightedCase(48, 130), GetParam());
}

TEST_P(StrategyEquivalence, DynamicInnerSizes)
{
    expectEquivalent(csrCase(), GetParam());
}

TEST_P(StrategyEquivalence, EscapeTimeLoop)
{
    expectEquivalent(mandelCase(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalence,
    ::testing::Values(Strategy::MultiDim, Strategy::OneD,
                      Strategy::ThreadBlockThread, Strategy::WarpBased),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::MultiDim: return "MultiDim";
          case Strategy::OneD: return "OneD";
          case Strategy::ThreadBlockThread: return "ThreadBlockThread";
          case Strategy::WarpBased: return "WarpBased";
          default: return "Fixed";
        }
    });

//
// Fixed-mapping sweep: a grid of handwritten mappings must all agree
// with the reference (property-style hard-constraint coverage).
//

TEST(FixedMappingSweep, SumRowsManyMappings)
{
    Case c = sumRowsCase(40, 70);
    const DeviceConfig dev = teslaK20c();
    AnalysisEnv env;
    env.prog = c.prog.get();
    ConstraintSet cs = buildConstraints(*c.prog, env, dev);
    MappingSearch search(dev);

    int tested = 0;
    for (int outerDim : {0, 1}) {
        for (int64_t outerBs : {1, 8, 64}) {
            for (int64_t innerBs : {1, 32, 128}) {
                for (int64_t split : {0, 3}) {
                    MappingDecision d;
                    d.levels.resize(2);
                    d.levels[0] = {outerDim, outerBs, SpanType::one()};
                    d.levels[1] = {outerDim == 0 ? 1 : 0, innerBs,
                                   split ? SpanType::split(split)
                                         : SpanType::all()};
                    if (!search.feasible(d, cs))
                        continue;
                    tested++;
                    expectEquivalentFixed(c, d);
                }
            }
        }
    }
    EXPECT_GT(tested, 8);
}

//
// Filter and GroupBy equivalence under their (span-all) mappings.
//

TEST(RootPatterns, FilterMatchesReference)
{
    ProgramBuilder b("positives");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    Arr cnt = b.outF64("count");
    b.filter(n, out, cnt, [&](Body &, Ex i) {
        return FilterItem{in(i) > 0.0, in(i) * 3.0};
    });
    auto prog = std::make_shared<Program>(b.build());

    const int64_t N = 1000;
    Rng rng(5);
    std::vector<double> inData(N);
    for (auto &v : inData)
        v = rng.uniform(-1, 1);

    std::vector<double> refOut(N, 0.0), refCnt(1, 0.0);
    std::vector<double> simOut(N, 0.0), simCnt(1, 0.0);

    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(in, inData);
        args.array(out, refOut);
        args.array(cnt, refCnt);
        ReferenceInterp().run(*prog, args);
    }
    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(in, inData);
        args.array(out, simOut);
        args.array(cnt, simCnt);
        Gpu().compileAndRun(*prog, args);
    }
    EXPECT_DOUBLE_EQ(refCnt[0], simCnt[0]);
    EXPECT_LE(maxAbsDiff(refOut, simOut), 0.0) << "order must match";
}

TEST(RootPatterns, GroupByMatchesReference)
{
    ProgramBuilder b("hist");
    Arr keys = b.inI64("keys");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), vals(i)};
    });
    auto prog = std::make_shared<Program>(b.build());

    const int64_t N = 4000, K = 16;
    Rng rng(9);
    std::vector<double> keyData(N), valData(N);
    for (int64_t i = 0; i < N; i++) {
        keyData[i] = static_cast<double>(rng.below(K));
        valData[i] = rng.uniform(0, 1);
    }
    std::vector<double> refOut(K), simOut(K);
    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(keys, keyData);
        args.array(vals, valData);
        args.array(out, refOut);
        ReferenceInterp().run(*prog, args);
    }
    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(keys, keyData);
        args.array(vals, valData);
        args.array(out, simOut);
        Gpu().compileAndRun(*prog, args);
    }
    EXPECT_LE(maxRelDiff(refOut, simOut), 1e-9);
}

TEST(RootPatterns, RootReduceMatchesReference)
{
    ProgramBuilder b("dot");
    Arr a = b.inF64("a");
    Arr c = b.inF64("c");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Add, out,
             [&](Body &, Ex i) { return a(i) * c(i); });
    auto prog = std::make_shared<Program>(b.build());

    const int64_t N = 100000;
    Rng rng(13);
    std::vector<double> aData(N), cData(N);
    for (int64_t i = 0; i < N; i++) {
        aData[i] = rng.uniform(-1, 1);
        cData[i] = rng.uniform(-1, 1);
    }
    std::vector<double> refOut(1), simOut(1);
    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(a, aData);
        args.array(c, cData);
        args.array(out, refOut);
        ReferenceInterp().run(*prog, args);
    }
    SimReport report;
    {
        Bindings args(*prog);
        args.scalar(n, N);
        args.array(a, aData);
        args.array(c, cData);
        args.array(out, simOut);
        report = Gpu().compileAndRun(*prog, args);
    }
    EXPECT_NEAR(refOut[0], simOut[0], 1e-7);
    // A 100K root reduce must be split for DOP (13*2048 min).
    EXPECT_TRUE(report.stats.hasCombiner);
}

} // namespace
} // namespace npp
