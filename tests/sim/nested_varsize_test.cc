/**
 * @file
 * Parity and edge-case tests for variable-size nested outputs: nested
 * Filter (compaction) and nested GroupBy (key-domain bins). The mapped
 * execution must produce exactly the same bytes as the sequential
 * reference interpreter under every strategy and fixed mapping, and the
 * compaction finalize stage must show up in the report. Also holds the
 * sampled-vs-full traffic regression (the extrapolation used to
 * double-scale useful bytes).
 */

#include <gtest/gtest.h>

#include "codegen/cuda_emit.h"
#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

struct Case
{
    std::string name;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bindInputs;
    std::vector<std::pair<Arr, int64_t>> outputs;
};

/** Run reference and simulator; outputs must agree within tolerance
 *  (0.0 = bit parity). Returns the simulator report for stat checks. */
SimReport
expectParityOpts(const Case &c, const CompileOptions &copts,
                 double tolerance)
{
    Gpu gpu;
    std::vector<std::vector<double>> refOut;
    {
        Bindings args(*c.prog);
        c.bindInputs(args);
        for (const auto &[arr, size] : c.outputs)
            refOut.emplace_back(size, 0.0);
        for (size_t i = 0; i < c.outputs.size(); i++)
            args.array(c.outputs[i].first, refOut[i]);
        ReferenceInterp().run(*c.prog, args);
    }
    std::vector<std::vector<double>> simOut;
    SimReport report;
    {
        Bindings args(*c.prog);
        c.bindInputs(args);
        for (const auto &[arr, size] : c.outputs)
            simOut.emplace_back(size, 0.0);
        for (size_t i = 0; i < c.outputs.size(); i++)
            args.array(c.outputs[i].first, simOut[i]);
        report = gpu.compileAndRun(*c.prog, args, copts);
    }
    for (size_t i = 0; i < c.outputs.size(); i++) {
        EXPECT_LE(maxAbsDiff(refOut[i], simOut[i]), tolerance)
            << c.name << " output " << i << " under "
            << strategyName(copts.strategy);
    }
    return report;
}

SimReport
expectParity(const Case &c, Strategy strategy, double tolerance = 0.0)
{
    CompileOptions copts;
    copts.strategy = strategy;
    return expectParityOpts(c, copts, tolerance);
}

//
// Cases. Values are chosen to be exact in double arithmetic (small
// integers), so parity is bit-for-bit no matter how lanes interleave
// the combining order.
//

enum class FilterData { Mixed, AllPass, AllReject };

std::vector<double>
filterMatrix(int64_t n, FilterData data)
{
    std::vector<double> m(n);
    Rng rng(21);
    for (int64_t i = 0; i < n; i++) {
        const double mag = static_cast<double>(1 + rng.below(100));
        switch (data) {
          case FilterData::Mixed:
            m[i] = rng.below(2) ? mag : -mag;
            break;
          case FilterData::AllPass:
            m[i] = mag;
            break;
          case FilterData::AllReject:
            m[i] = -mag;
            break;
        }
    }
    return m;
}

/** Per row: compact the positive entries, then copy the kept prefix and
 *  its length out. Every store lands at a distinct address, so the
 *  compacted order (and the per-row counts) are directly observable
 *  bit-for-bit in the outputs. */
Case
nestedFilterCase(int64_t R, int64_t C, FilterData data)
{
    ProgramBuilder b("rowCompact");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr cnts = b.outF64("counts");
    b.foreach(r, [&](Body &outer, Ex i) {
        Filtered kept = outer.filter(cc, [&](Body &, Ex j) {
            return FilterItem{m(i * cc + j) > 0.0, m(i * cc + j) * 2.0};
        });
        outer.store(cnts, i, kept.count);
        outer.foreach(cc, [&](Body &fn, Ex j) {
            fn.branch(Ex(j) < kept.count, [&](Body &t) {
                t.store(out, i * cc + j, kept.items(j));
            });
        });
    });
    Case c;
    c.name = "rowCompact";
    c.prog = std::make_shared<Program>(b.build());
    // At least one element so the binding layer accepts the array even
    // in the empty-outer edge case.
    auto mData = std::make_shared<std::vector<double>>(
        filterMatrix(std::max<int64_t>(R * C, 1), data));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
    };
    c.outputs = {{out, std::max<int64_t>(R * C, 1)},
                 {cnts, std::max<int64_t>(R, 1)}};
    return c;
}

/** Per row: histogram the row's keys into a key-domain-sized local, then
 *  copy the bins out. Integer-valued adds keep every combining order
 *  exact. `skew` sends every key to bin 0. */
Case
nestedGroupByCase(int64_t R, int64_t C, int64_t K, bool skew)
{
    ProgramBuilder b("rowHist");
    Arr keys = b.inI64("keys");
    Ex r = b.paramI64("R"), cc = b.paramI64("C"), k = b.paramI64("K");
    Arr out = b.outF64("out");
    b.foreach(r, [&](Body &outer, Ex i) {
        Arr hist = outer.groupBy(cc, k, Op::Add, [&](Body &, Ex j) {
            return KeyedValue{keys(i * cc + j), Ex(1.0)};
        });
        outer.foreach(k, [&](Body &fn, Ex g) {
            fn.store(out, i * k + g, hist(g));
        });
    });
    Case c;
    c.name = "rowHist";
    c.prog = std::make_shared<Program>(b.build());
    auto keyData = std::make_shared<std::vector<double>>(R * C);
    Rng rng(33);
    for (auto &x : *keyData)
        x = skew ? 0.0 : static_cast<double>(rng.below(K));
    c.bindInputs = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.scalar(k, static_cast<double>(K));
        args.array(keys, *keyData);
    };
    c.outputs = {{out, R * K}};
    return c;
}

//
// Strategy sweep: nested Filter / GroupBy must be bit-identical to the
// reference under every mapping strategy, including the locality-aware
// searched mapping (MultiDim).
//

class VarSizeStrategy : public ::testing::TestWithParam<Strategy>
{};

TEST_P(VarSizeStrategy, NestedFilterMixed)
{
    expectParity(nestedFilterCase(24, 50, FilterData::Mixed), GetParam());
}

TEST_P(VarSizeStrategy, NestedFilterAllPass)
{
    expectParity(nestedFilterCase(8, 33, FilterData::AllPass), GetParam());
}

TEST_P(VarSizeStrategy, NestedFilterAllReject)
{
    expectParity(nestedFilterCase(8, 33, FilterData::AllReject),
                 GetParam());
}

TEST_P(VarSizeStrategy, NestedFilterEmptyOuter)
{
    expectParity(nestedFilterCase(0, 16, FilterData::Mixed), GetParam());
}

TEST_P(VarSizeStrategy, NestedGroupBy)
{
    expectParity(nestedGroupByCase(16, 40, 8, /*skew=*/false), GetParam());
}

TEST_P(VarSizeStrategy, NestedGroupBySkewedKeys)
{
    expectParity(nestedGroupByCase(12, 64, 8, /*skew=*/true), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, VarSizeStrategy,
    ::testing::Values(Strategy::MultiDim, Strategy::OneD,
                      Strategy::ThreadBlockThread, Strategy::WarpBased),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::MultiDim: return "MultiDim";
          case Strategy::OneD: return "OneD";
          case Strategy::ThreadBlockThread: return "ThreadBlockThread";
          case Strategy::WarpBased: return "WarpBased";
          default: return "Fixed";
        }
    });

//
// Fixed-mapping sweep, as in executor_test's SumRowsManyMappings: every
// feasible handwritten mapping must agree bit-for-bit.
//

TEST(VarSizeFixedSweep, NestedFilterManyMappings)
{
    Case c = nestedFilterCase(20, 40, FilterData::Mixed);
    const DeviceConfig dev = teslaK20c();
    AnalysisEnv env;
    env.prog = c.prog.get();
    ConstraintSet cs = buildConstraints(*c.prog, env, dev);
    MappingSearch search(dev);

    int tested = 0;
    for (int outerDim : {0, 1}) {
        for (int64_t outerBs : {1, 8, 64}) {
            for (int64_t innerBs : {1, 32, 128}) {
                MappingDecision d;
                d.levels.resize(2);
                d.levels[0] = {outerDim, outerBs, SpanType::one()};
                d.levels[1] = {outerDim == 0 ? 1 : 0, innerBs,
                               SpanType::all()};
                if (!search.feasible(d, cs))
                    continue;
                tested++;
                CompileOptions copts;
                copts.strategy = Strategy::Fixed;
                copts.fixedMapping = d;
                expectParityOpts(c, copts, 0.0);
            }
        }
    }
    EXPECT_GT(tested, 8);
}

TEST(VarSizeFixedSweep, NestedGroupByManyMappings)
{
    Case c = nestedGroupByCase(10, 30, 4, /*skew=*/false);
    const DeviceConfig dev = teslaK20c();
    AnalysisEnv env;
    env.prog = c.prog.get();
    ConstraintSet cs = buildConstraints(*c.prog, env, dev);
    MappingSearch search(dev);

    int tested = 0;
    for (int outerDim : {0, 1}) {
        for (int64_t outerBs : {1, 8, 64}) {
            for (int64_t innerBs : {1, 32, 128}) {
                MappingDecision d;
                d.levels.resize(2);
                d.levels[0] = {outerDim, outerBs, SpanType::one()};
                d.levels[1] = {outerDim == 0 ? 1 : 0, innerBs,
                               SpanType::all()};
                if (!search.feasible(d, cs))
                    continue;
                tested++;
                CompileOptions copts;
                copts.strategy = Strategy::Fixed;
                copts.fixedMapping = d;
                expectParityOpts(c, copts, 0.0);
            }
        }
    }
    EXPECT_GT(tested, 8);
}

//
// The compaction finalize stage must be modeled and exported.
//

TEST(VarSizeReport, CompactionStageCharged)
{
    Case c = nestedFilterCase(24, 50, FilterData::Mixed);
    SimReport report = expectParity(c, Strategy::MultiDim);
    EXPECT_TRUE(report.stats.hasCompaction);
    EXPECT_GT(report.stats.compactionTransactions, 0.0);
    EXPECT_GT(report.stats.compactionOps, 0.0);
    EXPECT_GT(report.stats.compactionThreads, 0);
    EXPECT_GT(report.compactionMs, 0.0);
    EXPECT_GE(report.totalMs, report.compactionMs);

    // A program without a nested filter must not pay for the stage.
    Case g = nestedGroupByCase(8, 24, 4, false);
    SimReport greport = expectParity(g, Strategy::MultiDim);
    EXPECT_FALSE(greport.stats.hasCompaction);
    EXPECT_DOUBLE_EQ(greport.compactionMs, 0.0);
}

TEST(VarSizeReport, EmitterProducesCompactKernel)
{
    Case c = nestedFilterCase(6, 20, FilterData::Mixed);
    Gpu gpu;
    CompileResult res = compileProgram(*c.prog, gpu.config());
    const std::string cuda = emitCuda(res.spec);
    EXPECT_NE(cuda.find("rowCompact_compact_"), std::string::npos)
        << "missing compaction finalize kernel:\n"
        << cuda;
    EXPECT_NE(cuda.find("__block_excl_scan"), std::string::npos)
        << "missing in-kernel compaction scan:\n"
        << cuda;

    Case g = nestedGroupByCase(6, 20, 4, false);
    CompileResult gres = compileProgram(*g.prog, gpu.config());
    const std::string gcuda = emitCuda(gres.spec);
    EXPECT_NE(gcuda.find("// nested groupBy"), std::string::npos);
    EXPECT_EQ(gcuda.find("_compact_"), std::string::npos)
        << "groupBy alone must not emit a compaction kernel";
}

//
// Sampled-block extrapolation regression: coalescing efficiency derives
// from useful bytes, which are accrued exactly on every block; the
// extrapolation of the sampled traffic must not rescale them. Before the
// fix they were double-scaled whenever the launch exceeded
// maxSampledBlocks, inflating efficiency by ~1/sampledFraction.
//

TEST(SampledTraffic, CoalescingEfficiencyMatchesFullSim)
{
    // Strided reads (column sums) so efficiency is well below 1, and a
    // fixed outer mapping with enough blocks to trigger sampling. C is a
    // multiple of the block size so every block carries identical
    // traffic and the extrapolation itself is exact — any mismatch is a
    // scaling bug, not sampling error.
    const int64_t R = 6, C = 2048 * 64;
    ProgramBuilder b("sumColsBig");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(cc, out, [&](Body &fn, Ex j) {
        return fn.reduce(r, Op::Add,
                         [&](Body &, Ex i) { return m(i * cc + j); });
    });
    auto prog = std::make_shared<Program>(b.build());

    std::vector<double> mData(R * C);
    Rng rng(17);
    for (auto &v : mData)
        v = rng.uniform(-1, 1);

    MappingDecision d;
    d.levels.resize(2);
    d.levels[0] = {0, 64, SpanType::one()}; // ceil(100000/64) blocks
    d.levels[1] = {1, 1, SpanType::all()};
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = d;

    const auto runWith = [&](int64_t maxSampledBlocks) {
        Gpu gpu;
        std::vector<double> outData(C, 0.0);
        Bindings args(*prog);
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, mData);
        args.array(out, outData);
        ExecOptions eopts;
        eopts.maxSampledBlocks = maxSampledBlocks;
        return gpu.compileAndRun(*prog, args, copts, eopts);
    };

    const SimReport sampled = runWith(256);
    const SimReport full = runWith(1 << 30);

    ASSERT_LT(sampled.stats.sampledFraction, 1.0)
        << "test must actually exercise the sampling path";
    EXPECT_DOUBLE_EQ(full.stats.sampledFraction, 1.0);
    EXPECT_GT(sampled.coalescingEfficiency, 0.0);
    EXPECT_LT(sampled.coalescingEfficiency, 1.0);
    EXPECT_NEAR(sampled.coalescingEfficiency, full.coalescingEfficiency,
                1e-6);
    // Useful bytes are whole-grid exact in both runs: R*C reads plus C
    // output stores of 8 bytes each.
    EXPECT_DOUBLE_EQ(sampled.stats.usefulBytes, full.stats.usefulBytes);
}

} // namespace
} // namespace npp
