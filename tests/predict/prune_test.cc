/**
 * @file
 * The oracle-preserving pruning differential: for every demo program,
 * a model-guided pruned sweep must select the same mapping — at the
 * same bit-identical simulated time — as the full sweep, while actually
 * pruning candidates. Also pins the safety rails: the score choice
 * always survives pruning, a sweep without a model falls back to full
 * evaluation, and the harvest observer records exactly the genuinely
 * simulated evaluations (never cache hits).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <string>

#include "codegen/compile.h"
#include "predict/predict.h"
#include "server/programs.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"

using namespace npp;

namespace {

/** Small instances of every demo program: the sweep differential is
 *  about candidate ordering, not figure-scale sizes. */
const std::map<std::string, std::map<std::string, int64_t>> kPrograms = {
    {"sumrows", {{"rows", 256}, {"cols", 256}}},
    {"sumcols", {{"rows", 256}, {"cols", 256}}},
    {"weightedrows", {{"rows", 256}, {"cols", 256}}},
    {"weightedcols", {{"rows", 256}, {"cols", 256}}},
    {"pagerank", {{"nodes", 512}}},
    {"mandelbrot", {{"height", 64}, {"width", 128}}},
    {"spmv", {{"rows", 256}, {"avgdeg", 8}}},
};

class PredictPruneTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/nppprn_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        EvalCache::instance().clear();
    }

    void
    TearDown() override
    {
        // The runtime and observer are process-global: detach them so
        // later tests (and other fixtures) see a clean slate.
        PredictRuntime::instance().setSampleDir("");
        PredictRuntime::instance().setModel(std::nullopt);
        PredictRuntime::instance().setEnabled(false, kPredictDefaultTopK);
        EvalCache::instance().clear();
        const std::string cmd = "rm -rf '" + dir_ + "'";
        (void)!std::system(cmd.c_str());
    }

    std::string dir_;
};

CompileOptions
optionsFor(const DemoProgram &demo)
{
    CompileOptions copts;
    copts.paramValues = demo.params;
    copts.fuseMapReduce = demo.fuse;
    return copts;
}

TEST_F(PredictPruneTest, PrunedSweepMatchesFullSweepOnEveryDemoProgram)
{
    Gpu gpu;
    PredictRuntime::instance().setSampleDir(dir_);

    // Phase 1: full sweeps (no model) — these both establish the ground
    // truth and harvest the training pairs through the eval observer.
    std::map<std::string, PredictSweep> full;
    for (const auto &[name, sizes] : kPrograms) {
        std::string error;
        std::unique_ptr<DemoProgram> demo =
            buildDemoProgram(name, sizes, &error);
        ASSERT_NE(demo, nullptr) << name << ": " << error;
        Bindings args(*demo->prog);
        demo->bind(args);
        full[name] = predictiveSweep(gpu, *demo->prog, args,
                                     optionsFor(*demo), nullptr,
                                     kPredictDefaultTopK);
        EXPECT_FALSE(full[name].usedModel);
        EXPECT_EQ(full[name].pruned, 0);
    }
    PredictRuntime::instance().setSampleDir("");

    // Phase 2: train on the harvest.
    SampleLoadStats loadStats;
    const std::vector<PredictSample> samples =
        loadPredictSamples(dir_, &loadStats);
    ASSERT_GT(samples.size(), 0u);
    EXPECT_EQ(loadStats.rejected, 0u);
    const std::optional<PredictModel> model = trainPredictModel(samples);
    ASSERT_TRUE(model.has_value());

    // Phase 3: pruned sweeps must agree with the full ground truth —
    // same selected mapping, bit-identical best time — while really
    // pruning. The eval cache stays warm from phase 1, which is fine:
    // cache replays are bit-identical to simulation by contract.
    for (const auto &[name, sizes] : kPrograms) {
        std::string error;
        std::unique_ptr<DemoProgram> demo =
            buildDemoProgram(name, sizes, &error);
        ASSERT_NE(demo, nullptr) << name;
        Bindings args(*demo->prog);
        demo->bind(args);
        const PredictSweep pruned =
            predictiveSweep(gpu, *demo->prog, args, optionsFor(*demo),
                            &*model, kPredictDefaultTopK);
        EXPECT_TRUE(pruned.usedModel) << name;
        EXPECT_GT(pruned.pruned, 0) << name;
        EXPECT_LT(pruned.survivors,
                  static_cast<int64_t>(pruned.candidates.size()))
            << name;
        EXPECT_TRUE(pruned.best == full[name].best)
            << name << ": pruned=" << pruned.best.toString()
            << " full=" << full[name].best.toString();
        EXPECT_EQ(pruned.bestMs, full[name].bestMs) << name;
        // The score choice must always survive pruning (the sweep can
        // never do worse than Algorithm 1 alone).
        ASSERT_FALSE(pruned.candidates.empty());
        EXPECT_TRUE(pruned.candidates[0].isScoreChoice);
        EXPECT_TRUE(pruned.candidates[0].survived) << name;
    }
}

TEST_F(PredictPruneTest, RuntimeWithoutModelFallsBackToFullSweep)
{
    Gpu gpu;
    PredictRuntime &rt = PredictRuntime::instance();
    rt.setModel(std::nullopt);
    rt.setEnabled(true, kPredictDefaultTopK);

    std::string error;
    std::unique_ptr<DemoProgram> demo = buildDemoProgram(
        "sumrows", {{"rows", 128}, {"cols", 128}}, &error);
    ASSERT_NE(demo, nullptr);
    Bindings args(*demo->prog);
    demo->bind(args);
    const PredictSweep sweep =
        rt.sweep(gpu, *demo->prog, args, optionsFor(*demo));
    EXPECT_FALSE(sweep.usedModel);
    EXPECT_EQ(sweep.fallbackReason, "no model");
    EXPECT_EQ(sweep.pruned, 0);
    EXPECT_EQ(sweep.survivors,
              static_cast<int64_t>(sweep.candidates.size()));

    const PredictStats stats = rt.stats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.modelVersion, 0u);
    EXPECT_GE(stats.fullSweeps, 1u);
}

TEST_F(PredictPruneTest, HarvestRecordsSimulationsButNeverCacheHits)
{
    Gpu gpu;
    PredictRuntime &rt = PredictRuntime::instance();
    rt.setSampleDir(dir_);

    std::string error;
    std::unique_ptr<DemoProgram> demo = buildDemoProgram(
        "sumcols", {{"rows", 128}, {"cols", 128}}, &error);
    ASSERT_NE(demo, nullptr);
    Bindings args(*demo->prog);
    demo->bind(args);

    CompileOptions copts = optionsFor(*demo);
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping =
        compileProgram(*demo->prog, gpu.config(), optionsFor(*demo))
            .spec.mapping;
    const ExecOptions eopts;

    cachedCompileAndRun(gpu, *demo->prog, args, copts, eopts,
                        /*wantOutputs=*/false);
    const uint64_t afterSimulate = rt.stats().samplesHarvested;
    EXPECT_GE(afterSimulate, 1u);
    EXPECT_EQ(rt.stats().sampleStoreRecords, afterSimulate);

    // Same evaluation again: a memory-tier hit, so no new sample.
    cachedCompileAndRun(gpu, *demo->prog, args, copts, eopts,
                        /*wantOutputs=*/false);
    EXPECT_EQ(rt.stats().samplesHarvested, afterSimulate);
}

TEST_F(PredictPruneTest, StatsJsonCarriesThePruningCounters)
{
    const std::string json = predictStatsJson();
    EXPECT_NE(json.find("\"predict_pruned\":"), std::string::npos);
    EXPECT_NE(json.find("\"predict_survivors\":"), std::string::npos);
    EXPECT_NE(json.find("\"predict_model_version\":"), std::string::npos);
    EXPECT_NE(json.find("\"sample_store_records\":"), std::string::npos);
}

} // namespace
