/**
 * @file
 * Learned-model persistence discipline: a trained ridge model round
 * trips through its checksummed file bit-identically, and a hostile
 * file — any single flipped byte, any truncation point, a stale
 * feature-schema version — loads as "no model" (nullopt), never as a
 * half-trusted one. Mirrors tests/sim/evalcache_disk_test for the model
 * format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "predict/model.h"
#include "support/rng.h"

using namespace npp;

namespace {

class PredictModelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/nppprd_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        path_ = dir_ + "/model.nppprd";
    }

    void
    TearDown() override
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        (void)!std::system(cmd.c_str());
    }

    std::string dir_;
    std::string path_;
};

/** Deterministic synthetic training set: the time depends strongly on
 *  feature 2 (plus noise-free smaller terms), so a working trainer must
 *  learn to rank by it. */
std::vector<PredictSample>
makeSamples(int n)
{
    Rng rng(7);
    std::vector<PredictSample> samples(n);
    for (int i = 0; i < n; i++) {
        PredictSample &s = samples[i];
        for (int j = 0; j < kPredictFeatureCount; j++)
            s.features.v[j] = rng.uniform(0, 4);
        s.measuredMs = std::exp(0.9 * s.features.v[2] +
                                0.1 * s.features.v[5]) -
                       1.0;
    }
    return samples;
}

TEST_F(PredictModelTest, EmptyTrainingSetYieldsNoModel)
{
    EXPECT_FALSE(trainPredictModel({}).has_value());
}

TEST_F(PredictModelTest, TrainedModelRanksByTheDrivingFeature)
{
    const std::optional<PredictModel> model =
        trainPredictModel(makeSamples(400));
    ASSERT_TRUE(model.has_value());

    PredictFeatures lo, hi;
    for (int j = 0; j < kPredictFeatureCount; j++)
        lo.v[j] = hi.v[j] = 2.0;
    lo.v[2] = 0.5;
    hi.v[2] = 3.5;
    EXPECT_LT(model->predictMs(lo), model->predictMs(hi));
    EXPECT_GE(model->predictMs(lo), 0.0);
}

TEST_F(PredictModelTest, SaveLoadRoundTripsBitIdentically)
{
    const std::optional<PredictModel> model =
        trainPredictModel(makeSamples(64));
    ASSERT_TRUE(model.has_value());
    ASSERT_TRUE(savePredictModel(*model, path_));

    const std::optional<PredictModel> loaded = loadPredictModel(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->featureVersion, model->featureVersion);
    EXPECT_EQ(loaded->trainedSamples, model->trainedSamples);
    EXPECT_EQ(loaded->ridgeLambda, model->ridgeLambda);
    EXPECT_EQ(loaded->intercept, model->intercept);
    EXPECT_EQ(loaded->mean, model->mean);
    EXPECT_EQ(loaded->scale, model->scale);
    EXPECT_EQ(loaded->weights, model->weights);

    // Same bits in, same prediction out.
    PredictFeatures probe;
    for (int j = 0; j < kPredictFeatureCount; j++)
        probe.v[j] = 1.0 + 0.25 * j;
    EXPECT_EQ(model->predictMs(probe), loaded->predictMs(probe));
}

TEST_F(PredictModelTest, MissingFileIsNoModel)
{
    EXPECT_FALSE(loadPredictModel(dir_ + "/nope.nppprd").has_value());
}

TEST_F(PredictModelTest, EveryTruncationPointIsRejected)
{
    const std::optional<PredictModel> model =
        trainPredictModel(makeSamples(32));
    ASSERT_TRUE(model.has_value());
    ASSERT_TRUE(savePredictModel(*model, path_));

    std::ifstream in(path_, std::ios::binary);
    const std::string good((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(good.size(), 64u);

    for (const size_t len :
         {size_t(0), size_t(4), size_t(20), size_t(35), good.size() / 2,
          good.size() - 1}) {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(good.data(), static_cast<std::streamsize>(len));
        out.close();
        EXPECT_FALSE(loadPredictModel(path_).has_value())
            << "truncated to " << len << " bytes";
    }
    // Extra trailing bytes are an over-run, equally rejected.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size()));
    out.put('\0');
    out.close();
    EXPECT_FALSE(loadPredictModel(path_).has_value());
}

TEST_F(PredictModelTest, EverySingleByteFlipIsRejected)
{
    const std::optional<PredictModel> model =
        trainPredictModel(makeSamples(32));
    ASSERT_TRUE(model.has_value());
    ASSERT_TRUE(savePredictModel(*model, path_));

    std::ifstream in(path_, std::ios::binary);
    const std::string good((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    in.close();

    // The header checks (magic, versions, count, payload size) guard
    // the front; the payload FNV guards everything behind them. No
    // single corrupted byte anywhere in the file may load.
    for (size_t off = 0; off < good.size(); off++) {
        std::string bad = good;
        bad[off] = static_cast<char>(bad[off] ^ 0x5a);
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
        out.close();
        EXPECT_FALSE(loadPredictModel(path_).has_value())
            << "flipped byte at offset " << off;
    }

    // The pristine bytes still load — the rejects were the flips.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size()));
    out.close();
    EXPECT_TRUE(loadPredictModel(path_).has_value());
}

TEST_F(PredictModelTest, StaleFeatureSchemaVersionIsRejected)
{
    std::optional<PredictModel> model = trainPredictModel(makeSamples(32));
    ASSERT_TRUE(model.has_value());
    // A model trained against a future schema: featureVersion is part
    // of the serialized header, so bump-and-save then reload must
    // reject it exactly like a corrupt file.
    model->featureVersion = kPredictFeatureVersion + 1;
    ASSERT_TRUE(savePredictModel(*model, path_));
    EXPECT_FALSE(loadPredictModel(path_).has_value());
}

TEST_F(PredictModelTest, FormatSummaryNamesEveryFeature)
{
    const std::optional<PredictModel> model =
        trainPredictModel(makeSamples(32));
    ASSERT_TRUE(model.has_value());
    const std::string text = formatPredictModel(*model);
    for (const std::string &name : predictFeatureNames())
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

} // namespace
