/**
 * @file
 * The NPP_PREDICT* knobs go through the hardened env helpers: garbage
 * values warn and fall back instead of silently misconfiguring the
 * predictor, and the model path resolves from the sample directory when
 * not given explicitly. Runs as its own binary so setenv/unsetenv never
 * races another fixture.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "predict/predict.h"

using namespace npp;

namespace {

class PredictEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearAll();
    }

    void
    TearDown() override
    {
        clearAll();
    }

    static void
    clearAll()
    {
        ::unsetenv("NPP_PREDICT");
        ::unsetenv("NPP_PREDICT_TOPK");
        ::unsetenv("NPP_PREDICT_DIR");
        ::unsetenv("NPP_PREDICT_MODEL");
    }
};

TEST_F(PredictEnvTest, UnsetEnvironmentYieldsDefaults)
{
    const PredictOptions opts = predictOptionsFromEnv();
    EXPECT_FALSE(opts.enabled);
    EXPECT_EQ(opts.topK, kPredictDefaultTopK);
    EXPECT_TRUE(opts.sampleDir.empty());
    EXPECT_TRUE(opts.modelPath.empty());
}

TEST_F(PredictEnvTest, ValidValuesAreHonored)
{
    ::setenv("NPP_PREDICT", "1", 1);
    ::setenv("NPP_PREDICT_TOPK", "5", 1);
    ::setenv("NPP_PREDICT_DIR", "/tmp/pstore", 1);
    const PredictOptions opts = predictOptionsFromEnv();
    EXPECT_TRUE(opts.enabled);
    EXPECT_EQ(opts.topK, 5);
    EXPECT_EQ(opts.sampleDir, "/tmp/pstore");
    // No explicit model path: it resolves inside the sample directory.
    EXPECT_EQ(opts.modelPath, "/tmp/pstore/model.nppprd");
}

TEST_F(PredictEnvTest, ExplicitModelPathWinsOverDirDefault)
{
    ::setenv("NPP_PREDICT_DIR", "/tmp/pstore", 1);
    ::setenv("NPP_PREDICT_MODEL", "/tmp/elsewhere/m.nppprd", 1);
    const PredictOptions opts = predictOptionsFromEnv();
    EXPECT_EQ(opts.modelPath, "/tmp/elsewhere/m.nppprd");
}

TEST_F(PredictEnvTest, GarbageBoolFallsBackDisabled)
{
    for (const char *bad : {"maybe", "2", "yes please", ""}) {
        ::setenv("NPP_PREDICT", bad, 1);
        EXPECT_FALSE(predictOptionsFromEnv().enabled)
            << "NPP_PREDICT=" << bad;
    }
}

TEST_F(PredictEnvTest, GarbageTopKFallsBackToDefault)
{
    for (const char *bad : {"abc", "12abc", "-3", "0", "1e9", ""}) {
        ::setenv("NPP_PREDICT_TOPK", bad, 1);
        EXPECT_EQ(predictOptionsFromEnv().topK, kPredictDefaultTopK)
            << "NPP_PREDICT_TOPK=" << bad;
    }
    // Out of range (above the candidate universe) also falls back: a
    // top-k beyond the universe cannot prune anything.
    ::setenv("NPP_PREDICT_TOPK", "100000", 1);
    EXPECT_EQ(predictOptionsFromEnv().topK, kPredictDefaultTopK);
}

TEST_F(PredictEnvTest, WhitespaceOnlyPathsMeanUnset)
{
    ::setenv("NPP_PREDICT_DIR", "   ", 1);
    ::setenv("NPP_PREDICT_MODEL", "  ", 1);
    const PredictOptions opts = predictOptionsFromEnv();
    EXPECT_TRUE(opts.sampleDir.empty());
    EXPECT_TRUE(opts.modelPath.empty());
}

TEST_F(PredictEnvTest, InitFromEnvWithMissingModelStaysInFallback)
{
    ::setenv("NPP_PREDICT", "1", 1);
    ::setenv("NPP_PREDICT_MODEL", "/tmp/definitely/not/there.nppprd", 1);
    PredictRuntime &rt = PredictRuntime::instance();
    rt.initFromEnv();
    EXPECT_TRUE(rt.active());
    EXPECT_EQ(rt.model(), nullptr);
    const PredictStats stats = rt.stats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.modelVersion, 0u);

    // Reset the process-global runtime for any later fixture.
    clearAll();
    rt.initFromEnv();
    EXPECT_FALSE(rt.active());
}

} // namespace
