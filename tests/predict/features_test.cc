/**
 * @file
 * Featurizer determinism: the feature vector is a pure function of
 * structural program content, the mapping, and the device — never of
 * pointer identity — so two independently built but structurally
 * identical programs featurize bit-identically. Also pins the schema
 * contract: kPredictFeatureCount named features, finite values, and
 * sensitivity to the mapping (distinct mappings must not collapse to
 * one vector, or the ranker would be blind).
 */

#include <gtest/gtest.h>

#include "codegen/compile.h"
#include "predict/features.h"
#include "server/programs.h"
#include "sim/gpu.h"

using namespace npp;

namespace {

std::unique_ptr<DemoProgram>
build(const std::string &name)
{
    std::string error;
    std::unique_ptr<DemoProgram> demo = buildDemoProgram(
        name, {{"rows", 256}, {"cols", 256}}, &error);
    EXPECT_NE(demo, nullptr) << error;
    return demo;
}

TEST(PredictFeatures, SchemaNamesMatchCount)
{
    const std::vector<std::string> &names = predictFeatureNames();
    ASSERT_EQ(static_cast<int>(names.size()), kPredictFeatureCount);
    for (const std::string &n : names)
        EXPECT_FALSE(n.empty());
}

TEST(PredictFeatures, IdenticalProgramsFeaturizeBitIdentically)
{
    // Two separate builds: different heap addresses, identical
    // structure. Any pointer-derived feature would differ here.
    std::unique_ptr<DemoProgram> a = build("sumrows");
    std::unique_ptr<DemoProgram> b = build("sumrows");
    ASSERT_NE(a->prog.get(), b->prog.get());

    Gpu gpu;
    CompileOptions copts;
    copts.paramValues = a->params;
    const MappingDecision mapping =
        compileProgram(*a->prog, gpu.config(), copts).spec.mapping;

    const ExecOptions eopts;
    const PredictFeatures fa =
        extractFeatures(*a->prog, mapping, gpu.config(), eopts, a->params);
    const PredictFeatures fb =
        extractFeatures(*b->prog, mapping, gpu.config(), eopts, b->params);
    for (int j = 0; j < kPredictFeatureCount; j++) {
        EXPECT_EQ(fa.v[j], fb.v[j]) << predictFeatureNames()[j];
        EXPECT_TRUE(std::isfinite(fa.v[j])) << predictFeatureNames()[j];
    }
}

TEST(PredictFeatures, RepeatedExtractionIsStable)
{
    std::unique_ptr<DemoProgram> demo = build("weightedcols");
    Gpu gpu;
    CompileOptions copts;
    copts.paramValues = demo->params;
    const MappingDecision mapping =
        compileProgram(*demo->prog, gpu.config(), copts).spec.mapping;
    const ExecOptions eopts;
    const PredictFeatures first = extractFeatures(
        *demo->prog, mapping, gpu.config(), eopts, demo->params);
    for (int rep = 0; rep < 3; rep++) {
        const PredictFeatures again = extractFeatures(
            *demo->prog, mapping, gpu.config(), eopts, demo->params);
        EXPECT_EQ(first.v, again.v);
    }
}

TEST(PredictFeatures, DistinctMappingsFeaturizeDistinctly)
{
    std::unique_ptr<DemoProgram> demo = build("sumrows");
    Gpu gpu;
    CompileOptions copts;
    copts.strategy = Strategy::MultiDim;
    copts.paramValues = demo->params;
    copts.keepCandidates = true;
    const CompileResult compiled =
        compileProgram(*demo->prog, gpu.config(), copts);
    ASSERT_GE(compiled.candidates.size(), 2u);

    const ExecOptions eopts;
    const PredictFeatures base =
        extractFeatures(*demo->prog, compiled.spec.mapping, gpu.config(),
                        eopts, demo->params);
    // Every candidate that differs from the selection must produce a
    // different vector — the mapping-parameter features see to it.
    int distinct = 0;
    for (const ScoredMapping &c : compiled.candidates) {
        if (c.decision == compiled.spec.mapping)
            continue;
        const PredictFeatures f = extractFeatures(
            *demo->prog, c.decision, gpu.config(), eopts, demo->params);
        if (f.v != base.v)
            distinct++;
    }
    EXPECT_GT(distinct, 0);
}

TEST(PredictFeatures, ParamValuesChangeSizeFeatures)
{
    std::string error;
    std::unique_ptr<DemoProgram> small = buildDemoProgram(
        "sumrows", {{"rows", 128}, {"cols", 128}}, &error);
    std::unique_ptr<DemoProgram> large = buildDemoProgram(
        "sumrows", {{"rows", 1024}, {"cols", 1024}}, &error);
    ASSERT_NE(small, nullptr);
    ASSERT_NE(large, nullptr);

    Gpu gpu;
    CompileOptions copts;
    copts.paramValues = small->params;
    const MappingDecision mapping =
        compileProgram(*small->prog, gpu.config(), copts).spec.mapping;
    const ExecOptions eopts;
    const PredictFeatures fs = extractFeatures(
        *small->prog, mapping, gpu.config(), eopts, small->params);
    const PredictFeatures fl = extractFeatures(
        *large->prog, mapping, gpu.config(), eopts, large->params);
    EXPECT_NE(fs.v, fl.v);
}

} // namespace
