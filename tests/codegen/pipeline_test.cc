/**
 * @file
 * Whole-pipeline integration tests: three-level nests use three CUDA
 * dimensions, every root pattern kind emits and executes, compiled specs
 * are reusable across launches with different parameter values, and the
 * emitted source always reflects the executed configuration.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"
#include "support/strings.h"

namespace npp {
namespace {

TEST(Pipeline, ThreeLevelNestUsesThreeDims)
{
    ProgramBuilder b("tensor");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    Ex nn = n;
    Arr inn = in;
    b.foreach(n, [&](Body &o0, Ex i) {
        o0.foreach(nn, [&](Body &o1, Ex j) {
            o1.foreach(nn, [&](Body &fn, Ex k) {
                Ex lin = fn.let("lin", (Ex(i) * nn + j) * nn + k);
                fn.store(out, lin, inn(lin) * 2.0);
            });
        });
    });
    Program p = b.build();

    Gpu gpu;
    CompileOptions copts;
    copts.paramValues = {{1, 32.0}};
    CompileResult res = compileProgram(p, gpu.config(), copts);
    ASSERT_EQ(res.spec.mapping.numLevels(), 3);
    // Innermost (stride-1) level on x; three distinct dims in the CUDA.
    EXPECT_EQ(res.spec.mapping.levels[2].dim, 0);
    EXPECT_NE(res.spec.cudaSource.find("threadIdx.x"), std::string::npos);
    EXPECT_NE(res.spec.cudaSource.find("threadIdx.y"), std::string::npos);
    EXPECT_NE(res.spec.cudaSource.find("threadIdx.z"), std::string::npos);

    // And it runs correctly.
    const int64_t N = 32;
    std::vector<double> inData(N * N * N), outData(N * N * N, 0.0);
    Rng rng(9);
    for (auto &v : inData)
        v = rng.uniform(0, 1);
    Bindings args(p);
    args.scalar(n, static_cast<double>(N));
    args.array(in, inData);
    args.array(out, outData);
    gpu.run(res.spec, args);
    for (int64_t i = 0; i < N * N * N; i++)
        ASSERT_DOUBLE_EQ(outData[i], inData[i] * 2.0) << i;
}

TEST(Pipeline, CompiledSpecReusableAcrossLaunchSizes)
{
    // Section IV-D: the static decision is reused; block sizes and
    // iteration counts adapt to the actual sizes at each launch.
    ProgramBuilder b("scale");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i) + 1.0; });
    Program p = b.build();

    Gpu gpu;
    CompileResult res = compileProgram(p, gpu.config());
    for (int64_t size : {5, 100, 3000, 70000}) {
        std::vector<double> inData(size, 2.0), outData(size, 0.0);
        Bindings args(p);
        args.scalar(n, static_cast<double>(size));
        args.array(in, inData);
        args.array(out, outData);
        SimReport report = gpu.run(res.spec, args);
        EXPECT_DOUBLE_EQ(outData[size - 1], 3.0) << size;
        EXPECT_GT(report.stats.totalBlocks, 0) << size;
    }
}

TEST(Pipeline, GroupByEmitsAtomics)
{
    ProgramBuilder b("hist");
    Arr keys = b.inI64("keys");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), Ex(1.0)};
    });
    Program p = b.build();
    CompileResult res = compileProgram(p, teslaK20c());
    EXPECT_NE(res.spec.cudaSource.find("atomicAdd"), std::string::npos);
    // GroupBy must be span(all) (hard constraint), never split.
    EXPECT_EQ(res.spec.mapping.levels[0].span.kind, SpanKind::All);
}

TEST(Pipeline, RootReduceEmitsSingleOutputStore)
{
    ProgramBuilder b("total");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Add, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();
    CompileOptions copts;
    copts.paramValues = {{1, 1000.0}};
    CompileResult res = compileProgram(p, teslaK20c(), copts);
    // Small domain: no split needed; thread 0 of block 0 stores out[0].
    if (res.spec.mapping.levels[0].span.kind == SpanKind::All) {
        EXPECT_NE(res.spec.cudaSource.find("out[0]"), std::string::npos);
    } else {
        EXPECT_NE(res.spec.cudaSource.find("__partials"),
                  std::string::npos);
    }
}

TEST(Pipeline, EmittedHeaderMatchesExecutedMapping)
{
    ProgramBuilder b("check");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        return fn.reduce(n, Op::Add,
                         [&](Body &, Ex j) { return in(i * n + j); });
    });
    Program p = b.build();
    for (Strategy s : {Strategy::MultiDim, Strategy::OneD,
                       Strategy::ThreadBlockThread,
                       Strategy::WarpBased}) {
        CompileOptions copts;
        copts.strategy = s;
        CompileResult res = compileProgram(p, teslaK20c(), copts);
        for (int lv = 0; lv < res.spec.mapping.numLevels(); lv++) {
            const std::string line =
                fmt("// Level {}: {}", lv,
                    res.spec.mapping.levels[lv].toString());
            EXPECT_NE(res.spec.cudaSource.find(line), std::string::npos)
                << strategyName(s) << " missing " << line;
        }
    }
}

TEST(Pipeline, PrefetchAnnotatedInSource)
{
    // Fig 8 shape under a mapping that triggers the V-B prefetch.
    ProgramBuilder b("fig8");
    Arr a1 = b.inF64("array1D");
    Arr a2 = b.inF64("array2D");
    Ex n = b.paramI64("I"), m = b.paramI64("J");
    Arr out = b.outF64("out");
    Arr one = a1, two = a2;
    Ex mm = m;
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex scale = fn.let("scale", one(i));
        return fn.reduce(mm, Op::Add, [&](Body &, Ex j) {
            return two(i * mm + j) * scale;
        });
    });
    Program p = b.build();

    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{1, 16, SpanType::one()},
                                 {0, 64, SpanType::all()}};
    CompileResult res = compileProgram(p, teslaK20c(), copts);
    EXPECT_FALSE(res.spec.prefetchedSites.empty());
    EXPECT_NE(res.spec.cudaSource.find("shared-memory prefetch"),
              std::string::npos);
    EXPECT_NE(res.spec.cudaSource.find("smem_array1D"),
              std::string::npos);
}

} // namespace
} // namespace npp
