/**
 * @file
 * Structure tests for the CUDA emitter (Section IV-E): different mapping
 * decisions must select different code templates — strided span(all)
 * loops, shared-memory tree reductions, split combiner kernels,
 * preallocation offset/stride addressing, and per-thread malloc.
 */

#include <gtest/gtest.h>

#include "codegen/compile.h"
#include "ir/builder.h"

namespace npp {
namespace {

Program
makeSumRows()
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    return b.build();
}

Program
makeWeighted()
{
    ProgramBuilder b("weighted");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    return b.build();
}

std::string
compileToCuda(const Program &prog, CompileOptions copts = {})
{
    return compileProgram(prog, teslaK20c(), copts).spec.cudaSource;
}

TEST(CudaEmit, SumRowsFig9Shape)
{
    Program p = makeSumRows();
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    // The paper's Fig 9 mapping: [DimY, 64, span(1)], [DimX, 32, span(all)].
    copts.fixedMapping.levels = {{1, 64, SpanType::one()},
                                 {0, 32, SpanType::all()}};
    std::string cuda = compileToCuda(p, copts);

    EXPECT_NE(cuda.find("__global__ void sumRows_kernel"),
              std::string::npos);
    // Outer level: span(1) index from block/thread ids on y.
    EXPECT_NE(cuda.find("blockIdx.y * blockDim.y + threadIdx.y"),
              std::string::npos);
    // Inner level: strided span(all) loop on x (Fig 9 line 8).
    EXPECT_NE(cuda.find("= threadIdx.x;"), std::string::npos);
    EXPECT_NE(cuda.find("+= blockDim.x"), std::string::npos);
    // Parallel reduce: shared memory + barrier + tree combine.
    EXPECT_NE(cuda.find("__shared__ double red_smem_1["), std::string::npos);
    EXPECT_NE(cuda.find("__syncthreads();"), std::string::npos);
    // Guarded single-lane output store.
    EXPECT_NE(cuda.find("if (threadIdx.x == 0"), std::string::npos);
    // No combiner without a split level.
    EXPECT_EQ(cuda.find("_combine"), std::string::npos);
}

TEST(CudaEmit, SequentialInnerReduceHasNoSmem)
{
    Program p = makeSumRows();
    CompileOptions copts;
    copts.strategy = Strategy::OneD;
    std::string cuda = compileToCuda(p, copts);
    EXPECT_EQ(cuda.find("__shared__ double red_smem"), std::string::npos)
        << "block size 1 reduce needs no cross-thread combine";
    EXPECT_NE(cuda.find("sumRows_kernel"), std::string::npos);
}

TEST(CudaEmit, SplitEmitsCombinerKernel)
{
    Program p = makeSumRows();
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{1, 8, SpanType::one()},
                                 {0, 32, SpanType::split(4)}};
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("__partials"), std::string::npos);
    EXPECT_NE(cuda.find("__global__ void sumRows_combine"),
              std::string::npos);
    EXPECT_NE(cuda.find("__seg1"), std::string::npos)
        << "split loop covers a per-block segment";
}

TEST(CudaEmit, SpanNEmitsCoverageLoop)
{
    ProgramBuilder b("scale");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i) * 2.0; });
    Program p = b.build();

    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, 256, SpanType::n(26)}};
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("__k0 < 26"), std::string::npos);
    EXPECT_NE(cuda.find("blockIdx.x * 26 + __k0"), std::string::npos);
}

TEST(CudaEmit, PreallocContiguousAddressing)
{
    Program p = makeWeighted();
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    // Inner level on x: contiguous layout (Fig 11a).
    copts.fixedMapping.levels = {{1, 4, SpanType::one()},
                                 {0, 64, SpanType::all()}};
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("__row_"), std::string::npos);
    EXPECT_NE(cuda.find("Fig 11(a)"), std::string::npos);
    EXPECT_NE(cuda.find("/* preallocated */"), std::string::npos);
    EXPECT_EQ(cuda.find("malloc("), std::string::npos);
}

TEST(CudaEmit, PreallocInterleavedAddressing)
{
    Program p = makeWeighted();
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    // Inner level on y: interleaved layout (Fig 11b).
    copts.fixedMapping.levels = {{0, 64, SpanType::one()},
                                 {1, 4, SpanType::all()}};
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("__col_"), std::string::npos);
    EXPECT_NE(cuda.find("__stride_"), std::string::npos);
    EXPECT_NE(cuda.find("Fig 11(b)"), std::string::npos);
}

TEST(CudaEmit, MallocModeEmitsPerThreadAllocation)
{
    Program p = makeWeighted();
    CompileOptions copts;
    copts.strategy = Strategy::MultiDim;
    copts.prealloc.enable = false;
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("malloc("), std::string::npos);
    EXPECT_NE(cuda.find("per-thread allocation"), std::string::npos);
}

TEST(CudaEmit, SeqLoopAndBranch)
{
    ProgramBuilder b("escape");
    Arr c = b.inF64("c");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Mut x = fn.mut("x", Ex(0.0));
        fn.branch(c(i) > 0.0,
                  [&](Body &t) { t.assign(x, Ex(1.0)); });
        fn.seqLoop(
            Ex(100), [&](Body &body, Ex) { body.assign(x, x.ex() + c(i)); },
            x.ex() >= 10.0);
        return x.ex();
    });
    Program p = b.build();
    std::string cuda = compileToCuda(p);
    EXPECT_NE(cuda.find("if (") , std::string::npos);
    EXPECT_NE(cuda.find("break;"), std::string::npos);
    EXPECT_NE(cuda.find("< 100LL"), std::string::npos);
}

TEST(CudaEmit, FilterUsesAtomicCursor)
{
    ProgramBuilder b("pos");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    Arr cnt = b.outF64("cnt");
    b.filter(n, out, cnt, [&](Body &, Ex i) {
        return FilterItem{in(i) > 0.0, in(i)};
    });
    Program p = b.build();
    std::string cuda = compileToCuda(p);
    EXPECT_NE(cuda.find("atomicAdd"), std::string::npos);
}

TEST(CudaEmit, HeaderDocumentsMappingDecision)
{
    Program p = makeSumRows();
    CompileOptions copts;
    copts.strategy = Strategy::WarpBased;
    std::string cuda = compileToCuda(p, copts);
    EXPECT_NE(cuda.find("// Level 0: [dimy, 16, span(1)]"),
              std::string::npos);
    EXPECT_NE(cuda.find("// Level 1: [dimx, 32, span(all)]"),
              std::string::npos);
}

TEST(CudaEmit, ParamListTypesAndConstness)
{
    Program p = makeSumRows();
    std::string cuda = compileToCuda(p);
    EXPECT_NE(cuda.find("const double *m"), std::string::npos);
    EXPECT_NE(cuda.find("double *out"), std::string::npos);
    EXPECT_NE(cuda.find("long long R"), std::string::npos);
}

} // namespace
} // namespace npp
