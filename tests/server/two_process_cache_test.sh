#!/usr/bin/env bash
# Two-process disk-tier test: the first nppc process populates
# NPP_EVAL_CACHE_DIR, a second (fresh) process must replay the
# evaluation from disk — provenance "disk", disk_hits > 0 — and its
# simulated-timing report must be bit-identical to the first one's.
set -euo pipefail

NPPC="$1"
WORK="$(mktemp -d /tmp/npp_twoproc_XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

export NPP_EVAL_CACHE_DIR="$WORK/cache"

run_nppc() {
    "$NPPC" sumrows --size=rows=256 --size=cols=256 --run "--stats=$1"
}

run_nppc "$WORK/cold.json" > "$WORK/cold.out"
grep -q "eval cache: simulated" "$WORK/cold.out" || {
    echo "FAIL: cold run should have simulated"; cat "$WORK/cold.out"; exit 1; }
ls "$NPP_EVAL_CACHE_DIR"/*.nppeval > /dev/null || {
    echo "FAIL: no disk entry written"; exit 1; }

run_nppc "$WORK/warm.json" > "$WORK/warm.out"
grep -q "eval cache: disk" "$WORK/warm.out" || {
    echo "FAIL: warm run should have hit the disk tier"; cat "$WORK/warm.out"; exit 1; }

python3 - "$WORK/cold.json" "$WORK/warm.json" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert cold["provenance"] == "simulated", cold["provenance"]
assert warm["provenance"] == "disk", warm["provenance"]
assert warm["eval_cache"]["disk_hits"] > 0, warm["eval_cache"]
assert cold["eval_cache"]["disk_stores"] > 0, cold["eval_cache"]
# Bit-identical replay: the simulated-timing report of the warm process
# must match the cold one exactly (doubles round-trip as bit patterns).
assert cold["report"] == warm["report"], "reports differ across processes"
print("two-process disk cache round trip OK")
EOF
