/**
 * @file
 * Mapping-service tests: request/response round trips over a real Unix
 * socket, malformed-request survival (the server must answer with an
 * error line, not die — the asan job runs this suite against the JSON
 * parser and the protocol framing), cache-tier provenance threading,
 * and the coalescing guarantee: N concurrent identical requests perform
 * exactly one simulation.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/server.h"
#include "sim/evalcache.h"

using namespace npp;

namespace {

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/nppsrv_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        socket_ = dir_ + "/npp.sock";
        EvalCache &cache = EvalCache::instance();
        savedDiskDir_ = cache.diskDir();
        cache.setDiskDir("");
        cache.clear();
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->stop();
            server_.reset();
        }
        EvalCache::instance().setDiskDir(savedDiskDir_);
        EvalCache::instance().clear();
        const std::string cmd = "rm -rf '" + dir_ + "'";
        (void)!std::system(cmd.c_str());
    }

    void
    startServer(int holdEvalMs = 0)
    {
        ServeOptions opts;
        opts.socketPath = socket_;
        opts.holdEvalMs = holdEvalMs;
        server_ = std::make_unique<MappingServer>(opts);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }

    /** Round trip + parse; fails the test on transport errors. */
    JsonValue
    request(const std::string &line)
    {
        std::string response, error;
        EXPECT_TRUE(serveRoundTrip(socket_, line, &response, &error))
            << error;
        std::string parseError;
        std::optional<JsonValue> parsed = parseJson(response, &parseError);
        EXPECT_TRUE(parsed.has_value())
            << parseError << " in: " << response;
        return parsed ? *parsed : JsonValue{};
    }

    std::string dir_;
    std::string socket_;
    std::string savedDiskDir_;
    std::unique_ptr<MappingServer> server_;
};

const char kSmallEval[] =
    "{\"program\":\"sumrows\",\"sizes\":{\"rows\":64,\"cols\":64}}";

TEST_F(ServerTest, PingPong)
{
    startServer();
    const JsonValue resp = request("{\"type\":\"ping\",\"id\":7}");
    EXPECT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    EXPECT_EQ(resp.get("type")->asString(), "pong");
    EXPECT_EQ(resp.get("id")->asInt(), 7);
}

TEST_F(ServerTest, EvalReturnsMappingReportAndProvenance)
{
    startServer();
    const JsonValue resp = request(kSmallEval);
    ASSERT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    EXPECT_FALSE(resp.get("mapping")->asString().empty());
    EXPECT_GT(resp.get("dop")->asNumber(), 0.0);
    EXPECT_EQ(resp.get("provenance")->asString(), "simulated");
    EXPECT_EQ(resp.get("coalesce_model")->asString(),
              kCoalesceModelVersion);
    ASSERT_NE(resp.get("report"), nullptr);
    EXPECT_GT(resp.get("report")->get("total_ms")->asNumber(), 0.0);

    // The second identical request replays from the memory tier and
    // reports the same mapping and timing.
    const JsonValue again = request(kSmallEval);
    EXPECT_EQ(again.get("provenance")->asString(), "memory");
    EXPECT_EQ(again.get("mapping")->asString(),
              resp.get("mapping")->asString());
    EXPECT_EQ(again.get("report")->get("total_ms")->asNumber(),
              resp.get("report")->get("total_ms")->asNumber());
}

TEST_F(ServerTest, ExplanationOnRequest)
{
    startServer();
    const JsonValue resp = request(
        "{\"program\":\"sumrows\",\"sizes\":{\"rows\":64,\"cols\":64},"
        "\"explain\":true}");
    ASSERT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    ASSERT_NE(resp.get("explanation"), nullptr);
    EXPECT_FALSE(resp.get("explanation")->asString().empty());
}

TEST_F(ServerTest, DiskProvenanceAfterMemoryLoss)
{
    EvalCache::instance().setDiskDir(dir_ + "/cache");
    startServer();
    const JsonValue first = request(kSmallEval);
    EXPECT_EQ(first.get("provenance")->asString(), "simulated");

    // Forget the memory tier mid-flight (as a restarted service would):
    // the next identical request must replay from disk, bit-identical.
    EvalCache::instance().clear();
    const JsonValue second = request(kSmallEval);
    EXPECT_EQ(second.get("provenance")->asString(), "disk");
    EXPECT_EQ(second.get("report")->get("total_ms")->asNumber(),
              first.get("report")->get("total_ms")->asNumber());
    EXPECT_EQ(second.get("report")->get("coalescing_efficiency")
                  ->asNumber(),
              first.get("report")->get("coalescing_efficiency")
                  ->asNumber());
}

TEST_F(ServerTest, MalformedRequestsGetErrorsNotCrashes)
{
    startServer();
    const char *bad[] = {
        "{not json",
        "42",
        "[1,2,3]",
        "{}",
        "{\"program\":\"no_such_program\"}",
        "{\"type\":\"frobnicate\"}",
        "{\"program\":\"sumrows\",\"sizes\":42}",
        "{\"program\":\"sumrows\",\"sizes\":{\"rows\":\"big\"}}",
        "{\"program\":\"sumrows\",\"sizes\":{\"rows\":-3}}",
        "{\"program\":\"sumrows\",\"sizes\":{\"rows\":9999999999}}",
        "{\"program\":\"sumrows\",\"sizes\":{\"bogus_key\":4}}",
        "{\"program\":\"sumrows\",\"strategy\":\"quantum\"}",
        "{\"program\":[\"sumrows\"]}",
    };
    for (const char *line : bad) {
        const JsonValue resp = request(line);
        ASSERT_NE(resp.get("ok"), nullptr) << line;
        EXPECT_FALSE(resp.get("ok")->asBool()) << line;
        EXPECT_FALSE(resp.get("error")->asString().empty()) << line;
    }
    // Still alive and serving after all of that.
    const JsonValue pong = request("{\"type\":\"ping\"}");
    EXPECT_TRUE(pong.get("ok") && pong.get("ok")->asBool());
    EXPECT_EQ(server_->stats().errors,
              sizeof(bad) / sizeof(bad[0]));
}

TEST_F(ServerTest, OversizedRequestIsRefused)
{
    startServer();
    std::string huge = "{\"program\":\"";
    huge.append((2 << 20), 'a');
    huge += "\"}";
    const JsonValue resp = request(huge);
    ASSERT_NE(resp.get("ok"), nullptr);
    EXPECT_FALSE(resp.get("ok")->asBool());

    // The refused connection is closed, but the listener is unharmed.
    const JsonValue pong = request("{\"type\":\"ping\"}");
    EXPECT_TRUE(pong.get("ok") && pong.get("ok")->asBool());
}

TEST_F(ServerTest, ConcurrentIdenticalRequestsSimulateOnce)
{
    // holdEvalMs keeps the leader's evaluation open long enough that
    // every follower deterministically lands in the coalescing window.
    startServer(/*holdEvalMs=*/400);
    constexpr int kClients = 6;
    std::vector<JsonValue> responses(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; i++)
        threads.emplace_back([this, i, &responses] {
            responses[i] = request(kSmallEval);
        });
    for (auto &t : threads)
        t.join();

    int coalescedCount = 0;
    for (const JsonValue &resp : responses) {
        ASSERT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
        EXPECT_EQ(resp.get("mapping")->asString(),
                  responses[0].get("mapping")->asString());
        EXPECT_EQ(resp.get("report")->get("total_ms")->asNumber(),
                  responses[0].get("report")->get("total_ms")->asNumber());
        if (resp.get("coalesced")->asBool())
            coalescedCount++;
    }
    EXPECT_EQ(coalescedCount, kClients - 1);

    const ServerStats stats = server_->stats();
    EXPECT_EQ(stats.evaluations, static_cast<uint64_t>(kClients));
    EXPECT_EQ(stats.simulations, 1u);
    EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kClients - 1));
    EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServerTest, StatsRequestReportsCountersAndLatency)
{
    startServer();
    request(kSmallEval);
    request(kSmallEval);
    const JsonValue stats = request("{\"type\":\"stats\"}");
    ASSERT_TRUE(stats.get("ok") && stats.get("ok")->asBool());
    EXPECT_EQ(stats.get("requests")->asInt(), 3); // 2 evals + this one
    EXPECT_EQ(stats.get("evaluations")->asInt(), 2);
    EXPECT_EQ(stats.get("simulations")->asInt(), 1);
    EXPECT_EQ(stats.get("memory_hits")->asInt(), 1);
    // Latency spans: the two evals were recorded before this request
    // started (its own span closes after rendering).
    EXPECT_GE(stats.get("request_timer")->get("count")->asInt(), 2);
    EXPECT_GT(stats.get("request_timer")->get("total_us")->asNumber(),
              0.0);
    ASSERT_NE(stats.get("eval_cache"), nullptr);
    EXPECT_GE(stats.get("eval_cache")->get("hits")->asInt(), 1);
}

TEST_F(ServerTest, DevicesFieldRunsTheFleetSweep)
{
    startServer();
    const JsonValue resp = request(
        "{\"program\":\"sumrows\",\"sizes\":{\"rows\":2048,"
        "\"cols\":2048},\"devices\":4}");
    ASSERT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    ASSERT_NE(resp.get("devices"), nullptr);
    EXPECT_EQ(resp.get("devices")->asInt(), 4);
    const JsonValue *fleet = resp.get("fleet");
    ASSERT_NE(fleet, nullptr);
    EXPECT_GT(fleet->get("devices")->asInt(), 1);
    EXPECT_GT(fleet->get("speedup")->asNumber(), 1.0);
    EXPECT_LT(fleet->get("fleet_ms")->asNumber(),
              fleet->get("single_ms")->asNumber());

    // Requests without the field keep the pre-fleet response shape.
    const JsonValue flat = request(kSmallEval);
    ASSERT_TRUE(flat.get("ok") && flat.get("ok")->asBool());
    EXPECT_EQ(flat.get("devices"), nullptr);
    EXPECT_EQ(flat.get("fleet"), nullptr);

    // Out-of-range fleet sizes are rejected with an error line.
    const JsonValue bad =
        request("{\"program\":\"sumrows\",\"devices\":99}");
    ASSERT_TRUE(bad.get("ok"));
    EXPECT_FALSE(bad.get("ok")->asBool());
    EXPECT_NE(bad.get("error")->asString().find("devices"),
              std::string::npos);
}

TEST_F(ServerTest, AcceptLoopSurvivesSignalsAndAbortedConnects)
{
    startServer();

    // A no-op handler installed WITHOUT SA_RESTART: any syscall the
    // signal lands in returns EINTR instead of restarting.
    struct sigaction sa = {};
    struct sigaction old = {};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    // Pepper the process with signals while clients connect and
    // abort instantly (SO_LINGER 0 close sends RST, so connections
    // can die in the accept queue -> ECONNABORTED/EAGAIN paths).
    for (int i = 0; i < 50; i++) {
        ASSERT_EQ(::kill(::getpid(), SIGUSR1), 0);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                      socket_.c_str());
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof addr) == 0) {
            struct linger lg = {1, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
        }
        ::close(fd);
        ASSERT_EQ(::kill(::getpid(), SIGUSR1), 0);
    }

    // The listener must still be alive and answering.
    const JsonValue resp = request("{\"type\":\"ping\",\"id\":1}");
    EXPECT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    const JsonValue eval = request(kSmallEval);
    EXPECT_TRUE(eval.get("ok") && eval.get("ok")->asBool());

    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST_F(ServerTest, ShutdownRequestStopsTheServer)
{
    startServer();
    const JsonValue resp = request("{\"type\":\"shutdown\"}");
    EXPECT_TRUE(resp.get("ok") && resp.get("ok")->asBool());
    server_->wait(); // must return: the accept loop has exited

    // The socket is still bound until stop() finishes teardown, but no
    // new evaluation is served after shutdown.
    server_->stop();
    std::string response, error;
    EXPECT_FALSE(serveRoundTrip(socket_, "{\"type\":\"ping\"}",
                                &response, &error));
}

} // namespace
