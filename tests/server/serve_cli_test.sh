#!/usr/bin/env bash
# End-to-end CLI test for `nppc serve` / `nppc --client`: start a real
# server process, drive it with client-mode nppc invocations (ping, two
# identical evals, stats, shutdown), and check the protocol responses
# and a clean server exit.
set -euo pipefail

NPPC="$1"
WORK="$(mktemp -d /tmp/npp_serve_cli_XXXXXX)"
SOCK="$WORK/npp.sock"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

export NPP_EVAL_CACHE_DIR="$WORK/cache"

"$NPPC" serve "--socket=$SOCK" > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

"$NPPC" ping "--client=$SOCK" | grep -q '"type":"pong"' || {
    echo "FAIL: ping did not pong"; exit 1; }

EVAL_ARGS=(sumrows "--client=$SOCK" --size=rows=128 --size=cols=128)
"$NPPC" "${EVAL_ARGS[@]}" > "$WORK/eval1.json"
grep -q '"ok":true' "$WORK/eval1.json"
grep -q '"provenance":"simulated"' "$WORK/eval1.json" || {
    echo "FAIL: first eval should simulate"; cat "$WORK/eval1.json"; exit 1; }
grep -q '"mapping":"' "$WORK/eval1.json"

"$NPPC" "${EVAL_ARGS[@]}" > "$WORK/eval2.json"
grep -q '"provenance":"memory"' "$WORK/eval2.json" || {
    echo "FAIL: second eval should hit the memory tier"
    cat "$WORK/eval2.json"; exit 1; }

"$NPPC" stats "--client=$SOCK" > "$WORK/stats.json"
grep -q '"evaluations":2' "$WORK/stats.json" || {
    echo "FAIL: stats should report 2 evaluations"
    cat "$WORK/stats.json"; exit 1; }
grep -q '"eval_cache":' "$WORK/stats.json"

# Unknown program must produce an error response, exit nonzero, and
# leave the server standing.
if "$NPPC" not_a_program "--client=$SOCK" > "$WORK/err.json" 2>&1; then
    echo "FAIL: unknown program should exit nonzero"; exit 1
fi
grep -q '"ok":false' "$WORK/err.json"
kill -0 "$SERVER_PID" || { echo "FAIL: server died on a bad request"; exit 1; }

"$NPPC" shutdown "--client=$SOCK" | grep -q '"type":"shutdown"'
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server still running after shutdown request"; exit 1
fi
SERVER_PID=""

grep -q "served " "$WORK/serve.log" || {
    echo "FAIL: server exit summary missing"; cat "$WORK/serve.log"; exit 1; }
echo "serve CLI round trip OK"
