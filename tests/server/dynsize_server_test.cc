/**
 * @file
 * Mapping-service regression tests for runtime-sized programs: an eval
 * of the CSR SpMV demo must return the consolidation verdict in both
 * the explanation text and the response's consolidation JSON object,
 * requesting the consolidate strategy must round-trip, and a malformed
 * size binding for the runtime-sized program must produce ok:false
 * while leaving the listener alive for the next request.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "server/json.h"
#include "server/server.h"
#include "sim/evalcache.h"

using namespace npp;

namespace {

class DynSizeServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/nppsrv_dyn_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        socket_ = dir_ + "/npp.sock";
        EvalCache &cache = EvalCache::instance();
        savedDiskDir_ = cache.diskDir();
        cache.setDiskDir("");
        cache.clear();

        ServeOptions opts;
        opts.socketPath = socket_;
        server_ = std::make_unique<MappingServer>(opts);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->stop();
            server_.reset();
        }
        EvalCache::instance().setDiskDir(savedDiskDir_);
        EvalCache::instance().clear();
        const std::string cmd = "rm -rf '" + dir_ + "'";
        (void)!std::system(cmd.c_str());
    }

    JsonValue
    request(const std::string &line)
    {
        std::string response, error;
        EXPECT_TRUE(serveRoundTrip(socket_, line, &response, &error))
            << error;
        std::string parseError;
        std::optional<JsonValue> parsed = parseJson(response, &parseError);
        EXPECT_TRUE(parsed.has_value())
            << parseError << " in: " << response;
        return parsed ? *parsed : JsonValue{};
    }

    std::string dir_;
    std::string socket_;
    std::string savedDiskDir_;
    std::unique_ptr<MappingServer> server_;
};

TEST_F(DynSizeServerTest, EvalReturnsConsolidationVerdict)
{
    const JsonValue resp = request(
        "{\"type\":\"eval\",\"program\":\"spmv\",\"explain\":true,"
        "\"sizes\":{\"rows\":512,\"avgdeg\":4}}");
    ASSERT_TRUE(resp.get("ok"));
    EXPECT_TRUE(resp.get("ok")->asBool());

    // The response carries the consolidation sweep as a JSON object
    // with the named verdict...
    const JsonValue *cons = resp.get("consolidation");
    ASSERT_NE(cons, nullptr) << "response lacks consolidation object";
    ASSERT_TRUE(cons->isObject());
    ASSERT_NE(cons->get("verdict"), nullptr);
    const std::string verdict = cons->get("verdict")->asString();
    EXPECT_NE(verdict.find("consolidated"), std::string::npos) << verdict;
    ASSERT_NE(cons->get("candidates"), nullptr);

    // ...and the human-readable explanation names the sweep too.
    ASSERT_NE(resp.get("explanation"), nullptr);
    const std::string expl = resp.get("explanation")->asString();
    EXPECT_NE(expl.find("consolidation sweep"), std::string::npos);
    EXPECT_NE(expl.find("selected:"), std::string::npos);
}

TEST_F(DynSizeServerTest, ConsolidateStrategyRoundTrips)
{
    const JsonValue resp = request(
        "{\"type\":\"eval\",\"program\":\"spmv\","
        "\"strategy\":\"consolidate\","
        "\"sizes\":{\"rows\":512,\"avgdeg\":4}}");
    ASSERT_TRUE(resp.get("ok"));
    EXPECT_TRUE(resp.get("ok")->asBool());
    ASSERT_NE(resp.get("report"), nullptr);
    const JsonValue *stats = resp.get("report")->get("stats");
    ASSERT_NE(stats, nullptr);
    ASSERT_NE(stats->get("has_consolidation"), nullptr);
    EXPECT_TRUE(stats->get("has_consolidation")->asBool());
}

TEST_F(DynSizeServerTest, MalformedSizeKeepsListenerAlive)
{
    // Non-positive row count: the size binding for the runtime-sized
    // extent is rejected by admission, not by a crash.
    const JsonValue bad = request(
        "{\"type\":\"eval\",\"program\":\"spmv\","
        "\"sizes\":{\"rows\":-5}}");
    ASSERT_TRUE(bad.get("ok"));
    EXPECT_FALSE(bad.get("ok")->asBool());
    ASSERT_NE(bad.get("error"), nullptr);
    EXPECT_NE(bad.get("error")->asString().find("rows"),
              std::string::npos);

    // Unknown size key on the same program: also a clean error.
    const JsonValue unknown = request(
        "{\"type\":\"eval\",\"program\":\"spmv\","
        "\"sizes\":{\"sizeExpr\":7}}");
    ASSERT_TRUE(unknown.get("ok"));
    EXPECT_FALSE(unknown.get("ok")->asBool());

    // The listener survived both: a well-formed request still works.
    const JsonValue good = request(
        "{\"type\":\"eval\",\"program\":\"spmv\","
        "\"sizes\":{\"rows\":256,\"avgdeg\":3}}");
    ASSERT_TRUE(good.get("ok"));
    EXPECT_TRUE(good.get("ok")->asBool());
}

} // namespace
