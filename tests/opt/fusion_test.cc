/**
 * @file
 * Tests for vertical map-reduce fusion: the intermediate array
 * disappears, results are unchanged, and fusion correctly refuses when
 * the array has other consumers.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/traverse.h"
#include "opt/fusion.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

int
nestedPatternCount(const Program &prog)
{
    return static_cast<int>(collectPatterns(prog.root()).size());
}

TEST(Fusion, WeightedSumFusesToSinglePattern)
{
    ProgramBuilder b("weighted");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();
    ASSERT_EQ(nestedPatternCount(p), 3);

    FusionResult fused = fuseMapReduce(p);
    EXPECT_EQ(fused.fused, 1);
    EXPECT_EQ(nestedPatternCount(*fused.program), 2)
        << "the zipWith is gone";

    // Same results.
    const int64_t R = 16, C = 40;
    Rng rng(3);
    std::vector<double> md(R * C), vd(C);
    for (auto &x : md)
        x = rng.uniform(-1, 1);
    for (auto &x : vd)
        x = rng.uniform(-1, 1);
    std::vector<double> expect(R, 0.0), got(R, 0.0);
    {
        Bindings args(p);
        args.scalar(r, R);
        args.scalar(c, C);
        args.array(m, md);
        args.array(v, vd);
        args.array(out, expect);
        ReferenceInterp().run(p, args);
    }
    {
        Bindings args(*fused.program);
        args.scalar(r, R);
        args.scalar(c, C);
        args.array(m, md);
        args.array(v, vd);
        args.array(out, got);
        ReferenceInterp().run(*fused.program, args);
    }
    EXPECT_LE(maxRelDiff(expect, got), 1e-12);
}

TEST(Fusion, ProducerLetsAreInlined)
{
    ProgramBuilder b("lets");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Arr sq = fn.map(n, [&](Body &inner, Ex j) {
            Ex x = inner.let("x", in(i * n + j) + 1.0);
            return x * x;
        });
        return fn.reduce(n, Op::Max,
                         [&](Body &, Ex j) { return sq(j); });
    });
    Program p = b.build();
    FusionResult fused = fuseMapReduce(p);
    EXPECT_EQ(fused.fused, 1);

    const int64_t N = 12;
    std::vector<double> data(N * N);
    Rng rng(8);
    for (auto &x : data)
        x = rng.uniform(-2, 2);
    std::vector<double> expect(N), got(N);
    {
        Bindings args(p);
        args.scalar(n, N);
        args.array(in, data);
        args.array(out, expect);
        ReferenceInterp().run(p, args);
    }
    {
        Bindings args(*fused.program);
        args.scalar(n, N);
        args.array(in, data);
        args.array(out, got);
        ReferenceInterp().run(*fused.program, args);
    }
    EXPECT_LE(maxRelDiff(expect, got), 1e-12);
}

TEST(Fusion, RefusesWhenArrayHasOtherUses)
{
    // temp feeds the reduce AND the enclosing yield: not fusable.
    ProgramBuilder b("multiuse");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Arr temp = fn.map(n, [&](Body &, Ex j) {
            return in(i * n + j) * 2.0;
        });
        Ex sum = fn.reduce(n, Op::Add,
                           [&](Body &, Ex j) { return temp(j); });
        return sum + temp(Ex(0));
    });
    Program p = b.build();
    FusionResult fused = fuseMapReduce(p);
    EXPECT_EQ(fused.fused, 0);
}

TEST(Fusion, RefusesEffectfulProducers)
{
    ProgramBuilder b("effects");
    Arr in = b.inF64("in");
    Arr scratch = b.inOutF64("scratch");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Arr temp = fn.map(n, [&](Body &inner, Ex j) {
            inner.store(scratch, j, in(i * n + j)); // side effect
            return in(i * n + j);
        });
        return fn.reduce(n, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();
    EXPECT_EQ(fuseMapReduce(p).fused, 0);
}

TEST(Fusion, DynamicSizePageRankShape)
{
    // The Fig 5 shape: dynamic inner size; fusion removes the malloc.
    ProgramBuilder b("pr");
    Arr start = b.inI64("start");
    Arr nbrs = b.inI64("nbrs");
    Arr prev = b.inF64("prev");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex v) {
        Ex begin = fn.let("begin", start(v));
        Ex cnt = fn.let("cnt", start(v + 1) - begin);
        Arr w = fn.map(cnt, [&](Body &, Ex e) {
            return prev(nbrs(begin + e)) * 0.5;
        });
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex e) { return w(e); });
    });
    Program p = b.build();
    FusionResult fused = fuseMapReduce(p);
    ASSERT_EQ(fused.fused, 1);

    // The fused program must have no array locals left.
    bool hasArrayLocal = false;
    Walker walker;
    walker.onStmt = [&](const Stmt &s, const WalkCtx &) {
        if (s.kind == StmtKind::Nested && s.var >= 0 &&
            fused.program->var(s.var).role == VarRole::ArrayLocal) {
            hasArrayLocal = true;
        }
    };
    walkPattern(fused.program->root(), walker);
    EXPECT_FALSE(hasArrayLocal);

    // And it must simulate without any mallocs.
    const int64_t N = 64;
    std::vector<double> startD, nbrD, prevD(N, 1.0), outD(N);
    Rng rng(4);
    startD.push_back(0);
    for (int64_t i = 0; i < N; i++) {
        const int64_t deg = 1 + rng.below(6);
        for (int64_t e = 0; e < deg; e++)
            nbrD.push_back(static_cast<double>(rng.below(N)));
        startD.push_back(static_cast<double>(nbrD.size()));
    }
    Bindings args(*fused.program);
    args.scalar(n, N);
    args.array(start, startD);
    args.array(nbrs, nbrD);
    args.array(prev, prevD);
    args.array(out, outD);
    Gpu gpu;
    CompileOptions copts;
    CompileResult compiled =
        compileProgram(*fused.program, gpu.config(), copts);
    KernelStats stats =
        executeOnDevice(compiled.spec, args, gpu.config());
    EXPECT_EQ(stats.mallocs, 0.0);
}

TEST(Fusion, CompilePipelineAppliesWhenRequested)
{
    ProgramBuilder b("w2");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Arr t = fn.map(n, [&](Body &, Ex j) {
            return in(i * n + j) + 1.0;
        });
        return fn.reduce(n, Op::Add,
                         [&](Body &, Ex j) { return t(j); });
    });
    Program p = b.build();

    Gpu gpu;
    CompileOptions off;
    EXPECT_EQ(compileProgram(p, gpu.config(), off).fusedPatterns, 0);

    CompileOptions on;
    on.fuseMapReduce = true;
    CompileResult res = compileProgram(p, gpu.config(), on);
    EXPECT_EQ(res.fusedPatterns, 1);
    ASSERT_TRUE(res.ownedProgram != nullptr);
    EXPECT_EQ(res.spec.prog, res.ownedProgram.get());
}

} // namespace
} // namespace npp
