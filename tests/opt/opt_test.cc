/**
 * @file
 * Tests for the Section V optimizations: preallocation planning with
 * mapping-guided layout selection (V-A) and shared-memory prefetch
 * detection (V-B), including their end-to-end performance effects on the
 * simulator (the Fig 16 ordering).
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/smem.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

struct Weighted
{
    std::shared_ptr<Program> prog;
    Ex r, c;
    Arr m, v, out;
};

/** sumWeightedCols when byCols, sumWeightedRows otherwise (Fig 15). */
Weighted
makeWeighted(bool byCols)
{
    Weighted w;
    ProgramBuilder b(byCols ? "sumWeightedCols" : "sumWeightedRows");
    w.m = b.inF64("m");
    w.v = b.inF64("v");
    w.r = b.paramI64("R");
    w.c = b.paramI64("C");
    w.out = b.outF64("out");
    Arr m = w.m, v = w.v;
    Ex r = w.r, c = w.c;
    if (byCols) {
        b.map(c, w.out, [&](Body &fn, Ex j) {
            Arr temp = fn.zipWith(
                r, [&](Body &, Ex i) { return m(i * c + j) * v(i); });
            return fn.reduce(r, Op::Add,
                             [&](Body &, Ex i) { return temp(i); });
        });
    } else {
        b.map(r, w.out, [&](Body &fn, Ex i) {
            Arr temp = fn.zipWith(
                c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
            return fn.reduce(c, Op::Add,
                             [&](Body &, Ex j) { return temp(j); });
        });
    }
    w.prog = std::make_shared<Program>(b.build());
    return w;
}

TEST(PreallocPlan, LayoutFollowsDefiningLevelDim)
{
    Weighted w = makeWeighted(false);
    MappingDecision innerX;
    innerX.levels = {{1, 4, SpanType::one()}, {0, 64, SpanType::all()}};
    auto plans = planLocalArrays(*w.prog, innerX);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].mode, LocalArrayPlan::Mode::Prealloc);
    EXPECT_EQ(plans[0].layout, LocalArrayPlan::Layout::Contiguous);
    EXPECT_EQ(plans[0].definingLevel, 1);

    MappingDecision innerY;
    innerY.levels = {{0, 64, SpanType::one()}, {1, 4, SpanType::all()}};
    plans = planLocalArrays(*w.prog, innerY);
    EXPECT_EQ(plans[0].layout, LocalArrayPlan::Layout::Interleaved);
}

TEST(PreallocPlan, DisabledFallsBackToMalloc)
{
    Weighted w = makeWeighted(false);
    MappingDecision d;
    d.levels = {{1, 4, SpanType::one()}, {0, 64, SpanType::all()}};
    PreallocOptions opts;
    opts.enable = false;
    auto plans = planLocalArrays(*w.prog, d, opts);
    EXPECT_EQ(plans[0].mode, LocalArrayPlan::Mode::ThreadMalloc);
}

TEST(PreallocPlan, FixedLayoutWhenLayoutOptOff)
{
    Weighted w = makeWeighted(false);
    MappingDecision innerY;
    innerY.levels = {{0, 64, SpanType::one()}, {1, 4, SpanType::all()}};
    PreallocOptions opts;
    opts.layoutFromMapping = false;
    auto plans = planLocalArrays(*w.prog, innerY, opts);
    EXPECT_EQ(plans[0].mode, LocalArrayPlan::Mode::Prealloc);
    EXPECT_EQ(plans[0].layout, LocalArrayPlan::Layout::Contiguous)
        << "fixed row-major strategy of the Fig 16 middle bar";
}

TEST(PreallocPlan, DynamicSizeForcesMalloc)
{
    // Inner allocation whose size depends on the outer index cannot be
    // uniformly preallocated.
    ProgramBuilder b("jagged");
    Arr start = b.inI64("start");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex cnt = fn.let("cnt", start(i + 1) - start(i));
        Arr temp = fn.map(cnt, [&](Body &, Ex j) {
            return vals(start(i) + j) * 2.0;
        });
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();
    MappingDecision d;
    d.levels = {{1, 4, SpanType::one()}, {0, 32, SpanType::all()}};
    auto plans = planLocalArrays(p, d);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].mode, LocalArrayPlan::Mode::ThreadMalloc);
}

//
// Shared-memory prefetch detection (V-B).
//

TEST(SmemPrefetch, Fig8OuterReadIsPrefetched)
{
    // Fig 8: array1D(i) read at the outer level, array2D(i,j) inside.
    ProgramBuilder b("fig8");
    Arr a1 = b.inF64("array1D");
    Arr a2 = b.inF64("array2D");
    Ex n = b.paramI64("I"), m = b.paramI64("J");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex scale = fn.let("scale", a1(i));
        return fn.reduce(m, Op::Add, [&](Body &, Ex j) {
            return a2(i * m + j) * scale;
        });
    });
    Program p = b.build();

    AnalysisEnv env;
    env.prog = &p;
    MappingDecision d;
    d.levels = {{1, 16, SpanType::one()}, {0, 64, SpanType::all()}};
    PrefetchPlan plan = findPrefetchable(p, d, env);
    EXPECT_EQ(plan.sites.size(), 1u);
    EXPECT_GT(plan.sharedBytes, 0);

    // If the outer level is already x, no prefetch is needed.
    MappingDecision outerX;
    outerX.levels = {{0, 64, SpanType::one()}, {1, 16, SpanType::all()}};
    EXPECT_TRUE(findPrefetchable(p, outerX, env).sites.empty());

    // Without inner x-lanes there is nothing to prefetch with.
    MappingDecision oneD;
    oneD.levels = {{0, 256, SpanType::one()}, {1, 1, SpanType::all()}};
    EXPECT_TRUE(findPrefetchable(p, oneD, env).sites.empty());
}

TEST(SmemPrefetch, InnermostReadsNotPrefetched)
{
    ProgramBuilder b("plain");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();
    AnalysisEnv env;
    env.prog = &p;
    MappingDecision d;
    d.levels = {{1, 16, SpanType::one()}, {0, 64, SpanType::all()}};
    EXPECT_TRUE(findPrefetchable(p, d, env).sites.empty());
}

//
// End-to-end Fig 16 ordering on the simulator.
//

double
runWeighted(const Weighted &w, int64_t R, int64_t C,
            const PreallocOptions &popts)
{
    static std::vector<double> m, v;
    if (static_cast<int64_t>(m.size()) < R * C) {
        Rng rng(2);
        m.resize(R * C);
        for (auto &x : m)
            x = rng.uniform(0, 1);
    }
    const int64_t vlen = std::max(R, C);
    if (static_cast<int64_t>(v.size()) < vlen) {
        Rng rng(3);
        v.resize(vlen);
        for (auto &x : v)
            x = rng.uniform(0, 1);
    }
    const bool byCols = w.prog->name() == "sumWeightedCols";
    std::vector<double> out(byCols ? C : R, 0.0);
    Bindings args(*w.prog);
    args.scalar(w.r, static_cast<double>(R));
    args.scalar(w.c, static_cast<double>(C));
    args.array(w.m, m);
    args.array(w.v, v);
    args.array(w.out, out);

    // Hold the mapping fixed across the ablation (the Fig 16 bars vary
    // only the allocation handling): use the full-optimization mapping.
    CompileOptions base;
    base.paramValues = {{w.r.ref()->varId, static_cast<double>(R)},
                        {w.c.ref()->varId, static_cast<double>(C)}};
    CompileResult full = compileProgram(*w.prog, teslaK20c(), base);

    CompileOptions copts = base;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = full.spec.mapping;
    copts.prealloc = popts;
    return Gpu().compileAndRun(*w.prog, args, copts).totalMs;
}

TEST(Fig16Ordering, PreallocBeatsMallocAndLayoutMatters)
{
    Weighted cols = makeWeighted(true);
    PreallocOptions mallocOpts;
    mallocOpts.enable = false;
    PreallocOptions noLayout;
    noLayout.layoutFromMapping = false;
    PreallocOptions full;

    const int64_t R = 1024, C = 1024;
    const double tMalloc = runWeighted(cols, R, C, mallocOpts);
    const double tNoLayout = runWeighted(cols, R, C, noLayout);
    const double tFull = runWeighted(cols, R, C, full);

    EXPECT_GT(tMalloc, 2 * tNoLayout)
        << "per-thread malloc dominates (Fig 16 right bar)";
    EXPECT_GT(tNoLayout, 1.5 * tFull)
        << "wrong temp layout is uncoalesced (Fig 16 middle bar)";
}

TEST(Fig16Ordering, RowsVariantInsensitiveToLayoutChoice)
{
    // sumWeightedRows with the fixed row-major layout is already
    // coalesced: layout optimization should not change much.
    Weighted rows = makeWeighted(false);
    PreallocOptions noLayout;
    noLayout.layoutFromMapping = false;
    PreallocOptions full;
    const double tNoLayout = runWeighted(rows, 1024, 1024, noLayout);
    const double tFull = runWeighted(rows, 1024, 1024, full);
    EXPECT_LT(tNoLayout / tFull, 1.3);
    EXPECT_GT(tNoLayout / tFull, 0.7);
}

TEST(Fig16Ordering, BothVariantsConvergeWithFullOpt)
{
    // Paper: "After choosing the optimal layout ... both execute in the
    // same amount of time for a given input size."
    Weighted rows = makeWeighted(false);
    Weighted cols = makeWeighted(true);
    const double tRows = runWeighted(rows, 1024, 1024, {});
    const double tCols = runWeighted(cols, 1024, 1024, {});
    EXPECT_LT(tRows / tCols, 1.6);
    EXPECT_GT(tRows / tCols, 0.6);
}

} // namespace
} // namespace npp
