/**
 * @file
 * Tests for the sequential reference interpreter — the functional ground
 * truth all mapped executions are compared against.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "ir/builder.h"
#include "runtime/reference.h"
#include "support/rng.h"

namespace npp {
namespace {

TEST(Reference, SumRows)
{
    const int64_t R = 13, C = 37;
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C);
    std::iota(mData.begin(), mData.end(), 0.0);
    std::vector<double> outData(R, -1.0);

    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.array(m, mData);
    args.array(out, outData);

    ReferenceInterp interp;
    WorkCounts wc = interp.run(p, args);

    for (int64_t i = 0; i < R; i++) {
        double expect = 0;
        for (int64_t j = 0; j < C; j++)
            expect += mData[i * C + j];
        EXPECT_DOUBLE_EQ(outData[i], expect) << "row " << i;
    }
    EXPECT_EQ(wc.iterations, static_cast<uint64_t>(R + R * C));
    EXPECT_GE(wc.bytesRead, static_cast<uint64_t>(R * C * 8));
    EXPECT_EQ(wc.bytesWritten, static_cast<uint64_t>(R * 8));
}

TEST(Reference, RootReduceWritesSingleElement)
{
    const int64_t N = 1000;
    ProgramBuilder b("total");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Max, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();

    Rng rng(7);
    std::vector<double> data(N);
    double expectMax = -1e300;
    for (auto &v : data) {
        v = rng.uniform(-100, 100);
        expectMax = std::max(expectMax, v);
    }
    std::vector<double> outData(1, 0.0);

    Bindings args(p);
    args.scalar(n, N);
    args.array(in, data);
    args.array(out, outData);
    ReferenceInterp().run(p, args);
    EXPECT_DOUBLE_EQ(outData[0], expectMax);
}

TEST(Reference, NestedMapThenReduce)
{
    // sumWeightedRows (Fig 15 shape): temp = zipWith(row, v); reduce temp.
    const int64_t R = 8, C = 16;
    ProgramBuilder b("sumWeightedRows");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C), vData(C), outData(R);
    Rng rng(11);
    for (auto &x : mData)
        x = rng.uniform(0, 1);
    for (auto &x : vData)
        x = rng.uniform(0, 1);

    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.array(m, mData);
    args.array(v, vData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    for (int64_t i = 0; i < R; i++) {
        double expect = 0;
        for (int64_t j = 0; j < C; j++)
            expect += mData[i * C + j] * vData[j];
        EXPECT_NEAR(outData[i], expect, 1e-9);
    }
}

TEST(Reference, DynamicInnerSize)
{
    // CSR-style: per-row segment sizes differ (BFS/PageRank shape).
    ProgramBuilder b("segSum");
    Arr start = b.inI64("start");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex begin = fn.let("begin", start(i));
        Ex cnt = fn.let("cnt", start(i + 1) - begin);
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex j) { return vals(begin + j); });
    });
    Program p = b.build();

    std::vector<double> startData = {0, 3, 3, 7, 10};
    std::vector<double> valsData = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(start, startData);
    args.array(vals, valsData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 6);   // 1+2+3
    EXPECT_DOUBLE_EQ(outData[1], 0);   // empty segment
    EXPECT_DOUBLE_EQ(outData[2], 22);  // 4+5+6+7
    EXPECT_DOUBLE_EQ(outData[3], 27);  // 8+9+10
}

TEST(Reference, ForeachWithBranches)
{
    ProgramBuilder b("threshold");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.foreach(n, [&](Body &fn, Ex i) {
        fn.branch(
            in(i) >= 0.0,
            [&](Body &t) { t.store(out, i, in(i)); },
            [&](Body &e) { e.store(out, i, Ex(0.0)); });
    });
    Program p = b.build();

    std::vector<double> inData = {-2, 5, -0.5, 3};
    std::vector<double> outData(4, -99);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(in, inData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 0);
    EXPECT_DOUBLE_EQ(outData[1], 5);
    EXPECT_DOUBLE_EQ(outData[2], 0);
    EXPECT_DOUBLE_EQ(outData[3], 3);
}

TEST(Reference, SeqLoopWithBreak)
{
    // Escape-time iteration: count steps until value exceeds a bound.
    ProgramBuilder b("escape");
    Arr c = b.inF64("c");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Mut x = fn.mut("x", Ex(0.0));
        Mut steps = fn.mut("steps", Ex(0.0));
        fn.seqLoop(
            Ex(100),
            [&](Body &body, Ex) {
                body.assign(x, x.ex() + c(i));
                body.assign(steps, steps.ex() + 1.0);
            },
            x.ex() >= 10.0);
        return steps.ex();
    });
    Program p = b.build();

    std::vector<double> cData = {1.0, 2.5, 20.0, 0.0};
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(c, cData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 10);  // 10 steps of +1 to reach 10
    EXPECT_DOUBLE_EQ(outData[1], 4);   // 4 steps of +2.5
    EXPECT_DOUBLE_EQ(outData[2], 1);   // immediately past bound
    EXPECT_DOUBLE_EQ(outData[3], 100); // never escapes: full trip count
}

TEST(Reference, FilterRoot)
{
    ProgramBuilder b("positives");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    Arr count = b.outF64("count");
    b.filter(n, out, count, [&](Body &, Ex i) {
        return FilterItem{in(i) > 0.0, in(i) * 10.0};
    });
    Program p = b.build();

    std::vector<double> inData = {1, -1, 2, -2, 3};
    std::vector<double> outData(5, 0.0), countData(1, 0.0);
    Bindings args(p);
    args.scalar(n, 5);
    args.array(in, inData);
    args.array(out, outData);
    args.array(count, countData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(countData[0], 3);
    EXPECT_DOUBLE_EQ(outData[0], 10);
    EXPECT_DOUBLE_EQ(outData[1], 20);
    EXPECT_DOUBLE_EQ(outData[2], 30) << "order preserved";
}

TEST(Reference, GroupByHistogram)
{
    ProgramBuilder b("hist");
    Arr keys = b.inI64("keys");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), Ex(1.0)};
    });
    Program p = b.build();

    std::vector<double> keyData = {0, 2, 2, 1, 2, 0};
    std::vector<double> outData(3, 99.0); // interpreter must reset these
    Bindings args(p);
    args.scalar(n, 6);
    args.array(keys, keyData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 2);
    EXPECT_DOUBLE_EQ(outData[1], 1);
    EXPECT_DOUBLE_EQ(outData[2], 3);
}

TEST(Reference, GroupByMinCombiner)
{
    ProgramBuilder b("minByKey");
    Arr keys = b.inI64("keys");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Min, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), vals(i)};
    });
    Program p = b.build();

    std::vector<double> keyData = {0, 1, 0, 1};
    std::vector<double> valData = {5, 7, 3, 9};
    std::vector<double> outData(2);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(keys, keyData);
    args.array(vals, valData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 3);
    EXPECT_DOUBLE_EQ(outData[1], 7);
}

TEST(ReferenceDeath, OutOfBoundsReadIsCaught)
{
    ProgramBuilder b("oob");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i + 1); });
    Program p = b.build();

    std::vector<double> inData(4), outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(in, inData);
    args.array(out, outData);
    EXPECT_DEATH(ReferenceInterp().run(p, args), "out of bounds");
}

TEST(ReferenceDeath, UnboundParamIsFatal)
{
    ProgramBuilder b("unbound");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();

    std::vector<double> inData(4), outData(4);
    Bindings args(p);
    args.array(in, inData);
    args.array(out, outData);
    EXPECT_DEATH(ReferenceInterp().run(p, args), "not bound");
}

} // namespace
} // namespace npp
