/**
 * @file
 * Tests for the sequential reference interpreter — the functional ground
 * truth all mapped executions are compared against.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "ir/builder.h"
#include "runtime/reference.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

/** Run `p` both through the reference interpreter and through the full
 *  compile-and-simulate pipeline, returning (reference, simulated)
 *  copies of `out`. `bind` seeds everything except the output array. */
std::pair<std::vector<double>, std::vector<double>>
runBothWays(const Program &p, Arr out, int64_t outSize,
            const std::function<void(Bindings &)> &bind)
{
    std::vector<double> refOut(outSize, -1.0);
    {
        Bindings args(p);
        bind(args);
        args.array(out, refOut);
        ReferenceInterp().run(p, args);
    }
    std::vector<double> simOut(outSize, -1.0);
    {
        Gpu gpu;
        CompileResult res = compileProgram(p, gpu.config());
        Bindings args(p);
        bind(args);
        args.array(out, simOut);
        gpu.run(res.spec, args);
    }
    return {refOut, simOut};
}

TEST(Reference, SumRows)
{
    const int64_t R = 13, C = 37;
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C);
    std::iota(mData.begin(), mData.end(), 0.0);
    std::vector<double> outData(R, -1.0);

    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.array(m, mData);
    args.array(out, outData);

    ReferenceInterp interp;
    WorkCounts wc = interp.run(p, args);

    for (int64_t i = 0; i < R; i++) {
        double expect = 0;
        for (int64_t j = 0; j < C; j++)
            expect += mData[i * C + j];
        EXPECT_DOUBLE_EQ(outData[i], expect) << "row " << i;
    }
    EXPECT_EQ(wc.iterations, static_cast<uint64_t>(R + R * C));
    EXPECT_GE(wc.bytesRead, static_cast<uint64_t>(R * C * 8));
    EXPECT_EQ(wc.bytesWritten, static_cast<uint64_t>(R * 8));
}

TEST(Reference, RootReduceWritesSingleElement)
{
    const int64_t N = 1000;
    ProgramBuilder b("total");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Max, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();

    Rng rng(7);
    std::vector<double> data(N);
    double expectMax = -1e300;
    for (auto &v : data) {
        v = rng.uniform(-100, 100);
        expectMax = std::max(expectMax, v);
    }
    std::vector<double> outData(1, 0.0);

    Bindings args(p);
    args.scalar(n, N);
    args.array(in, data);
    args.array(out, outData);
    ReferenceInterp().run(p, args);
    EXPECT_DOUBLE_EQ(outData[0], expectMax);
}

TEST(Reference, NestedMapThenReduce)
{
    // sumWeightedRows (Fig 15 shape): temp = zipWith(row, v); reduce temp.
    const int64_t R = 8, C = 16;
    ProgramBuilder b("sumWeightedRows");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C), vData(C), outData(R);
    Rng rng(11);
    for (auto &x : mData)
        x = rng.uniform(0, 1);
    for (auto &x : vData)
        x = rng.uniform(0, 1);

    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.array(m, mData);
    args.array(v, vData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    for (int64_t i = 0; i < R; i++) {
        double expect = 0;
        for (int64_t j = 0; j < C; j++)
            expect += mData[i * C + j] * vData[j];
        EXPECT_NEAR(outData[i], expect, 1e-9);
    }
}

TEST(Reference, DynamicInnerSize)
{
    // CSR-style: per-row segment sizes differ (BFS/PageRank shape).
    ProgramBuilder b("segSum");
    Arr start = b.inI64("start");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex begin = fn.let("begin", start(i));
        Ex cnt = fn.let("cnt", start(i + 1) - begin);
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex j) { return vals(begin + j); });
    });
    Program p = b.build();

    std::vector<double> startData = {0, 3, 3, 7, 10};
    std::vector<double> valsData = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(start, startData);
    args.array(vals, valsData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 6);   // 1+2+3
    EXPECT_DOUBLE_EQ(outData[1], 0);   // empty segment
    EXPECT_DOUBLE_EQ(outData[2], 22);  // 4+5+6+7
    EXPECT_DOUBLE_EQ(outData[3], 27);  // 8+9+10
}

TEST(Reference, ForeachWithBranches)
{
    ProgramBuilder b("threshold");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.foreach(n, [&](Body &fn, Ex i) {
        fn.branch(
            in(i) >= 0.0,
            [&](Body &t) { t.store(out, i, in(i)); },
            [&](Body &e) { e.store(out, i, Ex(0.0)); });
    });
    Program p = b.build();

    std::vector<double> inData = {-2, 5, -0.5, 3};
    std::vector<double> outData(4, -99);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(in, inData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 0);
    EXPECT_DOUBLE_EQ(outData[1], 5);
    EXPECT_DOUBLE_EQ(outData[2], 0);
    EXPECT_DOUBLE_EQ(outData[3], 3);
}

TEST(Reference, SeqLoopWithBreak)
{
    // Escape-time iteration: count steps until value exceeds a bound.
    ProgramBuilder b("escape");
    Arr c = b.inF64("c");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Mut x = fn.mut("x", Ex(0.0));
        Mut steps = fn.mut("steps", Ex(0.0));
        fn.seqLoop(
            Ex(100),
            [&](Body &body, Ex) {
                body.assign(x, x.ex() + c(i));
                body.assign(steps, steps.ex() + 1.0);
            },
            x.ex() >= 10.0);
        return steps.ex();
    });
    Program p = b.build();

    std::vector<double> cData = {1.0, 2.5, 20.0, 0.0};
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(c, cData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 10);  // 10 steps of +1 to reach 10
    EXPECT_DOUBLE_EQ(outData[1], 4);   // 4 steps of +2.5
    EXPECT_DOUBLE_EQ(outData[2], 1);   // immediately past bound
    EXPECT_DOUBLE_EQ(outData[3], 100); // never escapes: full trip count
}

TEST(Reference, FilterRoot)
{
    ProgramBuilder b("positives");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    Arr count = b.outF64("count");
    b.filter(n, out, count, [&](Body &, Ex i) {
        return FilterItem{in(i) > 0.0, in(i) * 10.0};
    });
    Program p = b.build();

    std::vector<double> inData = {1, -1, 2, -2, 3};
    std::vector<double> outData(5, 0.0), countData(1, 0.0);
    Bindings args(p);
    args.scalar(n, 5);
    args.array(in, inData);
    args.array(out, outData);
    args.array(count, countData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(countData[0], 3);
    EXPECT_DOUBLE_EQ(outData[0], 10);
    EXPECT_DOUBLE_EQ(outData[1], 20);
    EXPECT_DOUBLE_EQ(outData[2], 30) << "order preserved";
}

TEST(Reference, GroupByHistogram)
{
    ProgramBuilder b("hist");
    Arr keys = b.inI64("keys");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), Ex(1.0)};
    });
    Program p = b.build();

    std::vector<double> keyData = {0, 2, 2, 1, 2, 0};
    std::vector<double> outData(3, 99.0); // interpreter must reset these
    Bindings args(p);
    args.scalar(n, 6);
    args.array(keys, keyData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 2);
    EXPECT_DOUBLE_EQ(outData[1], 1);
    EXPECT_DOUBLE_EQ(outData[2], 3);
}

TEST(Reference, GroupByMinCombiner)
{
    ProgramBuilder b("minByKey");
    Arr keys = b.inI64("keys");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Min, out, [&](Body &, Ex i) {
        return KeyedValue{keys(i), vals(i)};
    });
    Program p = b.build();

    std::vector<double> keyData = {0, 1, 0, 1};
    std::vector<double> valData = {5, 7, 3, 9};
    std::vector<double> outData(2);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(keys, keyData);
    args.array(vals, valData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 3);
    EXPECT_DOUBLE_EQ(outData[1], 7);
}

// Parity tests per nested pattern kind: the reference interpreter and
// the mapped simulation must agree on every executable nesting. These
// pin down the interpreter's nested-pattern dispatch (reference.cc);
// structurally incomplete nested Filter/GroupBy (missing the kept-count
// scalar / key-domain size) are covered by the validation death tests
// below.

TEST(ReferenceParity, NestedMap)
{
    const int64_t R = 6, C = 12;
    ProgramBuilder b("nestedMap");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp =
            fn.map(c, [&](Body &, Ex j) { return m(i * c + j) * 2.0; });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C);
    Rng rng(5);
    for (auto &x : mData)
        x = rng.uniform(0, 1);
    auto [refOut, simOut] =
        runBothWays(p, out, R, [&](Bindings &args) {
            args.scalar(r, R);
            args.scalar(c, C);
            args.array(m, mData);
        });
    for (int64_t i = 0; i < R; i++)
        EXPECT_NEAR(refOut[i], simOut[i], 1e-9) << "row " << i;
}

TEST(ReferenceParity, NestedZipWith)
{
    const int64_t R = 5, C = 9;
    ProgramBuilder b("nestedZip");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Max,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C), vData(C);
    Rng rng(6);
    for (auto &x : mData)
        x = rng.uniform(-1, 1);
    for (auto &x : vData)
        x = rng.uniform(0, 2);
    auto [refOut, simOut] =
        runBothWays(p, out, R, [&](Bindings &args) {
            args.scalar(r, R);
            args.scalar(c, C);
            args.array(m, mData);
            args.array(v, vData);
        });
    for (int64_t i = 0; i < R; i++)
        EXPECT_NEAR(refOut[i], simOut[i], 1e-9) << "row " << i;
}

TEST(ReferenceParity, NestedReduce)
{
    const int64_t R = 7, C = 11;
    ProgramBuilder b("nestedReduce");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();

    std::vector<double> mData(R * C);
    Rng rng(7);
    for (auto &x : mData)
        x = rng.uniform(0, 1);
    auto [refOut, simOut] =
        runBothWays(p, out, R, [&](Bindings &args) {
            args.scalar(r, R);
            args.scalar(c, C);
            args.array(m, mData);
        });
    for (int64_t i = 0; i < R; i++)
        EXPECT_NEAR(refOut[i], simOut[i], 1e-9) << "row " << i;
}

TEST(ReferenceParity, NestedForeach)
{
    const int64_t R = 6, C = 10;
    ProgramBuilder b("nestedForeach");
    Arr in = b.inF64("in");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    Ex cp = c;
    Arr inn = in;
    b.foreach(r, [&](Body &outer, Ex i) {
        outer.foreach(cp, [&](Body &fn, Ex j) {
            Ex lin = fn.let("lin", Ex(i) * cp + j);
            fn.store(out, lin, inn(lin) + 1.0);
        });
    });
    Program p = b.build();

    std::vector<double> inData(R * C);
    Rng rng(8);
    for (auto &x : inData)
        x = rng.uniform(0, 1);
    auto [refOut, simOut] =
        runBothWays(p, out, R * C, [&](Bindings &args) {
            args.scalar(r, R);
            args.scalar(c, C);
            args.array(in, inData);
        });
    for (int64_t i = 0; i < R * C; i++)
        EXPECT_NEAR(refOut[i], simOut[i], 1e-9) << "elem " << i;
}

TEST(Reference, NestedFilterCompactsInOrder)
{
    // Per row: keep the positive entries (compacted, order preserved),
    // then sum the kept prefix.
    const int64_t R = 4, C = 6;
    ProgramBuilder b("rowPositives");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Filtered kept = fn.filter(c, [&](Body &, Ex j) {
            return FilterItem{m(i * c + j) > 0.0, m(i * c + j)};
        });
        return fn.reduce(kept.count, Op::Add, [&](Body &, Ex j) {
            return kept.items(j);
        });
    });
    Program p = b.build();

    std::vector<double> mData = {
        1, -1, 2, -2, 3, -3,   // row 0: 1+2+3
        -1, -2, -3, -4, -5, -6, // row 1: all rejected
        1, 2, 3, 4, 5, 6,       // row 2: all kept
        -7, 8, -9, 10, -11, 12, // row 3: 8+10+12
    };
    std::vector<double> outData(R, -1.0);
    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.array(m, mData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 6);
    EXPECT_DOUBLE_EQ(outData[1], 0) << "empty kept prefix sums to 0";
    EXPECT_DOUBLE_EQ(outData[2], 21);
    EXPECT_DOUBLE_EQ(outData[3], 30);
}

TEST(Reference, NestedGroupBySeedsIdentityPerInvocation)
{
    // Per row: histogram the row's keys, then take the fullest bin.
    // Bins must re-seed to the combiner identity on every outer
    // iteration (stale counts from row i-1 would inflate row i).
    const int64_t R = 3, C = 6, K = 4;
    ProgramBuilder b("rowHistMax");
    Arr keys = b.inI64("keys");
    Ex r = b.paramI64("R"), c = b.paramI64("C"), k = b.paramI64("K");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr hist = fn.groupBy(c, k, Op::Add, [&](Body &, Ex j) {
            return KeyedValue{keys(i * c + j), Ex(1.0)};
        });
        return fn.reduce(k, Op::Max,
                         [&](Body &, Ex g) { return hist(g); });
    });
    Program p = b.build();

    std::vector<double> keyData = {
        0, 0, 0, 1, 2, 3, // row 0: max bin 3
        0, 1, 2, 3, 0, 1, // row 1: max bin 2
        3, 3, 3, 3, 3, 3, // row 2: max bin 6
    };
    std::vector<double> outData(R, -1.0);
    Bindings args(p);
    args.scalar(r, R);
    args.scalar(c, C);
    args.scalar(k, K);
    args.array(keys, keyData);
    args.array(out, outData);
    ReferenceInterp().run(p, args);

    EXPECT_DOUBLE_EQ(outData[0], 3);
    EXPECT_DOUBLE_EQ(outData[1], 2);
    EXPECT_DOUBLE_EQ(outData[2], 6);
}

TEST(ReferenceDeath, NestedGroupByKeyOutsideDomain)
{
    const int64_t C = 4, K = 2;
    ProgramBuilder b("badKeys");
    Arr keys = b.inI64("keys");
    Ex n = b.paramI64("n"), k = b.paramI64("K");
    Arr out = b.outF64("out");
    b.map(Ex(1), out, [&](Body &fn, Ex) {
        Arr hist = fn.groupBy(n, k, Op::Add, [&](Body &, Ex j) {
            return KeyedValue{keys(j), Ex(1.0)};
        });
        return fn.reduce(k, Op::Add,
                         [&](Body &, Ex g) { return hist(g); });
    });
    Program p = b.build();

    std::vector<double> keyData = {0, 1, 3, 1}; // 3 >= K
    std::vector<double> outData(1);
    Bindings args(p);
    args.scalar(n, C);
    args.scalar(k, K);
    args.array(keys, keyData);
    args.array(out, outData);
    EXPECT_DEATH(ReferenceInterp().run(p, args), "outside key domain");
}

/** Graft a hand-built nested pattern of `kind` into the root body of a
 *  freshly built one-level map program, bypassing ProgramBuilder (which
 *  only exposes root-level filter/groupBy). */
Program
programWithGraftedNested(PatternKind kind, Ex *nOut, Arr *outOut)
{
    ProgramBuilder b("grafted");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex) { return Ex(0.0); });
    Program p = b.build();
    *nOut = n;
    *outOut = out;

    VarInfo iv;
    iv.name = "gi";
    iv.role = VarRole::Index;
    const int ivId = p.addVar(iv);
    VarInfo rv;
    rv.name = "gout";
    rv.role = VarRole::ArrayLocal;
    const int rvId = p.addVar(rv);

    auto nested = std::make_unique<Pattern>();
    nested->kind = kind;
    nested->indexVar = ivId;
    nested->size = Ex(4).ref();
    nested->yield = Ex(1.0).ref();
    nested->filterPred = Ex(1.0).ref();
    nested->key = Ex(0).ref();

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = rvId;
    stmt->pattern = std::move(nested);
    p.root().body.push_back(std::move(stmt));
    return p;
}

TEST(ReferenceDeath, NestedFilterWithoutCountRejectedByValidate)
{
    Ex n;
    Arr out;
    Program p = programWithGraftedNested(PatternKind::Filter, &n, &out);
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(out, outData);
    // run() validates up front: the structural diagnostic fires instead
    // of the interpreter's mid-run "validator has a hole" panic. The
    // grafted filter has no kept-count scalar local (builder.filter
    // always attaches one).
    EXPECT_DEATH(ReferenceInterp().run(p, args),
                 "nested filter needs a kept-count scalar local");
}

TEST(ReferenceDeath, NestedGroupByWithoutDomainRejectedByValidate)
{
    Ex n;
    Arr out;
    Program p = programWithGraftedNested(PatternKind::GroupBy, &n, &out);
    std::vector<double> outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(out, outData);
    // The grafted groupBy has no key-domain size, so its output
    // allocation is unknowable (builder.groupBy always sets one).
    EXPECT_DEATH(ReferenceInterp().run(p, args),
                 "nested groupBy needs a key-domain size");
}

TEST(ReferenceDeath, OutOfBoundsReadIsCaught)
{
    ProgramBuilder b("oob");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i + 1); });
    Program p = b.build();

    std::vector<double> inData(4), outData(4);
    Bindings args(p);
    args.scalar(n, 4);
    args.array(in, inData);
    args.array(out, outData);
    EXPECT_DEATH(ReferenceInterp().run(p, args), "out of bounds");
}

TEST(ReferenceDeath, UnboundParamIsFatal)
{
    ProgramBuilder b("unbound");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();

    std::vector<double> inData(4), outData(4);
    Bindings args(p);
    args.array(in, inData);
    args.array(out, outData);
    EXPECT_DEATH(ReferenceInterp().run(p, args), "not bound");
}

} // namespace
} // namespace npp
