/**
 * @file
 * Unit tests for the expression evaluator: value semantics,
 * short-circuit logic, access-cost accounting, slot view transforms
 * (offset/stride and the decoupled trace addressing), and probe
 * reporting.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "runtime/eval.h"

namespace npp {
namespace {

/** Minimal program supplying a variable table for contexts. */
struct Fixture
{
    Fixture()
    {
        ProgramBuilder b("t");
        arr = b.inF64("arr");
        x = b.paramF64("x");
        y = b.paramF64("y");
        out = b.outF64("out");
        Arr a = arr;
        b.map(Ex(4), out, [&](Body &, Ex i) { return a(i); });
        prog = std::make_unique<Program>(b.build());
    }

    std::unique_ptr<Program> prog;
    Arr arr, out;
    Ex x, y;
};

TEST(Eval, ArithmeticAndSelect)
{
    Fixture f;
    EvalCtx ctx(*f.prog);
    ctx.scalars[f.x.ref()->varId] = 3.0;
    ctx.scalars[f.y.ref()->varId] = -2.0;

    EXPECT_DOUBLE_EQ(evalExpr((f.x + f.y * 2.0).ref(), ctx), -1.0);
    EXPECT_DOUBLE_EQ(evalExpr(sel(f.x > f.y, f.x, f.y).ref(), ctx), 3.0);
    EXPECT_DOUBLE_EQ(evalExpr(abs(f.y).ref(), ctx), 2.0);
    EXPECT_DOUBLE_EQ(evalExpr((f.x % 2.0).ref(), ctx), 1.0);
}

TEST(Eval, ShortCircuitLogicSkipsRightSide)
{
    // The right side of && / || reads out of bounds; short-circuiting
    // must avoid evaluating it.
    Fixture f;
    std::vector<double> data = {1, 2, 3, 4};
    EvalCtx ctx(*f.prog);
    ArraySlot slot;
    slot.data = data.data();
    slot.size = 4;
    slot.physSize = 4;
    ctx.arrays[f.arr.id()] = slot;

    Arr a = f.arr;
    Ex falseC(0.0), trueC(1.0);
    EXPECT_DOUBLE_EQ(evalExpr((falseC && a(Ex(99))).ref(), ctx), 0.0);
    EXPECT_DOUBLE_EQ(evalExpr((trueC || a(Ex(99))).ref(), ctx), 1.0);
}

TEST(Eval, OpCountIncludesAccessCost)
{
    Fixture f;
    std::vector<double> data = {5, 6, 7, 8};
    EvalCtx ctx(*f.prog);
    ArraySlot slot;
    slot.data = data.data();
    slot.size = 4;
    slot.physSize = 4;
    ctx.arrays[f.arr.id()] = slot;

    Arr a = f.arr;
    ctx.accessOpCost = 2;
    ctx.opCount = 0;
    evalExpr(a(Ex(1)).ref(), ctx);
    const uint64_t wrapper = ctx.opCount;

    ctx.accessOpCost = 1;
    ctx.opCount = 0;
    evalExpr(a(Ex(1)).ref(), ctx);
    EXPECT_EQ(wrapper, ctx.opCount + 1)
        << "wrapper accesses cost one extra op";
}

TEST(Eval, OffsetStrideViews)
{
    // Physical layout: interleaved (offset + logical * stride).
    Fixture f;
    std::vector<double> data = {0, 10, 20, 30, 40, 50, 60, 70};
    EvalCtx ctx(*f.prog);
    ArraySlot slot;
    slot.data = data.data();
    slot.size = 3;
    slot.physSize = 8;
    slot.offset = 1;
    slot.stride = 2;
    ctx.arrays[f.arr.id()] = slot;

    Arr a = f.arr;
    EXPECT_DOUBLE_EQ(evalExpr(a(Ex(0)).ref(), ctx), 10.0);
    EXPECT_DOUBLE_EQ(evalExpr(a(Ex(1)).ref(), ctx), 30.0);
    EXPECT_DOUBLE_EQ(evalExpr(a(Ex(2)).ref(), ctx), 50.0);
}

/** Probe capturing reported addresses. */
class RecordingProbe : public MemProbe
{
  public:
    void
    onAccess(int64_t, int, int64_t addr, bool isWrite, int) override
    {
        (isWrite ? writes : reads).push_back(addr);
    }

    std::vector<int64_t> reads, writes;
};

TEST(Eval, TraceAddressDecoupledFromStorage)
{
    // Data sits in a small buffer, but the probe sees the layout-accurate
    // virtual addresses (the preallocation trick).
    Fixture f;
    std::vector<double> data = {1, 2, 3, 4};
    EvalCtx ctx(*f.prog);
    RecordingProbe probe;
    ctx.probe = &probe;
    ArraySlot slot;
    slot.data = data.data();
    slot.size = 4;
    slot.physSize = 4;
    slot.addrBase = 1000;
    slot.addrStride = 64;
    ctx.arrays[f.arr.id()] = slot;

    Arr a = f.arr;
    EXPECT_DOUBLE_EQ(evalExpr(a(Ex(2)).ref(), ctx), 3.0)
        << "storage uses physIndex";
    ASSERT_EQ(probe.reads.size(), 1u);
    EXPECT_EQ(probe.reads[0], 1000 + 2 * 64) << "probe uses traceAddr";

    storeArray(-1, f.arr.id(), 1, 9.0, ctx);
    EXPECT_DOUBLE_EQ(data[1], 9.0);
    ASSERT_EQ(probe.writes.size(), 1u);
    EXPECT_EQ(probe.writes[0], 1000 + 64);
}

TEST(EvalDeath, NullAndUnboundAccessesPanic)
{
    Fixture f;
    EvalCtx ctx(*f.prog);
    EXPECT_DEATH(evalExpr(static_cast<const Expr *>(nullptr), ctx),
                 "null expression");
    Arr a = f.arr;
    EXPECT_DEATH(evalExpr(a(Ex(0)).ref(), ctx), "unbound array");
}

} // namespace
} // namespace npp
