/**
 * @file
 * Tests for the tracing/counter registry (support/trace.h): disabled
 * tracing records nothing, enabled tracing records spans and counters,
 * and both exporters emit well-formed JSON. The compile-time no-op
 * variant (NPP_TRACE_DISABLED) is covered by trace_disabled_test.cc,
 * which builds the same macros with the define set.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/parallel.h"
#include "support/trace.h"

namespace npp {
namespace {

/** Minimal structural JSON check: braces/brackets balance outside of
 *  string literals and the document is a single object. */
bool
looksLikeJson(const std::string &s)
{
    int depth = 0;
    bool inStr = false, esc = false;
    for (char c : s) {
        if (inStr) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"')
            inStr = true;
        else if (c == '{' || c == '[')
            depth++;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inStr && !s.empty() && s.front() == '{';
}

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
    void TearDown() override
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    ASSERT_FALSE(Trace::instance().enabled());
    {
        NPP_TRACE_SCOPE("test.disabled");
        NPP_TRACE_COUNT("test.disabled.count", 5);
    }
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
    EXPECT_EQ(Trace::instance().counterValue("test.disabled.count"), 0.0);
}

TEST_F(TraceTest, EnabledRecordsSpansAndCounters)
{
    Trace::instance().setEnabled(true);
    {
        NPP_TRACE_SCOPE("test.span");
        NPP_TRACE_COUNT("test.count", 2);
        NPP_TRACE_COUNT("test.count", 3);
    }
    EXPECT_EQ(Trace::instance().spanCount(), 1u);
    EXPECT_EQ(Trace::instance().counterValue("test.count"), 5.0);
    TraceTimerStat stat = Trace::instance().timerStat("test.span");
    EXPECT_EQ(stat.count, 1u);
    EXPECT_GE(stat.totalUs, 0.0);
    EXPECT_LE(stat.minUs, stat.maxUs);
}

TEST_F(TraceTest, SpanStraddlingEnableIsSkipped)
{
    // The gate is sampled at construction: a scope opened while tracing
    // is off records nothing even if tracing turns on before it closes.
    {
        ScopedTimer t("test.straddle");
        Trace::instance().setEnabled(true);
    }
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonWellFormed)
{
    Trace::instance().setEnabled(true);
    {
        NPP_TRACE_SCOPE("phase \"a\"\\b"); // exercises escaping
        NPP_TRACE_SCOPE("phase.inner");
    }
    const std::string json = Trace::instance().chromeTraceJson();
    EXPECT_TRUE(looksLikeJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\\\"a\\\""), std::string::npos);
}

TEST_F(TraceTest, FlatJsonWellFormed)
{
    Trace::instance().setEnabled(true);
    NPP_TRACE_COUNT("test.flat", 1);
    {
        NPP_TRACE_SCOPE("test.flat.span");
    }
    const std::string json = Trace::instance().flatJson();
    EXPECT_TRUE(looksLikeJson(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"timers\""), std::string::npos);
    EXPECT_NE(json.find("test.flat"), std::string::npos);
}

TEST_F(TraceTest, ClearResetsEverything)
{
    Trace::instance().setEnabled(true);
    NPP_TRACE_COUNT("test.clear", 1);
    {
        NPP_TRACE_SCOPE("test.clear.span");
    }
    Trace::instance().clear();
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
    EXPECT_EQ(Trace::instance().counterValue("test.clear"), 0.0);
    EXPECT_TRUE(Trace::instance().enabled()) << "clear keeps the gate";
}

TEST_F(TraceTest, ThreadSafeUnderTaskPool)
{
    Trace::instance().setEnabled(true);
    const int64_t N = 2000;
    parallelFor(0, N, [](int64_t) {
        NPP_TRACE_SCOPE("test.pool");
        NPP_TRACE_COUNT("test.pool.iters", 1);
    });
    // parallelFor itself records one job span + counter when pooled;
    // only the per-iteration counter has an exact expected value.
    EXPECT_EQ(Trace::instance().counterValue("test.pool.iters"),
              static_cast<double>(N));
    EXPECT_EQ(Trace::instance().timerStat("test.pool").count,
              static_cast<uint64_t>(N));
}

} // namespace
} // namespace npp
