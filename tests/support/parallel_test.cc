/**
 * @file
 * Tests for the host-side parallel substrate (support/parallel.h): chunked
 * parallelFor / parallelMap over the persistent task pool, deterministic
 * result ordering, exception propagation, the nested-use inline guard, and
 * the thread-count override used by the benches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace npp {
namespace {

/** Restore the default thread count after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { setParallelThreadCount(0); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce)
{
    const int64_t n = 10007; // prime: chunking never divides it evenly
    std::vector<std::atomic<int>> hits(n);
    parallelFor(0, n, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1,
                                               std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < n; i++)
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
}

TEST_F(ParallelTest, EmptyAndSingletonRanges)
{
    int calls = 0;
    parallelFor(5, 5, [&](int64_t) { calls++; });
    parallelFor(7, 3, [&](int64_t) { calls++; });
    EXPECT_EQ(calls, 0);
    parallelFor(41, 42, [&](int64_t i) {
        calls++;
        EXPECT_EQ(i, 41);
    });
    EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, MapResultsAreInInputOrder)
{
    // Results must land by input position, never by completion order.
    const int64_t n = 513;
    std::vector<int64_t> out = parallelMap<int64_t>(
        n, [](int64_t i) { return i * i; }, /*grain=*/7);
    for (int64_t i = 0; i < n; i++)
        ASSERT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST_F(ParallelTest, SerialAndParallelMapAgreeBitwise)
{
    const int64_t n = 1000;
    auto fn = [](int64_t i) {
        double acc = 0.0;
        for (int k = 0; k < 50; k++)
            acc += static_cast<double>(i + k) * 1e-3;
        return acc;
    };
    setParallelThreadCount(1);
    std::vector<double> serial = parallelMap<double>(n, fn);
    setParallelThreadCount(4);
    std::vector<double> parallel = parallelMap<double>(n, fn);
    EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller)
{
    setParallelThreadCount(4);
    EXPECT_THROW(parallelFor(0, 1000,
                             [](int64_t i) {
                                 if (i == 617)
                                     throw std::runtime_error("boom 617");
                             }),
                 std::runtime_error);
}

TEST_F(ParallelTest, FirstFailingChunkWinsDeterministically)
{
    // Multiple failing iterations: the rethrown exception must always be
    // the one from the lowest-index chunk, independent of scheduling.
    setParallelThreadCount(4);
    for (int round = 0; round < 20; round++) {
        std::string caught;
        try {
            parallelFor(
                0, 64,
                [](int64_t i) {
                    if (i % 16 == 3)
                        throw std::runtime_error("fail@" +
                                                 std::to_string(i / 16));
                },
                /*grain=*/16);
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        ASSERT_EQ(caught, "fail@0");
    }
}

TEST_F(ParallelTest, PoolSurvivesAnExceptionJob)
{
    setParallelThreadCount(4);
    try {
        parallelFor(0, 100, [](int64_t) { throw 1; });
    } catch (...) {
    }
    std::atomic<int64_t> sum{0};
    parallelFor(0, 100, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST_F(ParallelTest, NestedParallelForRunsInline)
{
    setParallelThreadCount(4);
    std::atomic<int> nestedInline{0};
    std::atomic<int> total{0};
    parallelFor(0, 8, [&](int64_t) {
        EXPECT_TRUE(inParallelRegion());
        // The nested call must run on this thread (inline), not deadlock
        // waiting for the busy pool.
        std::thread::id outer = std::this_thread::get_id();
        parallelFor(0, 4, [&](int64_t) {
            total.fetch_add(1);
            if (std::this_thread::get_id() == outer)
                nestedInline.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 8 * 4);
    EXPECT_EQ(nestedInline.load(), 8 * 4) << "nested bodies left the thread";
    EXPECT_FALSE(inParallelRegion());
}

TEST_F(ParallelTest, ThreadCountOverride)
{
    setParallelThreadCount(3);
    EXPECT_EQ(parallelThreadCount(), 3);
    setParallelThreadCount(0);
    EXPECT_GE(parallelThreadCount(), 1);
}

TEST_F(ParallelTest, SerialOverrideStaysOnCallingThread)
{
    setParallelThreadCount(1);
    const std::thread::id caller = std::this_thread::get_id();
    parallelFor(0, 64, [&](int64_t) {
        ASSERT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST_F(ParallelTest, GrainRespectedAsChunkFloor)
{
    // With grain=32 over 64 items and many threads, bodies observe at
    // most 2 distinct executing threads (2 chunks exist).
    setParallelThreadCount(8);
    std::mutex mu;
    std::set<std::thread::id> ids;
    parallelFor(
        0, 64,
        [&](int64_t) {
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        },
        /*grain=*/32);
    EXPECT_LE(ids.size(), 2u);
}

} // namespace
} // namespace npp
