/**
 * @file
 * Compile-time no-op check for the tracing macros: this binary is built
 * with NPP_TRACE_DISABLED (see tests/support/CMakeLists.txt), under
 * which NPP_TRACE_SCOPE / NPP_TRACE_COUNT must expand to nothing — even
 * with the registry gate forced on, instrumented code records no spans
 * and no counters.
 */

#include <gtest/gtest.h>

#include "support/trace.h"

#ifndef NPP_TRACE_DISABLED
#error "this test must be compiled with -DNPP_TRACE_DISABLED"
#endif

static_assert(!npp::kTraceCompiledIn,
              "NPP_TRACE_DISABLED must flip kTraceCompiledIn");

namespace npp {
namespace {

TEST(TraceDisabled, MacrosCompileToNothing)
{
    Trace::instance().setEnabled(true);
    Trace::instance().clear();
    {
        NPP_TRACE_SCOPE("compiled.out");
        NPP_TRACE_COUNT("compiled.out.count", 99);
    }
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
    EXPECT_EQ(Trace::instance().counterValue("compiled.out.count"), 0.0);
    Trace::instance().setEnabled(false);
}

} // namespace
} // namespace npp
