/**
 * @file
 * Unit tests for the support layer: deterministic RNG, statistics
 * helpers, and the string formatting used throughout diagnostics and
 * reports.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"

namespace npp {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        const double v = rng.uniform(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LT(v, 5);
    }
}

TEST(Rng, BelowInRangeAndCoversValues)
{
    Rng rng(9);
    bool seen[7] = {};
    for (int i = 0; i < 1000; i++) {
        const uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, GaussianRoughlyStandard)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; i++)
        stat.add(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_GT(stat.max(), 2.0);
    EXPECT_LT(stat.min(), -2.0);
}

TEST(Stats, RunningStatTracksExtremesAndMean)
{
    RunningStat s;
    for (double v : {3.0, -1.0, 7.0, 5.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.total(), 14.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, IntegerHelpers)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(96));
}

TEST(Strings, FmtSubstitution)
{
    EXPECT_EQ(fmt("a {} c {}", 1, "b"), "a 1 c b");
    EXPECT_EQ(fmt("no placeholders"), "no placeholders");
    EXPECT_EQ(fmt("{} {}", true, 2.5), "true 2.5");
    // More args than placeholders: appended.
    EXPECT_EQ(fmt("x {}", 1, 2), "x 1 2");
    // Fewer args than placeholders: literal braces remain.
    EXPECT_EQ(fmt("x {} {}", 1), "x 1 {}");
}

TEST(Strings, PaddingAndRepeat)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(repeat("ab", 3), "ababab");
    EXPECT_EQ(repeat("x", 0), "");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(ParseEnvInt, UnsetReturnsFallbackSilently)
{
    unsetenv("NPP_TEST_KNOB");
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
}

TEST(ParseEnvInt, ValidValueParses)
{
    setenv("NPP_TEST_KNOB", "42", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 42);
    setenv("NPP_TEST_KNOB", "  8  ", 1); // surrounding whitespace is fine
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 8);
    unsetenv("NPP_TEST_KNOB");
}

TEST(ParseEnvInt, GarbageFallsBack)
{
    setenv("NPP_TEST_KNOB", "abc", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    setenv("NPP_TEST_KNOB", "", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    setenv("NPP_TEST_KNOB", "12abc", 1); // trailing junk is not a number
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    unsetenv("NPP_TEST_KNOB");
}

TEST(ParseEnvInt, OutOfRangeFallsBack)
{
    setenv("NPP_TEST_KNOB", "0", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    setenv("NPP_TEST_KNOB", "-3", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    setenv("NPP_TEST_KNOB", "101", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    // strtoll overflow (ERANGE) must not wrap into the accepted range.
    setenv("NPP_TEST_KNOB", "99999999999999999999999999", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 7, 1, 100), 7);
    unsetenv("NPP_TEST_KNOB");
}

TEST(ParseEnvInt, NegativeValuesAllowedWhenRangeAllows)
{
    setenv("NPP_TEST_KNOB", "-5", 1);
    EXPECT_EQ(parseEnvInt("NPP_TEST_KNOB", 0, -10, 10), -5);
    unsetenv("NPP_TEST_KNOB");
}

TEST(ParseEnvString, UnsetAndBlankReturnFallback)
{
    unsetenv("NPP_TEST_STR");
    EXPECT_EQ(parseEnvString("NPP_TEST_STR"), "");
    EXPECT_EQ(parseEnvString("NPP_TEST_STR", "dflt"), "dflt");
    // Empty and whitespace-only values are indistinguishable from
    // unset: NPP_EVAL_CACHE_DIR="" must not enable the disk tier with
    // a relative-path-of-nothing directory.
    setenv("NPP_TEST_STR", "", 1);
    EXPECT_EQ(parseEnvString("NPP_TEST_STR", "dflt"), "dflt");
    setenv("NPP_TEST_STR", "   \t  ", 1);
    EXPECT_EQ(parseEnvString("NPP_TEST_STR", "dflt"), "dflt");
    unsetenv("NPP_TEST_STR");
}

TEST(ParseEnvString, ValuesAreTrimmedNotRewritten)
{
    setenv("NPP_TEST_STR", "  /tmp/cache dir  ", 1);
    EXPECT_EQ(parseEnvString("NPP_TEST_STR"), "/tmp/cache dir");
    setenv("NPP_TEST_STR", "plain", 1);
    EXPECT_EQ(parseEnvString("NPP_TEST_STR", "dflt"), "plain");
    unsetenv("NPP_TEST_STR");
}

TEST(ParseEnvBool, UnsetReturnsFallbackSilently)
{
    unsetenv("NPP_TEST_FLAG");
    EXPECT_TRUE(parseEnvBool("NPP_TEST_FLAG", true));
    EXPECT_FALSE(parseEnvBool("NPP_TEST_FLAG", false));
}

TEST(ParseEnvBool, AcceptedSpellings)
{
    for (const char *on : {"1", "true", "on", "yes", "TRUE", "On", " 1 "}) {
        setenv("NPP_TEST_FLAG", on, 1);
        EXPECT_TRUE(parseEnvBool("NPP_TEST_FLAG", false)) << on;
    }
    for (const char *off :
         {"0", "false", "off", "no", "FALSE", "Off", "  no  "}) {
        setenv("NPP_TEST_FLAG", off, 1);
        EXPECT_FALSE(parseEnvBool("NPP_TEST_FLAG", true)) << off;
    }
    unsetenv("NPP_TEST_FLAG");
}

TEST(ParseEnvBool, GarbageFallsBack)
{
    // The NPP_EVAL_CACHE=0 disable switch used to match only the literal
    // string "0"; every spelling here silently left the cache enabled.
    for (const char *bad : {"00", "disable", "2", "", "o ff", "falsey"}) {
        setenv("NPP_TEST_FLAG", bad, 1);
        EXPECT_TRUE(parseEnvBool("NPP_TEST_FLAG", true)) << bad;
        EXPECT_FALSE(parseEnvBool("NPP_TEST_FLAG", false)) << bad;
    }
    unsetenv("NPP_TEST_FLAG");
}

TEST(Strings, Join)
{
    std::vector<std::string> parts = {"a", "b", "c"};
    EXPECT_EQ(join(parts, ", "), "a, b, c");
    EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
    EXPECT_EQ(join(std::vector<int>{1, 2}, "-"), "1-2");
}

} // namespace
} // namespace npp
