/**
 * @file
 * NPP_TRACE_MAX_SPANS: the span-buffer cap is read from the environment
 * when the registry is first constructed, overflowing spans are dropped
 * (and counted), and the flat-JSON export names the cap and the drop
 * count. Runs as its own binary: the env var must be set before the
 * first Trace::instance() call of the process, so this cannot ride in
 * support_trace_test.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/trace.h"

namespace npp {
namespace {

TEST(TraceCap, EnvCapDropsOverflowingSpansAndExportsThem)
{
    Trace &t = Trace::instance(); // env read happens here, cap = 8
    ASSERT_EQ(t.maxSpans(), 8u);
    t.setEnabled(true);

    for (int i = 0; i < 20; i++) {
        const double us = static_cast<double>(i);
        t.span("cap.span", us, us + 0.5);
    }
    EXPECT_EQ(t.spanCount(), 8u);
    EXPECT_EQ(t.droppedSpans(), 12u);

    const std::string flat = t.flatJson();
    EXPECT_NE(flat.find("\"span_count\":8"), std::string::npos);
    EXPECT_NE(flat.find("\"max_spans\":8"), std::string::npos);
    EXPECT_NE(flat.find("\"dropped_spans\":12"), std::string::npos);

    // Timer statistics aggregate over the retained buffer only;
    // dropped spans are visible solely through droppedSpans().
    EXPECT_EQ(t.timerStat("cap.span").count, 8u);

    // clear() frees the buffer but keeps the cap.
    t.clear();
    EXPECT_EQ(t.spanCount(), 0u);
    EXPECT_EQ(t.droppedSpans(), 0u);
    EXPECT_EQ(t.maxSpans(), 8u);
    t.span("cap.span", 0.0, 1.0);
    EXPECT_EQ(t.spanCount(), 1u);
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    // Before any Trace::instance() call in this process.
    setenv("NPP_TRACE_MAX_SPANS", "8", /*overwrite=*/1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
