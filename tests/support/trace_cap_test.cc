/**
 * @file
 * NPP_TRACE_MAX_SPANS: the ring-buffer capacity is read from the
 * environment when the registry is first constructed; once the ring is
 * full each new span overwrites the oldest one (counted in
 * droppedSpans), so the export retains the newest window. Runs as its
 * own binary: the env var must be set before the first
 * Trace::instance() call of the process, so this cannot ride in
 * support_trace_test.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/trace.h"

namespace npp {
namespace {

TEST(TraceCap, RingOverwritesOldestSpansAndCountsThem)
{
    Trace &t = Trace::instance(); // env read happens here, capacity = 8
    ASSERT_EQ(t.maxSpans(), 8u);
    t.setEnabled(true);

    // 12 early spans under one name, then 8 late ones under another:
    // the ring must hold exactly the 8 newest and count the 12
    // overwritten (or never-retained) early spans as dropped.
    for (int i = 0; i < 12; i++) {
        const double us = static_cast<double>(i);
        t.span("cap.early", us, us + 0.5);
    }
    for (int i = 12; i < 20; i++) {
        const double us = static_cast<double>(i);
        t.span("cap.late", us, us + 0.5);
    }
    EXPECT_EQ(t.spanCount(), 8u);
    EXPECT_EQ(t.droppedSpans(), 12u);

    const std::string flat = t.flatJson();
    EXPECT_NE(flat.find("\"span_count\":8"), std::string::npos);
    EXPECT_NE(flat.find("\"max_spans\":8"), std::string::npos);
    EXPECT_NE(flat.find("\"dropped_spans\":12"), std::string::npos);

    // Newest-window semantics: every early span was overwritten; all 8
    // retained spans are the late ones.
    EXPECT_EQ(t.timerStat("cap.early").count, 0u);
    EXPECT_EQ(t.timerStat("cap.late").count, 8u);

    // The chrome export walks the ring chronologically: the oldest
    // retained span (ts=12) leads, the newest (ts=19) trails.
    const std::string chrome = t.chromeTraceJson();
    const size_t first = chrome.find("\"ts\":12");
    const size_t last = chrome.find("\"ts\":19");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(last, std::string::npos);
    EXPECT_LT(first, last);
    EXPECT_EQ(chrome.find("\"name\":\"cap.early\""), std::string::npos);

    // clear() frees the buffer (and resets the ring head) but keeps the
    // capacity.
    t.clear();
    EXPECT_EQ(t.spanCount(), 0u);
    EXPECT_EQ(t.droppedSpans(), 0u);
    EXPECT_EQ(t.maxSpans(), 8u);
    t.span("cap.late", 0.0, 1.0);
    EXPECT_EQ(t.spanCount(), 1u);
    EXPECT_EQ(t.timerStat("cap.late").count, 1u);
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    // Before any Trace::instance() call in this process.
    setenv("NPP_TRACE_MAX_SPANS", "8", /*overwrite=*/1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
