/**
 * @file
 * Tests for the affine index analysis that drives the coalescing
 * constraints: constant folding with param values/hints, per-variable
 * stride extraction, and dynamic-size detection.
 */

#include <gtest/gtest.h>

#include "ir/affine.h"
#include "ir/builder.h"

namespace npp {
namespace {

/** Fixture providing a two-level program and handles into it. */
class AffineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ProgramBuilder b("t");
        m = b.inF64("m");
        r = b.paramI64("R");
        c = b.paramI64("C");
        out = b.outF64("out");
        b.map(r, out, [&](Body &fn, Ex i) {
            iVar = i.ref()->varId;
            return fn.reduce(c, Op::Add, [&](Body &, Ex j) {
                jVar = j.ref()->varId;
                rowMajor = (i * c + j).ref();
                colMajor = (j * c + i).ref();
                strided2 = (i * 2 + j * c).ref();
                dataDep = (m(i) * 8.0 + j).ref();
                quadratic = ((i * j) + j).ref();
                return m(i * c + j);
            });
        });
        prog = std::make_unique<Program>(b.build());
        env.prog = prog.get();
        env.paramValues[c.ref()->varId] = 512;
        env.paramValues[r.ref()->varId] = 64;
    }

    std::unique_ptr<Program> prog;
    AnalysisEnv env;
    Arr m, out;
    Ex r, c;
    int iVar = -1, jVar = -1;
    ExprRef rowMajor, colMajor, strided2, dataDep, quadratic;
};

TEST_F(AffineTest, ConstEvalFoldsParams)
{
    auto v = constEval((c * 2 + 1).ref(), env);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 1025.0);
}

TEST_F(AffineTest, ConstEvalRejectsIndexDependence)
{
    EXPECT_FALSE(constEval(rowMajor, env).has_value());
}

TEST_F(AffineTest, ConstEvalSelect)
{
    auto v = constEval(sel(c > r, c, r).ref(), env);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 512.0);
}

TEST_F(AffineTest, RowMajorStrides)
{
    EXPECT_DOUBLE_EQ(*coeffOf(rowMajor, jVar, env), 1.0);
    EXPECT_DOUBLE_EQ(*coeffOf(rowMajor, iVar, env), 512.0);
}

TEST_F(AffineTest, ColMajorStrides)
{
    EXPECT_DOUBLE_EQ(*coeffOf(colMajor, iVar, env), 1.0);
    EXPECT_DOUBLE_EQ(*coeffOf(colMajor, jVar, env), 512.0);
}

TEST_F(AffineTest, MixedStrides)
{
    EXPECT_DOUBLE_EQ(*coeffOf(strided2, iVar, env), 2.0);
    EXPECT_DOUBLE_EQ(*coeffOf(strided2, jVar, env), 512.0);
}

TEST_F(AffineTest, DataDependentOffsetStillAffineInJ)
{
    // m[i]*8 + j: affine in j (coeff 1) even though the offset is a load.
    EXPECT_DOUBLE_EQ(*coeffOf(dataDep, jVar, env), 1.0);
    // ...but not affine in i (coefficient would need the load's value).
    EXPECT_FALSE(coeffOf(dataDep, iVar, env).has_value());
}

TEST_F(AffineTest, QuadraticIsNotAffine)
{
    EXPECT_FALSE(coeffOf(quadratic, iVar, env).has_value());
    EXPECT_FALSE(coeffOf(quadratic, jVar, env).has_value());
}

TEST_F(AffineTest, CoeffOfAbsentVarIsZero)
{
    EXPECT_DOUBLE_EQ(*coeffOf((c * 3).ref(), iVar, env), 0.0);
}

TEST_F(AffineTest, NegationAndSubtraction)
{
    Ex i(varRef(iVar, ScalarKind::I64));
    Ex j(varRef(jVar, ScalarKind::I64));
    EXPECT_DOUBLE_EQ(*coeffOf((-i).ref(), iVar, env), -1.0);
    EXPECT_DOUBLE_EQ(*coeffOf((j - i * 4).ref(), iVar, env), -4.0);
    EXPECT_DOUBLE_EQ(*coeffOf((j - i * 4).ref(), jVar, env), 1.0);
}

TEST_F(AffineTest, DivisionByConstant)
{
    Ex i(varRef(iVar, ScalarKind::I64));
    // (i*512)/512 → coeff 1; (i*3)/2 → non-integral, rejected.
    EXPECT_DOUBLE_EQ(*coeffOf((i * c / c).ref(), iVar, env), 1.0);
    EXPECT_FALSE(coeffOf((i * 3 / 2).ref(), iVar, env).has_value());
}

TEST_F(AffineTest, SizeForAnalysisFallsBackToDefault)
{
    AnalysisEnv bare;
    bare.prog = prog.get();
    bare.defaultSize = 1000.0;
    // Unhinted param: falls back to the paper's default of 1000.
    EXPECT_DOUBLE_EQ(sizeForAnalysis(c.ref(), bare), 1000.0);
    // With a hint.
    const_cast<Program &>(*prog).setSizeHint(c.ref()->varId, 4096);
    EXPECT_DOUBLE_EQ(sizeForAnalysis(c.ref(), bare), 4096.0);
    // Actual values take precedence over hints.
    bare.paramValues[c.ref()->varId] = 128;
    EXPECT_DOUBLE_EQ(sizeForAnalysis(c.ref(), bare), 128.0);
}

TEST_F(AffineTest, DependsOnAnyIndex)
{
    EXPECT_TRUE(dependsOnAnyIndex(rowMajor, *prog));
    EXPECT_FALSE(dependsOnAnyIndex((c * 2).ref(), *prog));
}

} // namespace
} // namespace npp
