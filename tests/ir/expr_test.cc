/**
 * @file
 * Unit tests for expression construction, operator properties, and the
 * scalar op semantics shared by the interpreter and the simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/expr.h"

namespace npp {
namespace {

TEST(ExprOps, UnaryClassification)
{
    EXPECT_TRUE(isUnaryOp(Op::Neg));
    EXPECT_TRUE(isUnaryOp(Op::Not));
    EXPECT_TRUE(isUnaryOp(Op::Exp));
    EXPECT_TRUE(isUnaryOp(Op::Sqrt));
    EXPECT_FALSE(isUnaryOp(Op::Add));
    EXPECT_FALSE(isUnaryOp(Op::Min));
    EXPECT_FALSE(isUnaryOp(Op::Lt));
}

TEST(ExprOps, CombinerClassification)
{
    EXPECT_TRUE(isCombinerOp(Op::Add));
    EXPECT_TRUE(isCombinerOp(Op::Mul));
    EXPECT_TRUE(isCombinerOp(Op::Min));
    EXPECT_TRUE(isCombinerOp(Op::Max));
    EXPECT_FALSE(isCombinerOp(Op::Sub));
    EXPECT_FALSE(isCombinerOp(Op::Div));
    EXPECT_FALSE(isCombinerOp(Op::Lt));
}

TEST(ExprOps, CombinerIdentities)
{
    // x combine identity == x for every combiner.
    const double samples[] = {-3.5, 0.0, 1.0, 42.0};
    for (Op op : {Op::Add, Op::Mul, Op::Min, Op::Max}) {
        for (double x : samples) {
            EXPECT_DOUBLE_EQ(applyOp(op, x, combinerIdentity(op)), x)
                << opName(op) << " identity failed for " << x;
        }
    }
    // Bool combiners over the bool domain.
    for (double x : {0.0, 1.0}) {
        EXPECT_DOUBLE_EQ(applyOp(Op::And, x, combinerIdentity(Op::And)), x);
        EXPECT_DOUBLE_EQ(applyOp(Op::Or, x, combinerIdentity(Op::Or)), x);
    }
}

TEST(ExprOps, ApplyOpArithmetic)
{
    EXPECT_DOUBLE_EQ(applyOp(Op::Add, 2, 3), 5);
    EXPECT_DOUBLE_EQ(applyOp(Op::Sub, 2, 3), -1);
    EXPECT_DOUBLE_EQ(applyOp(Op::Mul, 2, 3), 6);
    EXPECT_DOUBLE_EQ(applyOp(Op::Div, 7, 2), 3.5);
    EXPECT_DOUBLE_EQ(applyOp(Op::Mod, 7, 3), 1);
    EXPECT_DOUBLE_EQ(applyOp(Op::Mod, -1, 3), 2) << "floored modulo";
    EXPECT_DOUBLE_EQ(applyOp(Op::Min, 2, 3), 2);
    EXPECT_DOUBLE_EQ(applyOp(Op::Max, 2, 3), 3);
    EXPECT_DOUBLE_EQ(applyOp(Op::Pow, 2, 10), 1024);
}

TEST(ExprOps, ApplyOpComparisons)
{
    EXPECT_DOUBLE_EQ(applyOp(Op::Lt, 1, 2), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Lt, 2, 2), 0.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Le, 2, 2), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Gt, 3, 2), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Ge, 2, 3), 0.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Eq, 2, 2), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Ne, 2, 2), 0.0);
}

TEST(ExprOps, ApplyOpLogicAndUnary)
{
    EXPECT_DOUBLE_EQ(applyOp(Op::And, 1, 0), 0.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::And, 2, 3), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Or, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Or, 0, 5), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Neg, 4, 0), -4);
    EXPECT_DOUBLE_EQ(applyOp(Op::Not, 0, 0), 1.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Not, 7, 0), 0.0);
    EXPECT_DOUBLE_EQ(applyOp(Op::Abs, -3, 0), 3);
    EXPECT_DOUBLE_EQ(applyOp(Op::Floor, 2.7, 0), 2);
    EXPECT_DOUBLE_EQ(applyOp(Op::Sqrt, 9, 0), 3);
    EXPECT_NEAR(applyOp(Op::Exp, std::log(5.0), 0), 5.0, 1e-12);
}

TEST(ExprFactories, LiteralKinds)
{
    auto d = lit(2.5);
    EXPECT_EQ(d->kind, ExprKind::Lit);
    EXPECT_EQ(d->type, ScalarKind::F64);
    EXPECT_DOUBLE_EQ(d->lit, 2.5);

    auto i = litI(7);
    EXPECT_EQ(i->type, ScalarKind::I64);
    EXPECT_DOUBLE_EQ(i->lit, 7.0);

    auto b = litB(true);
    EXPECT_EQ(b->type, ScalarKind::Bool);
    EXPECT_DOUBLE_EQ(b->lit, 1.0);
}

TEST(ExprFactories, TreeStructure)
{
    auto v = varRef(3, ScalarKind::I64);
    auto e = binary(Op::Mul, v, lit(8.0));
    EXPECT_EQ(e->kind, ExprKind::Binary);
    EXPECT_EQ(e->op, Op::Mul);
    EXPECT_EQ(e->a->varId, 3);
    EXPECT_DOUBLE_EQ(e->b->lit, 8.0);
}

TEST(ExprFactories, ReadSitesStartUnassigned)
{
    // Trace-site ids are structural (assigned by Program::validate() in
    // pre-order), not process-global: a fresh node has none.
    auto r1 = read(0, lit(0.0), ScalarKind::F64);
    auto r2 = read(0, lit(0.0), ScalarKind::F64);
    EXPECT_EQ(r1->readSite, -1);
    EXPECT_EQ(r2->readSite, -1);
}

TEST(ExprFactories, OperatorSugarBuildsExpectedTrees)
{
    Ex a(varRef(0, ScalarKind::F64));
    Ex b(varRef(1, ScalarKind::F64));
    Ex sum = a + b * 2.0;
    ASSERT_TRUE(sum.valid());
    EXPECT_EQ(sum.ref()->op, Op::Add);
    EXPECT_EQ(sum.ref()->b->op, Op::Mul);

    Ex cmp = (a < b) && !(a == b);
    EXPECT_EQ(cmp.ref()->op, Op::And);
    EXPECT_EQ(cmp.ref()->b->op, Op::Not);

    Ex m = min(a, max(b, 0.0));
    EXPECT_EQ(m.ref()->op, Op::Min);
    EXPECT_EQ(m.ref()->b->op, Op::Max);

    Ex s = sel(a < b, a, b);
    EXPECT_EQ(s.ref()->kind, ExprKind::Select);
}

TEST(ExprFactories, OpCostOrdering)
{
    EXPECT_LT(opCost(Op::Add), opCost(Op::Div));
    EXPECT_LT(opCost(Op::Div), opCost(Op::Exp));
}

} // namespace
} // namespace npp
