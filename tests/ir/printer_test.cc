/**
 * @file
 * Golden tests for the IR pretty printer: stable, readable renderings of
 * representative programs (variable numbering is deterministic, so exact
 * snapshots are safe).
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"

namespace npp {
namespace {

TEST(PrinterGolden, SumRows)
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();

    const char *expected =
        "program sumRows(in m[], R, C, out out[])\n"
        "map(i4 < R) {\n"
        "  acc6 = reduce(i5 < C, +) {\n"
        "    yield m[((i4 * C) + i5)]\n"
        "  }\n"
        "  yield acc6\n"
        "}\n";
    EXPECT_EQ(printProgram(p), expected);
}

TEST(PrinterGolden, ControlFlowAndMutables)
{
    ProgramBuilder b("escape");
    Arr c = b.inF64("c");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Mut x = fn.mut("x", Ex(0.0));
        fn.branch(
            c(i) > 0.0, [&](Body &t) { t.assign(x, Ex(1.0)); },
            [&](Body &e) { e.assign(x, Ex(-1.0)); });
        fn.seqLoop(
            Ex(8),
            [&](Body &body, Ex) { body.assign(x, x.ex() * 2.0); },
            x.ex() > 100.0);
        return x.ex();
    });
    Program p = b.build();

    const std::string text = printProgram(p);
    EXPECT_NE(text.find("var x = 0"), std::string::npos) << text;
    EXPECT_NE(text.find("if (c[i3] > 0)"), std::string::npos) << text;
    EXPECT_NE(text.find("} else {"), std::string::npos) << text;
    EXPECT_NE(text.find("x := -1"), std::string::npos) << text;
    EXPECT_NE(text.find("for k5 < 8 until (x > 100)"), std::string::npos)
        << text;
}

TEST(PrinterGolden, FilterAndGroupBy)
{
    {
        ProgramBuilder b("pos");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        Arr cnt = b.outF64("cnt");
        b.filter(n, out, cnt, [&](Body &, Ex i) {
            return FilterItem{in(i) > 0.0, in(i)};
        });
        const std::string text = printProgram(b.build());
        EXPECT_NE(text.find("filter(i4 < n)"), std::string::npos) << text;
        EXPECT_NE(text.find("where (in[i4] > 0)"), std::string::npos)
            << text;
    }
    {
        ProgramBuilder b("hist");
        Arr keys = b.inI64("keys");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
            return KeyedValue{keys(i), Ex(1.0)};
        });
        const std::string text = printProgram(b.build());
        EXPECT_NE(text.find("groupBy(i3 < n, +)"), std::string::npos)
            << text;
        EXPECT_NE(text.find("key keys[i3]"), std::string::npos) << text;
    }
}

TEST(PrinterGolden, ExprForms)
{
    ProgramBuilder b("exprs");
    Arr a = b.inF64("a");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) {
        return sel(a(i) < 0.0, -a(i), sqrt(a(i))) +
               min(Ex(2.0), max(a(i), 0.5)) + a(i) % 3.0;
    });
    Program p = b.build();
    const std::string text = printProgram(p);
    EXPECT_NE(text.find("sel((a[i3] < 0), neg(a[i3]), sqrt(a[i3]))"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("(2 min (a[i3] max 0.5))"), std::string::npos)
        << text;
    EXPECT_NE(text.find("(a[i3] % 3)"), std::string::npos) << text;
}

} // namespace
} // namespace npp
