/**
 * @file
 * Tests for the builder EDSL: program structure, nesting depth, variable
 * roles, validation errors, and the pretty printer.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/traverse.h"

namespace npp {
namespace {

Program
buildSumRows()
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R");
    Ex c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    return b.build();
}

TEST(Builder, SumRowsStructure)
{
    Program p = buildSumRows();
    EXPECT_EQ(p.name(), "sumRows");
    EXPECT_EQ(p.numLevels(), 2);
    EXPECT_EQ(p.root().kind, PatternKind::Map);
    ASSERT_EQ(p.root().body.size(), 1u);
    EXPECT_EQ(p.root().body[0]->kind, StmtKind::Nested);
    EXPECT_EQ(p.root().body[0]->pattern->kind, PatternKind::Reduce);
    EXPECT_GE(p.rootOutput(), 0);
    EXPECT_TRUE(p.var(p.rootOutput()).isOutput);
}

TEST(Builder, VariableRoles)
{
    Program p = buildSumRows();
    int nIndices = 0, nParams = 0, nArrays = 0, nLocals = 0;
    for (const auto &v : p.vars()) {
        switch (v.role) {
          case VarRole::Index: nIndices++; break;
          case VarRole::ScalarParam: nParams++; break;
          case VarRole::ArrayParam: nArrays++; break;
          case VarRole::ScalarLocal: nLocals++; break;
          default: break;
        }
    }
    EXPECT_EQ(nIndices, 2); // outer map + inner reduce
    EXPECT_EQ(nParams, 2);  // R, C
    EXPECT_EQ(nArrays, 2);  // m, out
    EXPECT_EQ(nLocals, 1);  // reduce accumulator
}

TEST(Builder, PageRankShape)
{
    // Fig 5 of the paper: map { map; reduce; arithmetic } — two patterns
    // at level 1.
    ProgramBuilder b("pagerank");
    Arr nbrStart = b.inI64("nbrStart");
    Arr nbrs = b.inI64("nbrs");
    Arr degree = b.inF64("degree");
    Arr prev = b.inF64("prev");
    Ex n = b.paramI64("numNodes");
    Ex damp = b.paramF64("damp");
    Arr out = b.outF64("out");

    b.map(n, out, [&](Body &fn, Ex i) {
        Ex begin = fn.let("begin", nbrStart(i));
        Ex cnt = fn.let("cnt", nbrStart(i + 1) - begin);
        Arr w = fn.map(cnt, [&](Body &, Ex j) {
            return prev(nbrs(begin + j)) / degree(nbrs(begin + j));
        });
        Ex sum = fn.reduce(cnt, Op::Add, [&](Body &, Ex j) { return w(j); });
        return (1.0 - damp) / n + damp * sum;
    });
    Program p = b.build();

    EXPECT_EQ(p.numLevels(), 2);
    auto pats = collectPatterns(p.root());
    ASSERT_EQ(pats.size(), 3u);
    EXPECT_EQ(pats[0].second, 0);
    EXPECT_EQ(pats[1].second, 1);
    EXPECT_EQ(pats[2].second, 1);
    EXPECT_EQ(pats[1].first->kind, PatternKind::Map);
    EXPECT_EQ(pats[2].first->kind, PatternKind::Reduce);
}

TEST(Builder, TripleNesting)
{
    ProgramBuilder b("triple");
    Ex n = b.paramI64("n");
    Arr in = b.inF64("in");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &f0, Ex i) {
        return f0.reduce(n, Op::Add, [&](Body &f1, Ex j) {
            return f1.reduce(n, Op::Max, [&](Body &, Ex k) {
                return in(i * n * n + j * n + k);
            });
        });
    });
    Program p = b.build();
    EXPECT_EQ(p.numLevels(), 3);
}

TEST(Builder, SeqLoopAndMutables)
{
    ProgramBuilder b("mandel-ish");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Mut x = fn.mut("x", Ex(0.0));
        fn.seqLoop(
            Ex(10),
            [&](Body &body, Ex) { body.assign(x, x.ex() + i); },
            x.ex() > 100.0);
        return x.ex();
    });
    Program p = b.build();
    ASSERT_EQ(p.root().body.size(), 2u); // mut init + seq loop
    const Stmt &loop = *p.root().body[1];
    EXPECT_EQ(loop.kind, StmtKind::SeqLoop);
    EXPECT_TRUE(loop.cond != nullptr);
    EXPECT_EQ(p.numLevels(), 1) << "seq loops are not parallel levels";
}

TEST(Builder, BranchStatements)
{
    ProgramBuilder b("branchy");
    Ex n = b.paramI64("n");
    Arr flag = b.inF64("flag");
    Arr out = b.outF64("out");
    b.foreach(n, [&](Body &fn, Ex i) {
        fn.branch(
            flag(i) > 0.0,
            [&](Body &t) { t.store(out, i, Ex(1.0)); },
            [&](Body &e) { e.store(out, i, Ex(-1.0)); });
    });
    Program p = b.build();
    const Stmt &ifStmt = *p.root().body[0];
    EXPECT_EQ(ifStmt.kind, StmtKind::If);
    EXPECT_EQ(ifStmt.body.size(), 1u);
    EXPECT_EQ(ifStmt.elseBody.size(), 1u);
}

TEST(Builder, FilterAndGroupByRoots)
{
    {
        ProgramBuilder b("positives");
        Ex n = b.paramI64("n");
        Arr in = b.inF64("in");
        Arr out = b.outF64("out");
        Arr cnt = b.outF64("count");
        b.filter(n, out, cnt, [&](Body &, Ex i) {
            return FilterItem{in(i) > 0.0, in(i)};
        });
        Program p = b.build();
        EXPECT_EQ(p.root().kind, PatternKind::Filter);
        EXPECT_GE(p.countOutput(), 0);
    }
    {
        ProgramBuilder b("histogram");
        Ex n = b.paramI64("n");
        Arr keys = b.inI64("keys");
        Arr out = b.outF64("out");
        b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
            return KeyedValue{keys(i), Ex(1.0)};
        });
        Program p = b.build();
        EXPECT_EQ(p.root().kind, PatternKind::GroupBy);
    }
}

TEST(Builder, CloneIsDeepAndEquallyPrinted)
{
    Program p = buildSumRows();
    PatternPtr copy = clonePattern(p.root());
    EXPECT_NE(copy.get(), &p.root());
    EXPECT_EQ(copy->depth(), p.root().depth());
    EXPECT_NE(copy->body[0].get(), p.root().body[0].get());
    // Shared immutable exprs may be aliased; structure must match.
    EXPECT_EQ(copy->body[0]->pattern->kind, PatternKind::Reduce);
}

TEST(Printer, SumRowsRendering)
{
    Program p = buildSumRows();
    std::string text = printProgram(p);
    EXPECT_NE(text.find("program sumRows"), std::string::npos);
    EXPECT_NE(text.find("map("), std::string::npos);
    EXPECT_NE(text.find("reduce("), std::string::npos);
    EXPECT_NE(text.find("m[((i4 * C) + i5)]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("yield"), std::string::npos);
}

TEST(BuilderDeath, RootYieldRequired)
{
    EXPECT_DEATH(
        {
            ProgramBuilder b("bad");
            Ex n = b.paramI64("n");
            Arr out = b.outF64("out");
            b.map(n, out, [&](Body &, Ex) { return Ex(); });
        },
        "empty yield");
}

TEST(BuilderDeath, NonAssociativeReduceRejected)
{
    EXPECT_DEATH(
        {
            ProgramBuilder b("bad");
            Ex n = b.paramI64("n");
            Arr in = b.inF64("in");
            Arr out = b.outF64("out");
            b.map(n, out, [&](Body &fn, Ex) {
                return fn.reduce(n, Op::Sub,
                                 [&](Body &, Ex j) { return in(j); });
            });
        },
        "non-associative");
}

TEST(Builder, TraceSitesAreStableAcrossRebuilds)
{
    // Program::validate() numbers patterns, statements, and read exprs in
    // structural pre-order; an identical rebuild must reproduce the exact
    // same ids (simulator probe keys depend on them).
    auto build = [] {
        ProgramBuilder b("sites");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.map(n, out, [&](Body &fn, Ex i) {
            Ex base = fn.let("base", in(i) * 2.0);
            return base + fn.reduce(n, Op::Add, [&](Body &, Ex j) {
                return in(i * n + j);
            });
        });
        return b.build();
    };
    auto collect = [](const Program &p) {
        std::vector<int> sites;
        Walker w;
        w.onPattern = [&](const Pattern &pat, const WalkCtx &) {
            sites.push_back(pat.site);
        };
        w.onStmt = [&](const Stmt &s, const WalkCtx &) {
            sites.push_back(s.site);
        };
        w.onExpr = [&](const Expr &e, const WalkCtx &) {
            if (e.kind == ExprKind::Read)
                sites.push_back(e.readSite);
        };
        walkPattern(p.root(), w);
        return sites;
    };

    Program first = build();
    Program second = build();
    const std::vector<int> a = collect(first);
    const std::vector<int> b = collect(second);
    EXPECT_EQ(a, b);

    // Every node numbered, and distinct nodes got distinct ids.
    std::set<int> uniq(a.begin(), a.end());
    EXPECT_EQ(uniq.count(-1), 0u) << "unassigned site survived validate()";
    EXPECT_EQ(uniq.size(), a.size()) << "duplicate site ids";
}

} // namespace
} // namespace npp
