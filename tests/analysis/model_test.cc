/**
 * @file
 * Tests for the analytical performance model (the Section VI-G "future
 * work" scoring refinement) and the empirical autotuner: the model must
 * rank coalesced mappings ahead of uncoalesced ones, the model-objective
 * search must pick a mapping as good as the score-based one on the
 * paper's running examples, and the autotuner must never return a
 * mapping slower than the score-based selection.
 */

#include <gtest/gtest.h>

#include "analysis/model.h"
#include "codegen/autotune.h"
#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

struct Sum
{
    std::shared_ptr<Program> prog;
    Ex r, c;
    Arr m, out;
};

Sum
makeSumRows()
{
    Sum s;
    ProgramBuilder b("sumRows");
    s.m = b.inF64("m");
    s.r = b.paramI64("R");
    s.c = b.paramI64("C");
    s.out = b.outF64("out");
    Arr m = s.m;
    Ex c = s.c;
    b.map(s.r, s.out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    s.prog = std::make_shared<Program>(b.build());
    return s;
}

ConstraintSet
csetFor(const Sum &s, int64_t R, int64_t C)
{
    AnalysisEnv env;
    env.prog = s.prog.get();
    env.paramValues = {{s.r.ref()->varId, static_cast<double>(R)},
                       {s.c.ref()->varId, static_cast<double>(C)}};
    return buildConstraints(*s.prog, env, teslaK20c());
}

TEST(StaticModel, PrefersCoalescedDimensionAssignment)
{
    Sum s = makeSumRows();
    ConstraintSet cs = csetFor(s, 4096, 4096);
    const DeviceConfig dev = teslaK20c();

    MappingDecision coalesced; // inner (stride-1) level on x
    coalesced.levels = {{1, 8, SpanType::one()},
                        {0, 32, SpanType::all()}};
    MappingDecision transposed; // inner level on y: row-strided warps
    transposed.levels = {{0, 32, SpanType::one()},
                         {1, 8, SpanType::all()}};

    ModelEstimate good = staticEstimate(coalesced, cs, dev);
    ModelEstimate bad = staticEstimate(transposed, cs, dev);
    EXPECT_LT(good.predictedTransactions * 4,
              bad.predictedTransactions);
    EXPECT_LT(good.totalMs, bad.totalMs);
}

TEST(StaticModel, PenalizesLowParallelism)
{
    Sum s = makeSumRows();
    // Few rows: a mapping that only parallelizes rows starves.
    ConstraintSet cs = csetFor(s, 64, 65536);
    const DeviceConfig dev = teslaK20c();

    MappingDecision rowsOnly;
    rowsOnly.levels = {{0, 64, SpanType::one()},
                       {1, 1, SpanType::all()}};
    MappingDecision both;
    both.levels = {{1, 8, SpanType::one()}, {0, 128, SpanType::all()}};

    EXPECT_GT(staticEstimate(rowsOnly, cs, dev).totalMs,
              staticEstimate(both, cs, dev).totalMs);
}

TEST(StaticModel, SearchObjectivePicksCoalescedMapping)
{
    Sum s = makeSumRows();
    ConstraintSet cs = csetFor(s, 4096, 4096);
    SearchOptions opts;
    opts.objective = SearchObjective::StaticModel;
    MappingSearch search(teslaK20c(), opts);
    SearchResult res = search.search(cs);
    // The model-selected mapping must put the stride-1 level on x with a
    // warp-multiple block, same as the score-based selection.
    EXPECT_EQ(res.best.levels[1].dim, 0);
    EXPECT_GE(res.best.levels[1].blockSize, 32);
}

TEST(StaticModel, ModelAgreesWithSimulatorOrdering)
{
    // For a spread of mappings, the model's ranking must broadly agree
    // with the simulator's (rank correlation on the extremes).
    Sum s = makeSumRows();
    const int64_t R = 1024, C = 1024;
    ConstraintSet cs = csetFor(s, R, C);
    const DeviceConfig dev = teslaK20c();

    Rng rng(5);
    std::vector<double> data(R * C);
    for (auto &v : data)
        v = rng.uniform(0, 1);

    std::vector<MappingDecision> mappings;
    for (int innerDim : {0, 1}) {
        for (int64_t bs : {32, 256}) {
            MappingDecision d;
            d.levels = {{innerDim == 0 ? 1 : 0, 4, SpanType::one()},
                        {innerDim, bs, SpanType::all()}};
            mappings.push_back(d);
        }
    }

    Gpu gpu;
    double bestModel = 1e300, worstModel = 0;
    double simOfBestModel = 0, simOfWorstModel = 0;
    for (const auto &d : mappings) {
        const double model = staticEstimate(d, cs, dev).totalMs;
        std::vector<double> out(R, 0.0);
        Bindings args(*s.prog);
        args.scalar(s.r, R);
        args.scalar(s.c, C);
        args.array(s.m, data);
        args.array(s.out, out);
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping = d;
        const double sim = gpu.compileAndRun(*s.prog, args, copts).totalMs;
        if (model < bestModel) {
            bestModel = model;
            simOfBestModel = sim;
        }
        if (model > worstModel) {
            worstModel = model;
            simOfWorstModel = sim;
        }
    }
    EXPECT_LT(simOfBestModel, simOfWorstModel)
        << "the model's best pick must simulate faster than its worst";
}

TEST(Autotune, NeverWorseThanScoreSelection)
{
    Sum s = makeSumRows();
    const int64_t R = 512, C = 2048;
    Rng rng(6);
    std::vector<double> data(R * C);
    for (auto &v : data)
        v = rng.uniform(0, 1);
    std::vector<double> out(R, 0.0);

    Bindings args(*s.prog);
    args.scalar(s.r, R);
    args.scalar(s.c, C);
    args.array(s.m, data);
    args.array(s.out, out);

    Gpu gpu;
    CompileOptions base;
    base.paramValues = {{s.r.ref()->varId, static_cast<double>(R)},
                        {s.c.ref()->varId, static_cast<double>(C)}};
    AutotuneOptions opts;
    opts.topCandidates = 6;
    AutotuneResult tuned = autotune(*s.prog, gpu, args, base, opts);

    EXPECT_GT(tuned.trials.size(), 1u);
    EXPECT_GT(tuned.scoreChoiceMs, 0.0);
    EXPECT_LE(tuned.bestMs, tuned.scoreChoiceMs);
    for (const auto &t : tuned.trials)
        EXPECT_GE(t.measuredMs, tuned.bestMs);

    // The returned spec is runnable and correct.
    std::vector<double> expect(R, 0.0);
    {
        Bindings refArgs(*s.prog);
        refArgs.scalar(s.r, R);
        refArgs.scalar(s.c, C);
        refArgs.array(s.m, data);
        refArgs.array(s.out, expect);
        ReferenceInterp().run(*s.prog, refArgs);
    }
    gpu.run(tuned.best, args);
    EXPECT_LE(maxRelDiff(expect, out), 1e-9);
}

TEST(Autotune, ResetCallbackRunsPerTrial)
{
    Sum s = makeSumRows();
    const int64_t R = 64, C = 64;
    std::vector<double> data(R * C, 1.0), out(R, 0.0);
    Bindings args(*s.prog);
    args.scalar(s.r, R);
    args.scalar(s.c, C);
    args.array(s.m, data);
    args.array(s.out, out);

    int resets = 0;
    AutotuneOptions opts;
    opts.topCandidates = 3;
    opts.reset = [&] { resets++; };
    Gpu gpu;
    AutotuneResult tuned = autotune(*s.prog, gpu, args, {}, opts);
    EXPECT_EQ(resets, static_cast<int>(tuned.trials.size()) + 1)
        << "one reset before each trial plus the final restore";
}

} // namespace
} // namespace npp
