/**
 * @file
 * Parameterized sweep over matrix shapes: for every shape, the selected
 * mapping must satisfy the invariants Algorithm 1 promises — hard
 * feasibility, the coalescing dimension assignment whenever one exists,
 * DOP inside the device window whenever the domain allows it, and
 * determinism. This is the property-style counterpart of the targeted
 * search tests.
 */

#include <gtest/gtest.h>

#include "analysis/search.h"
#include "ir/builder.h"

namespace npp {
namespace {

struct Shape
{
    int64_t rows;
    int64_t cols;
};

class SearchSweep : public ::testing::TestWithParam<Shape>
{
  protected:
    struct Built
    {
        Program prog;
        int rVar, cVar;
    };

    static Built
    makeSumRows()
    {
        ProgramBuilder b("sumRows");
        Arr m = b.inF64("m");
        Ex r = b.paramI64("R"), c = b.paramI64("C");
        Arr out = b.outF64("out");
        b.map(r, out, [&](Body &fn, Ex i) {
            return fn.reduce(c, Op::Add,
                             [&](Body &, Ex j) { return m(i * c + j); });
        });
        return {b.build(), r.ref()->varId, c.ref()->varId};
    }
};

TEST_P(SearchSweep, SelectedMappingInvariants)
{
    const Shape shape = GetParam();
    Built sp = makeSumRows();
    const DeviceConfig dev = teslaK20c();

    AnalysisEnv env;
    env.prog = &sp.prog;
    env.paramValues = {{sp.rVar, static_cast<double>(shape.rows)},
                       {sp.cVar, static_cast<double>(shape.cols)}};
    ConstraintSet cs = buildConstraints(sp.prog, env, dev);
    MappingSearch search(dev);
    SearchResult res = search.search(cs);

    // 1. Hard feasibility, always.
    EXPECT_TRUE(search.feasible(res.best, cs))
        << res.best.toString() << " @" << shape.rows << "x" << shape.cols;

    // 2. The inner (stride-1) level is on dimension x with a
    //    warp-multiple block — whenever the inner domain can actually
    //    fill a warp (with fewer elements than lanes the constraint
    //    cannot bind and any dimension is equally good).
    if (shape.cols >= dev.warpSize) {
        EXPECT_EQ(res.best.levels[1].dim, 0);
        EXPECT_GE(res.best.levels[1].blockSize, dev.warpSize);
        EXPECT_EQ(res.best.levels[1].blockSize % dev.warpSize, 0);
    }

    // 3. The reduce level spans or splits (never span(1)).
    EXPECT_NE(res.best.levels[1].span.kind, SpanKind::One);

    // 4. DOP inside the window whenever the domain is big enough to
    //    reach MIN_DOP at all.
    const double domain =
        static_cast<double>(shape.rows) * shape.cols;
    if (domain >= dev.minDop()) {
        EXPECT_GE(res.bestDop, static_cast<double>(dev.minDop()) * 0.5)
            << res.best.toString();
    }
    EXPECT_LE(res.bestDop, static_cast<double>(dev.maxDop()) * 1.01);

    // 5. Deterministic.
    SearchResult again = search.search(cs);
    EXPECT_TRUE(res.best == again.best);

    // 6. No kept candidate may out-score the winner.
    SearchOptions kopts;
    kopts.keepCandidates = true;
    MappingSearch keeper(dev, kopts);
    SearchResult all = keeper.search(cs);
    for (const auto &cand : all.candidates)
        EXPECT_LE(cand.score, all.bestScore);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SearchSweep,
    ::testing::Values(Shape{32, 32}, Shape{1, 4096}, Shape{4096, 1},
                      Shape{64, 65536}, Shape{65536, 64},
                      Shape{1000, 1000}, Shape{17, 100003},
                      Shape{3, 3}, Shape{1 << 20, 8}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        return "r" + std::to_string(info.param.rows) + "c" +
               std::to_string(info.param.cols);
    });

} // namespace
} // namespace npp
