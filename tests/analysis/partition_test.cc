/**
 * @file
 * Outer-dimension partitioner (analysis/partition.h): shard geometry,
 * balanced-split remainders, the hard filters (cross-outer dependence,
 * unknown outer size, too-small domains, starving split points), and
 * the split-point candidate generator. Pure geometry — the fleet-level
 * bit-identity contract is covered by tests/sim/multidev_test.
 */

#include <gtest/gtest.h>

#include "analysis/partition.h"
#include "ir/builder.h"

namespace npp {
namespace {

Program
mapRoot()
{
    ProgramBuilder b("shardMap");
    Arr m = b.inF64("m");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return m(i) * 2.0; });
    return b.build();
}

Program
filterRoot()
{
    ProgramBuilder b("shardFilter");
    Arr m = b.inF64("m");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    Arr cnt = b.outF64("count");
    b.filter(n, out, cnt,
             [&](Body &, Ex i) { return FilterItem{m(i) > 0.0, m(i)}; });
    return b.build();
}

Program
groupByRoot()
{
    ProgramBuilder b("shardGroupBy");
    Arr m = b.inF64("m");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    b.groupBy(n, Op::Add, out,
              [&](Body &, Ex i) { return KeyedValue{m(i), 1.0}; });
    return b.build();
}

/** Root size read from array data: unknowable at launch. */
Program
dataSizedRoot()
{
    ProgramBuilder b("shardDataSized");
    Arr m = b.inF64("m");
    Arr out = b.outF64("out");
    b.map(m(Ex(0)), out, [&](Body &, Ex i) { return m(i); });
    return b.build();
}

MappingDecision
decisionWithRootSpan(int64_t blockSize, SpanType span)
{
    MappingDecision d;
    d.levels = {{0, blockSize, span}};
    return d;
}

void
expectContiguousCover(const ShardPlan &plan)
{
    ASSERT_FALSE(plan.shards.empty());
    EXPECT_EQ(plan.shards.front().lo, 0);
    EXPECT_EQ(plan.shards.back().hi, plan.outerSize);
    for (size_t i = 1; i < plan.shards.size(); i++)
        EXPECT_EQ(plan.shards[i].lo, plan.shards[i - 1].hi);
    for (const ShardRange &s : plan.shards)
        EXPECT_GT(s.size(), 0);
}

TEST(OuterShardUnit, FollowsRootSpan)
{
    EXPECT_EQ(outerShardUnit(decisionWithRootSpan(16, SpanType::one())),
              16);
    EXPECT_EQ(outerShardUnit(decisionWithRootSpan(16, SpanType::n(4))),
              64);
    EXPECT_EQ(outerShardUnit(decisionWithRootSpan(16, SpanType::all())),
              1);
    EXPECT_EQ(outerShardUnit(decisionWithRootSpan(16, SpanType::split(8))),
              1);
    EXPECT_EQ(outerShardUnit(MappingDecision{}), 1);
}

TEST(PartitionOuter, SingleDeviceIsTheFullDomain)
{
    const Program prog = mapRoot();
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(16, SpanType::one()), 1000, 1);
    ASSERT_TRUE(plan.valid);
    EXPECT_EQ(plan.verdict, "ok (single device)");
    ASSERT_EQ(plan.shards.size(), 1u);
    EXPECT_EQ(plan.shards[0].lo, 0);
    EXPECT_EQ(plan.shards[0].hi, 1000);
    EXPECT_EQ(plan.splitPoint, 1000);
}

TEST(PartitionOuter, BalancedSplitSpreadsRemainders)
{
    const Program prog = mapRoot();
    // 1000 over 3: 334 + 333 + 333, leading shard takes the remainder.
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 1000, 3);
    ASSERT_TRUE(plan.valid);
    ASSERT_EQ(plan.shards.size(), 3u);
    EXPECT_EQ(plan.shards[0].size(), 334);
    EXPECT_EQ(plan.shards[1].size(), 333);
    EXPECT_EQ(plan.shards[2].size(), 333);
    EXPECT_EQ(plan.splitPoint, 334);
    expectContiguousCover(plan);
}

TEST(PartitionOuter, OddRemaindersGoToLeadingDevices)
{
    const Program prog = mapRoot();
    // 10 over 4: 3 + 3 + 2 + 2.
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 10, 4);
    ASSERT_TRUE(plan.valid);
    ASSERT_EQ(plan.shards.size(), 4u);
    EXPECT_EQ(plan.shards[0].size(), 3);
    EXPECT_EQ(plan.shards[1].size(), 3);
    EXPECT_EQ(plan.shards[2].size(), 2);
    EXPECT_EQ(plan.shards[3].size(), 2);
    expectContiguousCover(plan);
}

TEST(PartitionOuter, ExplicitSplitPointShapesTheFirstShard)
{
    const Program prog = mapRoot();
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(16, SpanType::one()), 1024, 2, 256);
    ASSERT_TRUE(plan.valid);
    ASSERT_EQ(plan.shards.size(), 2u);
    EXPECT_EQ(plan.shards[0].size(), 256);
    EXPECT_EQ(plan.shards[1].size(), 768);
    EXPECT_EQ(plan.splitPoint, 256);
    expectContiguousCover(plan);
}

TEST(PartitionOuter, TooSmallDomainIsHardFiltered)
{
    const Program prog = mapRoot();
    // unit = 16, 4 devices need >= 64 outer elements; 40 < 64.
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(16, SpanType::one()), 40, 4);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("outer domain too small"),
              std::string::npos);
    EXPECT_TRUE(plan.shards.empty());
}

TEST(PartitionOuter, RootFilterIsHardFiltered)
{
    const Program prog = filterRoot();
    EXPECT_NE(crossOuterDependence(prog), nullptr);
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 4096, 2);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("cross-outer dependence"),
              std::string::npos);
    EXPECT_NE(plan.verdict.find("filter"), std::string::npos);
}

TEST(PartitionOuter, RootGroupByIsHardFiltered)
{
    const Program prog = groupByRoot();
    EXPECT_NE(crossOuterDependence(prog), nullptr);
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 4096, 2);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("cross-outer dependence"),
              std::string::npos);
    EXPECT_NE(plan.verdict.find("groupBy"), std::string::npos);
}

TEST(PartitionOuter, DataDependentOuterSizeIsHardFiltered)
{
    const Program prog = dataSizedRoot();
    EXPECT_FALSE(outerSizeKnownAtLaunch(prog));
    EXPECT_TRUE(outerSizeKnownAtLaunch(mapRoot()));
    const ShardPlan plan = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 4096, 2);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("not known at launch"),
              std::string::npos);
}

TEST(PartitionOuter, RuntimeSizedOuterFiltersAtFleetSweepTime)
{
    // At fleet-sweep time a data-dependent root extent reaches the
    // partitioner as a placeholder value (often 0 or negative, since
    // the size expression cannot be evaluated before launch). The
    // sweep's verdict must name the real reason — the runtime-sized
    // domain — not the accidental "empty outer domain" the placeholder
    // would otherwise trip.
    const Program prog = dataSizedRoot();
    for (const int64_t placeholder : {int64_t(0), int64_t(-1)}) {
        const ShardPlan plan = partitionOuter(
            prog, decisionWithRootSpan(1, SpanType::all()), placeholder,
            2);
        EXPECT_FALSE(plan.valid);
        EXPECT_NE(plan.verdict.find("not known at launch"),
                  std::string::npos)
            << "placeholder " << placeholder << ": " << plan.verdict;
        EXPECT_EQ(plan.verdict.find("empty outer domain"),
                  std::string::npos)
            << plan.verdict;
    }
    // A single device never shards, so the dynamic root domain stays
    // runnable there — the fleet sweep's N=1 row must remain feasible.
    const ShardPlan single = partitionOuter(
        prog, decisionWithRootSpan(1, SpanType::all()), 0, 1);
    EXPECT_TRUE(single.valid);
    EXPECT_NE(single.verdict.find("single device"), std::string::npos);
    // A launch-known empty domain still gets the empty verdict.
    const ShardPlan empty = partitionOuter(
        mapRoot(), decisionWithRootSpan(1, SpanType::all()), 0, 2);
    EXPECT_FALSE(empty.valid);
    EXPECT_NE(empty.verdict.find("empty outer domain"),
              std::string::npos);
}

TEST(PartitionOuter, StarvingSplitPointsAreRejected)
{
    const Program prog = mapRoot();
    const MappingDecision d = decisionWithRootSpan(16, SpanType::one());
    // Device 0 below one unit.
    ShardPlan plan = partitionOuter(prog, d, 1024, 2, 8);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("starves device 0"), std::string::npos);
    // The remaining devices below one unit each.
    plan = partitionOuter(prog, d, 1024, 2, 1020);
    EXPECT_FALSE(plan.valid);
    EXPECT_NE(plan.verdict.find("less than one root block"),
              std::string::npos);
    // Degenerate callers.
    EXPECT_FALSE(partitionOuter(prog, d, 1024, 0).valid);
    EXPECT_FALSE(partitionOuter(prog, d, 0, 2).valid);
}

TEST(SplitPointCandidates, BalancedOnlyWhenUnitIsOne)
{
    const std::vector<int64_t> pts = splitPointCandidates(1000, 4, 1);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0], -1);
}

TEST(SplitPointCandidates, UnitAlignedNeighborsOfTheBalancedSplit)
{
    // 1000 over 3 -> balanced first shard 334; unit 16 -> 320 and 336.
    const std::vector<int64_t> pts = splitPointCandidates(1000, 3, 16);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts[0], -1);
    EXPECT_EQ(pts[1], 320);
    EXPECT_EQ(pts[2], 336);
    // Every explicit candidate must be accepted by partitionOuter.
    const Program prog = mapRoot();
    const MappingDecision d = decisionWithRootSpan(16, SpanType::one());
    for (int64_t p : pts)
        EXPECT_TRUE(partitionOuter(prog, d, 1000, 3, p).valid)
            << "candidate " << p;
}

TEST(SplitPointCandidates, TightDomainsDropInvalidNeighbors)
{
    // 64 over 4 with unit 16: balanced is exactly 16; up-neighbor 32
    // would leave 32 for 3 devices (< 48) and must be filtered.
    const std::vector<int64_t> pts = splitPointCandidates(64, 4, 16);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0], -1);
    EXPECT_EQ(pts[1], 16);
}

} // namespace
} // namespace npp
