/**
 * @file
 * Tests for constraint generation (Section IV-C, Table II, Fig 8): hard
 * span constraints from synchronization and dynamic sizes, coalescing
 * soft constraints with execution-count weights and branch discounts.
 */

#include <gtest/gtest.h>

#include "analysis/constraint.h"
#include "ir/builder.h"

namespace npp {
namespace {

struct Built
{
    Program prog;
    ConstraintSet cset;
};

ConstraintSet
constraintsFor(const Program &prog,
               const std::unordered_map<int, double> &params = {})
{
    AnalysisEnv env;
    env.prog = &prog;
    env.paramValues = params;
    return buildConstraints(prog, env, teslaK20c());
}

int
countKind(const ConstraintSet &cset, Constraint::Kind kind, int level = -2)
{
    int n = 0;
    for (const auto &c : cset.all) {
        if (c.kind == kind && (level == -2 || c.level == level))
            n++;
    }
    return n;
}

double
coalesceWeight(const ConstraintSet &cset, int level)
{
    double w = 0;
    for (const auto &c : cset.all) {
        if (c.kind == Constraint::Kind::SoftCoalesce && c.level == level)
            w += c.weight;
    }
    return w;
}

TEST(Constraints, SumRowsShape)
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    Program p = b.build();
    ConstraintSet cs = constraintsFor(
        p, {{r.ref()->varId, 8192.0}, {c.ref()->varId, 8192.0}});

    EXPECT_EQ(cs.numLevels, 2);
    EXPECT_FALSE(cs.mustSpanAll[0]);
    EXPECT_TRUE(cs.mustSpanAll[1]) << "reduce needs global sync";
    EXPECT_TRUE(cs.splittable[1]);
    EXPECT_DOUBLE_EQ(cs.levelSizes[0], 8192.0);
    EXPECT_DOUBLE_EQ(cs.levelSizes[1], 8192.0);

    // The m[i*C+j] read is sequential in the inner level; the out[i]
    // store is sequential in the outer level. Inner weight must dominate
    // (deeper nest executes C times more often, Fig 8).
    EXPECT_GT(coalesceWeight(cs, 1), 0.0);
    EXPECT_GT(coalesceWeight(cs, 0), 0.0);
    EXPECT_GT(coalesceWeight(cs, 1), 100 * coalesceWeight(cs, 0));
}

TEST(Constraints, SumColsPrefersOuterCoalescing)
{
    // out[j] = sum_i m[i*C + j]: stride-1 in the OUTER index.
    ProgramBuilder b("sumCols");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(c, out, [&](Body &fn, Ex j) {
        return fn.reduce(r, Op::Add,
                         [&](Body &, Ex i) { return m(i * c + j); });
    });
    Program p = b.build();
    ConstraintSet cs = constraintsFor(
        p, {{r.ref()->varId, 8192.0}, {c.ref()->varId, 8192.0}});

    // All coalescing weight lands on level 0; the inner index has stride
    // C so level 1 receives no coalescing constraint.
    EXPECT_GT(coalesceWeight(cs, 0), 0.0);
    EXPECT_DOUBLE_EQ(coalesceWeight(cs, 1), 0.0);
}

TEST(Constraints, DynamicSizeIsNotSplittable)
{
    // CSR traversal: inner size depends on the outer index.
    ProgramBuilder b("csr");
    Arr start = b.inI64("start");
    Arr vals = b.inF64("vals");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &fn, Ex i) {
        Ex begin = fn.let("begin", start(i));
        Ex cnt = fn.let("cnt", start(i + 1) - begin);
        return fn.reduce(cnt, Op::Add,
                         [&](Body &, Ex j) { return vals(begin + j); });
    });
    Program p = b.build();
    ConstraintSet cs = constraintsFor(p);

    EXPECT_TRUE(cs.mustSpanAll[1]);
    EXPECT_FALSE(cs.splittable[1])
        << "dynamic sizes cannot plan a combiner kernel";
    // Default size assumption for the unknown inner domain.
    EXPECT_DOUBLE_EQ(cs.levelSizes[1], 1000.0);
    // vals[begin + j] is still recognized as sequential in j.
    EXPECT_GT(coalesceWeight(cs, 1), 0.0);
}

TEST(Constraints, BranchDiscountHalvesWeight)
{
    auto build = [](bool underBranch) {
        ProgramBuilder b("g");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.foreach(n, [&](Body &fn, Ex i) {
            if (underBranch) {
                fn.branch(i > 0, [&](Body &t) {
                    t.store(out, i, in(i) * 2.0);
                });
            } else {
                fn.store(out, i, in(i) * 2.0);
            }
        });
        return b.build();
    };
    Program plain = build(false);
    Program branched = build(true);
    double wPlain = coalesceWeight(constraintsFor(plain), 0);
    double wBranched = coalesceWeight(constraintsFor(branched), 0);
    EXPECT_GT(wPlain, 0);
    EXPECT_NEAR(wBranched, wPlain / 2.0, 1e-9)
        << "Then-branch accesses are discounted by 0.5";
}

TEST(Constraints, SeqLoopMultipliesWeight)
{
    auto build = [](int64_t trip) {
        ProgramBuilder b("g");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.map(n, out, [&](Body &fn, Ex i) {
            Mut acc = fn.mut("acc", Ex(0.0));
            fn.seqLoop(Ex(static_cast<long long>(trip)),
                       [&](Body &body, Ex) {
                           body.assign(acc, acc.ex() + in(i));
                       });
            return acc.ex();
        });
        return b.build();
    };
    Program t1 = build(1);
    Program t64 = build(64);
    // The out[i] store contributes equally; isolate the in(i) read by
    // differencing.
    double w1 = coalesceWeight(constraintsFor(t1), 0);
    double w64 = coalesceWeight(constraintsFor(t64), 0);
    EXPECT_GT(w64, w1);
    EXPECT_NEAR((w64 - w1) / (63.0), (w1 - 10.0 * 1000.0) / 1.0, 1e-6)
        << "read weight scales linearly with the trip count";
}

TEST(Constraints, LocalArrayAccessesAreFlexible)
{
    // Fig 15 shape: zipWith into a local temp, then reduce the temp.
    ProgramBuilder b("weighted");
    Arr m = b.inF64("m");
    Arr v = b.inF64("v");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        Arr temp = fn.zipWith(
            c, [&](Body &, Ex j) { return m(i * c + j) * v(j); });
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return temp(j); });
    });
    Program p = b.build();
    ConstraintSet cs = constraintsFor(p);

    int flexible = 0, inflexible = 0;
    for (const auto &cst : cs.all) {
        if (cst.kind != Constraint::Kind::SoftCoalesce)
            continue;
        (cst.flexible ? flexible : inflexible)++;
    }
    EXPECT_GT(flexible, 0) << "temp[] accesses are layout-flexible";
    EXPECT_GT(inflexible, 0) << "m/v/out accesses are not";
}

TEST(Constraints, GroupByAndFilterForceSpanAll)
{
    {
        ProgramBuilder b("hist");
        Arr keys = b.inI64("keys");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.groupBy(n, Op::Add, out, [&](Body &, Ex i) {
            return KeyedValue{keys(i), Ex(1.0)};
        });
        Program p = b.build();
        EXPECT_TRUE(constraintsFor(p).mustSpanAll[0]);
    }
    {
        ProgramBuilder b("f");
        Arr in = b.inF64("in");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        Arr cnt = b.outF64("cnt");
        b.filter(n, out, cnt, [&](Body &, Ex i) {
            return FilterItem{in(i) > 0.0, in(i)};
        });
        Program p = b.build();
        EXPECT_TRUE(constraintsFor(p).mustSpanAll[0]);
    }
}

TEST(Constraints, MinBlockConstraintAlwaysPresent)
{
    ProgramBuilder b("t");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i); });
    Program p = b.build();
    ConstraintSet cs = constraintsFor(p);
    EXPECT_EQ(countKind(cs, Constraint::Kind::SoftMinBlock), 1);
}

} // namespace
} // namespace npp
