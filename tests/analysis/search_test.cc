/**
 * @file
 * Tests for the mapping search (Algorithm 1): the selected mappings for
 * the paper's running examples, hard-constraint filtering, DOP control,
 * and determinism.
 */

#include <gtest/gtest.h>

#include "analysis/presets.h"
#include "analysis/search.h"
#include "ir/builder.h"

namespace npp {
namespace {

struct SumProgram
{
    Program prog;
    int rVar, cVar;
};

SumProgram
makeSumRows()
{
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(r, out, [&](Body &fn, Ex i) {
        return fn.reduce(c, Op::Add,
                         [&](Body &, Ex j) { return m(i * c + j); });
    });
    return {b.build(), r.ref()->varId, c.ref()->varId};
}

SumProgram
makeSumCols()
{
    ProgramBuilder b("sumCols");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(c, out, [&](Body &fn, Ex j) {
        return fn.reduce(r, Op::Add,
                         [&](Body &, Ex i) { return m(i * c + j); });
    });
    return {b.build(), r.ref()->varId, c.ref()->varId};
}

TEST(Search, SumRowsAssignsInnerLevelToX)
{
    auto sp = makeSumRows();
    auto res = findMapping(sp.prog, teslaK20c(),
                           {{sp.rVar, 8192.0}, {sp.cVar, 8192.0}});
    // The paper's Fig 9 mapping shape: outer on y span(1), inner (the
    // reduce with stride-1 accesses) on x span(all), warp-multiple block.
    ASSERT_EQ(res.best.numLevels(), 2);
    EXPECT_NE(res.best.levels[0].dim, 0);
    // Span(1) by default; ControlDOP may widen it to Span(n) when the
    // outer domain alone exceeds MAX_DOP.
    EXPECT_TRUE(res.best.levels[0].span.kind == SpanKind::One ||
                res.best.levels[0].span.kind == SpanKind::N);
    EXPECT_EQ(res.best.levels[1].dim, 0);
    EXPECT_TRUE(res.best.levels[1].span.kind == SpanKind::All ||
                res.best.levels[1].span.kind == SpanKind::Split);
    EXPECT_GE(res.best.levels[1].blockSize, 32);
    EXPECT_EQ(res.best.levels[1].blockSize % 32, 0);
}

TEST(Search, SumColsAssignsOuterLevelToX)
{
    auto sp = makeSumCols();
    auto res = findMapping(sp.prog, teslaK20c(),
                           {{sp.rVar, 8192.0}, {sp.cVar, 8192.0}});
    ASSERT_EQ(res.best.numLevels(), 2);
    EXPECT_EQ(res.best.levels[0].dim, 0);
    EXPECT_GE(res.best.levels[0].blockSize, 32);
    EXPECT_NE(res.best.levels[1].dim, 0);
    EXPECT_TRUE(res.best.levels[1].span.kind == SpanKind::All ||
                res.best.levels[1].span.kind == SpanKind::Split);
}

TEST(Search, JustSwitchingDimensionsBetweenVariants)
{
    // Section IV-B: "just switching the dimension assignment of the
    // patterns allows coalescing" — same program shape, transposed
    // access, mirrored dims.
    auto rows = makeSumRows();
    auto cols = makeSumCols();
    auto resRows = findMapping(rows.prog, teslaK20c(),
                               {{rows.rVar, 8192.0}, {rows.cVar, 8192.0}});
    auto resCols = findMapping(cols.prog, teslaK20c(),
                               {{cols.rVar, 8192.0}, {cols.cVar, 8192.0}});
    EXPECT_EQ(resRows.best.levels[1].dim, 0);
    EXPECT_EQ(resCols.best.levels[0].dim, 0);
}

TEST(Search, SkewedSizesGetDopRepair)
{
    // sumCols on [64K, 1K]: only 1K columns of outer parallelism; the
    // span(all) reduce must be split to reach MIN_DOP.
    auto sp = makeSumCols();
    auto res = findMapping(sp.prog, teslaK20c(),
                           {{sp.rVar, 65536.0}, {sp.cVar, 1024.0}});
    const DeviceConfig dev = teslaK20c();
    EXPECT_GE(res.bestDop, static_cast<double>(dev.minDop()))
        << res.best.toString();
}

TEST(Search, HugeDomainsGetSpanN)
{
    // A 1-level map over 64M elements: DOP must be capped at MAX_DOP by
    // Span(1) -> Span(n).
    ProgramBuilder b("big");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &, Ex i) { return in(i) * 2.0; });
    Program p = b.build();
    Ex nParam(varRef(1, ScalarKind::I64));
    auto res = findMapping(p, teslaK20c(), {{1, 64.0 * 1024 * 1024}});

    const DeviceConfig dev = teslaK20c();
    EXPECT_EQ(res.best.levels[0].span.kind, SpanKind::N);
    EXPECT_LE(res.bestDop, static_cast<double>(dev.maxDop()));
    EXPECT_GE(res.bestDop, static_cast<double>(dev.minDop()));
}

TEST(Search, FeasibleRejectsBadMappings)
{
    auto sp = makeSumRows();
    AnalysisEnv env;
    env.prog = &sp.prog;
    ConstraintSet cs = buildConstraints(sp.prog, env, teslaK20c());
    MappingSearch search(teslaK20c());

    MappingDecision dupDims;
    dupDims.levels = {{0, 32, SpanType::one()}, {0, 32, SpanType::all()}};
    EXPECT_FALSE(search.feasible(dupDims, cs)) << "duplicate dims";

    MappingDecision tooWide;
    tooWide.levels = {{1, 64, SpanType::one()}, {0, 64, SpanType::all()}};
    EXPECT_FALSE(search.feasible(tooWide, cs)) << "4096 threads per block";

    MappingDecision nonPow2;
    nonPow2.levels = {{1, 3, SpanType::one()}, {0, 32, SpanType::all()}};
    EXPECT_FALSE(search.feasible(nonPow2, cs));

    MappingDecision spanOneReduce;
    spanOneReduce.levels = {{1, 2, SpanType::one()},
                            {0, 32, SpanType::one()}};
    EXPECT_FALSE(search.feasible(spanOneReduce, cs))
        << "reduce level must span(all)";

    MappingDecision good;
    good.levels = {{1, 2, SpanType::one()}, {0, 32, SpanType::all()}};
    EXPECT_TRUE(search.feasible(good, cs));
}

TEST(Search, ScoreIsZeroForInfeasible)
{
    auto sp = makeSumRows();
    AnalysisEnv env;
    env.prog = &sp.prog;
    ConstraintSet cs = buildConstraints(sp.prog, env, teslaK20c());
    MappingSearch search(teslaK20c());
    MappingDecision bad;
    bad.levels = {{0, 32, SpanType::one()}, {0, 32, SpanType::all()}};
    EXPECT_DOUBLE_EQ(search.score(bad, cs), 0.0);
}

TEST(Search, DeterministicAcrossRuns)
{
    auto sp = makeSumRows();
    auto r1 = findMapping(sp.prog, teslaK20c());
    auto r2 = findMapping(sp.prog, teslaK20c());
    EXPECT_TRUE(r1.best == r2.best);
    EXPECT_DOUBLE_EQ(r1.bestScore, r2.bestScore);
}

TEST(Search, KeepCandidatesProducesScatter)
{
    auto sp = makeSumRows();
    SearchOptions opts;
    opts.keepCandidates = true;
    auto res = findMapping(sp.prog, teslaK20c(), {}, opts);
    EXPECT_GT(res.candidates.size(), 100u);
    // Every kept candidate is hard-feasible and none out-scores best.
    for (const auto &c : res.candidates)
        EXPECT_LE(c.score, res.bestScore);
}

TEST(Search, TripleNestUsesThreeDims)
{
    ProgramBuilder b("triple");
    Ex n = b.paramI64("n");
    Arr in = b.inF64("in");
    Arr out = b.outF64("out");
    b.map(n, out, [&](Body &f0, Ex i) {
        return f0.reduce(n, Op::Add, [&](Body &f1, Ex j) {
            return f1.reduce(n, Op::Add, [&](Body &, Ex k) {
                return in((i * n + j) * n + k);
            });
        });
    });
    Program p = b.build();
    auto res = findMapping(p, teslaK20c(), {{0, 64.0}});
    ASSERT_EQ(res.best.numLevels(), 3);
    // Innermost (stride-1) level gets x.
    EXPECT_EQ(res.best.levels[2].dim, 0);
    // All dims distinct.
    EXPECT_NE(res.best.levels[0].dim, res.best.levels[1].dim);
    EXPECT_NE(res.best.levels[1].dim, res.best.levels[2].dim);
}

//
// Fixed-strategy presets (Fig 7).
//

// ---------------------------------------------------------------------
// Decision-explanation report (SearchOptions::explain)

TEST(Explain, ContributionsSumToSelectedScore)
{
    auto sp = makeSumRows();
    SearchOptions opts;
    opts.explain = true;
    auto res = findMapping(sp.prog, teslaK20c(),
                           {{sp.rVar, 2048.0}, {sp.cVar, 2048.0}}, opts);
    const SearchExplanation &ex = res.explanation;
    ASSERT_TRUE(ex.valid);
    EXPECT_TRUE(ex.selected.decision == res.best);
    EXPECT_TRUE(ex.selected.feasible);
    for (const auto &hc : ex.selected.hardChecks)
        EXPECT_TRUE(hc.passed) << hc.name << ": " << hc.detail;

    double sum = 0.0;
    for (const auto &c : ex.selected.soft)
        sum += c.contribution;
    EXPECT_DOUBLE_EQ(sum, ex.selected.totalScore);
    // The selected mapping's explanation must account for the search's
    // own winning score (the score is invariant under the ControlDOP
    // span rewrites, so this holds post-adjustment too).
    EXPECT_DOUBLE_EQ(ex.selected.totalScore, res.bestScore);
}

TEST(Explain, CandidateTalliesPartitionTheSpace)
{
    auto sp = makeSumRows();
    SearchOptions opts;
    opts.explain = true;
    auto res = findMapping(sp.prog, teslaK20c(), {}, opts);
    const SearchExplanation &ex = res.explanation;
    ASSERT_TRUE(ex.valid);
    EXPECT_EQ(ex.enumerated,
              static_cast<int64_t>(res.candidatesConsidered));
    EXPECT_EQ(ex.enumerated, ex.feasibleCount + ex.rejectedDims +
                                 ex.rejectedBlockShape + ex.rejectedHardSpan);
    EXPECT_GT(ex.feasibleCount, 0);
    // The tie-break chain narrows monotonically and never empties.
    EXPECT_GE(ex.atBestScore, ex.atBestCappedDop);
    EXPECT_GE(ex.atBestCappedDop, ex.atBestBlocks);
    EXPECT_GE(ex.atBestBlocks, 1);
}

TEST(Explain, InfeasibleMappingItemizesTheFailure)
{
    auto sp = makeSumRows();
    AnalysisEnv env;
    env.prog = &sp.prog;
    ConstraintSet cs = buildConstraints(sp.prog, env, teslaK20c());
    MappingSearch search(teslaK20c());

    MappingDecision nonPow2;
    nonPow2.levels = {{1, 3, SpanType::one()}, {0, 32, SpanType::all()}};
    MappingExplanation mex = search.explain(nonPow2, cs);
    EXPECT_FALSE(mex.feasible);
    EXPECT_DOUBLE_EQ(mex.totalScore, 0.0);
    EXPECT_DOUBLE_EQ(mex.totalScore, search.score(nonPow2, cs));
    bool sawFailure = false;
    for (const auto &hc : mex.hardChecks)
        sawFailure |= !hc.passed;
    EXPECT_TRUE(sawFailure) << "at least one hard check must fail";
}

TEST(Explain, ExplainAgreesWithScoreOnArbitraryFeasibleMappings)
{
    auto sp = makeSumRows();
    AnalysisEnv env;
    env.prog = &sp.prog;
    ConstraintSet cs = buildConstraints(sp.prog, env, teslaK20c());
    MappingSearch search(teslaK20c());
    for (int64_t bs : {1, 2, 32, 128}) {
        MappingDecision d;
        d.levels = {{1, bs, SpanType::one()},
                    {0, 256 / bs, SpanType::all()}};
        if (!search.feasible(d, cs))
            continue;
        MappingExplanation mex = search.explain(d, cs);
        EXPECT_DOUBLE_EQ(mex.totalScore, search.score(d, cs))
            << "blockSize " << bs;
    }
}

TEST(Explain, StaticModelTalliesCountModelTies)
{
    auto sp = makeSumRows();
    SearchOptions opts;
    opts.explain = true;
    opts.keepCandidates = true;
    opts.objective = SearchObjective::StaticModel;
    auto res = findMapping(sp.prog, teslaK20c(),
                           {{sp.rVar, 512.0}, {sp.cVar, 512.0}}, opts);
    const SearchExplanation &ex = res.explanation;
    ASSERT_TRUE(ex.valid);
    ASSERT_FALSE(res.candidates.empty());

    // Real tallies (the report used to hardwire 1/1/1 for the model
    // objective): atBestScore counts the feasible candidates tied at
    // the best predicted time.
    double bestMs = res.candidates.front().modelMs;
    for (const ScoredMapping &c : res.candidates)
        bestMs = std::min(bestMs, c.modelMs);
    int64_t ties = 0;
    for (const ScoredMapping &c : res.candidates)
        ties += c.modelMs == bestMs ? 1 : 0;
    EXPECT_EQ(ex.atBestScore, ties);

    // The chain still narrows monotonically and never empties.
    EXPECT_GE(ex.atBestScore, ex.atBestCappedDop);
    EXPECT_GE(ex.atBestCappedDop, ex.atBestBlocks);
    EXPECT_GE(ex.atBestBlocks, 1);
}

TEST(Explain, ReportsRenderInBothFormats)
{
    auto sp = makeSumRows();
    SearchOptions opts;
    opts.explain = true;
    auto res = findMapping(sp.prog, teslaK20c(), {}, opts);
    const std::string text = formatSearchExplanation(res.explanation);
    EXPECT_NE(text.find("selected mapping"), std::string::npos);
    EXPECT_NE(text.find("total score"), std::string::npos);
    EXPECT_NE(text.find("tie-breaks"), std::string::npos);
    const std::string json = searchExplanationJson(res.explanation);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"selected\""), std::string::npos);
    EXPECT_NE(json.find("\"soft\""), std::string::npos);
}

TEST(Presets, OneDMapping)
{
    const DeviceConfig dev = teslaK20c();
    MappingDecision d = oneDMapping(2, dev);
    EXPECT_EQ(d.levels[0].dim, 0);
    EXPECT_EQ(d.levels[0].span.kind, SpanKind::One);
    EXPECT_EQ(d.levels[1].blockSize, 1);
    EXPECT_EQ(d.levels[1].span.kind, SpanKind::All)
        << "inner level is sequential inside the thread";
    EXPECT_EQ(d.threadsPerBlock(), 256);
}

TEST(Presets, ThreadBlockThreadMatchesFig7a)
{
    const DeviceConfig dev = teslaK20c();
    MappingDecision d = threadBlockThreadMapping(2, dev);
    EXPECT_EQ(d.levels[0].dim, 1);
    EXPECT_EQ(d.levels[0].blockSize, 1);
    EXPECT_EQ(d.levels[0].span.kind, SpanKind::One);
    EXPECT_EQ(d.levels[1].dim, 0);
    EXPECT_EQ(d.levels[1].blockSize, 1024);
    EXPECT_EQ(d.levels[1].span.kind, SpanKind::All);

    // DOP = I * min(J, MAX_BLOCK_SIZE) per Section IV-B.
    EXPECT_DOUBLE_EQ(d.dop({1000.0, 4096.0}), 1000.0 * 1024.0);
    EXPECT_DOUBLE_EQ(d.dop({1000.0, 100.0}), 1000.0 * 100.0);
}

TEST(Presets, WarpBasedMatchesFig7b)
{
    const DeviceConfig dev = teslaK20c();
    MappingDecision d = warpBasedMapping(2, dev);
    EXPECT_EQ(d.levels[0].dim, 1);
    EXPECT_EQ(d.levels[0].blockSize, 16);
    EXPECT_EQ(d.levels[1].dim, 0);
    EXPECT_EQ(d.levels[1].blockSize, 32);
    EXPECT_EQ(d.levels[1].span.kind, SpanKind::All);

    // DOP = I * min(J, WARP_SIZE).
    EXPECT_DOUBLE_EQ(d.dop({1000.0, 4096.0}), 1000.0 * 32.0);
    EXPECT_DOUBLE_EQ(d.dop({1000.0, 8.0}), 1000.0 * 8.0);
}

TEST(Presets, SingleLevelCollapsesTo1D)
{
    const DeviceConfig dev = teslaK20c();
    EXPECT_TRUE(threadBlockThreadMapping(1, dev) == oneDMapping(1, dev));
    EXPECT_TRUE(warpBasedMapping(1, dev) == oneDMapping(1, dev));
}

TEST(Presets, ApplyHardSpansForcesReduceLevels)
{
    auto makeRootReduce = [] {
        ProgramBuilder b("dot");
        Arr a = b.inF64("a");
        Ex n = b.paramI64("n");
        Arr out = b.outF64("out");
        b.reduce(n, Op::Add, out, [&](Body &, Ex i) { return a(i); });
        return b.build();
    };
    Program p = makeRootReduce();
    AnalysisEnv env;
    env.prog = &p;
    ConstraintSet cs = buildConstraints(p, env, teslaK20c());

    MappingDecision d = oneDMapping(1, teslaK20c());
    EXPECT_EQ(d.levels[0].span.kind, SpanKind::One);
    applyHardSpans(d, cs);
    EXPECT_EQ(d.levels[0].span.kind, SpanKind::All);
    MappingSearch search(teslaK20c());
    EXPECT_TRUE(search.feasible(d, cs));
}

//
// Geometry instantiation.
//

TEST(Geometry, SpanOneTiles)
{
    MappingDecision d;
    d.levels = {{0, 64, SpanType::one()}, {1, 16, SpanType::one()}};
    LaunchGeometry g = makeGeometry(d, {1000, 64});
    EXPECT_EQ(g.levels[0].blocks, 16); // ceil(1000/64)
    EXPECT_EQ(g.levels[1].blocks, 4);
    EXPECT_EQ(g.totalBlocks, 64);
    EXPECT_EQ(g.threadsPerBlock, 64 * 16);
    EXPECT_EQ(g.levels[0].itersPerThread, 1);
}

TEST(Geometry, SpanAllSingleBlockStrides)
{
    MappingDecision d;
    d.levels = {{1, 16, SpanType::one()}, {0, 32, SpanType::all()}};
    LaunchGeometry g = makeGeometry(d, {64, 1000});
    EXPECT_EQ(g.levels[1].blocks, 1);
    EXPECT_EQ(g.levels[1].itersPerThread, 32); // ceil(1000/32)
    EXPECT_EQ(g.totalBlocks, 4);
}

TEST(Geometry, SplitMakesKBlocks)
{
    MappingDecision d;
    d.levels = {{1, 16, SpanType::one()}, {0, 32, SpanType::split(3)}};
    LaunchGeometry g = makeGeometry(d, {64, 3000});
    EXPECT_EQ(g.levels[1].blocks, 3);
    // Each split segment is 1000 wide; 32 threads stride it.
    EXPECT_EQ(g.levels[1].itersPerThread, 32);
    EXPECT_EQ(g.totalBlocks, 12);
}

TEST(Geometry, BlockTrimmedToSmallSizes)
{
    MappingDecision d;
    d.levels = {{0, 256, SpanType::one()}};
    LaunchGeometry g = makeGeometry(d, {100});
    EXPECT_EQ(g.levels[0].blockSize, 100)
        << "runtime trims block to actual size";
    EXPECT_EQ(g.totalBlocks, 1);
}

TEST(Geometry, SpanNCoversDomain)
{
    MappingDecision d;
    d.levels = {{0, 256, SpanType::n(26)}};
    LaunchGeometry g = makeGeometry(d, {64 * 1024 * 1024});
    // blocks * blockSize * n >= size
    EXPECT_GE(g.levels[0].blocks * 256 * 26, 64LL * 1024 * 1024);
    EXPECT_EQ(g.levels[0].itersPerThread, 26);
}

} // namespace
} // namespace npp
