/**
 * @file
 * End-to-end application tests: every evaluation workload must produce
 * reference-identical results under every mapping strategy, and the
 * qualitative performance relationships the paper reports must hold on
 * the simulator.
 */

#include <gtest/gtest.h>

#include "apps/rodinia.h"
#include "apps/realworld.h"
#include "apps/sums.h"

namespace npp {
namespace {

/** Small instances so the whole matrix of (app x strategy) stays fast. */
std::vector<std::unique_ptr<App>>
smallApps()
{
    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeNearestNeighbor(1 << 12));
    apps.push_back(makeGaussian(48, false));
    apps.push_back(makeGaussian(48, true));
    apps.push_back(makeHotspot(48, 2, false));
    apps.push_back(makeHotspot(48, 2, true));
    apps.push_back(makeMandelbrot(24, 96, 12, false));
    apps.push_back(makeMandelbrot(24, 96, 12, true));
    apps.push_back(makeSrad(40, 2, false));
    apps.push_back(makeSrad(40, 2, true));
    apps.push_back(makePathfinder(6, 1024));
    apps.push_back(makeLud(40));
    apps.push_back(makeBfs(2048, 6));
    apps.push_back(makeQpscd(256, 64, 1));
    apps.push_back(makeKmeans(512, 8, 12, 2));
    apps.push_back(makeMsmBuilder(24, 12, 16));
    apps.push_back(makeNaiveBayes(96, 64));
    apps.push_back(makePageRank(1024, 6, 2));
    return apps;
}

class AppStrategyValidation : public ::testing::TestWithParam<Strategy>
{};

TEST_P(AppStrategyValidation, AllAppsMatchReference)
{
    Gpu gpu;
    for (auto &app : smallApps()) {
        AppResult result = app->run(gpu, GetParam(), /*validate=*/true);
        EXPECT_LE(result.maxError, 1e-6)
            << app->name() << " under "
            << strategyName(GetParam());
        EXPECT_GT(result.gpuMs, 0.0) << app->name();
        EXPECT_GT(result.referenceWork.iterations, 0u) << app->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, AppStrategyValidation,
    ::testing::Values(Strategy::MultiDim, Strategy::OneD,
                      Strategy::ThreadBlockThread, Strategy::WarpBased),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::MultiDim: return "MultiDim";
          case Strategy::OneD: return "OneD";
          case Strategy::ThreadBlockThread: return "ThreadBlockThread";
          case Strategy::WarpBased: return "WarpBased";
          default: return "Fixed";
        }
    });

TEST(AppManuals, ManualImplementationsRun)
{
    Gpu gpu;
    for (auto &app : smallApps()) {
        if (!app->hasManual())
            continue;
        EXPECT_GT(app->runManualMs(gpu), 0.0) << app->name();
    }
}

//
// Qualitative orderings the figures rely on (moderate sizes).
//

TEST(AppShapes, OneDLosesOnMultiLevelApps)
{
    Gpu gpu;
    // Hotspot / Mandelbrot / Srad: "perform very poorly with a 1D
    // mapping strategy" (Section VI-C).
    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeHotspot(192, 2, false));
    apps.push_back(makeMandelbrot(128, 512, 16, false));
    apps.push_back(makeSrad(160, 1, false));
    for (auto &app : apps) {
        const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
        const double oneD = app->run(gpu, Strategy::OneD).gpuMs;
        EXPECT_GT(oneD, 1.5 * multi) << app->name();
    }
}

TEST(AppShapes, MultiDimBeatsManualOnGaussianAndBfs)
{
    Gpu gpu;
    {
        auto app = makeGaussian(96, false);
        const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
        const double manual = app->runManualMs(gpu);
        EXPECT_LT(multi, manual) << "Gaussian: analysis coalesces the "
                                    "nest the manual kernel missed";
    }
    {
        auto app = makeBfs(16384, 24);
        const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
        const double oneD = app->run(gpu, Strategy::OneD).gpuMs;
        const double manual = app->runManualMs(gpu);
        EXPECT_LT(multi, oneD)
            << "BFS: the 1D equivalent of the manual kernel loses";
        EXPECT_LT(multi, manual * 1.05)
            << "BFS: at worst on par with hand-written CUDA";
    }
}

TEST(AppShapes, ManualWinsOnFusedStencilApps)
{
    Gpu gpu;
    {
        auto app = makePathfinder(32, 16384);
        const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
        const double manual = app->runManualMs(gpu);
        EXPECT_GT(multi, 1.3 * manual)
            << "Pathfinder: manual fuses iterations in shared memory";
    }
    {
        auto app = makeLud(128);
        const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
        const double manual = app->runManualMs(gpu);
        EXPECT_GT(multi, 1.5 * manual)
            << "LUD: manual is block-tiled in shared memory";
    }
}

TEST(AppShapes, NearestNeighborGapIsWrapperOverhead)
{
    Gpu gpu;
    auto app = makeNearestNeighbor(1 << 18);
    const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
    const double manual = app->runManualMs(gpu);
    EXPECT_GT(multi, manual);
    EXPECT_LT(multi, 2.0 * manual)
        << "gap should be modest (paper: ~20%)";
}

TEST(AppShapes, QpscdOneDWorseThanCpu)
{
    Gpu gpu;
    auto app = makeQpscd(8192, 256, 1);
    AppResult multi = app->run(gpu, Strategy::MultiDim, true);
    AppResult oneD = app->run(gpu, Strategy::OneD, true);
    EXPECT_GT(oneD.gpuMs, oneD.cpuMs)
        << "random outer rows cannot coalesce under 1D";
    EXPECT_LT(multi.gpuMs, multi.cpuMs)
        << "MultiDim maps the sequential row walk to dimension x";
    EXPECT_GT(oneD.gpuMs, 2.0 * multi.gpuMs);
}

TEST(AppShapes, MsmBuilderNeedsProductParallelism)
{
    Gpu gpu;
    auto app = makeMsmBuilder(160, 96, 64);
    const double multi = app->run(gpu, Strategy::MultiDim).gpuMs;
    const double oneD = app->run(gpu, Strategy::OneD).gpuMs;
    EXPECT_GT(oneD, 2.0 * multi)
        << "160 threads cannot utilize the device";
}

TEST(AppShapes, NaiveBayesTransferIsSignificant)
{
    Gpu gpu;
    auto app = makeNaiveBayes(2048, 1024);
    AppResult r = app->run(gpu, Strategy::MultiDim);
    EXPECT_GT(r.transferMs, r.gpuMs * 0.3)
        << "one-shot job: the matrix upload matters (Section VI-E)";
}

TEST(Sums, WeightedVariantsValidateUnderAllStrategies)
{
    Gpu gpu;
    for (bool byCols : {false, true}) {
        SumsProgram sp = buildSum(byCols, true);
        std::vector<double> expect = referenceSum(sp, 64, 96);
        for (Strategy s : {Strategy::MultiDim, Strategy::OneD,
                           Strategy::ThreadBlockThread,
                           Strategy::WarpBased}) {
            CompileOptions copts;
            copts.strategy = s;
            std::vector<double> out;
            runSum(gpu, sp, 64, 96, copts, &out);
            EXPECT_LE(maxRelDiff(expect, out), 1e-9)
                << sp.prog->name() << " under " << strategyName(s);
        }
    }
}

TEST(Sums, PositiveVariantsValidateUnderAllStrategies)
{
    // Variable-size pipeline (nested filter + compaction) end-to-end on
    // the Fig 16 workload, validated against the reference interpreter.
    Gpu gpu;
    for (bool byCols : {false, true}) {
        SumsProgram sp = buildSumPositives(byCols);
        std::vector<double> expect = referenceSum(sp, 64, 96);
        for (Strategy s : {Strategy::MultiDim, Strategy::OneD,
                           Strategy::ThreadBlockThread,
                           Strategy::WarpBased}) {
            CompileOptions copts;
            copts.strategy = s;
            std::vector<double> out;
            runSum(gpu, sp, 64, 96, copts, &out);
            EXPECT_LE(maxRelDiff(expect, out), 1e-9)
                << sp.prog->name() << " under " << strategyName(s);
        }
    }
}

} // namespace
} // namespace npp
