# Empty compiler generated dependencies file for npp_apps.
# This may be replaced when dependencies are built.
