file(REMOVE_RECURSE
  "libnpp_apps.a"
)
