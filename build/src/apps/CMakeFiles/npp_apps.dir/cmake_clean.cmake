file(REMOVE_RECURSE
  "CMakeFiles/npp_apps.dir/app.cc.o"
  "CMakeFiles/npp_apps.dir/app.cc.o.d"
  "CMakeFiles/npp_apps.dir/bfs.cc.o"
  "CMakeFiles/npp_apps.dir/bfs.cc.o.d"
  "CMakeFiles/npp_apps.dir/gaussian.cc.o"
  "CMakeFiles/npp_apps.dir/gaussian.cc.o.d"
  "CMakeFiles/npp_apps.dir/hotspot.cc.o"
  "CMakeFiles/npp_apps.dir/hotspot.cc.o.d"
  "CMakeFiles/npp_apps.dir/kmeans.cc.o"
  "CMakeFiles/npp_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/npp_apps.dir/lud.cc.o"
  "CMakeFiles/npp_apps.dir/lud.cc.o.d"
  "CMakeFiles/npp_apps.dir/mandelbrot.cc.o"
  "CMakeFiles/npp_apps.dir/mandelbrot.cc.o.d"
  "CMakeFiles/npp_apps.dir/msmbuilder.cc.o"
  "CMakeFiles/npp_apps.dir/msmbuilder.cc.o.d"
  "CMakeFiles/npp_apps.dir/naive_bayes.cc.o"
  "CMakeFiles/npp_apps.dir/naive_bayes.cc.o.d"
  "CMakeFiles/npp_apps.dir/nearest_neighbor.cc.o"
  "CMakeFiles/npp_apps.dir/nearest_neighbor.cc.o.d"
  "CMakeFiles/npp_apps.dir/pagerank.cc.o"
  "CMakeFiles/npp_apps.dir/pagerank.cc.o.d"
  "CMakeFiles/npp_apps.dir/pathfinder.cc.o"
  "CMakeFiles/npp_apps.dir/pathfinder.cc.o.d"
  "CMakeFiles/npp_apps.dir/qpscd.cc.o"
  "CMakeFiles/npp_apps.dir/qpscd.cc.o.d"
  "CMakeFiles/npp_apps.dir/srad.cc.o"
  "CMakeFiles/npp_apps.dir/srad.cc.o.d"
  "CMakeFiles/npp_apps.dir/sums.cc.o"
  "CMakeFiles/npp_apps.dir/sums.cc.o.d"
  "libnpp_apps.a"
  "libnpp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
