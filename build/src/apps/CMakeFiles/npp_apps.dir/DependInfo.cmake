
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/npp_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/bfs.cc" "src/apps/CMakeFiles/npp_apps.dir/bfs.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/bfs.cc.o.d"
  "/root/repo/src/apps/gaussian.cc" "src/apps/CMakeFiles/npp_apps.dir/gaussian.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/gaussian.cc.o.d"
  "/root/repo/src/apps/hotspot.cc" "src/apps/CMakeFiles/npp_apps.dir/hotspot.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/hotspot.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/npp_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/lud.cc" "src/apps/CMakeFiles/npp_apps.dir/lud.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/lud.cc.o.d"
  "/root/repo/src/apps/mandelbrot.cc" "src/apps/CMakeFiles/npp_apps.dir/mandelbrot.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/mandelbrot.cc.o.d"
  "/root/repo/src/apps/msmbuilder.cc" "src/apps/CMakeFiles/npp_apps.dir/msmbuilder.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/msmbuilder.cc.o.d"
  "/root/repo/src/apps/naive_bayes.cc" "src/apps/CMakeFiles/npp_apps.dir/naive_bayes.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/naive_bayes.cc.o.d"
  "/root/repo/src/apps/nearest_neighbor.cc" "src/apps/CMakeFiles/npp_apps.dir/nearest_neighbor.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/nearest_neighbor.cc.o.d"
  "/root/repo/src/apps/pagerank.cc" "src/apps/CMakeFiles/npp_apps.dir/pagerank.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/pagerank.cc.o.d"
  "/root/repo/src/apps/pathfinder.cc" "src/apps/CMakeFiles/npp_apps.dir/pathfinder.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/pathfinder.cc.o.d"
  "/root/repo/src/apps/qpscd.cc" "src/apps/CMakeFiles/npp_apps.dir/qpscd.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/qpscd.cc.o.d"
  "/root/repo/src/apps/srad.cc" "src/apps/CMakeFiles/npp_apps.dir/srad.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/srad.cc.o.d"
  "/root/repo/src/apps/sums.cc" "src/apps/CMakeFiles/npp_apps.dir/sums.cc.o" "gcc" "src/apps/CMakeFiles/npp_apps.dir/sums.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/npp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/npp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/npp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/npp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/npp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
