# Empty dependencies file for npp_ir.
# This may be replaced when dependencies are built.
