file(REMOVE_RECURSE
  "libnpp_ir.a"
)
