
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cc" "src/ir/CMakeFiles/npp_ir.dir/affine.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/affine.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/npp_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/npp_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/pattern.cc" "src/ir/CMakeFiles/npp_ir.dir/pattern.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/pattern.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/npp_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/npp_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/program.cc.o.d"
  "/root/repo/src/ir/traverse.cc" "src/ir/CMakeFiles/npp_ir.dir/traverse.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/traverse.cc.o.d"
  "/root/repo/src/ir/type.cc" "src/ir/CMakeFiles/npp_ir.dir/type.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/type.cc.o.d"
  "/root/repo/src/ir/var.cc" "src/ir/CMakeFiles/npp_ir.dir/var.cc.o" "gcc" "src/ir/CMakeFiles/npp_ir.dir/var.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
