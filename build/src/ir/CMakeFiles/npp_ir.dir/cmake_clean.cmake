file(REMOVE_RECURSE
  "CMakeFiles/npp_ir.dir/affine.cc.o"
  "CMakeFiles/npp_ir.dir/affine.cc.o.d"
  "CMakeFiles/npp_ir.dir/builder.cc.o"
  "CMakeFiles/npp_ir.dir/builder.cc.o.d"
  "CMakeFiles/npp_ir.dir/expr.cc.o"
  "CMakeFiles/npp_ir.dir/expr.cc.o.d"
  "CMakeFiles/npp_ir.dir/pattern.cc.o"
  "CMakeFiles/npp_ir.dir/pattern.cc.o.d"
  "CMakeFiles/npp_ir.dir/printer.cc.o"
  "CMakeFiles/npp_ir.dir/printer.cc.o.d"
  "CMakeFiles/npp_ir.dir/program.cc.o"
  "CMakeFiles/npp_ir.dir/program.cc.o.d"
  "CMakeFiles/npp_ir.dir/traverse.cc.o"
  "CMakeFiles/npp_ir.dir/traverse.cc.o.d"
  "CMakeFiles/npp_ir.dir/type.cc.o"
  "CMakeFiles/npp_ir.dir/type.cc.o.d"
  "CMakeFiles/npp_ir.dir/var.cc.o"
  "CMakeFiles/npp_ir.dir/var.cc.o.d"
  "libnpp_ir.a"
  "libnpp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
