# Empty compiler generated dependencies file for npp_sim.
# This may be replaced when dependencies are built.
