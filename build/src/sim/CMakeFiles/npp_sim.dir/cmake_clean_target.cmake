file(REMOVE_RECURSE
  "libnpp_sim.a"
)
