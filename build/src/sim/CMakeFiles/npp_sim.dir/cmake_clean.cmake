file(REMOVE_RECURSE
  "CMakeFiles/npp_sim.dir/coalesce.cc.o"
  "CMakeFiles/npp_sim.dir/coalesce.cc.o.d"
  "CMakeFiles/npp_sim.dir/executor.cc.o"
  "CMakeFiles/npp_sim.dir/executor.cc.o.d"
  "CMakeFiles/npp_sim.dir/gpu.cc.o"
  "CMakeFiles/npp_sim.dir/gpu.cc.o.d"
  "CMakeFiles/npp_sim.dir/metrics.cc.o"
  "CMakeFiles/npp_sim.dir/metrics.cc.o.d"
  "CMakeFiles/npp_sim.dir/timing.cc.o"
  "CMakeFiles/npp_sim.dir/timing.cc.o.d"
  "libnpp_sim.a"
  "libnpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
