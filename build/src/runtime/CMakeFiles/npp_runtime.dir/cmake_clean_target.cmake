file(REMOVE_RECURSE
  "libnpp_runtime.a"
)
