
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/binding.cc" "src/runtime/CMakeFiles/npp_runtime.dir/binding.cc.o" "gcc" "src/runtime/CMakeFiles/npp_runtime.dir/binding.cc.o.d"
  "/root/repo/src/runtime/eval.cc" "src/runtime/CMakeFiles/npp_runtime.dir/eval.cc.o" "gcc" "src/runtime/CMakeFiles/npp_runtime.dir/eval.cc.o.d"
  "/root/repo/src/runtime/reference.cc" "src/runtime/CMakeFiles/npp_runtime.dir/reference.cc.o" "gcc" "src/runtime/CMakeFiles/npp_runtime.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
