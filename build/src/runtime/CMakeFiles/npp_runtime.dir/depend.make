# Empty dependencies file for npp_runtime.
# This may be replaced when dependencies are built.
