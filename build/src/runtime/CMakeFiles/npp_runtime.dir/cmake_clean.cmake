file(REMOVE_RECURSE
  "CMakeFiles/npp_runtime.dir/binding.cc.o"
  "CMakeFiles/npp_runtime.dir/binding.cc.o.d"
  "CMakeFiles/npp_runtime.dir/eval.cc.o"
  "CMakeFiles/npp_runtime.dir/eval.cc.o.d"
  "CMakeFiles/npp_runtime.dir/reference.cc.o"
  "CMakeFiles/npp_runtime.dir/reference.cc.o.d"
  "libnpp_runtime.a"
  "libnpp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
