
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/autotune.cc" "src/codegen/CMakeFiles/npp_codegen.dir/autotune.cc.o" "gcc" "src/codegen/CMakeFiles/npp_codegen.dir/autotune.cc.o.d"
  "/root/repo/src/codegen/compile.cc" "src/codegen/CMakeFiles/npp_codegen.dir/compile.cc.o" "gcc" "src/codegen/CMakeFiles/npp_codegen.dir/compile.cc.o.d"
  "/root/repo/src/codegen/cuda_emit.cc" "src/codegen/CMakeFiles/npp_codegen.dir/cuda_emit.cc.o" "gcc" "src/codegen/CMakeFiles/npp_codegen.dir/cuda_emit.cc.o.d"
  "/root/repo/src/codegen/plan.cc" "src/codegen/CMakeFiles/npp_codegen.dir/plan.cc.o" "gcc" "src/codegen/CMakeFiles/npp_codegen.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/npp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/npp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
