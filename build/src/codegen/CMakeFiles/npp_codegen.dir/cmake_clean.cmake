file(REMOVE_RECURSE
  "CMakeFiles/npp_codegen.dir/autotune.cc.o"
  "CMakeFiles/npp_codegen.dir/autotune.cc.o.d"
  "CMakeFiles/npp_codegen.dir/compile.cc.o"
  "CMakeFiles/npp_codegen.dir/compile.cc.o.d"
  "CMakeFiles/npp_codegen.dir/cuda_emit.cc.o"
  "CMakeFiles/npp_codegen.dir/cuda_emit.cc.o.d"
  "CMakeFiles/npp_codegen.dir/plan.cc.o"
  "CMakeFiles/npp_codegen.dir/plan.cc.o.d"
  "libnpp_codegen.a"
  "libnpp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
