file(REMOVE_RECURSE
  "libnpp_codegen.a"
)
