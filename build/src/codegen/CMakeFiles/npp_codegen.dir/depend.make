# Empty dependencies file for npp_codegen.
# This may be replaced when dependencies are built.
