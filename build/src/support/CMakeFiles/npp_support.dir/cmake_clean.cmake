file(REMOVE_RECURSE
  "CMakeFiles/npp_support.dir/logging.cc.o"
  "CMakeFiles/npp_support.dir/logging.cc.o.d"
  "CMakeFiles/npp_support.dir/rng.cc.o"
  "CMakeFiles/npp_support.dir/rng.cc.o.d"
  "CMakeFiles/npp_support.dir/stats.cc.o"
  "CMakeFiles/npp_support.dir/stats.cc.o.d"
  "CMakeFiles/npp_support.dir/strings.cc.o"
  "CMakeFiles/npp_support.dir/strings.cc.o.d"
  "libnpp_support.a"
  "libnpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
