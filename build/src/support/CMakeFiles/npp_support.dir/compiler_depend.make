# Empty compiler generated dependencies file for npp_support.
# This may be replaced when dependencies are built.
