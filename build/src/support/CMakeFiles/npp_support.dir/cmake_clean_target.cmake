file(REMOVE_RECURSE
  "libnpp_support.a"
)
