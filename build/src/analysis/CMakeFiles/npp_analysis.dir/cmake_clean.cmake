file(REMOVE_RECURSE
  "CMakeFiles/npp_analysis.dir/constraint.cc.o"
  "CMakeFiles/npp_analysis.dir/constraint.cc.o.d"
  "CMakeFiles/npp_analysis.dir/mapping.cc.o"
  "CMakeFiles/npp_analysis.dir/mapping.cc.o.d"
  "CMakeFiles/npp_analysis.dir/model.cc.o"
  "CMakeFiles/npp_analysis.dir/model.cc.o.d"
  "CMakeFiles/npp_analysis.dir/presets.cc.o"
  "CMakeFiles/npp_analysis.dir/presets.cc.o.d"
  "CMakeFiles/npp_analysis.dir/search.cc.o"
  "CMakeFiles/npp_analysis.dir/search.cc.o.d"
  "CMakeFiles/npp_analysis.dir/target.cc.o"
  "CMakeFiles/npp_analysis.dir/target.cc.o.d"
  "libnpp_analysis.a"
  "libnpp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
