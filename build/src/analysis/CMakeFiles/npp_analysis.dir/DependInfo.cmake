
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/constraint.cc" "src/analysis/CMakeFiles/npp_analysis.dir/constraint.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/constraint.cc.o.d"
  "/root/repo/src/analysis/mapping.cc" "src/analysis/CMakeFiles/npp_analysis.dir/mapping.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/mapping.cc.o.d"
  "/root/repo/src/analysis/model.cc" "src/analysis/CMakeFiles/npp_analysis.dir/model.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/model.cc.o.d"
  "/root/repo/src/analysis/presets.cc" "src/analysis/CMakeFiles/npp_analysis.dir/presets.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/presets.cc.o.d"
  "/root/repo/src/analysis/search.cc" "src/analysis/CMakeFiles/npp_analysis.dir/search.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/search.cc.o.d"
  "/root/repo/src/analysis/target.cc" "src/analysis/CMakeFiles/npp_analysis.dir/target.cc.o" "gcc" "src/analysis/CMakeFiles/npp_analysis.dir/target.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
