file(REMOVE_RECURSE
  "libnpp_analysis.a"
)
