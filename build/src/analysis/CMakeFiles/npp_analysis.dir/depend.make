# Empty dependencies file for npp_analysis.
# This may be replaced when dependencies are built.
