# Empty dependencies file for npp_opt.
# This may be replaced when dependencies are built.
