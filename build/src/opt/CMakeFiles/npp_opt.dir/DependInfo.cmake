
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/fusion.cc" "src/opt/CMakeFiles/npp_opt.dir/fusion.cc.o" "gcc" "src/opt/CMakeFiles/npp_opt.dir/fusion.cc.o.d"
  "/root/repo/src/opt/prealloc.cc" "src/opt/CMakeFiles/npp_opt.dir/prealloc.cc.o" "gcc" "src/opt/CMakeFiles/npp_opt.dir/prealloc.cc.o.d"
  "/root/repo/src/opt/smem.cc" "src/opt/CMakeFiles/npp_opt.dir/smem.cc.o" "gcc" "src/opt/CMakeFiles/npp_opt.dir/smem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/npp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
