file(REMOVE_RECURSE
  "CMakeFiles/npp_opt.dir/fusion.cc.o"
  "CMakeFiles/npp_opt.dir/fusion.cc.o.d"
  "CMakeFiles/npp_opt.dir/prealloc.cc.o"
  "CMakeFiles/npp_opt.dir/prealloc.cc.o.d"
  "CMakeFiles/npp_opt.dir/smem.cc.o"
  "CMakeFiles/npp_opt.dir/smem.cc.o.d"
  "libnpp_opt.a"
  "libnpp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
