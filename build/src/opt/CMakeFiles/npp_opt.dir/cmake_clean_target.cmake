file(REMOVE_RECURSE
  "libnpp_opt.a"
)
