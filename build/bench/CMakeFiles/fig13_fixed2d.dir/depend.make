# Empty dependencies file for fig13_fixed2d.
# This may be replaced when dependencies are built.
