file(REMOVE_RECURSE
  "CMakeFiles/fig13_fixed2d.dir/fig13_fixed2d.cc.o"
  "CMakeFiles/fig13_fixed2d.dir/fig13_fixed2d.cc.o.d"
  "fig13_fixed2d"
  "fig13_fixed2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fixed2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
