file(REMOVE_RECURSE
  "CMakeFiles/fig16_prealloc.dir/fig16_prealloc.cc.o"
  "CMakeFiles/fig16_prealloc.dir/fig16_prealloc.cc.o.d"
  "fig16_prealloc"
  "fig16_prealloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_prealloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
