# Empty compiler generated dependencies file for fig16_prealloc.
# This may be replaced when dependencies are built.
