file(REMOVE_RECURSE
  "CMakeFiles/fig14_realworld.dir/fig14_realworld.cc.o"
  "CMakeFiles/fig14_realworld.dir/fig14_realworld.cc.o.d"
  "fig14_realworld"
  "fig14_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
