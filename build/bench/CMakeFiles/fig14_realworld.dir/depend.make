# Empty dependencies file for fig14_realworld.
# This may be replaced when dependencies are built.
