file(REMOVE_RECURSE
  "CMakeFiles/fig17_score_scatter.dir/fig17_score_scatter.cc.o"
  "CMakeFiles/fig17_score_scatter.dir/fig17_score_scatter.cc.o.d"
  "fig17_score_scatter"
  "fig17_score_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_score_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
