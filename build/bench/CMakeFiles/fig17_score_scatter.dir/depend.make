# Empty dependencies file for fig17_score_scatter.
# This may be replaced when dependencies are built.
