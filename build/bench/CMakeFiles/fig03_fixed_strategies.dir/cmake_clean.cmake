file(REMOVE_RECURSE
  "CMakeFiles/fig03_fixed_strategies.dir/fig03_fixed_strategies.cc.o"
  "CMakeFiles/fig03_fixed_strategies.dir/fig03_fixed_strategies.cc.o.d"
  "fig03_fixed_strategies"
  "fig03_fixed_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fixed_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
