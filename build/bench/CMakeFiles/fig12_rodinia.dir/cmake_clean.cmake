file(REMOVE_RECURSE
  "CMakeFiles/fig12_rodinia.dir/fig12_rodinia.cc.o"
  "CMakeFiles/fig12_rodinia.dir/fig12_rodinia.cc.o.d"
  "fig12_rodinia"
  "fig12_rodinia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rodinia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
