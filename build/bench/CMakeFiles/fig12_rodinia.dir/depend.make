# Empty dependencies file for fig12_rodinia.
# This may be replaced when dependencies are built.
