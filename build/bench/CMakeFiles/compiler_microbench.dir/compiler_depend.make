# Empty compiler generated dependencies file for compiler_microbench.
# This may be replaced when dependencies are built.
