file(REMOVE_RECURSE
  "CMakeFiles/compiler_microbench.dir/compiler_microbench.cc.o"
  "CMakeFiles/compiler_microbench.dir/compiler_microbench.cc.o.d"
  "compiler_microbench"
  "compiler_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
