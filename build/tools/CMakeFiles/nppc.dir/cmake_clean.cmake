file(REMOVE_RECURSE
  "CMakeFiles/nppc.dir/nppc.cc.o"
  "CMakeFiles/nppc.dir/nppc.cc.o.d"
  "nppc"
  "nppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
