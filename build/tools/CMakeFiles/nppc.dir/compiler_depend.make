# Empty compiler generated dependencies file for nppc.
# This may be replaced when dependencies are built.
