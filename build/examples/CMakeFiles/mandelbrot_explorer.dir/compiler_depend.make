# Empty compiler generated dependencies file for mandelbrot_explorer.
# This may be replaced when dependencies are built.
