file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_explorer.dir/mandelbrot_explorer.cpp.o"
  "CMakeFiles/mandelbrot_explorer.dir/mandelbrot_explorer.cpp.o.d"
  "mandelbrot_explorer"
  "mandelbrot_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
