# Empty dependencies file for mandelbrot_explorer.
# This may be replaced when dependencies are built.
