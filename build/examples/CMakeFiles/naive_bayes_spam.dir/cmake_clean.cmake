file(REMOVE_RECURSE
  "CMakeFiles/naive_bayes_spam.dir/naive_bayes_spam.cpp.o"
  "CMakeFiles/naive_bayes_spam.dir/naive_bayes_spam.cpp.o.d"
  "naive_bayes_spam"
  "naive_bayes_spam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_bayes_spam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
