# Empty compiler generated dependencies file for naive_bayes_spam.
# This may be replaced when dependencies are built.
