# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ir")
subdirs("runtime")
subdirs("analysis")
subdirs("sim")
subdirs("codegen")
subdirs("opt")
subdirs("apps")
subdirs("support")
