file(REMOVE_RECURSE
  "CMakeFiles/opt_fusion_test.dir/fusion_test.cc.o"
  "CMakeFiles/opt_fusion_test.dir/fusion_test.cc.o.d"
  "opt_fusion_test"
  "opt_fusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
