# CMake generated Testfile for 
# Source directory: /root/repo/tests/opt
# Build directory: /root/repo/build/tests/opt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(opt_test "/root/repo/build/tests/opt/opt_test")
set_tests_properties(opt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/opt/CMakeLists.txt;1;npp_test;/root/repo/tests/opt/CMakeLists.txt;0;")
add_test(opt_fusion_test "/root/repo/build/tests/opt/opt_fusion_test")
set_tests_properties(opt_fusion_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/opt/CMakeLists.txt;2;npp_test;/root/repo/tests/opt/CMakeLists.txt;0;")
