# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sim_executor_test "/root/repo/build/tests/sim/sim_executor_test")
set_tests_properties(sim_executor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;1;npp_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_timing_test "/root/repo/build/tests/sim/sim_timing_test")
set_tests_properties(sim_timing_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;2;npp_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_coverage_test "/root/repo/build/tests/sim/sim_coverage_test")
set_tests_properties(sim_coverage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;3;npp_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sim_edge_cases_test "/root/repo/build/tests/sim/sim_edge_cases_test")
set_tests_properties(sim_edge_cases_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;4;npp_test;/root/repo/tests/sim/CMakeLists.txt;0;")
