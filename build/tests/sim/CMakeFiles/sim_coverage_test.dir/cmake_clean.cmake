file(REMOVE_RECURSE
  "CMakeFiles/sim_coverage_test.dir/coverage_test.cc.o"
  "CMakeFiles/sim_coverage_test.dir/coverage_test.cc.o.d"
  "sim_coverage_test"
  "sim_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
