# Empty dependencies file for sim_coverage_test.
# This may be replaced when dependencies are built.
