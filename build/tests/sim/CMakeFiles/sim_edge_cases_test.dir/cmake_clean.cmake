file(REMOVE_RECURSE
  "CMakeFiles/sim_edge_cases_test.dir/edge_cases_test.cc.o"
  "CMakeFiles/sim_edge_cases_test.dir/edge_cases_test.cc.o.d"
  "sim_edge_cases_test"
  "sim_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
