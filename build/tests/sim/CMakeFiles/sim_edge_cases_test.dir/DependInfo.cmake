
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/edge_cases_test.cc" "tests/sim/CMakeFiles/sim_edge_cases_test.dir/edge_cases_test.cc.o" "gcc" "tests/sim/CMakeFiles/sim_edge_cases_test.dir/edge_cases_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/npp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/npp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/npp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/npp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/npp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
