file(REMOVE_RECURSE
  "CMakeFiles/runtime_eval_test.dir/eval_test.cc.o"
  "CMakeFiles/runtime_eval_test.dir/eval_test.cc.o.d"
  "runtime_eval_test"
  "runtime_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
