# Empty dependencies file for runtime_reference_test.
# This may be replaced when dependencies are built.
