file(REMOVE_RECURSE
  "CMakeFiles/runtime_reference_test.dir/reference_test.cc.o"
  "CMakeFiles/runtime_reference_test.dir/reference_test.cc.o.d"
  "runtime_reference_test"
  "runtime_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
