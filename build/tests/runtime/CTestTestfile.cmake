# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/build/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(runtime_reference_test "/root/repo/build/tests/runtime/runtime_reference_test")
set_tests_properties(runtime_reference_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/runtime/CMakeLists.txt;1;npp_test;/root/repo/tests/runtime/CMakeLists.txt;0;")
add_test(runtime_eval_test "/root/repo/build/tests/runtime/runtime_eval_test")
set_tests_properties(runtime_eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/runtime/CMakeLists.txt;2;npp_test;/root/repo/tests/runtime/CMakeLists.txt;0;")
