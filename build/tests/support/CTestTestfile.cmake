# CMake generated Testfile for 
# Source directory: /root/repo/tests/support
# Build directory: /root/repo/build/tests/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/support/CMakeLists.txt;1;npp_test;/root/repo/tests/support/CMakeLists.txt;0;")
