# Empty dependencies file for codegen_cuda_emit_test.
# This may be replaced when dependencies are built.
