file(REMOVE_RECURSE
  "CMakeFiles/codegen_cuda_emit_test.dir/cuda_emit_test.cc.o"
  "CMakeFiles/codegen_cuda_emit_test.dir/cuda_emit_test.cc.o.d"
  "codegen_cuda_emit_test"
  "codegen_cuda_emit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_cuda_emit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
