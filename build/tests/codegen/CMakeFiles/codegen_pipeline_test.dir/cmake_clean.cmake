file(REMOVE_RECURSE
  "CMakeFiles/codegen_pipeline_test.dir/pipeline_test.cc.o"
  "CMakeFiles/codegen_pipeline_test.dir/pipeline_test.cc.o.d"
  "codegen_pipeline_test"
  "codegen_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
