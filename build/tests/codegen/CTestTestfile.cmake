# CMake generated Testfile for 
# Source directory: /root/repo/tests/codegen
# Build directory: /root/repo/build/tests/codegen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(codegen_cuda_emit_test "/root/repo/build/tests/codegen/codegen_cuda_emit_test")
set_tests_properties(codegen_cuda_emit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/codegen/CMakeLists.txt;1;npp_test;/root/repo/tests/codegen/CMakeLists.txt;0;")
add_test(codegen_pipeline_test "/root/repo/build/tests/codegen/codegen_pipeline_test")
set_tests_properties(codegen_pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/codegen/CMakeLists.txt;2;npp_test;/root/repo/tests/codegen/CMakeLists.txt;0;")
