# CMake generated Testfile for 
# Source directory: /root/repo/tests/analysis
# Build directory: /root/repo/build/tests/analysis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(analysis_constraint_test "/root/repo/build/tests/analysis/analysis_constraint_test")
set_tests_properties(analysis_constraint_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/analysis/CMakeLists.txt;1;npp_test;/root/repo/tests/analysis/CMakeLists.txt;0;")
add_test(analysis_search_test "/root/repo/build/tests/analysis/analysis_search_test")
set_tests_properties(analysis_search_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/analysis/CMakeLists.txt;2;npp_test;/root/repo/tests/analysis/CMakeLists.txt;0;")
add_test(analysis_model_test "/root/repo/build/tests/analysis/analysis_model_test")
set_tests_properties(analysis_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/analysis/CMakeLists.txt;3;npp_test;/root/repo/tests/analysis/CMakeLists.txt;0;")
add_test(analysis_search_sweep_test "/root/repo/build/tests/analysis/analysis_search_sweep_test")
set_tests_properties(analysis_search_sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/analysis/CMakeLists.txt;4;npp_test;/root/repo/tests/analysis/CMakeLists.txt;0;")
