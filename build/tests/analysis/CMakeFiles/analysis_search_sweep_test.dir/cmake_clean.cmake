file(REMOVE_RECURSE
  "CMakeFiles/analysis_search_sweep_test.dir/search_sweep_test.cc.o"
  "CMakeFiles/analysis_search_sweep_test.dir/search_sweep_test.cc.o.d"
  "analysis_search_sweep_test"
  "analysis_search_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_search_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
