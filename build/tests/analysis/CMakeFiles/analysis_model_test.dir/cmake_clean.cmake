file(REMOVE_RECURSE
  "CMakeFiles/analysis_model_test.dir/model_test.cc.o"
  "CMakeFiles/analysis_model_test.dir/model_test.cc.o.d"
  "analysis_model_test"
  "analysis_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
