# Empty dependencies file for analysis_search_test.
# This may be replaced when dependencies are built.
