file(REMOVE_RECURSE
  "CMakeFiles/analysis_constraint_test.dir/constraint_test.cc.o"
  "CMakeFiles/analysis_constraint_test.dir/constraint_test.cc.o.d"
  "analysis_constraint_test"
  "analysis_constraint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
