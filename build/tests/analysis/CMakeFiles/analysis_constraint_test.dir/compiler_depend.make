# Empty compiler generated dependencies file for analysis_constraint_test.
# This may be replaced when dependencies are built.
