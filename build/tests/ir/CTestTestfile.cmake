# CMake generated Testfile for 
# Source directory: /root/repo/tests/ir
# Build directory: /root/repo/build/tests/ir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ir_expr_test "/root/repo/build/tests/ir/ir_expr_test")
set_tests_properties(ir_expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/ir/CMakeLists.txt;1;npp_test;/root/repo/tests/ir/CMakeLists.txt;0;")
add_test(ir_builder_test "/root/repo/build/tests/ir/ir_builder_test")
set_tests_properties(ir_builder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/ir/CMakeLists.txt;2;npp_test;/root/repo/tests/ir/CMakeLists.txt;0;")
add_test(ir_affine_test "/root/repo/build/tests/ir/ir_affine_test")
set_tests_properties(ir_affine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/ir/CMakeLists.txt;3;npp_test;/root/repo/tests/ir/CMakeLists.txt;0;")
add_test(ir_printer_test "/root/repo/build/tests/ir/ir_printer_test")
set_tests_properties(ir_printer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/ir/CMakeLists.txt;4;npp_test;/root/repo/tests/ir/CMakeLists.txt;0;")
