file(REMOVE_RECURSE
  "CMakeFiles/ir_affine_test.dir/affine_test.cc.o"
  "CMakeFiles/ir_affine_test.dir/affine_test.cc.o.d"
  "ir_affine_test"
  "ir_affine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_affine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
