file(REMOVE_RECURSE
  "CMakeFiles/ir_printer_test.dir/printer_test.cc.o"
  "CMakeFiles/ir_printer_test.dir/printer_test.cc.o.d"
  "ir_printer_test"
  "ir_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
