file(REMOVE_RECURSE
  "CMakeFiles/ir_builder_test.dir/builder_test.cc.o"
  "CMakeFiles/ir_builder_test.dir/builder_test.cc.o.d"
  "ir_builder_test"
  "ir_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
