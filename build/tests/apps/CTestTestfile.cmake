# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(apps_test "/root/repo/build/tests/apps/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/apps/CMakeLists.txt;1;npp_test;/root/repo/tests/apps/CMakeLists.txt;0;")
