/**
 * @file
 * Mapping constraints (Section IV-C, Table II). Constraints are generated
 * by traversing the IR: hard constraints restrict the candidate space
 * (span requirements from synchronization or dynamically-sized patterns);
 * soft constraints carry derived weights (intrinsic weight x execution
 * count x branch discount, Fig 8) and are summed into a mapping score.
 */

#ifndef NPP_ANALYSIS_CONSTRAINT_H
#define NPP_ANALYSIS_CONSTRAINT_H

#include <string>
#include <vector>

#include "analysis/target.h"
#include "ir/affine.h"

namespace npp {

/** Intrinsic weights of the soft constraint kinds. Memory coalescing gets
 *  the highest weight: pattern workloads are typically bandwidth limited
 *  (Section IV-C). */
struct IntrinsicWeights
{
    double coalesce = 10.0;
    double minBlock = 5.0;
};

/**
 * One mapping constraint.
 */
struct Constraint
{
    enum class Kind {
        /** Hard, local: this level must use Span(all) — the pattern needs
         *  cross-iteration synchronization (Reduce/Filter/GroupBy) or its
         *  size is unknown at launch. */
        HardSpanAll,
        /** Soft, local: this level issues sequential memory requests and
         *  should get dimension x with a warp-multiple block size. */
        SoftCoalesce,
        /** Soft, global: total threads per block >= MIN_BLOCK_SIZE. */
        SoftMinBlock
    };

    Kind kind = Kind::SoftCoalesce;

    /** Level the constraint applies to (-1 for global constraints). */
    int level = -1;

    /** Derived weight (soft constraints only). */
    double weight = 0.0;

    /** HardSpanAll: true when Span(all) may be upgraded to Split(k)
     *  (synchronization requirement); false when it may not (dynamic
     *  size — no combiner can be planned). Section IV-A. */
    bool splittable = false;

    /** Soft constraint whose access target is a preallocated local array:
     *  satisfiable by layout choice instead of dimension choice, so the
     *  search may ignore it (Section V-A). */
    bool flexible = false;

    /** Human-readable provenance for diagnostics. */
    std::string reason;

    std::string toString() const;
};

/**
 * One array access site summarized for the static performance model:
 * stride per nest level (when affine), execution count, and width.
 */
struct AccessSite
{
    /** Stride (elements) with respect to each level's index; valid only
     *  where `affine` is set. */
    double coeff[4] = {0, 0, 0, 0};
    bool affine[4] = {true, true, true, true};

    /** Times the site executes per kernel (enclosing sizes x trips x
     *  branch discount). */
    double execCount = 0.0;

    int bytes = 8;
    bool isWrite = false;

    /** Deepest enclosing level (redundant outer executions considered
     *  by the model). */
    int level = 0;
};

/**
 * All constraints for one program plus the per-level metadata the search
 * needs (representative sizes for DOP, splittability).
 */
struct ConstraintSet
{
    std::vector<Constraint> all;
    int numLevels = 0;

    /** Access summaries feeding the analytical scoring model. */
    std::vector<AccessSite> accesses;

    /** Representative per-level domain size (max over patterns at that
     *  level, resolved via the analysis environment). */
    std::vector<double> levelSizes;

    /** Per-level: must the level use Span(all)? */
    std::vector<bool> mustSpanAll;

    /** Per-level: may Span(all) be converted to Split(k)? */
    std::vector<bool> splittable;
};

/**
 * Traverse the program and build its constraint set (the CSet input of
 * Algorithm 1).
 */
ConstraintSet buildConstraints(const Program &prog, const AnalysisEnv &env,
                               const DeviceConfig &device,
                               const IntrinsicWeights &weights = {});

} // namespace npp

#endif // NPP_ANALYSIS_CONSTRAINT_H
