/**
 * @file
 * The mapping-decision explanation report: answers "why this
 * dim/block/span" for any mapping by replaying every hard-constraint
 * check with its verdict and itemizing every soft constraint's weight
 * contribution (Table II). The per-constraint contributions sum exactly
 * to MappingSearch::score() for the same mapping — enforced by
 * tests/analysis/search_test.
 */

#include "analysis/search.h"

#include <sstream>

#include "support/stats.h"
#include "support/strings.h"

namespace npp {

namespace {

const char *
softKindName(Constraint::Kind kind)
{
    switch (kind) {
      case Constraint::Kind::HardSpanAll: return "span(all)";
      case Constraint::Kind::SoftCoalesce: return "coalesce";
      case Constraint::Kind::SoftMinBlock: return "min-block";
    }
    return "?";
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    out += "\"";
    return out;
}

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

MappingExplanation
MappingSearch::explain(const MappingDecision &decision,
                       const ConstraintSet &cset) const
{
    MappingExplanation ex;
    ex.decision = decision;
    ex.dop = decision.dop(cset.levelSizes);

    const auto check = [&](const std::string &name, bool passed,
                           const std::string &detail) {
        ex.hardChecks.push_back({name, passed, detail});
        return passed;
    };

    // Mirror of feasible(), itemized. Every rule reports its verdict even
    // after an earlier one failed, so the report shows all violations.
    bool ok = check("level count",
                    decision.numLevels() == cset.numLevels,
                    fmt("mapping has {} levels, constraint set has {}",
                        decision.numLevels(), cset.numLevels));
    if (!ok) {
        // Nothing below is meaningful against mismatched levels.
        ex.feasible = false;
        return ex;
    }

    int64_t threads = 1;
    uint32_t dimsUsed = 0;
    for (int lv = 0; lv < decision.numLevels(); lv++) {
        const LevelMapping &l = decision.levels[lv];
        const bool dimRange = l.dim >= 0 && l.dim < device_.maxLogicalDims;
        ok &= check(fmt("L{} dim range", lv), dimRange,
                    fmt("dim {} must be in [0, {})", l.dim,
                        device_.maxLogicalDims));
        const bool dimFresh = dimRange && !(dimsUsed & (1u << l.dim));
        if (dimRange)
            dimsUsed |= 1u << l.dim;
        ok &= check(fmt("L{} dim distinct", lv), dimFresh,
                    fmt("dim {} must not repeat across levels", l.dim));
        const bool sizeRange =
            dimRange && l.blockSize >= 1 &&
            l.blockSize <= device_.maxBlockDim[l.dim];
        ok &= check(fmt("L{} block size", lv), sizeRange,
                    fmt("block size {} must be in [1, {}]", l.blockSize,
                        dimRange ? device_.maxBlockDim[l.dim] : 0));
        ok &= check(fmt("L{} block pow2", lv), isPow2(l.blockSize),
                    fmt("block size {} must be a power of two",
                        l.blockSize));
        threads *= l.blockSize;
    }
    ok &= check("threads per block",
                threads <= device_.maxThreadsPerBlock,
                fmt("{} threads, device limit {}", threads,
                    device_.maxThreadsPerBlock));

    for (size_t ci = 0; ci < cset.all.size(); ci++) {
        const Constraint &c = cset.all[ci];
        if (c.kind != Constraint::Kind::HardSpanAll)
            continue;
        ok &= check(fmt("L{} span(all)", c.level),
                    satisfies(c, decision),
                    fmt("{} — level must use Span(all) or Split",
                        c.reason));
    }
    for (int lv = 0; lv < decision.numLevels(); lv++) {
        const bool splitOk =
            decision.levels[lv].span.kind != SpanKind::Split ||
            cset.splittable[lv];
        ok &= check(fmt("L{} split legal", lv), splitOk,
                    "Split(k) requires a plannable combiner "
                    "(splittable level)");
    }
    ex.feasible = ok;

    // Soft contributions, mirroring score(): hard constraints and
    // (under preallocLayouts) flexible constraints contribute nothing;
    // an infeasible mapping scores 0 overall.
    for (size_t ci = 0; ci < cset.all.size(); ci++) {
        const Constraint &c = cset.all[ci];
        if (c.kind == Constraint::Kind::HardSpanAll)
            continue;
        SoftContribution sc;
        sc.constraintIndex = static_cast<int>(ci);
        sc.level = c.level;
        sc.weight = c.weight;
        sc.skippedFlexible = options_.preallocLayouts && c.flexible;
        sc.satisfied = satisfies(c, decision);
        sc.contribution =
            (ex.feasible && sc.satisfied && !sc.skippedFlexible)
                ? c.weight
                : 0.0;
        sc.reason = fmt("{}{}", softKindName(c.kind),
                        c.reason.empty() ? "" : ": " + c.reason);
        ex.totalScore += sc.contribution;
        ex.soft.push_back(std::move(sc));
    }
    return ex;
}

std::string
formatSearchExplanation(const SearchExplanation &ex)
{
    std::ostringstream os;
    if (!ex.valid)
        return "(no explanation: search ran without explain)\n";

    const MappingExplanation &m = ex.selected;
    os << "selected mapping: " << m.decision.toString() << "\n";
    os << fmt("  score={} dop={} feasible={}\n", m.totalScore, m.dop,
              m.feasible ? "yes" : "no");

    os << "hard checks:\n";
    for (const HardCheck &h : m.hardChecks) {
        os << fmt("  [{}] {}  ({})\n", h.passed ? "pass" : "FAIL",
                  h.name, h.detail);
    }

    os << "soft-constraint contributions (Table II):\n";
    for (const SoftContribution &s : m.soft) {
        const char *mark = s.skippedFlexible ? "~"
                           : s.satisfied     ? "+"
                                             : " ";
        os << fmt("  [{}] w={}  {}  -> +{}{}\n", mark, s.weight,
                  s.reason, s.contribution,
                  s.skippedFlexible ? "  (flexible: satisfiable by "
                                      "layout, skipped)"
                                    : "");
    }
    os << fmt("  total score = {}  (sum of contributions)\n",
              m.totalScore);

    os << fmt("candidate space: {} enumerated, {} feasible "
              "(rejected: {} dim conflicts, {} block shapes, "
              "{} span requirements)\n",
              ex.enumerated, ex.feasibleCount, ex.rejectedDims,
              ex.rejectedBlockShape, ex.rejectedHardSpan);
    os << fmt("tie-breaks: {} candidate(s) at the best score -> {} after "
              "capped-DOP -> {} after fewer-blocks -> lexicographic\n",
              ex.atBestScore, ex.atBestCappedDop, ex.atBestBlocks);
    os << "controlDOP: "
       << (ex.controlDopNote.empty() ? "no adjustment"
                                     : ex.controlDopNote)
       << "\n";
    if (!ex.fleetNote.empty())
        os << ex.fleetNote;
    if (!ex.consolidationNote.empty())
        os << ex.consolidationNote;
    if (!ex.predictNote.empty())
        os << ex.predictNote;
    return os.str();
}

std::string
searchExplanationJson(const SearchExplanation &ex)
{
    std::ostringstream os;
    os << "{\"valid\":" << (ex.valid ? "true" : "false");
    if (!ex.valid) {
        os << "}";
        return os.str();
    }
    const MappingExplanation &m = ex.selected;
    os << ",\"selected\":" << jsonStr(m.decision.toString());
    os << ",\"feasible\":" << (m.feasible ? "true" : "false");
    os << ",\"score\":" << num(m.totalScore);
    os << ",\"dop\":" << num(m.dop);
    os << ",\"hard_checks\":[";
    for (size_t i = 0; i < m.hardChecks.size(); i++) {
        const HardCheck &h = m.hardChecks[i];
        os << (i ? "," : "") << "{\"name\":" << jsonStr(h.name)
           << ",\"passed\":" << (h.passed ? "true" : "false")
           << ",\"detail\":" << jsonStr(h.detail) << "}";
    }
    os << "],\"soft\":[";
    for (size_t i = 0; i < m.soft.size(); i++) {
        const SoftContribution &s = m.soft[i];
        os << (i ? "," : "") << "{\"index\":" << s.constraintIndex
           << ",\"level\":" << s.level << ",\"weight\":" << num(s.weight)
           << ",\"satisfied\":" << (s.satisfied ? "true" : "false")
           << ",\"skipped_flexible\":"
           << (s.skippedFlexible ? "true" : "false")
           << ",\"contribution\":" << num(s.contribution)
           << ",\"reason\":" << jsonStr(s.reason) << "}";
    }
    os << "],\"enumerated\":" << ex.enumerated;
    os << ",\"feasible_count\":" << ex.feasibleCount;
    os << ",\"rejected_dims\":" << ex.rejectedDims;
    os << ",\"rejected_block_shape\":" << ex.rejectedBlockShape;
    os << ",\"rejected_hard_span\":" << ex.rejectedHardSpan;
    os << ",\"at_best_score\":" << ex.atBestScore;
    os << ",\"at_best_capped_dop\":" << ex.atBestCappedDop;
    os << ",\"at_best_blocks\":" << ex.atBestBlocks;
    os << ",\"control_dop\":" << jsonStr(ex.controlDopNote);
    if (!ex.fleetJson.empty())
        os << ",\"fleet\":" << ex.fleetJson;
    if (!ex.consolidationJson.empty())
        os << ",\"consolidation\":" << ex.consolidationJson;
    if (!ex.predictJson.empty())
        os << ",\"predict\":" << ex.predictJson;
    os << "}";
    return os.str();
}

} // namespace npp
