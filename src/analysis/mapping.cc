#include "analysis/mapping.h"

#include <algorithm>
#include <tuple>

#include "support/logging.h"
#include "support/stats.h"
#include "support/strings.h"

namespace npp {

namespace {

const char *
dimName(int dim)
{
    static const char *names[] = {"x", "y", "z", "w"};
    return dim >= 0 && dim < 4 ? names[dim] : "?";
}

} // namespace

std::string
SpanType::toString() const
{
    switch (kind) {
      case SpanKind::One:
        return "span(1)";
      case SpanKind::N:
        return fmt("span({})", factor);
      case SpanKind::All:
        return "span(all)";
      case SpanKind::Split:
        return fmt("split({})", factor);
    }
    return "?";
}

std::string
LevelMapping::toString() const
{
    return fmt("[dim{}, {}, {}]", dimName(dim), blockSize,
               span.toString());
}

int64_t
MappingDecision::threadsPerBlock() const
{
    int64_t total = 1;
    for (const auto &l : levels)
        total *= l.blockSize;
    return total;
}

double
MappingDecision::dop(const std::vector<double> &levelSizes) const
{
    NPP_ASSERT(levelSizes.size() == levels.size(),
               "dop: size/level mismatch");
    double dop = 1.0;
    for (size_t i = 0; i < levels.size(); i++) {
        const LevelMapping &l = levels[i];
        const double size = levelSizes[i];
        switch (l.span.kind) {
          case SpanKind::One:
            dop *= size;
            break;
          case SpanKind::N:
            dop *= std::max(1.0, size / static_cast<double>(l.span.factor));
            break;
          case SpanKind::All:
            // Contributes block size, not loop size (Section IV-D).
            dop *= std::min(size, static_cast<double>(l.blockSize));
            break;
          case SpanKind::Split:
            dop *= std::min(size, static_cast<double>(l.blockSize *
                                                      l.span.factor));
            break;
        }
    }
    return dop;
}

bool
MappingDecision::operator<(const MappingDecision &o) const
{
    auto key = [](const LevelMapping &l) {
        return std::tuple<int, int64_t, int, int64_t>(
            l.dim, l.blockSize, static_cast<int>(l.span.kind),
            l.span.factor);
    };
    return std::lexicographical_compare(
        levels.begin(), levels.end(), o.levels.begin(), o.levels.end(),
        [&](const LevelMapping &a, const LevelMapping &b) {
            return key(a) < key(b);
        });
}

uint64_t
MappingDecision::hashValue() const
{
    uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    auto mix = [&h](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(levels.size());
    for (const auto &l : levels) {
        mix(static_cast<uint64_t>(l.dim));
        mix(static_cast<uint64_t>(l.blockSize));
        mix(static_cast<uint64_t>(l.span.kind));
        mix(static_cast<uint64_t>(l.span.factor));
    }
    return h;
}

std::string
MappingDecision::toString() const
{
    std::string out;
    for (size_t i = 0; i < levels.size(); i++) {
        if (i)
            out += " ";
        out += fmt("L{}{}", i, levels[i].toString());
    }
    return out;
}

LaunchGeometry
makeGeometry(const MappingDecision &decision,
             const std::vector<int64_t> &levelSizes)
{
    NPP_ASSERT(decision.levels.size() == levelSizes.size(),
               "geometry: decision has {} levels, {} sizes given",
               decision.levels.size(), levelSizes.size());
    LaunchGeometry geom;
    geom.levels.resize(decision.levels.size());

    for (size_t i = 0; i < decision.levels.size(); i++) {
        const LevelMapping &l = decision.levels[i];
        const int64_t size = std::max<int64_t>(levelSizes[i], 1);
        LaunchGeometry::LevelGeom &g = geom.levels[i];
        g.dim = l.dim;
        g.size = levelSizes[i];
        g.span = l.span;
        // Dynamic trim: never launch more threads in a dim than the
        // actual size requires (Section IV-D runtime adjustment).
        g.blockSize = std::min<int64_t>(l.blockSize, size);

        switch (l.span.kind) {
          case SpanKind::One:
            g.blocks = ceilDiv(size, g.blockSize);
            g.itersPerThread = 1;
            break;
          case SpanKind::N:
            g.blocks = ceilDiv(size, g.blockSize * l.span.factor);
            g.itersPerThread = l.span.factor;
            break;
          case SpanKind::All:
            g.blocks = 1;
            g.itersPerThread = ceilDiv(size, g.blockSize);
            break;
          case SpanKind::Split: {
            g.blocks = std::min<int64_t>(l.span.factor, size);
            const int64_t segment = ceilDiv(size, g.blocks);
            g.itersPerThread = ceilDiv(segment, g.blockSize);
            break;
          }
        }
        geom.totalBlocks *= g.blocks;
        geom.threadsPerBlock *= g.blockSize;
    }
    return geom;
}

} // namespace npp
