/**
 * @file
 * Analytical performance model for mapping candidates — the scoring
 * refinement the paper names as future work (Section VI-G, citing Hong &
 * Kim). From the access summaries the constraint pass collects (strides
 * per level, execution counts), the model predicts per-warp coalescing,
 * applies the same occupancy/latency roofline as the simulator, and
 * produces a time estimate WITHOUT executing anything. The search can
 * rank candidates by this estimate instead of the soft-constraint score
 * (SearchOptions::objective).
 */

#ifndef NPP_ANALYSIS_MODEL_H
#define NPP_ANALYSIS_MODEL_H

#include "analysis/constraint.h"
#include "analysis/mapping.h"

namespace npp {

/** Breakdown of a static estimate (for diagnostics and tests). */
struct ModelEstimate
{
    double totalMs = 0.0;
    double memoryMs = 0.0;
    double computeMs = 0.0;
    double overheadMs = 0.0;
    double predictedTransactions = 0.0;
};

/**
 * Predict the execution time of one hard-feasible mapping from the
 * constraint set's access summaries and level sizes.
 */
ModelEstimate staticEstimate(const MappingDecision &decision,
                             const ConstraintSet &cset,
                             const DeviceConfig &device);

} // namespace npp

#endif // NPP_ANALYSIS_MODEL_H
