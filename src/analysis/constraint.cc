#include "analysis/constraint.h"

#include <cmath>
#include <functional>

#include "ir/traverse.h"
#include "support/logging.h"
#include "support/strings.h"

namespace npp {

std::string
Constraint::toString() const
{
    switch (kind) {
      case Kind::HardSpanAll:
        return fmt("hard L{} span(all){} ({})", level,
                   splittable ? " [splittable]" : "", reason);
      case Kind::SoftCoalesce:
        return fmt("soft L{} dim(x)+warp-block w={}{} ({})", level, weight,
                   flexible ? " [flexible]" : "", reason);
      case Kind::SoftMinBlock:
        return fmt("soft global block>=min w={}", weight);
    }
    return "?";
}

namespace {

/**
 * Recursive constraint generator. Tracks the stack of enclosing patterns
 * (one per level), the execution-count multiplier, and the branch depth.
 */
class Generator
{
  public:
    Generator(const Program &prog, const AnalysisEnv &env,
              const DeviceConfig &device, const IntrinsicWeights &weights,
              ConstraintSet &out)
        : prog(prog), env(env), device(device), weights(weights), out(out)
    {}

    /** Register a let definition so strides see through it. */
    void
    registerLet(const Stmt &s)
    {
        if (s.kind != StmtKind::Let || prog.var(s.var).isMutable)
            return;
        env.localDefs[s.var] = resolveLocals(s.value, env);
    }

    void
    run()
    {
        const int levels = prog.numLevels();
        out.numLevels = levels;
        out.levelSizes.assign(levels, 0.0);
        out.mustSpanAll.assign(levels, false);
        out.splittable.assign(levels, true);

        visitPattern(prog.root(), 1.0, 0);

        // Root map/zipWith/filter implicitly store out[i]: sequential in
        // the root index (weight = root size, one store per iteration).
        const Pattern &root = prog.root();
        if (root.kind == PatternKind::Map ||
            root.kind == PatternKind::ZipWith) {
            Constraint c;
            c.kind = Constraint::Kind::SoftCoalesce;
            c.level = 0;
            c.weight = weights.coalesce * out.levelSizes[0];
            c.reason = fmt("{}: output store", prog.name());
            out.all.push_back(c);
        }

        // Soft global: enough threads per block (Table II). Weight scales
        // with total work so it is comparable to, but weaker than, the
        // coalescing constraints of the innermost level.
        double totalIters = 1.0;
        for (double s : out.levelSizes)
            totalIters *= std::max(s, 1.0);
        Constraint blockC;
        blockC.kind = Constraint::Kind::SoftMinBlock;
        blockC.weight = weights.minBlock * totalIters;
        blockC.reason = "min block size";
        out.all.push_back(blockC);
    }

  private:
    struct Enclosing
    {
        const Pattern *pattern;
        int level;
    };


    void
    visitPattern(const Pattern &p, double multiplier, int level)
    {
        const double size = sizeForAnalysis(p.size, env);
        out.levelSizes[level] = std::max(out.levelSizes[level], size);

        // Hard span constraints (Table II, hard local; merged per level
        // which realizes the hard global most-conservative-span rule).
        if (requiresGlobalSync(p.kind)) {
            out.mustSpanAll[level] = true;
            // Only Reduce has a plannable combiner kernel; Filter and
            // GroupBy cannot be split across blocks.
            const bool canSplit = p.kind == PatternKind::Reduce;
            if (!canSplit)
                out.splittable[level] = false;
            Constraint c;
            c.kind = Constraint::Kind::HardSpanAll;
            c.level = level;
            c.splittable = canSplit;
            c.reason = fmt("{} requires global synchronization",
                           patternKindName(p.kind));
            out.all.push_back(c);
        }
        if (!sizeKnownAtLaunch(p.size, prog)) {
            out.mustSpanAll[level] = true;
            out.splittable[level] = false;
            Constraint c;
            c.kind = Constraint::Kind::HardSpanAll;
            c.level = level;
            c.splittable = false;
            c.reason = "size unknown at kernel launch";
            out.all.push_back(c);
        }

        enclosing.push_back({&p, level});
        const double inner = multiplier * std::max(size, 1.0);

        // The size expression itself may load memory (e.g. CSR row
        // offsets); those loads execute once per iteration of the
        // *enclosing* patterns. Same for a nested groupBy's key-domain
        // size (the output allocation size).
        visitAccessesInExpr(p.size, multiplier, /*skipSelf=*/true);
        visitAccessesInExpr(p.keyDomain, multiplier, true);

        visitStmts(p.body, inner, level, 0);
        visitAccessesInExpr(p.yield, inner, false);
        visitAccessesInExpr(p.filterPred, inner, false);
        visitAccessesInExpr(p.key, inner, false);

        // Variable-size nested outputs write through the local-array
        // layout: the filter's compaction cursor advances with the
        // iteration order (unit stride in this level's index), the
        // groupBy bins are indexed by the data-dependent key. Both
        // targets are array locals, so the constraint is flexible — the
        // prealloc layout can absorb whatever dimension the search picks.
        if (level > 0 && p.kind == PatternKind::Filter) {
            addAccessConstraints(varRef(p.indexVar, ScalarKind::I64),
                                 VarRole::ArrayLocal, inner, 0,
                                 "nested filter compacted store",
                                 /*isWrite=*/true);
        }
        if (level > 0 && p.kind == PatternKind::GroupBy) {
            addAccessConstraints(p.key, VarRole::ArrayLocal, inner, 0,
                                 "nested groupBy keyed store",
                                 /*isWrite=*/true);
        }
        enclosing.pop_back();
    }

    void
    visitStmts(const std::vector<StmtPtr> &stmts, double multiplier,
               int level, int branchDepth)
    {
        for (const auto &s : stmts) {
            switch (s->kind) {
              case StmtKind::Let:
              case StmtKind::Assign:
                visitAccesses(s->value, multiplier, branchDepth);
                registerLet(*s);
                break;
              case StmtKind::Store:
                visitAccesses(s->value, multiplier, branchDepth);
                visitAccesses(s->index, multiplier, branchDepth);
                addAccessConstraints(s->index, prog.var(s->array).role,
                                     multiplier, branchDepth,
                                     fmt("store to {}",
                                         prog.var(s->array).name),
                                     /*isWrite=*/true);
                break;
              case StmtKind::If:
                visitAccesses(s->cond, multiplier, branchDepth);
                visitStmts(s->body, multiplier, level, branchDepth + 1);
                visitStmts(s->elseBody, multiplier, level,
                           branchDepth + 1);
                break;
              case StmtKind::SeqLoop: {
                visitAccesses(s->trip, multiplier, branchDepth);
                double trip = 1000.0;
                if (auto t = constEval(s->trip, env))
                    trip = *t;
                visitStmts(s->body, multiplier * std::max(trip, 1.0),
                           level, branchDepth);
                break;
              }
              case StmtKind::Nested:
                if (s->pattern->kind == PatternKind::Reduce &&
                    (branchDepth > 0 || usedBeyondYield(stmts, s.get()))) {
                    // A split partial cannot flow anywhere except the
                    // enclosing yield (the combiner applies it there).
                    out.splittable[level + 1] = false;
                }
                visitPattern(*s->pattern, multiplier, level + 1);
                break;
            }
        }
    }

    /** Emit constraints for every Read inside expr (recursively). */
    void
    visitAccesses(const ExprRef &expr, double multiplier, int branchDepth)
    {
        if (!expr)
            return;
        walkExpr(expr, [&](const Expr &e) {
            if (e.kind == ExprKind::Read) {
                addAccessConstraints(e.a, prog.var(e.varId).role,
                                     multiplier, branchDepth,
                                     fmt("read of {}",
                                         prog.var(e.varId).name));
            }
        });
    }

    /** Like visitAccesses but used for expressions evaluated outside the
     *  current pattern's per-iteration body. */
    void
    visitAccessesInExpr(const ExprRef &expr, double multiplier, bool)
    {
        visitAccesses(expr, multiplier, 0);
    }

    /**
     * Add coalescing soft constraints for one access site: for every
     * enclosing level whose index appears with stride +-1, that level
     * wants dimension x (Fig 8).
     */
    void
    addAccessConstraints(const ExprRef &indexExpr, VarRole targetRole,
                         double multiplier, int branchDepth,
                         std::string reason, bool isWrite = false)
    {
        const double discount = std::pow(0.5, branchDepth);
        const bool flexible = targetRole == VarRole::ArrayLocal;
        const ExprRef resolved = resolveLocals(indexExpr, env);

        AccessSite site;
        site.execCount = multiplier * discount;
        site.isWrite = isWrite;
        site.level = enclosing.empty() ? 0 : enclosing.back().level;

        for (const Enclosing &enc : enclosing) {
            auto coeff = coeffOf(resolved, enc.pattern->indexVar, env);
            if (enc.level < 4) {
                if (coeff) {
                    site.coeff[enc.level] = *coeff;
                } else {
                    site.affine[enc.level] = false;
                }
            }
            if (!coeff || std::fabs(*coeff) != 1.0)
                continue;
            Constraint c;
            c.kind = Constraint::Kind::SoftCoalesce;
            c.level = enc.level;
            c.weight = weights.coalesce * multiplier * discount;
            c.flexible = flexible;
            c.reason = reason;
            out.all.push_back(c);
        }
        if (!flexible)
            out.accesses.push_back(site);
    }

    /** True if the reduce result var is referenced by any statement
     *  after the reduce (other than via the enclosing yield). */
    bool
    usedBeyondYield(const std::vector<StmtPtr> &stmts,
                    const Stmt *reduceStmt) const
    {
        bool seen = false, used = false;
        for (const auto &s : stmts) {
            if (s.get() == reduceStmt) {
                seen = true;
                continue;
            }
            if (!seen)
                continue;
            const int var = reduceStmt->var;
            auto usesVar = [&](const ExprRef &e) {
                if (e && mentionsVar(e, var))
                    used = true;
            };
            usesVar(s->value);
            usesVar(s->index);
            usesVar(s->cond);
            usesVar(s->trip);
            // Conservative: any later nested pattern or block mentioning
            // the var counts as a use.
            std::function<void(const std::vector<StmtPtr> &)> scan =
                [&](const std::vector<StmtPtr> &body) {
                    for (const auto &b : body) {
                        usesVar(b->value);
                        usesVar(b->index);
                        usesVar(b->cond);
                        usesVar(b->trip);
                        scan(b->body);
                        scan(b->elseBody);
                        if (b->pattern) {
                            usesVar(b->pattern->size);
                            usesVar(b->pattern->yield);
                            usesVar(b->pattern->filterPred);
                            usesVar(b->pattern->key);
                            scan(b->pattern->body);
                        }
                    }
                };
            scan(s->body);
            scan(s->elseBody);
            if (s->pattern) {
                usesVar(s->pattern->size);
                usesVar(s->pattern->yield);
                scan(s->pattern->body);
            }
        }
        return used;
    }

    const Program &prog;
    AnalysisEnv env; // mutable copy: accumulates local definitions
    const DeviceConfig &device;
    const IntrinsicWeights &weights;
    ConstraintSet &out;
    std::vector<Enclosing> enclosing;
};

} // namespace

ConstraintSet
buildConstraints(const Program &prog, const AnalysisEnv &env,
                 const DeviceConfig &device, const IntrinsicWeights &weights)
{
    ConstraintSet out;
    Generator gen(prog, env, device, weights, out);
    gen.run();
    return out;
}

} // namespace npp
