/**
 * @file
 * Target GPU description. One struct carries both the constraints the
 * mapping analysis needs (warp size, block limits, DOP window) and the
 * parameters the performance simulator needs (bandwidth, latency, clocks).
 * The default configuration models the NVIDIA Tesla K20c used in the
 * paper's evaluation (Section VI-B).
 */

#ifndef NPP_ANALYSIS_TARGET_H
#define NPP_ANALYSIS_TARGET_H

#include <cstdint>
#include <string>

namespace npp {

/**
 * Hardware parameters of the simulated GPU.
 */
struct DeviceConfig
{
    std::string name = "Tesla K20c (simulated)";

    /** @name Execution resources
     *  @{
     */
    int numSMs = 13;
    int warpSize = 32;
    int maxThreadsPerBlock = 1024;
    int maxThreadsPerSM = 2048;
    int maxBlocksPerSM = 16;
    int maxBlockDim[4] = {1024, 1024, 64, 64}; //!< per logical dim x,y,z,w
    /** Double-precision throughput lanes per SM (K20c: 64 DP cores). */
    int dpLanesPerSM = 64;
    double clockGHz = 0.706;
    /** @} */

    /** @name Memory system
     *  @{
     */
    int64_t sharedMemPerSM = 48 * 1024;
    int64_t sharedMemPerBlockLimit = 48 * 1024;
    double dramBandwidthGBs = 208.0;
    /** Global-memory load-to-use latency. */
    double memLatencyCycles = 400.0;
    /** Size of one coalesced memory transaction. */
    int transactionBytes = 128;
    int sharedMemBanks = 32;
    /** Per-SM L1/read cache capacity used by the line-reuse model: a
     *  thread's repeated accesses to the same transaction line are
     *  served from cache only while the resident threads' lines fit. */
    int64_t l1CacheBytes = 48 * 1024;
    /** Host-device interconnect (PCIe gen2 x16 effective). */
    double pcieBandwidthGBs = 6.0;
    /** @} */

    /** @name Software costs
     *  @{
     */
    double kernelLaunchOverheadUs = 5.0;
    /** Cycles per block for scheduling/dispatch bookkeeping; penalizes
     *  launching very large numbers of tiny blocks. */
    double blockScheduleCycles = 100.0;
    /** Cost of one in-kernel malloc call (device heap allocation is
     *  notoriously slow: a global heap lock serializes allocating
     *  threads, costing microseconds per call). */
    double deviceMallocCycles = 20000.0;
    /** How many in-flight mallocs the heap sustains concurrently. */
    double mallocParallelism = 4.0;
    /** Cost of one __syncthreads() per block-wide barrier. */
    double syncthreadsCycles = 40.0;
    /** Traffic/issue tax of the generated multidimensional-array
     *  wrappers (offset/stride field loads, dynamic physical-index
     *  computation) relative to raw-pointer code — the ~20% gap the
     *  paper reports on Nearest Neighbor. */
    double wrapperTrafficFactor = 1.12;
    /** @} */

    /** @name Analysis parameters (Section IV)
     *  @{
     */
    /** Soft global constraint: minimum threads per block (Table II). */
    int minBlockSize = 64;
    /** Minimum DOP: enough threads to fill every SM (13 * 2048). */
    int64_t minDop() const
    {
        return static_cast<int64_t>(numSMs) * maxThreadsPerSM;
    }
    /** Maximum DOP: cap on thread blocks (100x the minimum, Sec. IV-D). */
    int64_t maxDop() const { return 100 * minDop(); }
    /** Number of logical dimensions the search may use. */
    int maxLogicalDims = 4;
    /** @} */

    /** Cycles available per second. */
    double cyclesPerSecond() const { return clockGHz * 1e9; }
};

/** The default target used throughout the experiments. */
DeviceConfig teslaK20c();

/** The Fermi-class part the paper's background section describes
 *  (14 SMs, 1536 threads/SM, 144 GB/s): used by the device-sensitivity
 *  tests to check that mapping decisions adapt to the target. */
DeviceConfig teslaC2050();

/**
 * A homogeneous fleet of simulated devices. The multi-device layer
 * (analysis/partition.h, sim/fleet.h) shards one program's root domain
 * across `deviceCount` copies of `device`; shard results travel over a
 * peer link (NVLink/PCIe-P2P class) modeled as bandwidth + fixed
 * per-transfer latency, and reduction roots pay a device-count-sized
 * combine on top.
 */
struct FleetConfig
{
    DeviceConfig device;

    /** Number of identical devices (1 = today's single-device path). */
    int deviceCount = 1;

    /** Peer-to-peer link bandwidth between devices. The K20c-era
     *  default is PCIe P2P through a shared switch: a bit above the
     *  host link's effective 6 GB/s but far below DRAM. */
    double peerBandwidthGBs = 10.0;

    /** Fixed per-transfer latency on the peer link (DMA setup + sync). */
    double peerLatencyUs = 8.0;
};

/** N simulated K20c devices with the default peer link. */
FleetConfig fleetK20c(int deviceCount);

} // namespace npp

#endif // NPP_ANALYSIS_TARGET_H
