#include "analysis/consolidate.h"

#include "ir/affine.h"
#include "ir/traverse.h"
#include "support/strings.h"

namespace npp {

const char *
binGranularityName(BinGranularity g)
{
    switch (g) {
      case BinGranularity::Warp: return "warp";
      case BinGranularity::Block: return "block";
    }
    return "?";
}

namespace {

/** Any Nested statement anywhere in the list (including under control
 *  flow)? */
bool
containsNested(const std::vector<StmtPtr> &stmts)
{
    for (const auto &s : stmts) {
        if (s->kind == StmtKind::Nested)
            return true;
        if (containsNested(s->body) || containsNested(s->elseBody))
            return true;
    }
    return false;
}

} // namespace

std::string
consolidationEligibility(const Program &prog)
{
    const Pattern &root = prog.root();
    if (prog.numLevels() != 2) {
        return fmt("consolidation needs exactly two nesting levels "
                   "(program has {})",
                   prog.numLevels());
    }
    if (root.kind != PatternKind::Map &&
        root.kind != PatternKind::ZipWith &&
        root.kind != PatternKind::Foreach) {
        return fmt("root {} has cross-parent output dependences; "
                   "consolidation reorders parent work",
                   patternKindName(root.kind));
    }
    if (!sizeKnownAtLaunch(root.size, prog)) {
        return "root domain size is itself data-dependent; bins cannot "
               "be laid out at launch";
    }

    // Root body shape: [Let* prologue, one Nested, nested-free epilogue].
    const Stmt *nested = nullptr;
    for (const auto &s : root.body) {
        if (s->kind == StmtKind::Nested) {
            if (nested)
                return "root body holds more than one nested pattern; "
                       "their queues would interleave";
            nested = s.get();
            continue;
        }
        if (!nested && s->kind != StmtKind::Let &&
            s->kind != StmtKind::Assign) {
            return "parent prologue before the nested pattern must be "
                   "scalar lets (its values seed the queue entries)";
        }
        if (containsNested(s->body) || containsNested(s->elseBody)) {
            return "nested pattern under control flow cannot be queued "
                   "uniformly";
        }
    }
    if (!nested)
        return "no nested pattern to consolidate";

    const Pattern &inner = *nested->pattern;
    if (inner.kind != PatternKind::Reduce &&
        inner.kind != PatternKind::Foreach) {
        return fmt("inner {} materializes per-parent outputs; queue "
                   "waves would interleave them",
                   patternKindName(inner.kind));
    }
    if (sizeKnownAtLaunch(inner.size, prog)) {
        return "inner extent is known at launch; the static mappings "
               "already cover it";
    }
    return {};
}

MappingDecision
consolidatedMapping(int64_t binLanes)
{
    MappingDecision m;
    LevelMapping outer;
    outer.dim = 0;
    outer.blockSize = binLanes;
    outer.span = SpanType::one();
    m.levels.push_back(outer);
    LevelMapping inner;
    inner.dim = 1;
    inner.blockSize = 1;
    inner.span = SpanType::all();
    m.levels.push_back(inner);
    return m;
}

bool
hasDynamicInnerExtent(const Program &prog)
{
    bool dynamic = false;
    for (const auto &[pattern, level] : collectPatterns(prog.root())) {
        if (level > 0 && !sizeKnownAtLaunch(pattern->size, prog))
            dynamic = true;
    }
    return dynamic;
}

} // namespace npp
