#include "analysis/partition.h"

#include <algorithm>

#include "ir/traverse.h"
#include "support/strings.h"

namespace npp {

const char *
crossOuterDependence(const Program &prog)
{
    switch (prog.root().kind) {
      case PatternKind::Filter:
        return "cross-outer dependence: root filter compacts through "
               "one global cursor, so every output position depends on "
               "all earlier outer indices";
      case PatternKind::GroupBy:
        return "cross-outer dependence: root groupBy scatters by key "
               "into the whole output, so shards would race on shared "
               "bins";
      default:
        return nullptr;
    }
}

bool
outerSizeKnownAtLaunch(const Program &prog)
{
    bool known = true;
    walkExpr(prog.root().size, [&](const Expr &e) {
        if (e.kind == ExprKind::Read)
            known = false;
        if (e.kind == ExprKind::Var &&
            prog.var(e.varId).role != VarRole::ScalarParam) {
            known = false;
        }
    });
    return known;
}

int64_t
outerShardUnit(const MappingDecision &decision)
{
    if (decision.levels.empty())
        return 1;
    const LevelMapping &root = decision.levels[0];
    switch (root.span.kind) {
      case SpanKind::One:
        return std::max<int64_t>(root.blockSize, 1);
      case SpanKind::N:
        return std::max<int64_t>(
            root.blockSize * std::max<int64_t>(root.span.factor, 1), 1);
      case SpanKind::All:
      case SpanKind::Split:
        return 1;
    }
    return 1;
}

namespace {

/** Spread `size` elements over `parts` contiguous ranges starting at
 *  `base`, leading ranges one element larger when it does not divide. */
void
appendBalanced(std::vector<ShardRange> &out, int64_t base, int64_t size,
               int parts)
{
    const int64_t each = size / parts;
    const int64_t rem = size % parts;
    int64_t lo = base;
    for (int p = 0; p < parts; p++) {
        const int64_t span = each + (p < rem ? 1 : 0);
        out.push_back({lo, lo + span});
        lo += span;
    }
}

} // namespace

ShardPlan
partitionOuter(const Program &prog, const MappingDecision &decision,
               int64_t outerSize, int deviceCount, int64_t splitPoint)
{
    ShardPlan plan;
    plan.deviceCount = deviceCount;
    plan.outerSize = outerSize;
    plan.unit = outerShardUnit(decision);
    plan.splitPoint = splitPoint;

    // A runtime-sized outer extent must be judged before any check that
    // consumes `outerSize`: the caller's value for a data-dependent root
    // domain may be a placeholder, and a fleet sweep that saw "empty
    // outer domain" instead of the real reason would mis-explain the
    // filter. Only the single-device degenerate plan skips the check —
    // one device never shards, so the dynamic size is harmless there.
    const bool sizeKnown = outerSizeKnownAtLaunch(prog);

    if (deviceCount < 1) {
        plan.verdict = fmt("invalid device count {}", deviceCount);
        return plan;
    }
    if (sizeKnown && outerSize < 1) {
        plan.verdict = fmt("empty outer domain ({})", outerSize);
        return plan;
    }
    if (deviceCount == 1) {
        // The degenerate plan: one full-domain shard, no split knob.
        plan.valid = true;
        plan.verdict = "ok (single device)";
        plan.splitPoint = outerSize;
        plan.shards.push_back({0, outerSize});
        return plan;
    }
    if (const char *reason = crossOuterDependence(prog)) {
        plan.verdict = reason;
        return plan;
    }
    if (!sizeKnown) {
        plan.verdict = "outer domain size is not known at launch "
                       "(depends on array data), so it cannot be split";
        return plan;
    }
    if (outerSize < static_cast<int64_t>(deviceCount) * plan.unit) {
        plan.verdict = fmt(
            "outer domain too small: {} elements across {} devices "
            "leaves less than one root block ({} elements) per device",
            outerSize, deviceCount, plan.unit);
        return plan;
    }

    if (splitPoint < 0) {
        appendBalanced(plan.shards, 0, outerSize, deviceCount);
        plan.splitPoint = plan.shards[0].size();
    } else {
        if (splitPoint < plan.unit) {
            plan.verdict = fmt("split point {} starves device 0 below "
                               "one root block ({} elements)",
                               splitPoint, plan.unit);
            return plan;
        }
        const int64_t rest = outerSize - splitPoint;
        if (rest < static_cast<int64_t>(deviceCount - 1) * plan.unit) {
            plan.verdict = fmt(
                "split point {} leaves {} elements for {} devices — "
                "less than one root block ({} elements) each",
                splitPoint, rest, deviceCount - 1, plan.unit);
            return plan;
        }
        plan.shards.push_back({0, splitPoint});
        appendBalanced(plan.shards, splitPoint, rest, deviceCount - 1);
    }
    plan.valid = true;
    plan.verdict = "ok";
    return plan;
}

std::vector<int64_t>
splitPointCandidates(int64_t outerSize, int deviceCount, int64_t unit)
{
    std::vector<int64_t> points;
    points.push_back(-1);
    if (deviceCount < 2 || unit < 2)
        return points;
    const int64_t balanced =
        outerSize / deviceCount + (outerSize % deviceCount ? 1 : 0);
    const int64_t down = (balanced / unit) * unit;
    const int64_t up = down + unit;
    for (int64_t p : {down, up}) {
        if (p < unit)
            continue;
        if (outerSize - p <
            static_cast<int64_t>(deviceCount - 1) * unit)
            continue;
        if (std::find(points.begin(), points.end(), p) == points.end())
            points.push_back(p);
    }
    return points;
}

} // namespace npp
