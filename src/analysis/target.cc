#include "analysis/target.h"

namespace npp {

DeviceConfig
teslaK20c()
{
    return DeviceConfig{};
}

DeviceConfig
teslaC2050()
{
    DeviceConfig dev;
    dev.name = "Tesla C2050 (simulated)";
    dev.numSMs = 14;
    dev.maxThreadsPerSM = 1536;
    dev.maxBlocksPerSM = 8;
    dev.dpLanesPerSM = 16;
    dev.clockGHz = 1.15;
    dev.dramBandwidthGBs = 144.0;
    dev.memLatencyCycles = 500.0;
    return dev;
}

FleetConfig
fleetK20c(int deviceCount)
{
    FleetConfig fleet;
    fleet.device = teslaK20c();
    fleet.deviceCount = deviceCount < 1 ? 1 : deviceCount;
    return fleet;
}

} // namespace npp
