#include "analysis/presets.h"

#include "support/logging.h"

namespace npp {

namespace {

/** Inner levels beyond what a fixed strategy parallelizes run
 *  sequentially inside the thread: block size 1, span(all). */
LevelMapping
sequentialLevel(int dim)
{
    LevelMapping l;
    l.dim = dim;
    l.blockSize = 1;
    l.span = SpanType::all();
    return l;
}

} // namespace

MappingDecision
oneDMapping(int numLevels, const DeviceConfig &device)
{
    NPP_ASSERT(numLevels >= 1 && numLevels <= device.maxLogicalDims,
               "1D mapping: bad level count {}", numLevels);
    MappingDecision d;
    LevelMapping outer;
    outer.dim = 0;
    outer.blockSize = 256;
    outer.span = SpanType::one();
    d.levels.push_back(outer);
    for (int lv = 1; lv < numLevels; lv++)
        d.levels.push_back(sequentialLevel(lv));
    return d;
}

MappingDecision
threadBlockThreadMapping(int numLevels, const DeviceConfig &device)
{
    if (numLevels == 1)
        return oneDMapping(1, device);
    NPP_ASSERT(numLevels <= device.maxLogicalDims,
               "thread-block/thread mapping: bad level count {}", numLevels);
    MappingDecision d;
    LevelMapping outer;
    outer.dim = 1; // y
    outer.blockSize = 1;
    outer.span = SpanType::one();
    d.levels.push_back(outer);

    LevelMapping inner;
    inner.dim = 0; // x
    inner.blockSize = device.maxThreadsPerBlock;
    inner.span = SpanType::all();
    d.levels.push_back(inner);

    for (int lv = 2; lv < numLevels; lv++)
        d.levels.push_back(sequentialLevel(lv));
    return d;
}

MappingDecision
warpBasedMapping(int numLevels, const DeviceConfig &device)
{
    if (numLevels == 1)
        return oneDMapping(1, device);
    NPP_ASSERT(numLevels <= device.maxLogicalDims,
               "warp-based mapping: bad level count {}", numLevels);
    MappingDecision d;
    LevelMapping outer;
    outer.dim = 1; // y: one warp per outer iteration, 16 warps per block
    outer.blockSize = 16;
    outer.span = SpanType::one();
    d.levels.push_back(outer);

    LevelMapping inner;
    inner.dim = 0; // x: the 32 lanes of the warp
    inner.blockSize = device.warpSize;
    inner.span = SpanType::all();
    d.levels.push_back(inner);

    for (int lv = 2; lv < numLevels; lv++)
        d.levels.push_back(sequentialLevel(lv));
    return d;
}

void
applyHardSpans(MappingDecision &decision, const ConstraintSet &cset)
{
    NPP_ASSERT(decision.numLevels() == cset.numLevels,
               "applyHardSpans: level mismatch");
    for (int lv = 0; lv < cset.numLevels; lv++) {
        if (cset.mustSpanAll[lv] &&
            decision.levels[lv].span.kind == SpanKind::One) {
            decision.levels[lv].span = SpanType::all();
        }
    }
}

} // namespace npp
