/**
 * @file
 * Consolidation mapping for runtime-sized nested domains. When an inner
 * pattern's extent is data dependent (CSR row lengths, BFS frontier
 * degrees), the paper's static mappings either serialize the children in
 * one thread (load imbalance: the warp waits for its longest row) or tile
 * them across a fixed inner dimension (partial warps on short rows). The
 * dynamic-parallelism literature (arxiv 2201.02789, 1606.08150)
 * consolidates instead: a group of L lanes serves L parents, concatenates
 * their variable-length child domains into one work queue, and consumes
 * the queue in full waves of L — uniform occupancy regardless of skew, at
 * the price of building the queue.
 */

#ifndef NPP_ANALYSIS_CONSOLIDATE_H
#define NPP_ANALYSIS_CONSOLIDATE_H

#include <string>

#include "analysis/mapping.h"
#include "ir/program.h"

namespace npp {

/** Bin granularity: how many lanes cooperate on one work queue. */
enum class BinGranularity {
    Warp, //!< one queue per warp (L = warpSize)
    Block //!< one queue per block (L = blockSize)
};

const char *binGranularityName(BinGranularity g);

/**
 * How a consolidated launch is organized; carried on the KernelSpec so
 * the emitter renders the bin-build prologue and the simulator runs the
 * queue-build + consumption phases.
 */
struct ConsolidationPlan
{
    bool enabled = false;

    BinGranularity granularity = BinGranularity::Warp;

    /** Lanes per bin group == parents per group (L). */
    int64_t binLanes = 32;

    /** Why consolidation engaged — or the named eligibility reason it
     *  did not (surfaced through --explain). */
    std::string verdict = "not requested";
};

/**
 * Can this program be consolidated? Returns the empty string when
 * eligible, otherwise a named reason (threaded verbatim into explain
 * output). Eligible shape: a two-level nest whose root is a map-like
 * pattern with a launch-known extent, a scalar-let prologue, exactly one
 * nested Reduce/Foreach whose extent is NOT launch-known, and a
 * nested-pattern-free epilogue.
 */
std::string consolidationEligibility(const Program &prog);

/** The mapping a consolidated launch uses: level 0 gets `binLanes`
 *  threads of dimension x with Span(1) (each block serves binLanes
 *  parents); the dynamic inner level is sequential Span(all) — its work
 *  is redistributed through the queue, not through the grid. */
MappingDecision consolidatedMapping(int64_t binLanes);

/** True when any nested (non-root) pattern has a data-dependent extent —
 *  the programs whose mapping decision consolidation competes for. */
bool hasDynamicInnerExtent(const Program &prog);

} // namespace npp

#endif // NPP_ANALYSIS_CONSOLIDATE_H
