#include "analysis/model.h"

#include <algorithm>
#include <cmath>

#include "support/stats.h"

namespace npp {

namespace {

/** Warp shape (lanes per dim inside one warp) for a decision. */
void
warpShapeOf(const MappingDecision &decision, const DeviceConfig &device,
            int64_t dimBlock[4], int64_t warpShape[4])
{
    for (int d = 0; d < 4; d++)
        dimBlock[d] = 1;
    for (const auto &l : decision.levels)
        dimBlock[l.dim] = l.blockSize;
    int64_t remaining = device.warpSize;
    for (int d = 0; d < 4; d++) {
        warpShape[d] =
            std::max<int64_t>(1, std::min(dimBlock[d], remaining));
        remaining = std::max<int64_t>(1, remaining / warpShape[d]);
    }
}

} // namespace

ModelEstimate
staticEstimate(const MappingDecision &decision, const ConstraintSet &cset,
               const DeviceConfig &device)
{
    ModelEstimate est;
    const int levels = decision.numLevels();

    // Launch geometry from the analysis-time sizes.
    std::vector<int64_t> sizes(levels);
    for (int lv = 0; lv < levels; lv++) {
        sizes[lv] = std::max<int64_t>(
            1, static_cast<int64_t>(cset.levelSizes[lv]));
    }
    const LaunchGeometry geom = makeGeometry(decision, sizes);

    int64_t dimBlock[4], warpShape[4];
    warpShapeOf(decision, device, dimBlock, warpShape);

    // Map level -> dim for stride lookup.
    int dimOfLevel[4] = {0, 0, 0, 0};
    for (int lv = 0; lv < levels && lv < 4; lv++)
        dimOfLevel[lv] = decision.levels[lv].dim;

    // Predict coalescing per access site: the addresses across a warp's
    // lanes spread by each in-warp dimension's stride at that dimension's
    // level; non-affine strides count as fully scattered.
    double transactions = 0.0;
    double totalOps = 0.0;
    for (const AccessSite &site : cset.accesses) {
        double spanBytes = site.bytes;
        bool scattered = false;
        int64_t lanes = 1;
        for (int lv = 0; lv < levels && lv < 4; lv++) {
            const int64_t w = warpShape[dimOfLevel[lv]];
            if (w <= 1)
                continue;
            lanes *= w;
            if (!site.affine[lv]) {
                scattered = true;
            } else {
                spanBytes +=
                    (w - 1) * std::fabs(site.coeff[lv]) * site.bytes;
            }
        }
        const double warpExecs =
            site.execCount / std::max<double>(device.warpSize, 1);
        double segs;
        if (scattered) {
            segs = static_cast<double>(lanes);
        } else {
            segs = std::min<double>(
                lanes, std::ceil(spanBytes / device.transactionBytes));
        }
        transactions += segs * warpExecs * std::max(1.0, 32.0 / lanes);
        totalOps += site.execCount * 3.0; // address math + issue
    }
    est.predictedTransactions = transactions;

    // The same occupancy/latency roofline as the simulator's timing.
    const int64_t tpb = std::max<int64_t>(geom.threadsPerBlock, 1);
    const int64_t warpsPerBlock = ceilDiv(tpb, device.warpSize);
    int64_t blocksPerSM = std::min<int64_t>(
        device.maxBlocksPerSM, device.maxThreadsPerSM / tpb);
    blocksPerSM = std::max<int64_t>(blocksPerSM, 1);
    const int64_t activeSMs =
        std::min<int64_t>(device.numSMs, geom.totalBlocks);
    const double residentWarps = std::min<double>(
        static_cast<double>(geom.totalBlocks) * warpsPerBlock,
        static_cast<double>(blocksPerSM * warpsPerBlock * activeSMs));

    const double cyclesPerSec = device.cyclesPerSecond();
    const double latencySec = device.memLatencyCycles / cyclesPerSec;
    const double effBw = std::min(
        device.dramBandwidthGBs * 1e9,
        residentWarps * 4.0 * device.transactionBytes / latencySec);
    est.memoryMs =
        transactions * device.transactionBytes / std::max(effBw, 1.0) *
        1e3;

    const double warpsPerActiveSM =
        residentWarps / std::max<double>(activeSMs, 1);
    const double throughput =
        std::min(2.0, std::max(warpsPerActiveSM, 1.0) / 4.0);
    est.computeMs = (totalOps / device.warpSize) /
                    std::max(throughput * activeSMs, 1e-9) /
                    cyclesPerSec * 1e3;

    est.overheadMs =
        device.kernelLaunchOverheadUs * 1e-3 +
        static_cast<double>(geom.totalBlocks) * device.blockScheduleCycles /
            (device.numSMs * cyclesPerSec) * 1e3;

    est.totalMs = std::max(est.memoryMs, est.computeMs) + est.overheadMs;
    return est;
}

} // namespace npp
