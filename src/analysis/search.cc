#include "analysis/search.h"

#include "analysis/model.h"

#include <algorithm>
#include <functional>
#include <cmath>

#include "support/logging.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/trace.h"

namespace npp {

namespace {

/** Deterministic total order used as the final tie-break (the paper picks
 *  randomly among ties; we pick the smallest in this order so runs are
 *  exactly reproducible). */
bool
lexLess(const MappingDecision &a, const MappingDecision &b)
{
    return a < b;
}

} // namespace

bool
MappingSearch::satisfies(const Constraint &c,
                         const MappingDecision &decision) const
{
    switch (c.kind) {
      case Constraint::Kind::HardSpanAll: {
        const SpanKind k = decision.levels[c.level].span.kind;
        return k == SpanKind::All || k == SpanKind::Split;
      }
      case Constraint::Kind::SoftCoalesce: {
        const LevelMapping &l = decision.levels[c.level];
        return l.dim == 0 && l.blockSize >= device_.warpSize &&
               l.blockSize % device_.warpSize == 0;
      }
      case Constraint::Kind::SoftMinBlock:
        return decision.threadsPerBlock() >= device_.minBlockSize;
    }
    return false;
}

bool
MappingSearch::feasible(const MappingDecision &decision,
                        const ConstraintSet &cset) const
{
    if (decision.numLevels() != cset.numLevels)
        return false;

    // Structural hard constraints from the device / programming model.
    int64_t threads = 1;
    uint32_t dimsUsed = 0;
    for (const LevelMapping &l : decision.levels) {
        if (l.dim < 0 || l.dim >= device_.maxLogicalDims)
            return false;
        if (dimsUsed & (1u << l.dim))
            return false; // dims must be distinct across levels
        dimsUsed |= 1u << l.dim;
        if (l.blockSize < 1 || l.blockSize > device_.maxBlockDim[l.dim])
            return false;
        if (!isPow2(l.blockSize))
            return false;
        threads *= l.blockSize;
    }
    if (threads > device_.maxThreadsPerBlock)
        return false;

    // Hard constraints from the constraint set.
    for (const Constraint &c : cset.all) {
        if (c.kind == Constraint::Kind::HardSpanAll &&
            !satisfies(c, decision)) {
            return false;
        }
    }
    // Span(all)/Split only where allowed by the per-level flags: a level
    // that must not span-all (none currently) is unconstrained, but Split
    // on a non-splittable level is invalid.
    for (int lv = 0; lv < decision.numLevels(); lv++) {
        if (decision.levels[lv].span.kind == SpanKind::Split &&
            !cset.splittable[lv]) {
            return false;
        }
    }
    return true;
}

double
MappingSearch::score(const MappingDecision &decision,
                     const ConstraintSet &cset) const
{
    if (!feasible(decision, cset))
        return 0.0;
    double total = 0.0;
    for (const Constraint &c : cset.all) {
        if (c.kind == Constraint::Kind::HardSpanAll)
            continue;
        if (options_.preallocLayouts && c.flexible)
            continue;
        if (satisfies(c, decision))
            total += c.weight;
    }
    return total;
}

void
MappingSearch::controlDop(MappingDecision &decision,
                          const ConstraintSet &cset) const
{
    const double minDop = static_cast<double>(device_.minDop());
    const double maxDop = static_cast<double>(device_.maxDop());

    double dop = decision.dop(cset.levelSizes);
    if (dop < minDop) {
        // Increase DOP: Span(all) -> Split(k) on the largest splittable
        // span-all level.
        int bestLevel = -1;
        for (int lv = 0; lv < decision.numLevels(); lv++) {
            if (decision.levels[lv].span.kind != SpanKind::All)
                continue;
            if (!cset.splittable[lv])
                continue;
            if (bestLevel < 0 ||
                cset.levelSizes[lv] > cset.levelSizes[bestLevel]) {
                bestLevel = lv;
            }
        }
        if (bestLevel >= 0) {
            const int64_t k = std::max<int64_t>(
                2, static_cast<int64_t>(std::ceil(minDop / dop)));
            // A split never makes sense beyond one block per domain point.
            const int64_t cap = std::max<int64_t>(
                1, static_cast<int64_t>(cset.levelSizes[bestLevel] /
                                        decision.levels[bestLevel]
                                            .blockSize));
            decision.levels[bestLevel].span =
                SpanType::split(std::min(k, std::max<int64_t>(cap, 2)));
        }
    } else if (dop > maxDop) {
        // Decrease DOP: Span(1) -> Span(n) on the largest span-1 level.
        int bestLevel = -1;
        for (int lv = 0; lv < decision.numLevels(); lv++) {
            if (decision.levels[lv].span.kind != SpanKind::One)
                continue;
            if (bestLevel < 0 ||
                cset.levelSizes[lv] > cset.levelSizes[bestLevel]) {
                bestLevel = lv;
            }
        }
        if (bestLevel >= 0) {
            const int64_t n = std::max<int64_t>(
                2, static_cast<int64_t>(std::ceil(dop / maxDop)));
            decision.levels[bestLevel].span = SpanType::n(n);
        }
    }
}

void
MappingSearch::classifyRejection(const MappingDecision &decision,
                                 const ConstraintSet &cset,
                                 SearchExplanation &ex) const
{
    // Same rule order as feasible(); the first violated family wins.
    if (decision.numLevels() != cset.numLevels) {
        ex.rejectedDims++;
        return;
    }
    int64_t threads = 1;
    uint32_t dimsUsed = 0;
    for (const LevelMapping &l : decision.levels) {
        if (l.dim < 0 || l.dim >= device_.maxLogicalDims ||
            (dimsUsed & (1u << l.dim))) {
            ex.rejectedDims++;
            return;
        }
        dimsUsed |= 1u << l.dim;
        if (l.blockSize < 1 || l.blockSize > device_.maxBlockDim[l.dim] ||
            !isPow2(l.blockSize)) {
            ex.rejectedBlockShape++;
            return;
        }
        threads *= l.blockSize;
    }
    if (threads > device_.maxThreadsPerBlock) {
        ex.rejectedBlockShape++;
        return;
    }
    ex.rejectedHardSpan++;
}

SearchResult
MappingSearch::search(const ConstraintSet &cset) const
{
    NPP_TRACE_SCOPE("analysis.search");
    const int levels = cset.numLevels;
    NPP_ASSERT(levels >= 1 && levels <= device_.maxLogicalDims,
               "search supports 1..{} levels, got {}",
               device_.maxLogicalDims, levels);

    std::vector<int64_t> sizeSet;
    for (int64_t s = 1; s <= device_.maxThreadsPerBlock; s *= 2)
        sizeSet.push_back(s);

    SearchResult result;
    bool haveBest = false;

    // Enumerate dim assignments (injective level -> dim), block sizes,
    // and spans; filter by hard constraints; score the soft ones.
    std::vector<int> dims(levels, 0);
    std::vector<int64_t> sizes(levels, 1);
    std::vector<SpanKind> spans(levels, SpanKind::One);

    // DOP beyond filling the device carries no value and only multiplies
    // thread blocks (the reason MAX_DOP exists, Section IV-D), so the
    // DOP tie-break saturates at MIN_DOP and remaining ties prefer the
    // launch with fewer blocks.
    const auto cappedDop = [&](double dop) {
        return std::min(dop, static_cast<double>(device_.minDop()));
    };
    const auto blockCount = [&](const MappingDecision &decision) {
        std::vector<int64_t> sizes(cset.levelSizes.size());
        for (size_t i = 0; i < sizes.size(); i++) {
            sizes[i] = std::max<int64_t>(
                1, static_cast<int64_t>(cset.levelSizes[i]));
        }
        // Below one block per SM, fewer blocks only idles SMs; treat
        // everything under numSMs as equally good so the final
        // deterministic tie-break picks the smaller block (more blocks).
        return std::max<int64_t>(makeGeometry(decision, sizes).totalBlocks,
                                 device_.numSMs);
    };

    double bestCapped = 0.0;
    int64_t bestBlocks = 0;
    double bestModelMs = 0.0;
    const bool wantModel =
        options_.objective == SearchObjective::StaticModel ||
        options_.keepCandidates;
    const auto consider = [&](const MappingDecision &decision,
                              double modelMs) {
        result.candidatesConsidered++;
        if (!feasible(decision, cset))
            return;
        const double s = score(decision, cset);
        const double dop = decision.dop(cset.levelSizes);
        if (options_.keepCandidates)
            result.candidates.push_back({decision, s, dop, modelMs});

        if (options_.objective == SearchObjective::StaticModel) {
            // Rank by predicted time (ascending); deterministic ties.
            const bool better =
                !haveBest || modelMs < bestModelMs ||
                (modelMs == bestModelMs && lexLess(decision, result.best));
            if (better) {
                result.best = decision;
                result.bestScore = s;
                result.bestDop = dop;
                bestModelMs = modelMs;
                haveBest = true;
            }
            return;
        }

        const double capped = cappedDop(dop);
        const int64_t blocks = blockCount(decision);
        bool better = false;
        if (!haveBest || s > result.bestScore) {
            better = true;
        } else if (s == result.bestScore) {
            if (capped > bestCapped) {
                better = true;
            } else if (capped == bestCapped) {
                if (blocks < bestBlocks) {
                    better = true;
                } else if (blocks == bestBlocks &&
                           (dop > result.bestDop ||
                            (dop == result.bestDop &&
                             lexLess(decision, result.best)))) {
                    better = true;
                }
            }
        }
        if (better) {
            result.best = decision;
            result.bestScore = s;
            result.bestDop = dop;
            bestCapped = capped;
            bestBlocks = blocks;
            haveBest = true;
        }
    };

    // Recursive enumeration over levels, collecting the whole candidate
    // space first. The expensive part (the static timing model) is then
    // evaluated in parallel; the best-candidate fold below stays serial
    // and in enumeration order so tie-breaks are bit-identical to the
    // historical single-threaded search.
    std::vector<MappingDecision> space;
    std::function<void(int)> enumerate = [&](int lv) {
        if (lv == levels) {
            MappingDecision d;
            d.levels.resize(levels);
            for (int i = 0; i < levels; i++) {
                d.levels[i].dim = dims[i];
                d.levels[i].blockSize = sizes[i];
                d.levels[i].span =
                    spans[i] == SpanKind::One ? SpanType::one()
                                              : SpanType::all();
            }
            space.push_back(std::move(d));
            return;
        }
        for (int dim = 0; dim < device_.maxLogicalDims; dim++) {
            bool used = false;
            for (int i = 0; i < lv; i++)
                used = used || dims[i] == dim;
            if (used)
                continue;
            dims[lv] = dim;
            if (options_.outerOnly && lv > 0) {
                // Inner levels run sequentially inside the thread.
                sizes[lv] = 1;
                spans[lv] = SpanKind::All;
                enumerate(lv + 1);
                continue;
            }
            for (int64_t size : sizeSet) {
                sizes[lv] = size;
                // Respect the hard span requirement early to halve the
                // space; unconstrained levels try both span kinds.
                if (cset.mustSpanAll[lv]) {
                    spans[lv] = SpanKind::All;
                    enumerate(lv + 1);
                } else {
                    spans[lv] = SpanKind::One;
                    enumerate(lv + 1);
                    spans[lv] = SpanKind::All;
                    enumerate(lv + 1);
                }
            }
        }
    };
    enumerate(0);

    // Parallel model evaluation (pure per candidate), serial fold.
    std::vector<double> modelMs(space.size(), 0.0);
    if (wantModel) {
        parallelFor(0, static_cast<int64_t>(space.size()), [&](int64_t i) {
            const MappingDecision &d = space[static_cast<size_t>(i)];
            if (feasible(d, cset)) {
                modelMs[static_cast<size_t>(i)] =
                    staticEstimate(d, cset, device_).totalMs;
            }
        });
    }
    for (size_t i = 0; i < space.size(); i++)
        consider(space[i], modelMs[i]);

    NPP_ASSERT(haveBest, "no feasible mapping found");
    NPP_TRACE_COUNT("search.candidates", result.candidatesConsidered);
    // ControlDOP below may rewrite the winner's spans; tie-break tallies
    // in the explanation refer to the decision the search selected.
    const MappingDecision preAdjustBest = result.best;
    // The 1D directive pins the inner levels; ControlDOP must not undo
    // that by splitting them (underutilization is exactly the 1D
    // mapping's documented weakness).
    std::string controlDopNote;
    if (options_.controlDop && !options_.outerOnly) {
        const MappingDecision before = result.best;
        const double dopBefore = before.dop(cset.levelSizes);
        controlDop(result.best, cset);
        if (!(before == result.best)) {
            for (int lv = 0; lv < result.best.numLevels(); lv++) {
                if (before.levels[lv].span ==
                    result.best.levels[lv].span) {
                    continue;
                }
                controlDopNote = fmt(
                    "L{}: span {} -> {} (dop {} outside [{}, {}], "
                    "now {})",
                    lv, before.levels[lv].span.toString(),
                    result.best.levels[lv].span.toString(), dopBefore,
                    device_.minDop(), device_.maxDop(),
                    result.best.dop(cset.levelSizes));
            }
        }
    }
    result.bestDop = result.best.dop(cset.levelSizes);

    if (options_.explain) {
        SearchExplanation &ex = result.explanation;
        ex.valid = true;
        ex.enumerated = static_cast<int64_t>(space.size());
        ex.controlDopNote = std::move(controlDopNote);
        // Model-ranked search ties on equal predicted time instead of
        // the soft score; the DOP/blocks sub-tallies then count, among
        // the model-tied candidates, those agreeing with the winner.
        const bool modelRanked =
            options_.objective == SearchObjective::StaticModel;
        const double refCapped =
            modelRanked ? cappedDop(preAdjustBest.dop(cset.levelSizes))
                        : bestCapped;
        const int64_t refBlocks =
            modelRanked ? blockCount(preAdjustBest) : bestBlocks;
        for (size_t i = 0; i < space.size(); i++) {
            const MappingDecision &d = space[i];
            if (!feasible(d, cset)) {
                classifyRejection(d, cset, ex);
                continue;
            }
            ex.feasibleCount++;
            const bool atBest =
                modelRanked ? modelMs[i] == bestModelMs
                            : score(d, cset) == result.bestScore;
            if (!atBest)
                continue;
            ex.atBestScore++;
            if (cappedDop(d.dop(cset.levelSizes)) != refCapped)
                continue;
            ex.atBestCappedDop++;
            if (blockCount(d) == refBlocks)
                ex.atBestBlocks++;
        }
        // ControlDOP rewrites spans only, which no hard or soft rule
        // keys on once feasibility holds, so the post-adjustment
        // explanation sums to the search's best score.
        ex.selected = explain(result.best, cset);
    }
    return result;
}

SearchResult
findMapping(const Program &prog, const DeviceConfig &device,
            const std::unordered_map<int, double> &paramValues,
            SearchOptions options)
{
    AnalysisEnv env;
    env.prog = &prog;
    env.paramValues = paramValues;
    ConstraintSet cset = buildConstraints(prog, env, device);
    MappingSearch search(device, options);
    return search.search(cset);
}

} // namespace npp
