/**
 * @file
 * The mapping search of Algorithm 1: enumerate candidate mappings that
 * satisfy the hard constraints, score them against the soft constraints,
 * select the best (tie-break on DOP, then deterministically), and finally
 * adjust the DOP into the device's [MIN_DOP, MAX_DOP] window by rewriting
 * spans (ControlDOP).
 */

#ifndef NPP_ANALYSIS_SEARCH_H
#define NPP_ANALYSIS_SEARCH_H

#include "analysis/constraint.h"
#include "analysis/mapping.h"

namespace npp {

/** What Algorithm 1 ranks candidates by. */
enum class SearchObjective
{
    /** The paper's weighted soft-constraint score. */
    SoftScore,
    /** The analytical time estimate (analysis/model.h) — the scoring
     *  refinement named as future work in Section VI-G. */
    StaticModel
};

/** Options controlling the search. */
struct SearchOptions
{
    SearchObjective objective = SearchObjective::SoftScore;

    /** Ignore `flexible` soft constraints (accesses to preallocated local
     *  arrays whose layout is chosen after mapping, Section V-A). */
    bool preallocLayouts = true;

    /** Retain every scored candidate (for the Fig 17 scatter study). */
    bool keepCandidates = false;

    /** Skip the ControlDOP adjustment (for studying raw scores). */
    bool controlDop = true;

    /** The paper's 1D directive: only the outermost level is mapped to
     *  threads; every inner level is pinned to a sequential
     *  (block size 1, span(all)) execution inside the thread. */
    bool outerOnly = false;
};

/** One scored candidate. */
struct ScoredMapping
{
    MappingDecision decision;
    double score = 0.0;
    double dop = 0.0;
    /** Static model estimate (filled when the objective is StaticModel
     *  or keepCandidates is set). */
    double modelMs = 0.0;
};

/** Search outcome. */
struct SearchResult
{
    MappingDecision best;
    double bestScore = 0.0;
    double bestDop = 0.0;
    int candidatesConsidered = 0;
    std::vector<ScoredMapping> candidates; //!< if keepCandidates
};

/**
 * Mapping search engine for a fixed device.
 */
class MappingSearch
{
  public:
    explicit MappingSearch(DeviceConfig device, SearchOptions options = {})
        : device_(std::move(device)), options_(options)
    {}

    /** Run Algorithm 1 on a constraint set. */
    SearchResult search(const ConstraintSet &cset) const;

    /** Score one mapping against the soft constraints (0 if it violates
     *  a hard constraint). Exposed for the score/performance study. */
    double score(const MappingDecision &decision,
                 const ConstraintSet &cset) const;

    /** True if the mapping satisfies every hard constraint. */
    bool feasible(const MappingDecision &decision,
                  const ConstraintSet &cset) const;

    /** Apply the ControlDOP procedure (Algorithm 1, lines 6-12). */
    void controlDop(MappingDecision &decision,
                    const ConstraintSet &cset) const;

    const DeviceConfig &device() const { return device_; }

  private:
    bool satisfies(const Constraint &c,
                   const MappingDecision &decision) const;

    DeviceConfig device_;
    SearchOptions options_;
};

/**
 * Convenience wrapper: build constraints and run the search for a
 * program. `paramValues` supplies actual sizes when known at compile time
 * (passed through to the analysis environment).
 */
SearchResult
findMapping(const Program &prog, const DeviceConfig &device,
            const std::unordered_map<int, double> &paramValues = {},
            SearchOptions options = {});

} // namespace npp

#endif // NPP_ANALYSIS_SEARCH_H
