/**
 * @file
 * The mapping search of Algorithm 1: enumerate candidate mappings that
 * satisfy the hard constraints, score them against the soft constraints,
 * select the best (tie-break on DOP, then deterministically), and finally
 * adjust the DOP into the device's [MIN_DOP, MAX_DOP] window by rewriting
 * spans (ControlDOP).
 */

#ifndef NPP_ANALYSIS_SEARCH_H
#define NPP_ANALYSIS_SEARCH_H

#include "analysis/constraint.h"
#include "analysis/mapping.h"

namespace npp {

/** What Algorithm 1 ranks candidates by. */
enum class SearchObjective
{
    /** The paper's weighted soft-constraint score. */
    SoftScore,
    /** The analytical time estimate (analysis/model.h) — the scoring
     *  refinement named as future work in Section VI-G. */
    StaticModel
};

/** Options controlling the search. */
struct SearchOptions
{
    SearchObjective objective = SearchObjective::SoftScore;

    /** Ignore `flexible` soft constraints (accesses to preallocated local
     *  arrays whose layout is chosen after mapping, Section V-A). */
    bool preallocLayouts = true;

    /** Retain every scored candidate (for the Fig 17 scatter study). */
    bool keepCandidates = false;

    /** Skip the ControlDOP adjustment (for studying raw scores). */
    bool controlDop = true;

    /** The paper's 1D directive: only the outermost level is mapped to
     *  threads; every inner level is pinned to a sequential
     *  (block size 1, span(all)) execution inside the thread. */
    bool outerOnly = false;

    /** Produce the decision-explanation report (SearchResult::explanation):
     *  per-candidate hard-filter tallies, the selected mapping's
     *  per-constraint score contributions, and the tie-break chain. Adds
     *  one extra pass over the candidate space; off in production runs. */
    bool explain = false;
};

/** One scored candidate. */
struct ScoredMapping
{
    MappingDecision decision;
    double score = 0.0;
    double dop = 0.0;
    /** Static model estimate (filled when the objective is StaticModel
     *  or keepCandidates is set). */
    double modelMs = 0.0;
};

/** One hard-constraint check applied to a mapping (explanation report). */
struct HardCheck
{
    std::string name;   //!< which rule ("dim range", "span(all) level 1", ...)
    bool passed = false;
    std::string detail; //!< what was checked, human-readable
};

/** One soft constraint's contribution to a mapping's score. */
struct SoftContribution
{
    int constraintIndex = -1;   //!< position in ConstraintSet::all
    int level = -1;             //!< level the constraint applies to (-1 global)
    double weight = 0.0;        //!< derived weight (Table II, Fig 8)
    bool satisfied = false;     //!< does the mapping satisfy it?
    bool skippedFlexible = false; //!< ignored under preallocLayouts
    /** weight when satisfied and not skipped, else 0; the contributions
     *  sum exactly to the mapping's score. */
    double contribution = 0.0;
    std::string reason;         //!< constraint provenance (Table II row)
};

/** Why one mapping scored the way it did. */
struct MappingExplanation
{
    MappingDecision decision;
    bool feasible = false;
    std::vector<HardCheck> hardChecks;
    std::vector<SoftContribution> soft;
    double totalScore = 0.0; //!< == sum of soft[i].contribution
    double dop = 0.0;
};

/** Why the search selected its winner (SearchOptions::explain). */
struct SearchExplanation
{
    bool valid = false;

    /** @name Candidate-space tallies
     *  @{
     */
    int64_t enumerated = 0;
    int64_t feasibleCount = 0;
    int64_t rejectedDims = 0;       //!< dim out of range / duplicated
    int64_t rejectedBlockShape = 0; //!< block size range / pow2 / total threads
    int64_t rejectedHardSpan = 0;   //!< HardSpanAll or Split-on-unsplittable
    /** @} */

    /** @name Tie-break chain at the winning score
     *  @{
     */
    int64_t atBestScore = 0;     //!< feasible candidates sharing best score
    int64_t atBestCappedDop = 0; //!< of those, sharing the best capped DOP
    int64_t atBestBlocks = 0;    //!< of those, sharing the best block count
    /** @} */

    /** What ControlDOP did, empty when it left the decision alone. */
    std::string controlDopNote;

    /** The selected (post-ControlDOP) mapping, fully explained. */
    MappingExplanation selected;

    /** @name Multi-device extension
     * The (deviceCount, splitPoint) sweep runs above the per-device
     * search — scoring shards needs the simulator, which analysis/
     * cannot depend on — but its verdicts are part of this decision
     * report. The fleet layer (sim/fleet.h) fills these after the
     * sweep; formatSearchExplanation / searchExplanationJson render
     * them alongside the per-device parameters when non-empty.
     *  @{
     */
    /** formatFleetChoice() text: per-candidate times + hard filters. */
    std::string fleetNote;
    /** fleetChoiceJson() object for the machine-readable export. */
    std::string fleetJson;
    /** @} */

    /** @name Consolidation sweep annotations
     * Filled by the consolidation layer (sim/consolidation.h) when a
     * program with runtime-sized inner domains is swept against the
     * warp-/block-bin queue mappings; rendered alongside the search
     * report when non-empty (same contract as the fleet annotations).
     *  @{
     */
    /** formatConsolidationChoice() text: per-candidate verdicts. */
    std::string consolidationNote;
    /** consolidationChoiceJson() object for the JSON export. */
    std::string consolidationJson;
    /** @} */

    /** @name Predictive-pruning annotations
     * Filled by the predict layer (predict/predict.h) when a sweep ran
     * under the learned cost model: per-candidate predicted times,
     * survive/prune verdicts, and the exactly-simulated survivors.
     * Rendered alongside the search report when non-empty (same
     * contract as the fleet and consolidation annotations).
     *  @{
     */
    /** PredictSweep::note() text: ranking + pruning verdicts. */
    std::string predictNote;
    /** PredictSweep::toJson() object for the JSON export. */
    std::string predictJson;
    /** @} */
};

/** Search outcome. */
struct SearchResult
{
    MappingDecision best;
    double bestScore = 0.0;
    double bestDop = 0.0;
    int candidatesConsidered = 0;
    std::vector<ScoredMapping> candidates; //!< if keepCandidates
    SearchExplanation explanation;         //!< if options.explain
};

/**
 * Mapping search engine for a fixed device.
 */
class MappingSearch
{
  public:
    explicit MappingSearch(DeviceConfig device, SearchOptions options = {})
        : device_(std::move(device)), options_(options)
    {}

    /** Run Algorithm 1 on a constraint set. */
    SearchResult search(const ConstraintSet &cset) const;

    /** Score one mapping against the soft constraints (0 if it violates
     *  a hard constraint). Exposed for the score/performance study. */
    double score(const MappingDecision &decision,
                 const ConstraintSet &cset) const;

    /** True if the mapping satisfies every hard constraint. */
    bool feasible(const MappingDecision &decision,
                  const ConstraintSet &cset) const;

    /** Apply the ControlDOP procedure (Algorithm 1, lines 6-12). */
    void controlDop(MappingDecision &decision,
                    const ConstraintSet &cset) const;

    /** Explain one mapping: every hard check with its verdict and every
     *  soft constraint with its contribution (contributions sum to
     *  score(decision, cset) — enforced by tests). Usable on its own for
     *  fixed-strategy mappings; search() uses it for the winner. */
    MappingExplanation explain(const MappingDecision &decision,
                               const ConstraintSet &cset) const;

    const DeviceConfig &device() const { return device_; }

  private:
    bool satisfies(const Constraint &c,
                   const MappingDecision &decision) const;

    /** Tally which family of hard rule rejected an infeasible candidate
     *  (explanation report). */
    void classifyRejection(const MappingDecision &decision,
                           const ConstraintSet &cset,
                           SearchExplanation &ex) const;

    DeviceConfig device_;
    SearchOptions options_;
};

/**
 * Convenience wrapper: build constraints and run the search for a
 * program. `paramValues` supplies actual sizes when known at compile time
 * (passed through to the analysis environment).
 */
SearchResult
findMapping(const Program &prog, const DeviceConfig &device,
            const std::unordered_map<int, double> &paramValues = {},
            SearchOptions options = {});

/** Render an explanation report as human-readable text (nppc --explain). */
std::string formatSearchExplanation(const SearchExplanation &ex);

/** Render an explanation report as JSON (machine-readable diagnostics). */
std::string searchExplanationJson(const SearchExplanation &ex);

} // namespace npp

#endif // NPP_ANALYSIS_SEARCH_H
