/**
 * @file
 * Outer-dimension partitioner for the multi-device layer. Splits the
 * root pattern's index domain into contiguous per-device shards and
 * answers the feasibility questions the fleet search needs: does the
 * program carry a cross-outer dependence (root Filter/GroupBy), is the
 * outer size known at launch, and is the domain large enough to give
 * every device at least one root-level block of work. Pure geometry —
 * simulation-backed scoring of the resulting shards lives in
 * sim/fleet.h.
 */

#ifndef NPP_ANALYSIS_PARTITION_H
#define NPP_ANALYSIS_PARTITION_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mapping.h"
#include "ir/program.h"

namespace npp {

/** Half-open root-domain sub-range [lo, hi) owned by one device. */
struct ShardRange
{
    int64_t lo = 0;
    int64_t hi = 0;

    int64_t size() const { return hi - lo; }
};

/**
 * A partition of the root domain across a fleet, or the reason there
 * is none. `verdict` is always set: the explain output prints it for
 * infeasible candidates ("cross-outer dependence: root filter ...",
 * "outer domain too small ...") and "ok" for feasible ones.
 */
struct ShardPlan
{
    bool valid = false;
    std::string verdict;
    int deviceCount = 1;
    int64_t outerSize = 0;
    /** Minimum useful outer granule per device (one root-level block's
     *  coverage under the mapping). */
    int64_t unit = 1;
    /** Size of the first device's shard (the search's split knob);
     *  recorded even when the caller asked for the balanced split. */
    int64_t splitPoint = -1;
    std::vector<ShardRange> shards;
};

/**
 * Why the program's root cannot shard across devices, or nullptr when
 * it can. Root Filter compacts survivors through one global cursor and
 * root GroupBy scatters arbitrary keys into the whole output — both
 * make every output element depend on the whole outer domain. Map,
 * ZipWith, and Foreach roots write disjoint per-index results; Reduce
 * roots shard into partials that the fleet combines host-side.
 */
const char *crossOuterDependence(const Program &prog);

/** True when the root size is a launch-time constant (literals and
 *  scalar params only) — an unknown outer extent cannot be split. */
bool outerSizeKnownAtLaunch(const Program &prog);

/** Minimum outer elements one device must receive so its root level
 *  fills at least one block: blockSize (span One), blockSize * factor
 *  (span N), 1 otherwise (All/Split trim freely). */
int64_t outerShardUnit(const MappingDecision &decision);

/**
 * Partition `outerSize` across `deviceCount` devices. splitPoint is
 * the first shard's size; pass -1 for the balanced split (remainders
 * go to the leading devices, one extra element each). Hard filters —
 * cross-outer dependence, unknown outer size, outerSize < deviceCount
 * * unit, a splitPoint that starves the first or the remaining
 * devices below one unit — return an invalid plan whose verdict names
 * the reason.
 */
ShardPlan partitionOuter(const Program &prog,
                         const MappingDecision &decision,
                         int64_t outerSize, int deviceCount,
                         int64_t splitPoint = -1);

/**
 * Split-point candidates for the fleet search at a given device count:
 * the balanced split (-1) plus the balanced first-shard size rounded
 * down and up to the mapping's unit, deduplicated and pre-filtered to
 * values partitionOuter would accept.
 */
std::vector<int64_t> splitPointCandidates(int64_t outerSize,
                                          int deviceCount, int64_t unit);

} // namespace npp

#endif // NPP_ANALYSIS_PARTITION_H
