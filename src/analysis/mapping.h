/**
 * @file
 * Mapping parameters (Section IV-A): each nest level of a pattern receives
 * a logical dimension, a block size, and a span/split type. A
 * MappingDecision assigns one LevelMapping per level; LaunchGeometry
 * instantiates the decision against the actual runtime sizes (the paper's
 * static-decision/dynamic-adjustment split, Section IV-D).
 */

#ifndef NPP_ANALYSIS_MAPPING_H
#define NPP_ANALYSIS_MAPPING_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/target.h"

namespace npp {

/** Degree-of-parallelism control for one level (Section IV-A). */
enum class SpanKind {
    One,  //!< Span(1): every domain point gets a thread
    N,    //!< Span(n): each thread covers n points (DOP / n)
    All,  //!< Span(all): one block covers the whole dimension
    Split //!< Split(k): Span(all) split into k blocks + combiner kernel
};

/** Span type with its factor (n for Span(n), k for Split(k)). */
struct SpanType
{
    SpanKind kind = SpanKind::One;
    int64_t factor = 1;

    static SpanType one() { return {SpanKind::One, 1}; }
    static SpanType n(int64_t factor) { return {SpanKind::N, factor}; }
    static SpanType all() { return {SpanKind::All, 1}; }
    static SpanType split(int64_t k) { return {SpanKind::Split, k}; }

    bool operator==(const SpanType &o) const
    {
        return kind == o.kind && factor == o.factor;
    }

    std::string toString() const;
};

/** Mapping parameters for one nest level. Dim 0 is x (fastest varying:
 *  adjacent threads in a warp differ in their x index). */
struct LevelMapping
{
    int dim = 0;
    int64_t blockSize = 1;
    SpanType span;

    bool operator==(const LevelMapping &o) const
    {
        return dim == o.dim && blockSize == o.blockSize && span == o.span;
    }

    std::string toString() const;
};

/** Complete mapping decision: one LevelMapping per nest level. */
struct MappingDecision
{
    std::vector<LevelMapping> levels;

    int numLevels() const { return static_cast<int>(levels.size()); }
    const LevelMapping &level(int i) const { return levels[i]; }

    /** Threads per block: product of per-level block sizes. */
    int64_t threadsPerBlock() const;

    /** Degree of parallelism given the per-level domain sizes
     *  (Section IV-A: Span(all) contributes its block size, not the
     *  loop size). */
    double dop(const std::vector<double> &levelSizes) const;

    bool operator==(const MappingDecision &o) const
    {
        return levels == o.levels;
    }

    /** Lexicographic order over (dim, blockSize, span) per level; gives
     *  candidate sets a canonical tie-break order and std::map keys. */
    bool operator<(const MappingDecision &o) const;

    /** Stable structural hash (FNV-1a over the level fields); used for
     *  duplicate-candidate sets and as part of the evaluation-cache key. */
    uint64_t hashValue() const;

    std::string toString() const;
};

/**
 * A mapping decision instantiated with the actual level sizes at launch:
 * grid shape, per-level iteration counts per thread.
 */
struct LaunchGeometry
{
    struct LevelGeom
    {
        int dim = 0;
        int64_t size = 0;      //!< actual domain size
        int64_t blockSize = 1;
        SpanType span;
        int64_t blocks = 1;    //!< blocks along this level's dim
        /** Iterations a single thread runs at this level. */
        int64_t itersPerThread = 1;
    };

    std::vector<LevelGeom> levels;
    int64_t totalBlocks = 1;
    int64_t threadsPerBlock = 1;

    /** Total threads launched. */
    int64_t totalThreads() const { return totalBlocks * threadsPerBlock; }
};

/**
 * Instantiate a decision against actual sizes. Dynamic block-size
 * trimming is applied as in Section IV-D: a block never uses more threads
 * in a dimension than the actual size needs.
 */
LaunchGeometry makeGeometry(const MappingDecision &decision,
                            const std::vector<int64_t> &levelSizes);

} // namespace npp

template <> struct std::hash<npp::MappingDecision>
{
    size_t operator()(const npp::MappingDecision &d) const noexcept
    {
        return static_cast<size_t>(d.hashValue());
    }
};

#endif // NPP_ANALYSIS_MAPPING_H
