/**
 * @file
 * Fixed mapping strategies from previous work, expressed as points in our
 * parameter space (Fig 7): the 1D mapping (outer level only), the
 * thread-block/thread mapping (Copperhead), and the warp-based mapping
 * (Hong et al.). Used as comparison baselines in the experiments.
 */

#ifndef NPP_ANALYSIS_PRESETS_H
#define NPP_ANALYSIS_PRESETS_H

#include "analysis/constraint.h"
#include "analysis/mapping.h"

namespace npp {

/** 1D mapping: parallelize only the outermost level (dim x, block 256);
 *  all inner levels execute sequentially inside the thread. */
MappingDecision oneDMapping(int numLevels, const DeviceConfig &device);

/** Thread-block/thread mapping (Fig 7a): each outer iteration is a thread
 *  block, the inner pattern is parallelized across the block's threads
 *  (dim x, MAX_BLOCK_SIZE, span(all)). */
MappingDecision threadBlockThreadMapping(int numLevels,
                                         const DeviceConfig &device);

/** Warp-based mapping (Fig 7b): each outer iteration is assigned to a
 *  warp (block = 16 warps), inner iterations to the warp's 32 lanes. */
MappingDecision warpBasedMapping(int numLevels, const DeviceConfig &device);

/**
 * Force spans onto a fixed-strategy mapping so it satisfies the hard
 * constraints (fixed strategies predate the span concept; to execute them
 * at all, a level that needs global synchronization runs span(all) with
 * its preset block size).
 */
void applyHardSpans(MappingDecision &decision, const ConstraintSet &cset);

} // namespace npp

#endif // NPP_ANALYSIS_PRESETS_H
