#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/strings.h"

namespace npp {

namespace {

/** Recursive-descent parser over a bounded byte range. Depth is capped
 *  so a hostile request of 100k open brackets cannot overflow the
 *  stack. */
struct Parser
{
    const char *p;
    size_t n;
    size_t off = 0;
    std::string error;
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = fmt("{} at byte {}", msg, off);
        return false;
    }

    void
    skipWs()
    {
        while (off < n && std::isspace(static_cast<unsigned char>(p[off])))
            off++;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (off < n && p[off] == c) {
            off++;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::strlen(word);
        if (n - off >= len && std::memcmp(p + off, word, len) == 0) {
            off += len;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string *out)
    {
        skipWs();
        if (off >= n || p[off] != '"')
            return fail("expected string");
        off++;
        out->clear();
        while (off < n) {
            const char c = p[off];
            if (c == '"') {
                off++;
                return true;
            }
            if (c == '\\') {
                off++;
                if (off >= n)
                    return fail("unterminated escape");
                const char e = p[off++];
                switch (e) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    if (n - off < 4)
                        return fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; i++) {
                        const char h = p[off + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    off += 4;
                    // ASCII decodes; anything wider degrades to '?'
                    // (program names and option keys are ASCII).
                    *out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                }
                default: return fail("unknown escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            *out += c;
            off++;
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (off >= n)
            return fail("unexpected end of input");
        const char c = p[off];
        if (c == '{') {
            off++;
            out->kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(&key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue val;
                if (!parseValue(&val, depth + 1))
                    return false;
                out->members.emplace_back(std::move(key), std::move(val));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            off++;
            out->kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue val;
                if (!parseValue(&val, depth + 1))
                    return false;
                out->elements.push_back(std::move(val));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->string);
        }
        if (literal("true")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->kind = JsonValue::Kind::Null;
            return true;
        }
        // Number.
        char *end = nullptr;
        const double v = std::strtod(p + off, &end);
        if (end == p + off || end > p + n)
            return fail("unexpected token");
        if (!std::isfinite(v))
            return fail("non-finite number");
        out->kind = JsonValue::Kind::Number;
        out->number = v;
        off = static_cast<size_t>(end - p);
        return true;
    }
};

} // namespace

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
JsonValue::asString(const std::string &fallback) const
{
    return kind == Kind::String ? string : fallback;
}

double
JsonValue::asNumber(double fallback) const
{
    return kind == Kind::Number ? number : fallback;
}

int64_t
JsonValue::asInt(int64_t fallback) const
{
    if (kind != Kind::Number)
        return fallback;
    return static_cast<int64_t>(number);
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    // strtod in Parser::parseValue needs a NUL-terminated buffer;
    // std::string::data() provides one.
    Parser parser{text.data(), text.size()};
    JsonValue root;
    if (!parser.parseValue(&root, 0)) {
        if (error)
            *error = parser.error;
        return std::nullopt;
    }
    parser.skipWs();
    if (parser.off != text.size()) {
        if (error)
            *error = fmt("trailing data at byte {}", parser.off);
        return std::nullopt;
    }
    return root;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace npp
