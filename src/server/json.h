/**
 * @file
 * Minimal JSON support for the mapping service's request protocol: a
 * tolerant recursive-descent parser producing a small value tree, plus
 * the string-escaping helper used when rendering responses. This is a
 * deliberate subset — objects, arrays, strings (with the standard
 * escapes; \uXXXX decodes the ASCII range and replaces the rest),
 * numbers, booleans, null — because requests are one line of
 * machine-generated JSON, not arbitrary documents. Responses are
 * rendered by hand (the repo's existing JSON exports all do the same).
 */

#ifndef NPP_SERVER_JSON_H
#define NPP_SERVER_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace npp {

/** One parsed JSON value. Members/elements are stored in input order. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members; //!< Object
    std::vector<JsonValue> elements;                        //!< Array

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup (first match); null when absent or when
     *  this value is not an object. */
    const JsonValue *get(const std::string &key) const;

    /** @name Typed accessors with fallbacks (never throw)
     *  @{
     */
    std::string asString(const std::string &fallback = {}) const;
    double asNumber(double fallback = 0.0) const;
    int64_t asInt(int64_t fallback = 0) const;
    bool asBool(bool fallback = false) const;
    /** @} */
};

/**
 * Parse one JSON document. Returns std::nullopt on malformed input and,
 * when `error` is non-null, a one-line description with the byte offset
 * of the failure. Trailing non-whitespace after the document is an
 * error (a second request on the same line is a protocol violation).
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace npp

#endif // NPP_SERVER_JSON_H
