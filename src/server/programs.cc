#include "server/programs.h"

#include <algorithm>

#include "apps/dynsize.h"
#include "apps/sums.h"
#include "ir/builder.h"
#include "support/rng.h"
#include "support/strings.h"

namespace npp {

namespace {

/** Admission bound: the largest element count one request may bind.
 *  64M doubles = 512 MB of input — beyond it a single request could
 *  wedge the service, so it is rejected up front with an error. */
constexpr int64_t kMaxElements = int64_t(1) << 26;

/** Pull one size hint; rejects non-positive and > kMaxElements. */
bool
takeSize(std::map<std::string, int64_t> &sizes, const std::string &key,
         int64_t *out, std::string *error)
{
    auto it = sizes.find(key);
    if (it == sizes.end())
        return true;
    if (it->second <= 0 || it->second > kMaxElements) {
        *error = fmt("size {}={} outside (0, {}]", key, it->second,
                     kMaxElements);
        return false;
    }
    *out = it->second;
    sizes.erase(it);
    return true;
}

bool
checkNoLeftover(const std::map<std::string, int64_t> &sizes,
                const std::string &name, std::string *error)
{
    if (sizes.empty())
        return true;
    *error = fmt("unknown size key \"{}\" for program {}",
                 sizes.begin()->first, name);
    return false;
}

bool
checkTotal(int64_t elems, std::string *error)
{
    if (elems <= kMaxElements)
        return true;
    *error = fmt("total element count {} exceeds the admission bound {}",
                 elems, kMaxElements);
    return false;
}

std::unique_ptr<DemoProgram>
sumDemo(bool byCols, bool weighted, std::map<std::string, int64_t> sizes,
        std::string *error)
{
    int64_t R = 2048, C = 2048;
    if (!takeSize(sizes, "rows", &R, error) ||
        !takeSize(sizes, "cols", &C, error) ||
        !checkNoLeftover(sizes, byCols ? "sumcols" : "sumrows", error) ||
        !checkTotal(R * C, error))
        return nullptr;

    SumsProgram sp = buildSum(byCols, weighted);
    auto d = std::make_unique<DemoProgram>();
    d->prog = sp.prog;
    d->params = {{sp.r.ref()->varId, static_cast<double>(R)},
                 {sp.c.ref()->varId, static_cast<double>(C)}};
    // The binder owns its storage: shared_ptr'd vectors captured by
    // value keep each DemoProgram instance race-free under concurrent
    // service requests (the old CLI demos used function-local statics).
    auto m = std::make_shared<std::vector<double>>();
    auto v = std::make_shared<std::vector<double>>();
    auto out = std::make_shared<std::vector<double>>();
    d->bind = [sp, R, C, m, v, out](Bindings &args) {
        Rng rng(1);
        m->assign(R * C, 0.0);
        for (auto &x : *m)
            x = rng.uniform(0, 1);
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *m);
        if (sp.weighted) {
            v->assign(std::max(R, C), 1.0);
            args.array(sp.v, *v);
        }
        out->assign(sp.outputSize(R, C), 0.0);
        args.array(sp.out, *out);
    };
    return d;
}

std::unique_ptr<DemoProgram>
pagerankDemo(std::map<std::string, int64_t> sizes, std::string *error)
{
    int64_t N = 8192;
    if (!takeSize(sizes, "nodes", &N, error) ||
        !checkNoLeftover(sizes, "pagerank", error) ||
        !checkTotal(N * 17, error)) // <= 16 neighbors per node + start
        return nullptr;

    ProgramBuilder b("pagerank_step");
    Arr start = b.inI64("rowStart");
    Arr nbrs = b.inI64("nbrs");
    Arr deg = b.inF64("degree");
    Arr prev = b.inF64("prev");
    Ex n = b.paramI64("numNodes");
    Ex damp = b.paramF64("damp");
    Arr out = b.outF64("rank");
    Arr st = start, nb = nbrs, dg = deg, pv = prev;
    Ex np = n, dp = damp;
    b.map(np, out, [&](Body &fn, Ex v) {
        Ex begin = fn.let("begin", st(v));
        Ex cnt = fn.let("cnt", st(v + 1) - begin);
        Arr weights = fn.map(cnt, [&](Body &, Ex e) {
            return pv(nb(begin + e)) / dg(nb(begin + e));
        });
        Ex sum = fn.reduce(cnt, Op::Add,
                           [&](Body &, Ex e) { return weights(e); });
        return (1.0 - dp) / np + dp * sum;
    });

    auto d = std::make_unique<DemoProgram>();
    d->prog = std::make_shared<Program>(b.build());
    d->fuse = true;
    d->params = {{n.ref()->varId, static_cast<double>(N)}};
    auto data = std::make_shared<std::vector<std::vector<double>>>();
    d->bind = [=](Bindings &args) {
        if (data->empty()) {
            data->resize(5); // start, nbrs, deg, prev, rank
            auto &startD = (*data)[0];
            auto &nbrD = (*data)[1];
            auto &degD = (*data)[2];
            auto &prevD = (*data)[3];
            Rng rng(3);
            startD.push_back(0);
            for (int64_t v = 0; v < N; v++) {
                const int64_t degN = 1 + rng.below(16);
                for (int64_t e = 0; e < degN; e++)
                    nbrD.push_back(static_cast<double>(rng.below(N)));
                startD.push_back(static_cast<double>(nbrD.size()));
            }
            degD.assign(N, 1.0);
            for (double x : nbrD)
                degD[static_cast<int64_t>(x)] += 1.0;
            prevD.assign(N, 1.0 / N);
        }
        (*data)[4].assign(N, 0.0);
        args.scalar(n, static_cast<double>(N));
        args.scalar(damp, 0.85);
        args.array(start, (*data)[0]);
        args.array(nbrs, (*data)[1]);
        args.array(deg, (*data)[2]);
        args.array(prev, (*data)[3]);
        args.array(out, (*data)[4]);
    };
    return d;
}

std::unique_ptr<DemoProgram>
mandelDemo(std::map<std::string, int64_t> sizes, std::string *error)
{
    int64_t H = 256, W = 1024;
    if (!takeSize(sizes, "height", &H, error) ||
        !takeSize(sizes, "width", &W, error) ||
        !checkNoLeftover(sizes, "mandelbrot", error) ||
        !checkTotal(H * W, error))
        return nullptr;

    ProgramBuilder b("mandelbrot");
    Ex h = b.paramI64("H"), w = b.paramI64("W");
    Arr img = b.outF64("img");
    Ex hp = h, wp = w;
    Arr im = img;
    b.foreach(hp, [&](Body &outer, Ex y) {
        outer.foreach(wp, [&](Body &fn, Ex x) {
            Ex cr = fn.let("cr", (Ex(x) * 3.5) / wp - 2.5);
            Ex ci = fn.let("ci", (Ex(y) * 2.0) / hp - 1.0);
            Mut zr = fn.mut("zr", Ex(0.0));
            Mut zi = fn.mut("zi", Ex(0.0));
            Mut steps = fn.mut("steps", Ex(0.0));
            fn.seqLoop(
                Ex(24),
                [&](Body &body, Ex) {
                    Ex nzr = body.let(
                        "nzr", zr.ex() * zr.ex() - zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi", zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            fn.store(im, y * wp + x, steps.ex());
        });
    });

    auto d = std::make_unique<DemoProgram>();
    d->prog = std::make_shared<Program>(b.build());
    d->params = {{h.ref()->varId, static_cast<double>(H)},
                 {w.ref()->varId, static_cast<double>(W)}};
    auto imgD = std::make_shared<std::vector<double>>();
    d->bind = [=](Bindings &args) {
        imgD->assign(H * W, 0.0);
        args.scalar(h, static_cast<double>(H));
        args.scalar(w, static_cast<double>(W));
        args.array(img, *imgD);
    };
    return d;
}

std::unique_ptr<DemoProgram>
spmvDemo(std::map<std::string, int64_t> sizes, std::string *error)
{
    // A runtime-sized program: the inner reduce extent is a CSR row
    // length read from the bound rowStart array, so the consolidation
    // sweep competes for its mapping. The skewed row distribution is
    // the shape consolidation exists for.
    int64_t rows = 4096, avgDeg = 8;
    if (!takeSize(sizes, "rows", &rows, error) ||
        !takeSize(sizes, "avgdeg", &avgDeg, error) ||
        !checkNoLeftover(sizes, "spmv", error) ||
        !checkTotal(rows * (4 * avgDeg + 2), error))
        return nullptr;

    SpmvProgram sp = buildSpmv();
    auto d = std::make_unique<DemoProgram>();
    d->prog = sp.prog;
    d->params = {{sp.nParam.ref()->varId, static_cast<double>(rows)}};
    auto m = std::make_shared<CsrMatrix>();
    auto x = std::make_shared<std::vector<double>>();
    auto y = std::make_shared<std::vector<double>>();
    d->bind = [sp, rows, avgDeg, m, x, y](Bindings &args) {
        if (m->rows == 0) {
            *m = makeCsr(rows, avgDeg, RowDist::Skewed, /*seed=*/11);
            x->assign(rows, 0.0);
            Rng rng(7);
            for (auto &v : *x)
                v = rng.uniform(-1, 1);
        }
        y->assign(rows, 0.0);
        args = sp.bind(*m, *x, *y);
    };
    return d;
}

} // namespace

const std::vector<std::string> &
demoProgramNames()
{
    static const std::vector<std::string> names = {
        "sumrows",    "sumcols",  "weightedrows",
        "weightedcols", "pagerank", "mandelbrot", "spmv"};
    return names;
}

std::unique_ptr<DemoProgram>
buildDemoProgram(const std::string &name,
                 const std::map<std::string, int64_t> &sizes,
                 std::string *error)
{
    std::string scratch;
    std::string &err = error ? *error : scratch;
    if (name == "sumrows")
        return sumDemo(false, false, sizes, &err);
    if (name == "sumcols")
        return sumDemo(true, false, sizes, &err);
    if (name == "weightedrows")
        return sumDemo(false, true, sizes, &err);
    if (name == "weightedcols")
        return sumDemo(true, true, sizes, &err);
    if (name == "pagerank")
        return pagerankDemo(sizes, &err);
    if (name == "mandelbrot")
        return mandelDemo(sizes, &err);
    if (name == "spmv")
        return spmvDemo(sizes, &err);
    err = fmt("unknown program \"{}\" (have: {})", name,
              join(demoProgramNames(), ", "));
    return nullptr;
}

} // namespace npp
