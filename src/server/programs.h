/**
 * @file
 * Named demo-program registry shared by the nppc CLI and the mapping
 * service: each entry builds a pattern program plus deterministic
 * synthetic inputs, parameterized by caller-supplied size hints. A
 * DemoProgram owns its input storage (no function-local statics), so
 * concurrent service requests each bind their own buffers race-free;
 * two instances built with the same name and sizes produce identical
 * binding fingerprints (seeded RNG), which is what makes request
 * coalescing and the cross-process eval cache effective.
 *
 * programs and their size keys (every key optional):
 *   sumrows / sumcols / weightedrows / weightedcols — rows, cols
 *   pagerank   — nodes
 *   mandelbrot — height, width
 */

#ifndef NPP_SERVER_PROGRAMS_H
#define NPP_SERVER_PROGRAMS_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/gpu.h"

namespace npp {

/** One buildable demo program: the IR, compile parameters, and a binder
 *  that attaches this instance's own input/output storage. */
struct DemoProgram
{
    std::shared_ptr<Program> prog;
    std::unordered_map<int, double> params;
    bool fuse = false;
    std::function<void(Bindings &)> bind;
};

/** Names accepted by buildDemoProgram, in presentation order. */
const std::vector<std::string> &demoProgramNames();

/**
 * Build a demo program by name with optional size overrides. Unknown
 * names, unknown size keys, non-positive sizes, and sizes whose element
 * count exceeds the service's admission bound are rejected: returns
 * nullptr and fills `error` — a malformed request must produce an error
 * response, never an aborted process.
 */
std::unique_ptr<DemoProgram>
buildDemoProgram(const std::string &name,
                 const std::map<std::string, int64_t> &sizes,
                 std::string *error);

} // namespace npp

#endif // NPP_SERVER_PROGRAMS_H
