/**
 * @file
 * Mapping-as-a-service: a long-lived Unix-socket server that keeps the
 * process-global EvalCache warm across requests. Clients send one JSON
 * request per line (newline-delimited) and receive one JSON response
 * per line; a request names a demo program plus size hints and compile
 * options, and the response carries the selected mapping, the search
 * explanation, the simulated timing report, and cache-tier provenance
 * (memory / disk / simulated). See DESIGN.md "Tiered eval cache +
 * mapping service" for the protocol.
 *
 * Request object:
 *     {"type":"eval",            // default; also ping | stats | shutdown
 *      "program":"sumrows",      // see demoProgramNames()
 *      "sizes":{"rows":512},     // optional, program-specific keys
 *      "strategy":"multidim",    // multidim | 1d | tbt | warp
 *      "explain":true,           // include the decision report text
 *      "devices":4,              // optional fleet size in [1, 32]; when
 *                                // > 1 the response gains "devices" and
 *                                // a "fleet" object with the sharding
 *                                // sweep (sim/fleet.h)
 *      "id":7}                   // echoed back verbatim
 *
 * Concurrency: one thread per connection. Identical in-flight requests
 * — same program, sizes, strategy, device, fleet — are coalesced onto a single
 * evaluation keyed by the same fingerprint the EvalCache uses; the
 * waiters share the leader's outcome and their responses are marked
 * "coalesced":true. Per-request latency is recorded under the
 * "server.request" trace span and surfaced by the stats request.
 */

#ifndef NPP_SERVER_SERVER_H
#define NPP_SERVER_SERVER_H

#include <cstdint>
#include <memory>
#include <string>

namespace npp {

struct ServeOptions
{
    /** Filesystem path for the AF_UNIX listening socket. A stale file
     *  at this path is replaced. */
    std::string socketPath;

    /** Test hook: hold each leader evaluation open for this many
     *  milliseconds before simulating, so concurrent identical requests
     *  deterministically land in the coalescing window. */
    int holdEvalMs = 0;
};

/** Lifetime counters for one server instance (monotonic; the stats
 *  request also reports them). */
struct ServerStats
{
    uint64_t requests = 0;    //!< lines received (any type)
    uint64_t errors = 0;      //!< responses with "ok":false
    uint64_t evaluations = 0; //!< eval requests completed
    uint64_t simulations = 0; //!< evaluations that actually simulated
    uint64_t coalesced = 0;   //!< eval requests served by a leader
    uint64_t memoryHits = 0;  //!< evaluations served from the memory tier
    uint64_t diskHits = 0;    //!< evaluations served from the disk tier
};

/**
 * The serve loop. start() binds and listens, then accepts connections
 * on a background thread; stop() (or a client "shutdown" request)
 * drains and joins everything. The destructor stops implicitly.
 */
class MappingServer
{
  public:
    explicit MappingServer(ServeOptions opts);
    ~MappingServer();

    MappingServer(const MappingServer &) = delete;
    MappingServer &operator=(const MappingServer &) = delete;

    /** Bind, listen, and spawn the accept loop. Returns false (with a
     *  description in `error`) when the socket cannot be set up. */
    bool start(std::string *error);

    /** Block until the server is stopped — by stop(), a "shutdown"
     *  request, or a fatal accept error. */
    void wait();

    /** Ask the accept loop to exit and join every connection thread.
     *  Idempotent. */
    void stop();

    ServerStats stats() const;
    const std::string &socketPath() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Client helper: connect to `socketPath`, send `request` as one line,
 * and read the one-line reply into `response`. Returns false with
 * `error` filled on connect/IO failure. Used by `nppc --client` and the
 * tests; the wire protocol stays trivially reimplementable (nc -U).
 */
bool serveRoundTrip(const std::string &socketPath,
                    const std::string &request, std::string *response,
                    std::string *error);

} // namespace npp

#endif // NPP_SERVER_SERVER_H
