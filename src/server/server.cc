#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/consolidate.h"
#include "analysis/search.h"
#include "predict/predict.h"
#include "server/json.h"
#include "server/programs.h"
#include "sim/consolidation.h"
#include "sim/evalcache.h"
#include "sim/fleet.h"
#include "sim/gpu.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

/** A hostile client must not make the server buffer unbounded input:
 *  requests are one line of machine-generated JSON, so anything past
 *  1 MB is a protocol violation and drops the connection. */
constexpr size_t kMaxRequestBytes = 1 << 20;

/** The result of one evaluation, shared verbatim between a coalescing
 *  leader and its waiters. */
struct EvalOutcome
{
    bool ok = false;
    std::string error;
    std::string mapping;
    double score = 0.0;
    double dop = 0.0;
    int fusedPatterns = 0;
    std::string explanation;
    SimReport report;
    EvalTier tier = EvalTier::Simulated;
    /** Multi-device sweep result (requests with "devices" > 1). */
    int devices = 1;
    std::string fleetJson;
    /** Consolidation sweep result (programs with a runtime-sized inner
     *  domain); empty for static-shaped programs. */
    std::string consolidationJson;
    /** Predictive-pruning provenance (NPP_PREDICT=1 servers): the
     *  ranked candidates, survive/prune verdicts, and empirical winner.
     *  Empty when the predictor is off. */
    std::string predictJson;
};

bool
parseStrategy(const std::string &name, Strategy *out, std::string *error)
{
    if (name.empty() || name == "multidim")
        *out = Strategy::MultiDim;
    else if (name == "1d")
        *out = Strategy::OneD;
    else if (name == "tbt")
        *out = Strategy::ThreadBlockThread;
    else if (name == "warp")
        *out = Strategy::WarpBased;
    else if (name == "consolidate")
        *out = Strategy::Consolidate;
    else {
        *error = fmt("unknown strategy \"{}\" "
                     "(multidim|1d|tbt|warp|consolidate)",
                     name);
        return false;
    }
    return true;
}

/** Render the part of the request echoed into every response. */
std::string
echoPrefix(const JsonValue &req)
{
    const JsonValue *id = req.get("id");
    if (!id)
        return "";
    if (id->isNumber())
        return fmt("\"id\":{},", id->number);
    if (id->isString())
        return fmt("\"id\":\"{}\",", jsonEscape(id->string));
    return "";
}

std::string
errorResponse(const JsonValue *req, const std::string &message)
{
    return fmt("{\"ok\":false,{}\"error\":\"{}\"}",
               req ? echoPrefix(*req) : std::string(),
               jsonEscape(message));
}

void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing to salvage
        off += static_cast<size_t>(n);
    }
}

} // namespace

struct MappingServer::Impl
{
    ServeOptions opts;
    Gpu gpu;

    int listenFd = -1;
    int stopPipe[2] = {-1, -1};
    std::thread acceptThread;
    std::vector<std::thread> connThreads;
    std::vector<int> connFds; //!< open connections, for shutdown on stop
    std::mutex connMutex;
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};

    /** In-flight evaluations keyed by the EvalCache fingerprint: the
     *  first request for a key evaluates; identical concurrent requests
     *  wait on its future instead of simulating again. */
    std::mutex inflightMutex;
    std::unordered_map<uint64_t,
                       std::shared_future<std::shared_ptr<const EvalOutcome>>>
        inflight;

    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> evaluations{0};
    std::atomic<uint64_t> simulations{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> memoryHits{0};
    std::atomic<uint64_t> diskHits{0};

    explicit Impl(ServeOptions o) : opts(std::move(o)) {}

    std::shared_ptr<const EvalOutcome>
    evaluate(const DemoProgram &demo, const CompileOptions &copts,
             const Bindings &args, const ExecOptions &eopts,
             uint64_t specSeed, int devices)
    {
        auto out = std::make_shared<EvalOutcome>();

        if (opts.holdEvalMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.holdEvalMs));

        CompileResult compiled =
            compileProgram(*demo.prog, gpu.config(), copts);

        EvalTier tier = EvalTier::Simulated;
        out->report = cachedRun(gpu, compiled.spec, args, eopts, specSeed,
                                /*wantOutputs=*/false, &tier);
        out->tier = tier;
        out->ok = true;
        out->mapping = compiled.spec.mapping.toString();
        out->score = compiled.spec.score;
        out->dop = compiled.spec.dop;
        out->fusedPatterns = compiled.fusedPatterns;
        if (devices > 1) {
            // Score (deviceCount, splitPoint) across the fleet and fold
            // the verdicts into the decision report.
            const FleetChoice choice =
                searchFleet(gpu, compiled.spec, args, fleetK20c(devices),
                            eopts, specSeed);
            out->devices = devices;
            out->fleetJson = fleetChoiceJson(choice);
            compiled.explanation.fleetNote = formatFleetChoice(choice);
            compiled.explanation.fleetJson = out->fleetJson;
        }
        if (hasDynamicInnerExtent(*demo.prog)) {
            // Runtime-sized inner domains: sweep the consolidation
            // candidates so the response names why consolidation won
            // or lost against the best static mapping.
            const ConsolidationChoice choice = searchConsolidation(
                gpu, *demo.prog, args, copts, eopts);
            out->consolidationJson = consolidationChoiceJson(choice);
            compiled.explanation.consolidationNote =
                formatConsolidationChoice(choice);
            compiled.explanation.consolidationJson =
                out->consolidationJson;
        }
        if (PredictRuntime::instance().active()) {
            // Predictive provenance: rank + prune + exactly simulate the
            // survivors, and report every verdict alongside the
            // score-based selection the response is built from.
            const PredictSweep sweep = PredictRuntime::instance().sweep(
                gpu, *demo.prog, args, copts);
            out->predictJson = sweep.toJson();
            compiled.explanation.predictNote = sweep.note();
            compiled.explanation.predictJson = out->predictJson;
        }
        out->explanation = formatSearchExplanation(compiled.explanation);
        return out;
    }

    std::string
    handleEval(const JsonValue &req)
    {
        const std::string program =
            req.get("program") ? req.get("program")->asString() : "";
        if (program.empty()) {
            errors.fetch_add(1);
            return errorResponse(&req, "missing \"program\"");
        }

        Strategy strategy = Strategy::MultiDim;
        std::string err;
        const std::string strategyStr =
            req.get("strategy") ? req.get("strategy")->asString() : "";
        if (!parseStrategy(strategyStr, &strategy, &err)) {
            errors.fetch_add(1);
            return errorResponse(&req, err);
        }

        std::map<std::string, int64_t> sizes;
        if (const JsonValue *sz = req.get("sizes")) {
            if (!sz->isObject()) {
                errors.fetch_add(1);
                return errorResponse(&req, "\"sizes\" must be an object");
            }
            for (const auto &[key, val] : sz->members) {
                if (!val.isNumber()) {
                    errors.fetch_add(1);
                    return errorResponse(
                        &req, fmt("size \"{}\" must be a number", key));
                }
                sizes[key] = val.asInt();
            }
        }

        // Fingerprint the request the same way the EvalCache would, so
        // identical in-flight requests coalesce onto one evaluation.
        // Building the program (and binding its deterministic inputs)
        // is cheap relative to search + simulate, which the leader
        // alone pays.
        std::unique_ptr<DemoProgram> demo =
            buildDemoProgram(program, sizes, &err);
        if (!demo) {
            errors.fetch_add(1);
            return errorResponse(&req, err);
        }
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = demo->params;
        copts.fuseMapReduce = demo->fuse;
        // Always explain: a waiter coalesced onto this evaluation may
        // have asked for the explanation even if the leader did not,
        // and explainSearch cannot change the spec (or the cache key).
        copts.explainSearch = true;
        Bindings args(*demo->prog);
        demo->bind(args);
        int devices = 1;
        if (const JsonValue *dv = req.get("devices")) {
            if (!dv->isNumber() || dv->asInt() < 1 || dv->asInt() > 32) {
                errors.fetch_add(1);
                return errorResponse(
                    &req, "\"devices\" must be an integer in [1, 32]");
            }
            devices = static_cast<int>(dv->asInt());
        }

        ExecOptions eopts;
        eopts.metricsOnly = true; // report-only: race-free, classed speed
        const uint64_t specSeed = EvalCache::combine(
            EvalCache::combine(EvalCache::hashProgram(*demo->prog),
                               EvalCache::hashCompileOptions(copts)),
            EvalCache::hashDevice(gpu.config()));
        uint64_t key = EvalCache::combine(
            EvalCache::combine(specSeed, EvalCache::hashBindings(args)),
            EvalCache::hashExec(eopts));
        // The fleet joins the fingerprint only when requested, so
        // single-device fingerprints — and what coalesces with what —
        // are unchanged, while evaluations against different fleet
        // sizes can never share one leader.
        if (devices > 1) {
            key = EvalCache::combine(
                key, EvalCache::hashFleet(fleetK20c(devices)));
        }

        bool leader = false;
        std::shared_future<std::shared_ptr<const EvalOutcome>> future;
        std::promise<std::shared_ptr<const EvalOutcome>> promise;
        {
            std::lock_guard<std::mutex> lock(inflightMutex);
            auto it = inflight.find(key);
            if (it == inflight.end()) {
                leader = true;
                future = promise.get_future().share();
                inflight.emplace(key, future);
            } else {
                future = it->second;
            }
        }

        if (leader) {
            std::shared_ptr<const EvalOutcome> outcome =
                evaluate(*demo, copts, args, eopts, specSeed, devices);
            promise.set_value(outcome);
            std::lock_guard<std::mutex> lock(inflightMutex);
            inflight.erase(key);
        } else {
            coalesced.fetch_add(1);
            NPP_TRACE_COUNT("server.coalesced", 1);
        }
        std::shared_ptr<const EvalOutcome> outcome = future.get();

        evaluations.fetch_add(1);
        if (!outcome->ok) {
            errors.fetch_add(1);
            return errorResponse(&req, outcome->error);
        }
        if (leader) {
            switch (outcome->tier) {
            case EvalTier::Simulated: simulations.fetch_add(1); break;
            case EvalTier::Memory: memoryHits.fetch_add(1); break;
            case EvalTier::Disk: diskHits.fetch_add(1); break;
            }
        }

        const bool explain =
            req.get("explain") && req.get("explain")->asBool();
        std::string resp = "{\"ok\":true," + echoPrefix(req);
        resp += fmt("\"program\":\"{}\",", jsonEscape(program));
        resp += fmt("\"mapping\":\"{}\",", jsonEscape(outcome->mapping));
        resp += fmt("\"score\":{},\"dop\":{},", outcome->score, outcome->dop);
        if (outcome->fusedPatterns)
            resp += fmt("\"fused_patterns\":{},", outcome->fusedPatterns);
        if (explain)
            resp += fmt("\"explanation\":\"{}\",",
                        jsonEscape(outcome->explanation));
        resp += fmt("\"provenance\":\"{}\",", evalTierName(outcome->tier));
        if (outcome->devices > 1) {
            resp += fmt("\"devices\":{},", outcome->devices);
            resp += "\"fleet\":" + outcome->fleetJson + ",";
        }
        if (!outcome->consolidationJson.empty()) {
            resp += "\"consolidation\":" + outcome->consolidationJson +
                    ",";
        }
        if (!outcome->predictJson.empty())
            resp += "\"predict\":" + outcome->predictJson + ",";
        resp += fmt("\"coalesced\":{},", leader ? "false" : "true");
        resp += fmt("\"coalesce_model\":\"{}\",", kCoalesceModelVersion);
        resp += "\"report\":" +
                outcome->report.toJson(gpu.config().transactionBytes) + "}";
        return resp;
    }

    std::string
    handleStats(const JsonValue &req)
    {
        const TraceTimerStat timer =
            Trace::instance().timerStat("server.request");
        std::string resp = "{\"ok\":true," + echoPrefix(req);
        resp += fmt("\"type\":\"stats\",\"requests\":{},\"errors\":{},"
                    "\"evaluations\":{},\"simulations\":{},"
                    "\"coalesced\":{},\"memory_hits\":{},\"disk_hits\":{},",
                    requests.load(), errors.load(), evaluations.load(),
                    simulations.load(), coalesced.load(), memoryHits.load(),
                    diskHits.load());
        resp += fmt("\"request_timer\":{\"count\":{},\"total_us\":{},"
                    "\"max_us\":{}},",
                    timer.count, timer.totalUs, timer.maxUs);
        resp += "\"eval_cache\":" + EvalCache::instance().stats().toJson() +
                ",\"predict\":" + predictStatsJson() + "}";
        return resp;
    }

    /** Process one request line; returns the response line (without the
     *  trailing newline) and sets *shutdown for the shutdown type. */
    std::string
    handleLine(const std::string &line, bool *shutdown)
    {
        NPP_TRACE_SCOPE("server.request");
        requests.fetch_add(1);
        NPP_TRACE_COUNT("server.requests", 1);

        std::string parseError;
        std::optional<JsonValue> req = parseJson(line, &parseError);
        if (!req) {
            errors.fetch_add(1);
            return errorResponse(nullptr,
                                 "malformed request: " + parseError);
        }
        if (!req->isObject()) {
            errors.fetch_add(1);
            return errorResponse(nullptr, "request must be a JSON object");
        }

        const std::string type =
            req->get("type") ? req->get("type")->asString("eval") : "eval";
        if (type == "eval")
            return handleEval(*req);
        if (type == "ping")
            return "{\"ok\":true," + echoPrefix(*req) +
                   "\"type\":\"pong\"}";
        if (type == "stats")
            return handleStats(*req);
        if (type == "shutdown") {
            *shutdown = true;
            return "{\"ok\":true," + echoPrefix(*req) +
                   "\"type\":\"shutdown\"}";
        }
        errors.fetch_add(1);
        return errorResponse(&*req, fmt("unknown request type \"{}\"", type));
    }

    void
    serveConnection(int fd)
    {
        std::string buffer;
        char chunk[4096];
        bool shutdown = false;
        while (!shutdown && !stopping.load()) {
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<size_t>(n));
            size_t pos;
            while ((pos = buffer.find('\n')) != std::string::npos) {
                const std::string line = buffer.substr(0, pos);
                buffer.erase(0, pos + 1);
                if (line.empty())
                    continue;
                writeAll(fd, handleLine(line, &shutdown) + "\n");
                if (shutdown)
                    break;
            }
            if (buffer.size() > kMaxRequestBytes) {
                writeAll(fd, errorResponse(nullptr, "request too large") +
                                 "\n");
                break;
            }
        }
        {
            std::lock_guard<std::mutex> lock(connMutex);
            connFds.erase(std::remove(connFds.begin(), connFds.end(), fd),
                          connFds.end());
        }
        ::close(fd);
        if (shutdown)
            signalStop();
    }

    void
    signalStop()
    {
        if (stopping.exchange(true))
            return;
        const char byte = 'x';
        if (stopPipe[1] >= 0)
            (void)!::write(stopPipe[1], &byte, 1);
        // Unblock connection threads parked in recv() on clients that
        // keep their connection open.
        std::lock_guard<std::mutex> lock(connMutex);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }

    void
    acceptLoop()
    {
        while (!stopping.load()) {
            struct pollfd fds[2];
            fds[0] = {listenFd, POLLIN, 0};
            fds[1] = {stopPipe[0], POLLIN, 0};
            const int rc = ::poll(fds, 2, -1);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                NPP_WARN("serve: poll failed: {}", std::strerror(errno));
                break;
            }
            if (fds[1].revents || stopping.load())
                break;
            if (!(fds[0].revents & POLLIN))
                continue;
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                // Transient conditions must not tear down the listener:
                // a stray signal (EINTR), a client that gave up between
                // poll and accept (ECONNABORTED), or a connection that
                // vanished before accept could pick it up (EAGAIN —
                // possible even on a blocking socket per accept(2)).
                if (errno == EINTR || errno == ECONNABORTED ||
                    errno == EAGAIN || errno == EWOULDBLOCK)
                    continue;
                NPP_WARN("serve: accept failed: {}; listener kept alive",
                         std::strerror(errno));
                continue;
            }
            std::lock_guard<std::mutex> lock(connMutex);
            connFds.push_back(fd);
            connThreads.emplace_back(
                [this, fd] { serveConnection(fd); });
        }
    }
};

MappingServer::MappingServer(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{}

MappingServer::~MappingServer()
{
    stop();
}

bool
MappingServer::start(std::string *error)
{
    Impl &im = *impl_;
    if (im.opts.socketPath.empty()) {
        if (error)
            *error = "empty socket path";
        return false;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (im.opts.socketPath.size() >= sizeof addr.sun_path) {
        if (error)
            *error = fmt("socket path too long ({} bytes, max {})",
                         im.opts.socketPath.size(),
                         sizeof addr.sun_path - 1);
        return false;
    }
    std::memcpy(addr.sun_path, im.opts.socketPath.c_str(),
                im.opts.socketPath.size());

    if (::pipe(im.stopPipe) != 0) {
        if (error)
            *error = fmt("pipe: {}", std::strerror(errno));
        return false;
    }
    im.listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.listenFd < 0) {
        if (error)
            *error = fmt("socket: {}", std::strerror(errno));
        return false;
    }
    ::unlink(im.opts.socketPath.c_str()); // stale socket from a dead server
    if (::bind(im.listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(im.listenFd, 64) != 0) {
        if (error)
            *error = fmt("bind/listen {}: {}", im.opts.socketPath,
                         std::strerror(errno));
        ::close(im.listenFd);
        im.listenFd = -1;
        return false;
    }
    // Request latency spans and coalescing counters are part of the
    // protocol (the stats request reports them), so the registry is
    // always on while serving.
    Trace::instance().setEnabled(true);
    im.started.store(true);
    im.acceptThread = std::thread([&im] { im.acceptLoop(); });
    return true;
}

void
MappingServer::wait()
{
    Impl &im = *impl_;
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    // Joining must not hold connMutex: a connection thread that carried
    // a shutdown request takes the lock inside signalStop().
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(im.connMutex);
        threads.swap(im.connThreads);
    }
    for (auto &t : threads)
        if (t.joinable())
            t.join();
}

void
MappingServer::stop()
{
    Impl &im = *impl_;
    if (!im.started.load()) {
        im.stopping.store(true);
        return;
    }
    im.signalStop();
    wait();
    if (im.listenFd >= 0) {
        ::close(im.listenFd);
        im.listenFd = -1;
    }
    for (int &fd : im.stopPipe)
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    ::unlink(im.opts.socketPath.c_str());
    im.started.store(false);
}

ServerStats
MappingServer::stats() const
{
    const Impl &im = *impl_;
    ServerStats s;
    s.requests = im.requests.load();
    s.errors = im.errors.load();
    s.evaluations = im.evaluations.load();
    s.simulations = im.simulations.load();
    s.coalesced = im.coalesced.load();
    s.memoryHits = im.memoryHits.load();
    s.diskHits = im.diskHits.load();
    return s;
}

const std::string &
MappingServer::socketPath() const
{
    return impl_->opts.socketPath;
}

bool
serveRoundTrip(const std::string &socketPath, const std::string &request,
               std::string *response, std::string *error)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = fmt("socket: {}", std::strerror(errno));
        return false;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long";
        ::close(fd);
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size());
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (error)
            *error = fmt("connect {}: {}", socketPath,
                         std::strerror(errno));
        ::close(fd);
        return false;
    }
    writeAll(fd, request + "\n");
    std::string buffer;
    char chunk[4096];
    while (buffer.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (error)
                *error = "connection closed before a response arrived";
            ::close(fd);
            return false;
        }
        buffer.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    if (response)
        *response = buffer.substr(0, buffer.find('\n'));
    return true;
}

} // namespace npp
