/**
 * @file
 * MSMBuilder trajectory clustering (Section VI-E): the performance-
 * critical kernel computes the distance from every conformation frame to
 * every cluster center over a feature vector — three nested patterns
 * whose individual domains are all small (~100 each). Only the product
 * of the domains saturates the GPU, which is exactly what the 1D mapping
 * cannot exploit.
 */

#include "apps/realworld.h"
#include "support/rng.h"

namespace npp {

namespace {

class MsmBuilderApp : public App
{
  public:
    MsmBuilderApp(int64_t frames, int64_t clusters, int64_t features)
        : n(frames), k(clusters), f(features)
    {
        Rng rng(29);
        x.resize(n * f);
        c.resize(k * f);
        for (auto &v : x)
            v = rng.uniform(-1, 1);
        for (auto &v : c)
            v = rng.uniform(-1, 1);
        build();
    }

    std::string name() const override { return "MSMBuilder"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {
            {nParam.ref()->varId, static_cast<double>(n)},
            {kParam.ref()->varId, static_cast<double>(k)},
            {fParam.ref()->varId, static_cast<double>(f)}};

        Runner runner(gpu, copts);
        std::vector<double> dist = launchOnce(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(n + k) * f * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = launchOnce(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, dist, 1e-9);
        }
        return result;
    }

  private:
    void
    build()
    {
        ProgramBuilder b("traj_distances");
        xArr = b.inF64("frames");
        cArr = b.inF64("centers");
        nParam = b.paramI64("N");
        kParam = b.paramI64("K");
        fParam = b.paramI64("F");
        dArr = b.outF64("dist");
        Arr xa = xArr, ca = cArr, da = dArr;
        Ex kp = kParam, fp = fParam;

        b.foreach(nParam, [&](Body &frame, Ex i) {
            frame.foreach(kp, [&](Body &center, Ex j) {
                Ex d2 = center.reduce(fp, Op::Add, [&](Body &inner, Ex t) {
                    Ex diff = inner.let("diff",
                                        xa(i * fp + t) - ca(Ex(j) * fp + t));
                    return diff * diff;
                });
                center.store(da, i * kp + j, sqrt(d2));
            });
        });
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    launchOnce(Runner &runner)
    {
        std::vector<double> dist(n * k, 0.0);
        Bindings args(*prog);
        args.scalar(nParam, static_cast<double>(n));
        args.scalar(kParam, static_cast<double>(k));
        args.scalar(fParam, static_cast<double>(f));
        args.array(xArr, x);
        args.array(cArr, c);
        args.array(dArr, dist);
        runner.launch(*prog, args);
        return dist;
    }

    int64_t n, k, f;
    std::vector<double> x, c;
    std::shared_ptr<Program> prog;
    Arr xArr, cArr, dArr;
    Ex nParam, kParam, fParam;
};

} // namespace

std::unique_ptr<App>
makeMsmBuilder(int64_t frames, int64_t clusters, int64_t features)
{
    return std::make_unique<MsmBuilderApp>(frames, clusters, features);
}

} // namespace npp
