/**
 * @file
 * Nearest Neighbor: one level of parallelism — the Euclidean distance
 * from every record to a target location. The paper uses it to measure
 * raw generated-code quality against hand-written CUDA (the ~20% wrapper
 * overhead gap of Section VI-C).
 */

#include "apps/rodinia.h"
#include "support/rng.h"

namespace npp {

namespace {

class NearestNeighborApp : public App
{
  public:
    explicit NearestNeighborApp(int64_t records) : n(records)
    {
        Rng rng(101);
        lat.resize(n);
        lng.resize(n);
        for (int64_t i = 0; i < n; i++) {
            lat[i] = rng.uniform(0, 90);
            lng[i] = rng.uniform(0, 180);
        }
        build();
    }

    std::string name() const override { return "NearestNeighbor"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};

        std::vector<double> dist(n, 0.0);
        Runner runner(gpu, copts);
        launchOnce(runner, dist);
        result.gpuMs = runner.gpuMs;

        result.transferMs =
            transferMs(static_cast<double>(n) * 2 * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect(n, 0.0);
            launchOnce(ref, expect);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, dist);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // The Rodinia kernel: same mapping class, raw pointers.
        CompileOptions copts;
        copts.strategy = Strategy::MultiDim;
        copts.rawPointers = true;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};
        std::vector<double> dist(n, 0.0);
        Runner runner(gpu, copts);
        launchOnce(runner, dist);
        return runner.gpuMs;
    }

  private:
    void
    build()
    {
        ProgramBuilder b("nn");
        latArr = b.inF64("lat");
        lngArr = b.inF64("lng");
        nParam = b.paramI64("n");
        targetLat = b.paramF64("tlat");
        targetLng = b.paramF64("tlng");
        distArr = b.outF64("dist");
        Arr la = latArr, lo = lngArr;
        Ex tla = targetLat, tlo = targetLng;
        b.map(nParam, distArr, [&](Body &fn, Ex i) {
            Ex dy = fn.let("dy", la(i) - tla);
            Ex dx = fn.let("dx", lo(i) - tlo);
            return sqrt(dy * dy + dx * dx);
        });
        prog = std::make_shared<Program>(b.build());
    }

    double
    launchOnce(Runner &runner, std::vector<double> &dist)
    {
        Bindings args(*prog);
        args.scalar(nParam, static_cast<double>(n));
        args.scalar(targetLat, 30.0);
        args.scalar(targetLng, 60.0);
        args.array(latArr, lat);
        args.array(lngArr, lng);
        args.array(distArr, dist);
        return runner.launch(*prog, args);
    }

    int64_t n;
    std::vector<double> lat, lng;
    std::shared_ptr<Program> prog;
    Arr latArr, lngArr, distArr;
    Ex nParam, targetLat, targetLng;
};

} // namespace

std::unique_ptr<App>
makeNearestNeighbor(int64_t records)
{
    return std::make_unique<NearestNeighborApp>(records);
}

} // namespace npp
