/**
 * @file
 * Gaussian Elimination: for each elimination step t, Fan1 computes the
 * column of multipliers and Fan2 updates the trailing submatrix (two
 * kernels per step, n-1 steps). The paper highlights this application
 * because the hand-written Rodinia version left one nest uncoalesced,
 * while the mapping analysis picks the right dimensions automatically.
 */

#include "apps/rodinia.h"
#include "support/rng.h"

namespace npp {

namespace {

class GaussianApp : public App
{
  public:
    GaussianApp(int64_t n, bool colMajor) : n(n), colMajor(colMajor)
    {
        Rng rng(31);
        a0.resize(n * n);
        b0.resize(n);
        for (int64_t i = 0; i < n; i++) {
            for (int64_t j = 0; j < n; j++) {
                a0[i * n + j] =
                    (i == j ? n * 2.0 : 0.0) + rng.uniform(0, 1);
            }
            b0[i] = rng.uniform(0, 1);
        }
        buildFan1();
        buildFan2(colMajor);
    }

    std::string
    name() const override
    {
        return colMajor ? "Gaussian(C)" : "Gaussian(R)";
    }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;

        Runner runner(gpu, copts);
        std::vector<double> out = hostLoop(runner, fan2);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(n) * (n + 1) * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref, fan2);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, out, 1e-6);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // The Rodinia Fan2 kernel was "not written to coalesce memory
        // accesses" (Section VI-C): model it with the transposed-nest
        // program under the fixed expert 2D block, raw pointers.
        if (!fan2Manual)
            buildFan2Manual();
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping.levels = {{1, 8, SpanType::one()},
                                     {0, 32, SpanType::one()}};
        copts.rawPointers = true;
        Runner runner(gpu, copts);
        hostLoop(runner, fan2Manual);
        return runner.gpuMs;
    }

  private:
    void
    buildFan1()
    {
        ProgramBuilder b("fan1");
        f1A = b.inF64("a");
        f1N = b.paramI64("n");
        f1T = b.paramI64("t");
        f1M = b.outF64("mcol");
        Arr a = f1A;
        Ex np = f1N, t = f1T;
        Arr mcol = f1M;
        b.foreach(np - t - 1, [&](Body &fn, Ex i) {
            fn.store(mcol, t + 1 + i,
                     a((t + 1 + i) * np + t) / a(t * np + t));
        });
        fan1 = std::make_shared<Program>(b.build());
    }

    /** Fan2: the trailing update, with selectable traversal order. */
    std::shared_ptr<Program>
    makeFan2(bool transposed, const char *name)
    {
        ProgramBuilder b(name);
        Arr a = b.inOutF64("a");
        Arr bv = b.inOutF64("b");
        Arr mcol = b.inF64("mcol");
        Ex np = b.paramI64("n");
        Ex t = b.paramI64("t");
        f2Handles.push_back({a, bv, mcol, np, t});

        auto cell = [&](Body &fn, Ex i, Ex j) {
            Ex row = fn.let("row", t + 1 + i);
            Ex col = fn.let("col", t + j);
            fn.store(a, row * np + col,
                     a(row * np + col) - mcol(row) * a(t * np + col));
            fn.branch(Ex(j) == 0, [&](Body &then) {
                then.store(bv, row, bv(row) - mcol(row) * bv(t));
            });
        };

        if (!transposed) {
            b.foreach(np - t - 1, [&](Body &outer, Ex i) {
                outer.foreach(np - t, [&](Body &inner, Ex j) {
                    cell(inner, Ex(i), j);
                });
            });
        } else {
            b.foreach(np - t, [&](Body &outer, Ex j) {
                outer.foreach(np - t - 1, [&](Body &inner, Ex i) {
                    cell(inner, i, Ex(j));
                });
            });
        }
        return std::make_shared<Program>(b.build());
    }

    void
    buildFan2(bool transposed)
    {
        fan2 = makeFan2(transposed, transposed ? "fan2_c" : "fan2_r");
        fan2Idx = 0;
    }

    void
    buildFan2Manual()
    {
        fan2Manual = makeFan2(!colMajor ? true : false, "fan2_manual");
        fan2ManualIdx = static_cast<int>(f2Handles.size()) - 1;
    }

    struct Fan2Handles
    {
        Arr a, bv, mcol;
        Ex np, t;
    };

    std::vector<double>
    hostLoop(Runner &runner, const std::shared_ptr<Program> &update)
    {
        const Fan2Handles &h =
            f2Handles[update == fan2Manual ? fan2ManualIdx : fan2Idx];
        std::vector<double> a = a0;
        std::vector<double> bvec = b0;
        std::vector<double> mcol(n, 0.0);
        for (int64_t t = 0; t + 1 < n; t++) {
            {
                Bindings args(*fan1);
                args.scalar(f1N, static_cast<double>(n));
                args.scalar(f1T, static_cast<double>(t));
                args.array(f1A, a);
                args.array(f1M, mcol);
                runner.launch(*fan1, args);
            }
            {
                Bindings args(*update);
                args.scalar(h.np, static_cast<double>(n));
                args.scalar(h.t, static_cast<double>(t));
                args.array(h.a, a);
                args.array(h.bv, bvec);
                args.array(h.mcol, mcol);
                runner.launch(*update, args);
            }
        }
        // Solution vector is implied by back-substitution on the host;
        // the kernels' output of record is the eliminated system.
        std::vector<double> out = a;
        out.insert(out.end(), bvec.begin(), bvec.end());
        return out;
    }

    int64_t n;
    bool colMajor;
    std::vector<double> a0, b0;
    std::shared_ptr<Program> fan1, fan2, fan2Manual;
    std::vector<Fan2Handles> f2Handles;
    int fan2Idx = 0, fan2ManualIdx = 0;
    Arr f1A, f1M;
    Ex f1N, f1T;
};

} // namespace

std::unique_ptr<App>
makeGaussian(int64_t n, bool colMajor)
{
    return std::make_unique<GaussianApp>(n, colMajor);
}

} // namespace npp
