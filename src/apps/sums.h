/**
 * @file
 * The paper's running examples: sumRows / sumCols (Fig 1) and their
 * weighted variants (Fig 15), parameterized so the Fig 3 and Fig 16
 * benches can sweep shapes and optimization settings.
 */

#ifndef NPP_APPS_SUMS_H
#define NPP_APPS_SUMS_H

#include <memory>

#include "sim/gpu.h"

namespace npp {

/** One of the four sum kernels with its parameter handles. */
struct SumsProgram
{
    std::shared_ptr<Program> prog;
    Ex r, c;
    Arr m, v, out; //!< v only valid for weighted variants
    bool byCols = false;
    bool weighted = false;

    int64_t outputSize(int64_t R, int64_t C) const { return byCols ? C : R; }
};

/** Build sumRows/sumCols (weighted == Fig 15's zipWith+reduce form). */
SumsProgram buildSum(bool byCols, bool weighted);

/** Variable-size variant: per outer element a nested filter compacts the
 *  positive entries into a local (preallocated at the static upper bound
 *  = the inner size), then the kept prefix is reduced. Exercises the
 *  variable-size output pipeline (compaction finalize stage) in the
 *  Fig 16 allocation sweep. */
SumsProgram buildSumPositives(bool byCols);

/**
 * Run one sum kernel on R x C data (deterministic synthetic inputs).
 * The compiler sees the actual sizes. When `out` is non-null the result
 * is copied there for validation.
 */
SimReport runSum(const Gpu &gpu, const SumsProgram &sp, int64_t R,
                 int64_t C, CompileOptions copts = {},
                 std::vector<double> *out = nullptr);

/** Sequential reference output of the sum kernel on the same inputs. */
std::vector<double> referenceSum(const SumsProgram &sp, int64_t R,
                                 int64_t C);

} // namespace npp

#endif // NPP_APPS_SUMS_H
