/**
 * @file
 * QPSCD HogWild!: a lock-free stochastic coordinate-descent QP solver.
 * The outer pattern visits rows in a random (precomputed) permutation;
 * the inner patterns traverse one dense row sequentially — first a dot
 * product, then the coordinate update. Parallelizing only the outer
 * pattern makes every warp lane touch a different random row
 * (uncoalesced, worse than the CPU); the analysis maps the inner
 * pattern to dimension x instead (Section VI-E).
 */

#include "apps/realworld.h"
#include "support/rng.h"

namespace npp {

namespace {

class QpscdApp : public App
{
  public:
    QpscdApp(int64_t samples, int64_t dim, int epochs)
        : s(samples), d(dim), epochs(epochs)
    {
        Rng rng(19);
        a.resize(s * d);
        y.resize(s);
        perm.resize(s);
        for (auto &v : a)
            v = rng.uniform(-1, 1);
        for (auto &v : y)
            v = rng.uniform(-1, 1);
        for (int64_t i = 0; i < s; i++)
            perm[i] = static_cast<double>((i * 2654435761u) % s);
        build();
    }

    std::string name() const override { return "QPSCD HogWild"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {
            {sParam.ref()->varId, static_cast<double>(s)},
            {dParam.ref()->varId, static_cast<double>(d)}};

        Runner runner(gpu, copts);
        std::vector<double> x = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(s) * d * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, x, 1e-6);
        }
        return result;
    }

  private:
    void
    build()
    {
        ProgramBuilder b("qpscd_epoch");
        aArr = b.inF64("A");
        yArr = b.inF64("y");
        permArr = b.inI64("perm");
        sParam = b.paramI64("S");
        dParam = b.paramI64("D");
        xArr = b.inOutF64("x");
        Arr A = aArr, yv = yArr, p = permArr, x = xArr;
        Ex dp = dParam;

        b.foreach(sParam, [&](Body &fn, Ex i) {
            Ex row = fn.let("row", p(i));
            Ex dot = fn.reduce(dp, Op::Add, [&](Body &, Ex k) {
                return A(row * dp + k) * x(k);
            });
            Ex grad = fn.let("grad", (dot - yv(row)) * 0.001);
            fn.foreach(dp, [&](Body &upd, Ex k) {
                upd.store(x, k, x(k) - grad * A(row * dp + k));
            });
        });
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> x(d, 0.0);
        for (int e = 0; e < epochs; e++) {
            Bindings args(*prog);
            args.scalar(sParam, static_cast<double>(s));
            args.scalar(dParam, static_cast<double>(d));
            args.array(aArr, a);
            args.array(yArr, y);
            args.array(permArr, perm);
            args.array(xArr, x);
            runner.launch(*prog, args);
        }
        return x;
    }

    int64_t s, d;
    int epochs;
    std::vector<double> a, y, perm;
    std::shared_ptr<Program> prog;
    Arr aArr, yArr, permArr, xArr;
    Ex sParam, dParam;
};

} // namespace

std::unique_ptr<App>
makeQpscd(int64_t samples, int64_t dim, int epochs)
{
    return std::make_unique<QpscdApp>(samples, dim, epochs);
}

} // namespace npp
