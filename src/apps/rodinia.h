/**
 * @file
 * The Rodinia-derived benchmark applications of Section VI, rewritten in
 * the pattern language (Fig 12 / Fig 13). Each factory returns a
 * self-contained App with deterministic synthetic inputs. Applications
 * with both a row-major (R) and column-major (C) traversal order take a
 * `colMajor` flag (Fig 13 runs both).
 *
 * Hand-optimized comparators ("Manual" in Fig 12) follow the paper's
 * description of the Rodinia CUDA kernels: raw-pointer indexing, expert
 * block shapes — including the deliberately uncoalesced nest in Gaussian
 * Elimination, the top-level-only parallelization in BFS, and the
 * multi-iteration shared-memory fusion in Pathfinder and LUD (the two
 * cases the paper's compiler intentionally does not reproduce).
 */

#ifndef NPP_APPS_RODINIA_H
#define NPP_APPS_RODINIA_H

#include "apps/app.h"

namespace npp {

/** 1-D distance computation; baseline for generated-code quality. */
std::unique_ptr<App> makeNearestNeighbor(int64_t records = 1 << 20);

/** Iterated Fan1/Fan2 elimination steps on an n x n system. */
std::unique_ptr<App> makeGaussian(int64_t n = 192, bool colMajor = false);

/** Iterated 5-point heat stencil on an n x n grid. */
std::unique_ptr<App> makeHotspot(int64_t n = 256, int iterations = 4,
                                 bool colMajor = false);

/** Escape-time fractal with a sequential inner loop. */
std::unique_ptr<App> makeMandelbrot(int64_t height = 256,
                                    int64_t width = 1024,
                                    int maxIter = 24,
                                    bool colMajor = false);

/** Speckle-reducing anisotropic diffusion (two stencil kernels per
 *  iteration). */
std::unique_ptr<App> makeSrad(int64_t n = 224, int iterations = 2,
                              bool colMajor = false);

/** Dynamic-programming grid walk, one kernel per row. */
std::unique_ptr<App> makePathfinder(int64_t rows = 48,
                                    int64_t cols = 131072);

/** In-place LU decomposition (per-step column scale + trailing update). */
std::unique_ptr<App> makeLud(int64_t n = 224);

/** Level-synchronous breadth-first search on a random CSR graph. */
std::unique_ptr<App> makeBfs(int64_t nodes = 32768, int avgDegree = 24);

} // namespace npp

#endif // NPP_APPS_RODINIA_H
