/**
 * @file
 * PageRank (Fig 5): for each node, an inner map computes the incoming
 * neighbors' weight contributions and an inner reduce aggregates them —
 * the paper's canonical two-level nest with two sibling patterns at
 * level 1 and a dynamically sized inner domain.
 */

#include "apps/realworld.h"
#include "support/rng.h"

namespace npp {

namespace {

class PageRankApp : public App
{
  public:
    PageRankApp(int64_t nodes, int avgDegree, int iterations)
        : n(nodes), iterations(iterations)
    {
        Rng rng(47);
        rowStart.push_back(0);
        for (int64_t v = 0; v < n; v++) {
            const int64_t deg =
                1 + static_cast<int64_t>(rng.below(2 * avgDegree));
            for (int64_t e = 0; e < deg; e++)
                nbrs.push_back(static_cast<double>(rng.below(n)));
            rowStart.push_back(static_cast<double>(nbrs.size()));
        }
        degree.assign(n, 0.0);
        for (double nb : nbrs)
            degree[static_cast<int64_t>(nb)] += 1.0;
        for (auto &dg : degree)
            dg = std::max(dg, 1.0);
        build();
    }

    std::string name() const override { return "PageRank"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        // The production pipeline fuses Fig 5's nbrsWeights map into the
        // reduce — without it every node pays a device malloc for its
        // dynamically sized weight array.
        copts.fuseMapReduce = true;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};

        Runner runner(gpu, copts);
        std::vector<double> ranks = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(rowStart.size() + nbrs.size() + n) * 8,
            gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, ranks, 1e-9);
        }
        return result;
    }

  private:
    void
    build()
    {
        // Fig 5, line for line: nbrsWeights = n.nbrs map {...};
        // sumWeights = nbrsWeights reduce {...}; then the damped blend.
        ProgramBuilder b("pagerank_step");
        startArr = b.inI64("rowStart");
        nbrArr = b.inI64("nbrs");
        degArr = b.inF64("degree");
        prevArr = b.inF64("prev");
        nParam = b.paramI64("numNodes");
        dampParam = b.paramF64("damp");
        outArr = b.outF64("rank");
        Arr start = startArr, nb = nbrArr, deg = degArr, prev = prevArr;
        Ex np = nParam, damp = dampParam;

        b.map(np, outArr, [&](Body &fn, Ex v) {
            Ex begin = fn.let("begin", start(v));
            Ex cnt = fn.let("cnt", start(v + 1) - begin);
            Arr weights = fn.map(cnt, [&](Body &, Ex e) {
                return prev(nb(begin + e)) / deg(nb(begin + e));
            });
            Ex sum = fn.reduce(cnt, Op::Add,
                               [&](Body &, Ex e) { return weights(e); });
            return (1.0 - damp) / np + damp * sum;
        });
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> prev(n, 1.0 / static_cast<double>(n));
        std::vector<double> next(n, 0.0);
        for (int it = 0; it < iterations; it++) {
            Bindings args(*prog);
            args.scalar(nParam, static_cast<double>(n));
            args.scalar(dampParam, 0.85);
            args.array(startArr, rowStart);
            args.array(nbrArr, nbrs);
            args.array(degArr, degree);
            args.array(prevArr, prev);
            args.array(outArr, next);
            runner.launch(*prog, args);
            std::swap(prev, next);
        }
        return prev;
    }

    int64_t n;
    int iterations;
    std::vector<double> rowStart, nbrs, degree;
    std::shared_ptr<Program> prog;
    Arr startArr, nbrArr, degArr, prevArr, outArr;
    Ex nParam, dampParam;
};

} // namespace

std::unique_ptr<App>
makePageRank(int64_t nodes, int avgDegree, int iterations)
{
    return std::make_unique<PageRankApp>(nodes, avgDegree, iterations);
}

} // namespace npp
