/**
 * @file
 * Application harness: every evaluation workload (the Fig 1 examples,
 * the Rodinia-derived applications, and the real-world case studies) is
 * an App — it owns its synthetic inputs, builds its pattern programs,
 * runs end-to-end on the simulated GPU under a chosen mapping strategy,
 * and validates its outputs against the sequential reference.
 */

#ifndef NPP_APPS_APP_H
#define NPP_APPS_APP_H

#include <memory>
#include <unordered_map>
#include <string>

#include "sim/gpu.h"

namespace npp {

/** Result of one end-to-end application run. */
struct AppResult
{
    /** Accumulated GPU model time over every kernel launch (ms). */
    double gpuMs = 0.0;

    /** Host-to-device transfer time for the inputs (ms). */
    double transferMs = 0.0;

    /** Largest relative output error vs the sequential reference
     *  (only when run with validation). */
    double maxError = 0.0;

    /** Sequential work counts (feeds the CPU roofline baseline). */
    WorkCounts referenceWork;

    /** CPU baseline time for the same work (ms). */
    double cpuMs = 0.0;
};

/**
 * Base class for evaluation workloads.
 */
class App
{
  public:
    virtual ~App() = default;

    virtual std::string name() const = 0;

    /**
     * Run the full application (all kernels, all host-side iterations)
     * on the simulated GPU under the given strategy. When `validate` is
     * set, also run the sequential reference and fill maxError /
     * referenceWork / cpuMs.
     */
    virtual AppResult run(const Gpu &gpu, Strategy strategy,
                          bool validate = false) = 0;

    /** True if a hand-optimized comparator implementation exists. */
    virtual bool hasManual() const { return false; }

    /**
     * Run the hand-optimized (expert CUDA) comparator; returns its model
     * time in ms. Only valid when hasManual().
     */
    virtual double runManualMs(const Gpu &gpu);
};

/** Accumulate one more kernel launch into a result. */
void addLaunch(AppResult &result, const SimReport &report);

/**
 * Executes program launches either on the simulated GPU (accumulating
 * model time; compiled specs are cached per program so iterative
 * applications compile once and relaunch) or on the sequential reference
 * interpreter (accumulating work counts). Apps write their host-side
 * iteration logic once against this interface.
 */
class Runner
{
  public:
    /** GPU mode. */
    Runner(const Gpu &gpu, CompileOptions copts)
        : gpu_(&gpu), copts_(std::move(copts))
    {}

    /** Reference mode. */
    Runner() = default;

    bool onGpu() const { return gpu_ != nullptr; }

    /** Launch once; returns model ms (0 in reference mode). */
    double launch(const Program &prog, const Bindings &args);

    /** Accumulated totals. */
    double gpuMs = 0.0;
    WorkCounts work;

  private:
    struct Compiled
    {
        std::shared_ptr<CompileResult> result;
        /** Identifies how the spec was produced; combined with the
         *  binding fingerprint to key the process-wide EvalCache. */
        uint64_t specSeed = 0;
    };

    const Gpu *gpu_ = nullptr;
    CompileOptions copts_;
    std::unordered_map<const Program *, Compiled> cache_;
};

} // namespace npp

#endif // NPP_APPS_APP_H
