/**
 * @file
 * Pathfinder: dynamic programming over a grid — each row's cost is the
 * cell weight plus the minimum of the three parents in the previous row.
 * Expressed as a two-level nest (column tiles x tile elements) with one
 * kernel per row and host-side ping-pong, like the pattern-language
 * version in the paper.
 *
 * The hand-optimized Rodinia kernel fuses several rows per kernel with a
 * shared-memory tile (trading halo re-computation for fewer main-memory
 * round trips); the paper's compiler deliberately does not infer that
 * transformation, which is why Manual wins Fig 12 here. The manual
 * comparator is modeled natively with the fused kernel's analytic
 * traffic and a C++ functional implementation.
 */

#include "apps/rodinia.h"
#include "support/rng.h"
#include "support/stats.h"

namespace npp {

namespace {

constexpr int64_t kTile = 64;

class PathfinderApp : public App
{
  public:
    PathfinderApp(int64_t rows, int64_t cols) : rows(rows), cols(cols)
    {
        Rng rng(17);
        wall.resize(rows * cols);
        for (auto &w : wall)
            w = static_cast<double>(rng.below(10));
        build();
    }

    std::string name() const override { return "Pathfinder"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {{cParam.ref()->varId,
                              static_cast<double>(cols)}};

        Runner runner(gpu, copts);
        std::vector<double> out = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(rows) * cols * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, out);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // Fused expert kernel: F rows per launch, block-wide smem tile
        // with F-deep halos. Functional result computed natively; time
        // from the kernel's analytic work/traffic.
        const int64_t fuse = 8;
        const int64_t blockW = 256;
        const int64_t launches = ceilDiv(rows - 1, fuse);
        double total = 0.0;
        for (int64_t l = 0; l < launches; l++) {
            const int64_t stepRows =
                std::min<int64_t>(fuse, rows - 1 - l * fuse);
            KernelStats stats;
            stats.totalBlocks = ceilDiv(cols, blockW);
            stats.threadsPerBlock = blockW;
            stats.sharedMemPerBlock = (blockW + 2 * fuse) * 8 * 2;
            // Coalesced: wall rows for the fused steps + src in + dst out.
            const double bytes =
                static_cast<double>(cols) * 8.0 * (stepRows + 2);
            stats.transactions = bytes / gpu.config().transactionBytes;
            stats.usefulBytes = bytes;
            // Each element recomputed once per fused row (plus ~12%
            // halo duplication), raw pointers: ~6 ops per cell.
            stats.warpInstructions = static_cast<double>(cols) * stepRows *
                                     6.0 * 1.12 / 32.0;
            stats.smemAccesses =
                static_cast<double>(cols) * stepRows * 3.0 / 32.0;
            stats.syncs = static_cast<double>(stats.totalBlocks) * stepRows;
            total += computeTiming(stats, gpu.config()).totalMs;
        }
        return total;
    }

  private:
    void
    build()
    {
        ProgramBuilder b("pathfinder_row");
        wallArr = b.inF64("wall");
        srcArr = b.inF64("src");
        cParam = b.paramI64("cols");
        rowParam = b.paramI64("row");
        dstArr = b.outF64("dst");
        Arr w = wallArr, src = srcArr, dst = dstArr;
        Ex c = cParam, r = rowParam;

        // Two-level structure: tiles of columns, elements within a tile.
        b.foreach(c / kTile, [&](Body &outer, Ex tile) {
            outer.foreach(Ex(kTile), [&](Body &fn, Ex e) {
                Ex j = fn.let("j", Ex(tile) * kTile + e);
                Ex mid = fn.let("mid", src(j));
                Ex left = fn.let("left", sel(j > 0, src(max(j - 1, 0)), mid));
                Ex right = fn.let(
                    "right", sel(j < c - 1, src(min(j + 1, c - 1)), mid));
                fn.store(dst, j,
                         w(r * c + j) + min(mid, min(left, right)));
            });
        });
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> src(wall.begin(), wall.begin() + cols);
        std::vector<double> dst(cols, 0.0);
        for (int64_t r = 1; r < rows; r++) {
            Bindings args(*prog);
            args.scalar(cParam, static_cast<double>(cols));
            args.scalar(rowParam, static_cast<double>(r));
            args.array(wallArr, wall);
            args.array(srcArr, src);
            args.array(dstArr, dst);
            runner.launch(*prog, args);
            std::swap(src, dst);
        }
        return src;
    }

    int64_t rows, cols;
    std::vector<double> wall;
    std::shared_ptr<Program> prog;
    Arr wallArr, srcArr, dstArr;
    Ex cParam, rowParam;
};

} // namespace

std::unique_ptr<App>
makePathfinder(int64_t rows, int64_t cols)
{
    return std::make_unique<PathfinderApp>(rows, cols);
}

} // namespace npp
