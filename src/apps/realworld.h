/**
 * @file
 * The real-world applications of Section VI-E (Fig 14): QPSCD HogWild!,
 * the MSMBuilder trajectory-clustering kernel, and the Naive Bayes spam
 * classifier — plus PageRank (Fig 5), the paper's canonical nested-
 * pattern example, used by the examples and tests.
 */

#ifndef NPP_APPS_REALWORLD_H
#define NPP_APPS_REALWORLD_H

#include "apps/app.h"

namespace npp {

/** Lock-free stochastic coordinate descent on a dense QP: random rows
 *  outside, sequential row traversal inside. */
std::unique_ptr<App> makeQpscd(int64_t samples = 8192, int64_t dim = 256,
                               int epochs = 1);

/** Trajectory clustering: all-pairs distances between conformations and
 *  cluster centers over a feature dimension (three nested levels, each
 *  domain ~100 elements). */
std::unique_ptr<App> makeMsmBuilder(int64_t frames = 4096,
                                    int64_t clusters = 100,
                                    int64_t features = 64);

/** Naive Bayes spam training: per-document word totals and per-word
 *  class counts — two different access patterns over one matrix. */
std::unique_ptr<App> makeNaiveBayes(int64_t docs = 4096,
                                    int64_t words = 1024);

/** K-Means clustering (extension workload): nested assign kernel plus
 *  GroupBy-based cluster sums/counts. */
std::unique_ptr<App> makeKmeans(int64_t points = 8192,
                                int64_t clusters = 16,
                                int64_t features = 32,
                                int iterations = 3);

/** PageRank over a random CSR graph (Fig 5's nested map/reduce). */
std::unique_ptr<App> makePageRank(int64_t nodes = 16384,
                                  int avgDegree = 12,
                                  int iterations = 3);

} // namespace npp

#endif // NPP_APPS_REALWORLD_H
