/**
 * @file
 * K-Means clustering (extension workload): exercises the full pattern
 * vocabulary in one application — a nested assign kernel (points x
 * centers x features, with a sequential argmin over centers) and two
 * GroupBy kernels for the update step (per-cluster coordinate sums and
 * counts), with the centroid division on the host.
 */

#include "apps/realworld.h"
#include "support/rng.h"

namespace npp {

namespace {

class KmeansApp : public App
{
  public:
    KmeansApp(int64_t points, int64_t clusters, int64_t features,
              int iterations)
        : p(points), k(clusters), f(features), iterations(iterations)
    {
        Rng rng(67);
        x.resize(p * f);
        // Points drawn around k well-separated synthetic centers.
        for (int64_t i = 0; i < p; i++) {
            const int64_t c = rng.below(k);
            for (int64_t d = 0; d < f; d++) {
                x[i * f + d] =
                    static_cast<double>(c * 10 + d % 3) +
                    rng.gaussian() * 0.5;
            }
        }
        buildAssign();
        buildSums();
        buildCounts();
    }

    std::string name() const override { return "KMeans"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {
            {aP.ref()->varId, static_cast<double>(p)},
            {aK.ref()->varId, static_cast<double>(k)},
            {aF.ref()->varId, static_cast<double>(f)}};

        Runner runner(gpu, copts);
        std::vector<double> centers = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs =
            transferMs(static_cast<double>(p) * f * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, centers, 1e-9);
        }
        return result;
    }

  private:
    void
    buildAssign()
    {
        // For each point: sequential argmin over centers, each distance
        // an inner reduce over the features.
        ProgramBuilder b("kmeans_assign");
        Arr xs = b.inF64("points");
        Arr cs = b.inF64("centers");
        aP = b.paramI64("P");
        aK = b.paramI64("K");
        aF = b.paramI64("F");
        Arr out = b.outF64("assign");
        aX = xs;
        aC = cs;
        aOut = out;
        Ex kk = aK, ff = aF;

        b.map(aP, out, [&](Body &fn, Ex i) {
            Mut best = fn.mut("best", Ex(1e300));
            Mut bestK = fn.mut("bestK", Ex(0.0));
            fn.seqLoop(kk, [&](Body &trial, Ex c) {
                Ex d2 = trial.reduce(ff, Op::Add, [&](Body &inner, Ex d) {
                    Ex diff = inner.let(
                        "diff", xs(Ex(i) * ff + d) - cs(Ex(c) * ff + d));
                    return diff * diff;
                });
                trial.branch(d2 < best.ex(), [&](Body &better) {
                    better.assign(best, d2);
                    better.assign(bestK, Ex(c));
                });
            });
            return bestK.ex();
        });
        assign = std::make_shared<Program>(b.build());
    }

    void
    buildSums()
    {
        // Per-(cluster, coordinate) sums as one groupBy over P*F
        // elements keyed by assign[point]*F + coordinate.
        ProgramBuilder b("kmeans_sums");
        Arr xs = b.inF64("points");
        Arr asn = b.inF64("assign");
        sP = b.paramI64("P");
        sF = b.paramI64("F");
        Arr out = b.outF64("sums");
        sX = xs;
        sAssign = asn;
        sOut = out;
        Ex ff = sF;

        b.groupBy(sP * sF, Op::Add, out, [&](Body &fn, Ex i) {
            Ex point = fn.let("point", floor(Ex(i) / ff));
            Ex coord = fn.let("coord", Ex(i) % ff);
            return KeyedValue{asn(point) * ff + coord, xs(i)};
        });
        sums = std::make_shared<Program>(b.build());
    }

    void
    buildCounts()
    {
        ProgramBuilder b("kmeans_counts");
        Arr asn = b.inF64("assign");
        cP = b.paramI64("P");
        Arr out = b.outF64("counts");
        cAssign = asn;
        cOut = out;
        b.groupBy(cP, Op::Add, out, [&](Body &, Ex i) {
            return KeyedValue{asn(i), Ex(1.0)};
        });
        counts = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> centers(k * f, 0.0);
        // Deterministic init: first k points.
        for (int64_t c = 0; c < k; c++)
            for (int64_t d = 0; d < f; d++)
                centers[c * f + d] = x[c * f + d];

        std::vector<double> assignment(p, 0.0);
        std::vector<double> sumBuf(k * f, 0.0), countBuf(k, 0.0);
        for (int it = 0; it < iterations; it++) {
            {
                Bindings args(*assign);
                args.scalar(aP, static_cast<double>(p));
                args.scalar(aK, static_cast<double>(k));
                args.scalar(aF, static_cast<double>(f));
                args.array(aX, x);
                args.array(aC, centers);
                args.array(aOut, assignment);
                runner.launch(*assign, args);
            }
            {
                Bindings args(*sums);
                args.scalar(sP, static_cast<double>(p));
                args.scalar(sF, static_cast<double>(f));
                args.array(sX, x);
                args.array(sAssign, assignment);
                args.array(sOut, sumBuf);
                runner.launch(*sums, args);
            }
            {
                Bindings args(*counts);
                args.scalar(cP, static_cast<double>(p));
                args.array(cAssign, assignment);
                args.array(cOut, countBuf);
                runner.launch(*counts, args);
            }
            for (int64_t c = 0; c < k; c++) {
                if (countBuf[c] == 0.0)
                    continue;
                for (int64_t d = 0; d < f; d++)
                    centers[c * f + d] = sumBuf[c * f + d] / countBuf[c];
            }
        }
        return centers;
    }

    int64_t p, k, f;
    int iterations;
    std::vector<double> x;
    std::shared_ptr<Program> assign, sums, counts;
    Arr aX, aC, aOut, sX, sAssign, sOut, cAssign, cOut;
    Ex aP, aK, aF, sP, sF, cP;
};

} // namespace

std::unique_ptr<App>
makeKmeans(int64_t points, int64_t clusters, int64_t features,
           int iterations)
{
    return std::make_unique<KmeansApp>(points, clusters, features,
                                       iterations);
}

} // namespace npp
