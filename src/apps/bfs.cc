/**
 * @file
 * BFS: level-synchronous breadth-first search over a CSR graph. Each
 * level launches one two-level kernel — outer over nodes (guarded by the
 * frontier flag), inner over the node's neighbors (a dynamically sized
 * pattern, the load-imbalance case warp-based mapping was designed for).
 * The hand-written Rodinia kernel parallelizes only the node level (the
 * paper's 1D equivalent), which the analysis beats by also mapping the
 * neighbor level.
 */

#include "apps/rodinia.h"
#include "support/rng.h"

namespace npp {

namespace {

class BfsApp : public App
{
  public:
    BfsApp(int64_t nodes, int avgDegree) : n(nodes)
    {
        // Random graph with skewed degrees (half the average for most
        // nodes, a heavy tail for a few).
        Rng rng(7);
        rowStart.push_back(0);
        for (int64_t v = 0; v < n; v++) {
            int64_t deg = 1 + static_cast<int64_t>(rng.below(avgDegree));
            if (rng.below(32) == 0)
                deg *= 8; // hub
            for (int64_t e = 0; e < deg; e++)
                nbrs.push_back(static_cast<double>(rng.below(n)));
            rowStart.push_back(static_cast<double>(nbrs.size()));
        }
        build();
    }

    std::string name() const override { return "BFS"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};

        Runner runner(gpu, copts);
        std::vector<double> cost = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(rowStart.size() + nbrs.size()) * 8,
            gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxAbsDiff(expect, cost);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // The Rodinia kernel only exploits the top-level parallelism
        // (Section VI-C) — the 1D mapping with raw pointers.
        CompileOptions copts;
        copts.strategy = Strategy::OneD;
        copts.rawPointers = true;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};
        Runner runner(gpu, copts);
        hostLoop(runner);
        return runner.gpuMs;
    }

  private:
    void
    build()
    {
        ProgramBuilder b("bfs_level");
        startArr = b.inI64("rowStart");
        nbrArr = b.inI64("nbrs");
        frontierArr = b.inF64("frontier");
        nParam = b.paramI64("n");
        costArr = b.inOutF64("cost");
        visitedArr = b.inOutF64("visited");
        nextArr = b.inOutF64("next");
        Arr start = startArr, nb = nbrArr, frontier = frontierArr;
        Arr cost = costArr, visited = visitedArr, next = nextArr;

        b.foreach(nParam, [&](Body &fn, Ex v) {
            fn.branch(frontier(v) > 0.0, [&](Body &active) {
                Ex begin = active.let("begin", start(v));
                Ex deg = active.let("deg", start(v + 1) - begin);
                Ex myCost = active.let("myCost", cost(v));
                active.foreach(deg, [&](Body &edge, Ex e) {
                    Ex dst = edge.let("dst", nb(begin + e));
                    edge.branch(visited(dst) == 0.0, [&](Body &claim) {
                        claim.store(cost, dst, myCost + 1.0);
                        claim.store(visited, dst, Ex(1.0));
                        claim.store(next, dst, Ex(1.0));
                    });
                });
            });
        });
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> frontier(n, 0.0), next(n, 0.0);
        std::vector<double> visited(n, 0.0), cost(n, 0.0);
        frontier[0] = 1.0;
        visited[0] = 1.0;
        bool active = true;
        int guard = 0;
        while (active && guard++ < 64) {
            Bindings args(*prog);
            args.scalar(nParam, static_cast<double>(n));
            args.array(startArr, rowStart);
            args.array(nbrArr, nbrs);
            args.array(frontierArr, frontier);
            args.array(costArr, cost);
            args.array(visitedArr, visited);
            args.array(nextArr, next);
            runner.launch(*prog, args);

            active = false;
            for (int64_t v = 0; v < n; v++) {
                frontier[v] = next[v];
                next[v] = 0.0;
                active = active || frontier[v] > 0.0;
            }
        }
        return cost;
    }

    int64_t n;
    std::vector<double> rowStart, nbrs;
    std::shared_ptr<Program> prog;
    Arr startArr, nbrArr, frontierArr, costArr, visitedArr, nextArr;
    Ex nParam;
};

} // namespace

std::unique_ptr<App>
makeBfs(int64_t nodes, int avgDegree)
{
    return std::make_unique<BfsApp>(nodes, avgDegree);
}

} // namespace npp
