#include "apps/sums.h"

#include "support/rng.h"

namespace npp {

namespace {

/** Deterministic shared inputs, grown on demand. */
std::vector<double> &
matrixData(int64_t n)
{
    static std::vector<double> m;
    if (static_cast<int64_t>(m.size()) < n) {
        const size_t old = m.size();
        m.resize(n);
        Rng rng(0xfeedULL + old);
        for (size_t i = old; i < m.size(); i++)
            m[i] = rng.uniform(-1, 1);
    }
    return m;
}

std::vector<double> &
weightData(int64_t n)
{
    static std::vector<double> v;
    if (static_cast<int64_t>(v.size()) < n) {
        const size_t old = v.size();
        v.resize(n);
        Rng rng(0xbeefULL + old);
        for (size_t i = old; i < v.size(); i++)
            v[i] = rng.uniform(0, 2);
    }
    return v;
}

} // namespace

SumsProgram
buildSum(bool byCols, bool weighted)
{
    SumsProgram sp;
    sp.byCols = byCols;
    sp.weighted = weighted;

    std::string name = weighted
                           ? (byCols ? "sumWeightedCols" : "sumWeightedRows")
                           : (byCols ? "sumCols" : "sumRows");
    ProgramBuilder b(name);
    sp.m = b.inF64("m");
    if (weighted)
        sp.v = b.inF64("v");
    sp.r = b.paramI64("R");
    sp.c = b.paramI64("C");
    sp.out = b.outF64("out");

    Arr m = sp.m, v = sp.v;
    Ex r = sp.r, c = sp.c;

    const Ex outerSize = byCols ? c : r;
    const Ex innerSize = byCols ? r : c;
    // Row-major element address for (outer o, inner i) per orientation.
    auto elem = [&](Ex outer, Ex inner) {
        return byCols ? m(inner * c + outer) : m(outer * c + inner);
    };

    if (!weighted) {
        b.map(outerSize, sp.out, [&](Body &fn, Ex o) {
            return fn.reduce(innerSize, Op::Add, [&](Body &, Ex i) {
                return elem(o, i);
            });
        });
    } else {
        // Fig 15: the zipWith materializes a per-iteration temporary.
        b.map(outerSize, sp.out, [&](Body &fn, Ex o) {
            Arr temp = fn.zipWith(innerSize, [&](Body &, Ex i) {
                return elem(o, i) * v(i);
            });
            return fn.reduce(innerSize, Op::Add,
                             [&](Body &, Ex i) { return temp(i); });
        });
    }
    sp.prog = std::make_shared<Program>(b.build());
    return sp;
}

SumsProgram
buildSumPositives(bool byCols)
{
    SumsProgram sp;
    sp.byCols = byCols;

    ProgramBuilder b(byCols ? "sumPositiveCols" : "sumPositiveRows");
    sp.m = b.inF64("m");
    sp.r = b.paramI64("R");
    sp.c = b.paramI64("C");
    sp.out = b.outF64("out");

    Arr m = sp.m;
    Ex r = sp.r, c = sp.c;
    const Ex outerSize = byCols ? c : r;
    const Ex innerSize = byCols ? r : c;
    auto elem = [&](Ex outer, Ex inner) {
        return byCols ? m(inner * c + outer) : m(outer * c + inner);
    };

    b.map(outerSize, sp.out, [&](Body &fn, Ex o) {
        Filtered kept = fn.filter(innerSize, [&](Body &, Ex i) {
            return FilterItem{elem(o, i) > 0.0, elem(o, i)};
        });
        return fn.reduce(kept.count, Op::Add,
                         [&](Body &, Ex j) { return kept.items(j); });
    });
    sp.prog = std::make_shared<Program>(b.build());
    return sp;
}

SimReport
runSum(const Gpu &gpu, const SumsProgram &sp, int64_t R, int64_t C,
       CompileOptions copts, std::vector<double> *out)
{
    std::vector<double> result(sp.outputSize(R, C), 0.0);
    Bindings args(*sp.prog);
    args.scalar(sp.r, static_cast<double>(R));
    args.scalar(sp.c, static_cast<double>(C));
    args.array(sp.m, matrixData(R * C));
    if (sp.weighted)
        args.array(sp.v, weightData(std::max(R, C)));
    args.array(sp.out, result);

    copts.paramValues[sp.r.ref()->varId] = static_cast<double>(R);
    copts.paramValues[sp.c.ref()->varId] = static_cast<double>(C);
    SimReport report = gpu.compileAndRun(*sp.prog, args, copts);
    if (out)
        *out = std::move(result);
    return report;
}

std::vector<double>
referenceSum(const SumsProgram &sp, int64_t R, int64_t C)
{
    std::vector<double> result(sp.outputSize(R, C), 0.0);
    Bindings args(*sp.prog);
    args.scalar(sp.r, static_cast<double>(R));
    args.scalar(sp.c, static_cast<double>(C));
    args.array(sp.m, matrixData(R * C));
    if (sp.weighted)
        args.array(sp.v, weightData(std::max(R, C)));
    args.array(sp.out, result);
    ReferenceInterp().run(*sp.prog, args);
    return result;
}

} // namespace npp
