/**
 * @file
 * Mandelbrot: a two-level nest over pixels with a sequential escape-time
 * loop in the body. Compute bound; the 1D mapping underutilizes the
 * device whenever one image dimension is small (the skewed (50, 20K)
 * instance of Fig 17).
 */

#include "apps/rodinia.h"

namespace npp {

namespace {

class MandelbrotApp : public App
{
  public:
    MandelbrotApp(int64_t height, int64_t width, int maxIter,
                  bool colMajor)
        : h(height), w(width), maxIter(maxIter), colMajor(colMajor)
    {
        build();
    }

    std::string
    name() const override
    {
        return colMajor ? "Mandelbrot(C)" : "Mandelbrot(R)";
    }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {
            {hParam.ref()->varId, static_cast<double>(h)},
            {wParam.ref()->varId, static_cast<double>(w)}};

        std::vector<double> img(h * w, 0.0);
        Runner runner(gpu, copts);
        launchOnce(runner, img);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(0, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect(h * w, 0.0);
            launchOnce(ref, expect);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, img);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // Expert CUDA: 2D block (64, 4), raw pointers.
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping.levels = {{1, 4, SpanType::one()},
                                     {0, 64, SpanType::one()}};
        copts.rawPointers = true;
        copts.paramValues = {
            {hParam.ref()->varId, static_cast<double>(h)},
            {wParam.ref()->varId, static_cast<double>(w)}};
        std::vector<double> img(h * w, 0.0);
        Runner runner(gpu, copts);
        launchOnce(runner, img);
        return runner.gpuMs;
    }

  private:
    void
    build()
    {
        ProgramBuilder b(colMajor ? "mandelbrot_c" : "mandelbrot_r");
        hParam = b.paramI64("H");
        wParam = b.paramI64("W");
        outArr = b.outF64("img");
        Ex hp = hParam, wp = wParam;
        Arr img = outArr;
        const long long iters = maxIter;

        auto pixel = [&](Body &fn, Ex y, Ex x) {
            Ex cr = fn.let("cr", (x * 3.5) / wp - 2.5);
            Ex ci = fn.let("ci", (y * 2.0) / hp - 1.0);
            Mut zr = fn.mut("zr", Ex(0.0));
            Mut zi = fn.mut("zi", Ex(0.0));
            Mut steps = fn.mut("steps", Ex(0.0));
            fn.seqLoop(
                Ex(iters),
                [&](Body &body, Ex) {
                    Ex nzr = body.let(
                        "nzr", zr.ex() * zr.ex() - zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi", zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            fn.store(img, y * wp + x, steps.ex());
        };

        if (colMajor) {
            b.foreach(wp, [&](Body &outer, Ex x) {
                outer.foreach(hp, [&](Body &inner, Ex y) {
                    pixel(inner, y, Ex(x));
                });
            });
        } else {
            b.foreach(hp, [&](Body &outer, Ex y) {
                outer.foreach(wp, [&](Body &inner, Ex x) {
                    pixel(inner, Ex(y), x);
                });
            });
        }
        prog = std::make_shared<Program>(b.build());
    }

    void
    launchOnce(Runner &runner, std::vector<double> &img)
    {
        Bindings args(*prog);
        args.scalar(hParam, static_cast<double>(h));
        args.scalar(wParam, static_cast<double>(w));
        args.array(outArr, img);
        runner.launch(*prog, args);
    }

    int64_t h, w;
    int maxIter;
    bool colMajor;
    std::shared_ptr<Program> prog;
    Arr outArr;
    Ex hParam, wParam;
};

} // namespace

std::unique_ptr<App>
makeMandelbrot(int64_t height, int64_t width, int maxIter, bool colMajor)
{
    return std::make_unique<MandelbrotApp>(height, width, maxIter,
                                           colMajor);
}

} // namespace npp
