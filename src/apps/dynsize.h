/**
 * @file
 * Runtime-sized workloads: CSR sparse matrix-vector product and BFS
 * frontier expansion. Both have a launch-known outer domain (rows,
 * frontier vertices) and a data-dependent inner extent (row length,
 * vertex degree) read from a bound index array — the program shape the
 * consolidation mapping (analysis/consolidate.h) competes for. The CSR
 * generator controls the row-length distribution so benches and tests
 * can pit skewed inputs (where consolidation should win) against
 * uniform ones (where the static mappings should keep the ticket).
 */

#ifndef NPP_APPS_DYNSIZE_H
#define NPP_APPS_DYNSIZE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/binding.h"

namespace npp {

/** Row-length distribution of a synthetic CSR matrix. */
enum class RowDist {
    Uniform,   //!< every row near the average degree
    Skewed,    //!< a few very heavy rows, most rows short
    EmptyHeavy //!< majority of rows empty, the rest near average
};

const char *rowDistName(RowDist dist);

/** A CSR matrix with all index data stored as doubles (the IR's only
 *  scalar carrier); rowStart has rows+1 entries, cols/vals have nnz. */
struct CsrMatrix
{
    int64_t rows = 0;
    std::vector<double> rowStart;
    std::vector<double> cols;
    std::vector<double> vals;

    int64_t nnz() const { return static_cast<int64_t>(cols.size()); }
    int64_t rowLen(int64_t r) const
    {
        return static_cast<int64_t>(rowStart[r + 1] - rowStart[r]);
    }
};

/** Deterministic synthetic CSR matrix with `rows` rows, mean degree
 *  near `avgDeg`, and the given row-length distribution. Column indices
 *  are uniform over [0, rows). */
CsrMatrix makeCsr(int64_t rows, int64_t avgDeg, RowDist dist,
                  uint64_t seed);

/** y = A*x over a CSR matrix: root map over rows, nested reduce over
 *  the runtime-sized row. */
struct SpmvProgram
{
    std::shared_ptr<Program> prog;
    Arr startArr, colArr, valArr, xArr, outArr;
    Ex nParam;

    /** Bind one launch; storage must outlive the run. `y` is sized to
     *  the row count. */
    Bindings bind(CsrMatrix &m, std::vector<double> &x,
                  std::vector<double> &y) const;
};

SpmvProgram buildSpmv();

/** One BFS frontier-expansion step: root map over the frontier yields
 *  each vertex's degree (into `deg`), a nested foreach over the
 *  runtime-sized neighbor range marks `next[nbr] = 1`. The marks are
 *  idempotent constant stores, so outputs are order-independent. */
struct BfsFrontierProgram
{
    std::shared_ptr<Program> prog;
    Arr frontierArr, startArr, nbrArr, nextArr, degArr;
    Ex fParam;

    /** Bind one step over graph `g` with the given frontier; `next` is
     *  sized to the vertex count, `deg` to the frontier size. */
    Bindings bind(CsrMatrix &g, std::vector<double> &frontier,
                  std::vector<double> &next,
                  std::vector<double> &deg) const;
};

BfsFrontierProgram buildBfsFrontier();

/** Reference SpMV on the host (row-major accumulation order — the same
 *  order the reference interpreter and the consolidated queue use). */
std::vector<double> spmvHost(const CsrMatrix &m,
                             const std::vector<double> &x);

} // namespace npp

#endif // NPP_APPS_DYNSIZE_H
