/**
 * @file
 * SRAD (speckle-reducing anisotropic diffusion): each iteration runs two
 * two-level stencil kernels — one computing the per-pixel diffusion
 * coefficient from the image gradients, one applying the divergence
 * update. The input of each iteration is the previous iteration's
 * output.
 */

#include "apps/rodinia.h"
#include "support/rng.h"

namespace npp {

namespace {

class SradApp : public App
{
  public:
    SradApp(int64_t n, int iterations, bool colMajor)
        : n(n), iterations(iterations), colMajor(colMajor)
    {
        Rng rng(59);
        image0.resize(n * n);
        for (auto &v : image0)
            v = rng.uniform(1, 2);
        buildCoeff();
        buildUpdate();
    }

    std::string
    name() const override
    {
        return colMajor ? "Srad(C)" : "Srad(R)";
    }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {{nCoeff.ref()->varId,
                              static_cast<double>(n)}};

        Runner runner(gpu, copts);
        std::vector<double> out = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs =
            transferMs(static_cast<double>(n) * n * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, out);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping.levels = {{1, 8, SpanType::one()},
                                     {0, 32, SpanType::one()}};
        copts.rawPointers = true;
        copts.paramValues = {{nCoeff.ref()->varId,
                              static_cast<double>(n)}};
        Runner runner(gpu, copts);
        hostLoop(runner);
        return runner.gpuMs;
    }

  private:
    /** Clamped row-major neighbor address. */
    static Ex
    at(Arr a, Ex i, Ex j, Ex np)
    {
        return a(max(min(i, np - 1), 0) * np + max(min(j, np - 1), 0));
    }

    void
    buildCoeff()
    {
        ProgramBuilder b(colMajor ? "srad_coeff_c" : "srad_coeff_r");
        Arr img = b.inF64("img");
        nCoeff = b.paramI64("n");
        Arr cOut = b.outF64("c");
        Ex np = nCoeff;
        coeffImg = img;
        coeffOut = cOut;

        auto body = [&](Body &fn, Ex i, Ex j) {
            Ex jc = fn.let("jc", at(img, i, j, np));
            Ex dN = fn.let("dN", at(img, i - 1, j, np) - jc);
            Ex dS = fn.let("dS", at(img, i + 1, j, np) - jc);
            Ex dW = fn.let("dW", at(img, i, j - 1, np) - jc);
            Ex dE = fn.let("dE", at(img, i, j + 1, np) - jc);
            Ex g2 = fn.let("g2", (dN * dN + dS * dS + dW * dW + dE * dE) /
                                     (jc * jc));
            Ex l = fn.let("l", (dN + dS + dW + dE) / jc);
            Ex num = fn.let("num", 0.5 * g2 - 0.0625 * (l * l));
            Ex den = fn.let("den", 1.0 + 0.25 * l);
            Ex q = fn.let("q", num / (den * den));
            // q0^2 fixed at 0.05 for the synthetic instance.
            Ex cval = fn.let(
                "cval", 1.0 / (1.0 + (q - 0.05) / (0.05 * 1.05)));
            fn.store(cOut, i * np + j, max(min(cval, 1.0), 0.0));
        };
        emit2d(b, np, body);
        coeff = std::make_shared<Program>(b.build());
    }

    void
    buildUpdate()
    {
        ProgramBuilder b(colMajor ? "srad_update_c" : "srad_update_r");
        Arr img = b.inF64("img");
        Arr cIn = b.inF64("c");
        nUpdate = b.paramI64("n");
        Arr outA = b.outF64("out");
        Ex np = nUpdate;
        updImg = img;
        updCoeff = cIn;
        updOut = outA;

        auto body = [&](Body &fn, Ex i, Ex j) {
            Ex jc = fn.let("jc", at(img, i, j, np));
            Ex cc = fn.let("cc", at(cIn, i, j, np));
            Ex cS = fn.let("cS", at(cIn, i + 1, j, np));
            Ex cE = fn.let("cE", at(cIn, i, j + 1, np));
            Ex div = fn.let(
                "div", cS * (at(img, i + 1, j, np) - jc) +
                           cc * (at(img, i - 1, j, np) - jc) +
                           cE * (at(img, i, j + 1, np) - jc) +
                           cc * (at(img, i, j - 1, np) - jc));
            fn.store(outA, i * np + j, jc + 0.125 * div);
        };
        emit2d(b, np, body);
        update = std::make_shared<Program>(b.build());
    }

    void
    emit2d(ProgramBuilder &b, Ex np,
           const std::function<void(Body &, Ex, Ex)> &body)
    {
        if (colMajor) {
            b.foreach(np, [&](Body &outer, Ex j) {
                outer.foreach(np, [&](Body &inner, Ex i) {
                    body(inner, i, Ex(j));
                });
            });
        } else {
            b.foreach(np, [&](Body &outer, Ex i) {
                outer.foreach(np, [&](Body &inner, Ex j) {
                    body(inner, Ex(i), j);
                });
            });
        }
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> img = image0;
        std::vector<double> c(n * n, 0.0);
        std::vector<double> next(n * n, 0.0);
        for (int it = 0; it < iterations; it++) {
            {
                Bindings args(*coeff);
                args.scalar(nCoeff, static_cast<double>(n));
                args.array(coeffImg, img);
                args.array(coeffOut, c);
                runner.launch(*coeff, args);
            }
            {
                Bindings args(*update);
                args.scalar(nUpdate, static_cast<double>(n));
                args.array(updImg, img);
                args.array(updCoeff, c);
                args.array(updOut, next);
                runner.launch(*update, args);
            }
            std::swap(img, next);
        }
        return img;
    }

    int64_t n;
    int iterations;
    bool colMajor;
    std::vector<double> image0;
    std::shared_ptr<Program> coeff, update;
    Arr coeffImg, coeffOut, updImg, updCoeff, updOut;
    Ex nCoeff, nUpdate;
};

} // namespace

std::unique_ptr<App>
makeSrad(int64_t n, int iterations, bool colMajor)
{
    return std::make_unique<SradApp>(n, iterations, colMajor);
}

} // namespace npp
