#include "apps/app.h"

#include "sim/evalcache.h"
#include "support/logging.h"
#include "support/trace.h"

namespace npp {

double
App::runManualMs(const Gpu &)
{
    NPP_PANIC("{} has no manual implementation", name());
}

void
addLaunch(AppResult &result, const SimReport &report)
{
    result.gpuMs += report.totalMs;
}

double
Runner::launch(const Program &prog, const Bindings &args)
{
    NPP_TRACE_SCOPE("app.launch");
    NPP_TRACE_COUNT("app.launches", 1);
    if (!gpu_) {
        WorkCounts wc = ReferenceInterp().run(prog, args);
        work.computeOps += wc.computeOps;
        work.bytesRead += wc.bytesRead;
        work.bytesWritten += wc.bytesWritten;
        work.iterations += wc.iterations;
        return 0.0;
    }
    auto &compiled = cache_[&prog];
    if (!compiled.result) {
        compiled.result = std::make_shared<CompileResult>(
            compileProgram(prog, gpu_->config(), copts_));
        compiled.specSeed = EvalCache::combine(
            EvalCache::combine(EvalCache::hashProgram(prog),
                               EvalCache::hashCompileOptions(copts_)),
            EvalCache::hashDevice(gpu_->config()));
    }
    SimReport report = cachedRun(*gpu_, compiled.result->spec, args, {},
                                 compiled.specSeed, /*wantOutputs=*/true);
    gpuMs += report.totalMs;
    return report.totalMs;
}

} // namespace npp
