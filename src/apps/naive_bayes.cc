/**
 * @file
 * Naive Bayes spam training (Section VI-E): over one document-by-word
 * count matrix, compute (a) the word total of each document — stride-1
 * in the word (inner) index — and (b) the per-class count of each word —
 * stride-1 in the word (outer) index. A fixed mapping can only coalesce
 * one of the two; the analysis adapts per kernel. The input matrix
 * transfer is significant because the job is not iterative.
 */

#include "apps/realworld.h"
#include "support/rng.h"

namespace npp {

namespace {

class NaiveBayesApp : public App
{
  public:
    NaiveBayesApp(int64_t docs, int64_t words) : d(docs), w(words)
    {
        Rng rng(37);
        counts.resize(d * w);
        isSpam.resize(d);
        for (auto &v : counts)
            v = static_cast<double>(rng.below(4));
        for (auto &v : isSpam)
            v = rng.below(2) ? 1.0 : 0.0;
        buildDocTotals();
        buildWordClassCounts();
    }

    std::string name() const override { return "NaiveBayes"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {
            {dParam1.ref()->varId, static_cast<double>(d)},
            {wParam1.ref()->varId, static_cast<double>(w)}};

        Runner runner(gpu, copts);
        Outputs out = hostRun(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(d) * w * 8 + d * 8, gpu.config());
        if (validate) {
            Runner ref;
            Outputs expect = hostRun(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = std::max(
                maxRelDiff(expect.docTotals, out.docTotals),
                maxRelDiff(expect.spamPerWord, out.spamPerWord));
        }
        return result;
    }

  private:
    struct Outputs
    {
        std::vector<double> docTotals;
        std::vector<double> spamPerWord;
    };

    void
    buildDocTotals()
    {
        ProgramBuilder b("nb_doc_totals");
        Arr cnt = b.inF64("counts");
        dParam1 = b.paramI64("D");
        wParam1 = b.paramI64("W");
        Arr out = b.outF64("docTotals");
        dtCounts = cnt;
        dtOut = out;
        Ex wp = wParam1;
        b.map(dParam1, out, [&](Body &fn, Ex doc) {
            return fn.reduce(wp, Op::Add, [&](Body &, Ex word) {
                return cnt(doc * wp + word);
            });
        });
        docTotals = std::make_shared<Program>(b.build());
    }

    void
    buildWordClassCounts()
    {
        ProgramBuilder b("nb_word_class");
        Arr cnt = b.inF64("counts");
        Arr spam = b.inF64("isSpam");
        dParam2 = b.paramI64("D");
        wParam2 = b.paramI64("W");
        Arr out = b.outF64("spamPerWord");
        wcCounts = cnt;
        wcSpam = spam;
        wcOut = out;
        Ex dp = dParam2, wp = wParam2;
        b.map(wParam2, out, [&](Body &fn, Ex word) {
            return fn.reduce(dp, Op::Add, [&](Body &, Ex doc) {
                return cnt(Ex(doc) * wp + word) * spam(doc);
            });
        });
        wordClass = std::make_shared<Program>(b.build());
    }

    Outputs
    hostRun(Runner &runner)
    {
        Outputs out;
        out.docTotals.assign(d, 0.0);
        out.spamPerWord.assign(w, 0.0);
        {
            Bindings args(*docTotals);
            args.scalar(dParam1, static_cast<double>(d));
            args.scalar(wParam1, static_cast<double>(w));
            args.array(dtCounts, counts);
            args.array(dtOut, out.docTotals);
            runner.launch(*docTotals, args);
        }
        {
            Bindings args(*wordClass);
            args.scalar(dParam2, static_cast<double>(d));
            args.scalar(wParam2, static_cast<double>(w));
            args.array(wcCounts, counts);
            args.array(wcSpam, isSpam);
            args.array(wcOut, out.spamPerWord);
            runner.launch(*wordClass, args);
        }
        return out;
    }

    int64_t d, w;
    std::vector<double> counts, isSpam;
    std::shared_ptr<Program> docTotals, wordClass;
    Arr dtCounts, dtOut, wcCounts, wcSpam, wcOut;
    Ex dParam1, wParam1, dParam2, wParam2;
};

} // namespace

std::unique_ptr<App>
makeNaiveBayes(int64_t docs, int64_t words)
{
    return std::make_unique<NaiveBayesApp>(docs, words);
}

} // namespace npp
