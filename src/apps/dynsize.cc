#include "apps/dynsize.h"

#include <algorithm>

#include "support/rng.h"

namespace npp {

const char *
rowDistName(RowDist dist)
{
    switch (dist) {
      case RowDist::Uniform:
        return "uniform";
      case RowDist::Skewed:
        return "skewed";
      case RowDist::EmptyHeavy:
        return "empty-heavy";
    }
    return "?";
}

CsrMatrix
makeCsr(int64_t rows, int64_t avgDeg, RowDist dist, uint64_t seed)
{
    CsrMatrix m;
    m.rows = rows;
    m.rowStart.reserve(rows + 1);
    m.rowStart.push_back(0.0);
    Rng rng(seed);
    for (int64_t r = 0; r < rows; r++) {
        int64_t deg = 0;
        switch (dist) {
          case RowDist::Uniform:
            // Tight band around the average: the static mappings'
            // favorite shape.
            deg = std::max<int64_t>(
                1, avgDeg - 1 + static_cast<int64_t>(rng.below(3)));
            break;
          case RowDist::Skewed:
            // ~3% of rows carry ~32x the average degree; the rest stay
            // short. A warp of the static inner-sequential mapping
            // stalls on its heaviest row.
            if (rng.below(100) < 3) {
                deg = 32 * avgDeg +
                      static_cast<int64_t>(rng.below(32 * avgDeg + 1));
            } else {
                deg = static_cast<int64_t>(
                    rng.below(std::max<int64_t>(avgDeg / 2, 2)));
            }
            break;
          case RowDist::EmptyHeavy:
            // Most rows contribute nothing (a post-filter frontier);
            // occupancy of any per-row lane assignment craters.
            if (rng.below(100) < 70) {
                deg = 0;
            } else {
                deg = 1 + static_cast<int64_t>(rng.below(2 * avgDeg));
            }
            break;
        }
        for (int64_t e = 0; e < deg; e++) {
            m.cols.push_back(static_cast<double>(rng.below(rows)));
            m.vals.push_back(rng.uniform(-1.0, 1.0));
        }
        m.rowStart.push_back(static_cast<double>(m.cols.size()));
    }
    return m;
}

SpmvProgram
buildSpmv()
{
    SpmvProgram s;
    ProgramBuilder b("csr_spmv");
    s.startArr = b.inI64("rowStart");
    s.colArr = b.inI64("cols");
    s.valArr = b.inF64("vals");
    s.xArr = b.inF64("x");
    s.nParam = b.paramI64("numRows");
    s.outArr = b.outF64("y");
    Arr start = s.startArr, col = s.colArr, val = s.valArr, x = s.xArr;

    b.map(s.nParam, s.outArr, [&](Body &fn, Ex i) {
        Ex lo = fn.let("lo", start(i));
        Ex cnt = fn.let("cnt", start(i + 1) - lo);
        return fn.reduce(cnt, Op::Add, [&](Body &, Ex j) {
            return val(lo + j) * x(col(lo + j));
        });
    });
    s.prog = std::make_shared<Program>(b.build());
    return s;
}

Bindings
SpmvProgram::bind(CsrMatrix &m, std::vector<double> &x,
                  std::vector<double> &y) const
{
    Bindings args(*prog);
    args.scalar(nParam, static_cast<double>(m.rows));
    args.array(startArr, m.rowStart);
    args.array(colArr, m.cols);
    args.array(valArr, m.vals);
    args.array(xArr, x);
    args.array(outArr, y);
    return args;
}

BfsFrontierProgram
buildBfsFrontier()
{
    BfsFrontierProgram s;
    ProgramBuilder b("bfs_frontier");
    s.frontierArr = b.inI64("frontier");
    s.startArr = b.inI64("rowStart");
    s.nbrArr = b.inI64("nbrs");
    s.fParam = b.paramI64("frontierSize");
    s.nextArr = b.outF64("next");
    s.degArr = b.outF64("deg");
    Arr frontier = s.frontierArr, start = s.startArr, nb = s.nbrArr;
    Arr next = s.nextArr;

    b.map(s.fParam, s.degArr, [&](Body &fn, Ex i) {
        Ex v = fn.let("v", frontier(i));
        Ex lo = fn.let("lo", start(v));
        Ex cnt = fn.let("cnt", start(v + 1) - lo);
        fn.foreach(cnt, [&](Body &inner, Ex j) {
            inner.store(next, nb(lo + j), Ex(1.0));
        });
        return cnt;
    });
    s.prog = std::make_shared<Program>(b.build());
    return s;
}

Bindings
BfsFrontierProgram::bind(CsrMatrix &g, std::vector<double> &frontier,
                         std::vector<double> &next,
                         std::vector<double> &deg) const
{
    Bindings args(*prog);
    args.scalar(fParam, static_cast<double>(frontier.size()));
    args.array(frontierArr, frontier);
    args.array(startArr, g.rowStart);
    args.array(nbrArr, g.cols);
    args.array(nextArr, next);
    args.array(degArr, deg);
    return args;
}

std::vector<double>
spmvHost(const CsrMatrix &m, const std::vector<double> &x)
{
    std::vector<double> y(m.rows, 0.0);
    for (int64_t r = 0; r < m.rows; r++) {
        const int64_t lo = static_cast<int64_t>(m.rowStart[r]);
        const int64_t hi = static_cast<int64_t>(m.rowStart[r + 1]);
        double acc = 0.0;
        for (int64_t k = lo; k < hi; k++) {
            acc += m.vals[k] *
                   x[static_cast<size_t>(m.cols[k])];
        }
        y[r] = acc;
    }
    return y;
}

} // namespace npp
