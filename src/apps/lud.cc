/**
 * @file
 * LUD: in-place LU decomposition. Each step k scales the pivot column
 * (one-level kernel) and applies the rank-1 trailing update (two-level
 * kernel); the naive pattern version re-reads the trailing submatrix
 * every step. The hand-optimized Rodinia kernel is block-tiled with
 * shared memory, reusing each tile across a whole block step — modeled
 * natively (the paper's compiler deliberately does not infer the
 * blocked-with-work-duplication form, which is why Manual wins Fig 12).
 */

#include "apps/rodinia.h"
#include "support/rng.h"
#include "support/stats.h"

namespace npp {

namespace {

class LudApp : public App
{
  public:
    explicit LudApp(int64_t n) : n(n)
    {
        Rng rng(83);
        a0.resize(n * n);
        for (int64_t i = 0; i < n; i++) {
            for (int64_t j = 0; j < n; j++) {
                a0[i * n + j] =
                    (i == j ? 4.0 * n : 0.0) + rng.uniform(0, 1);
            }
        }
        buildScale();
        buildUpdate();
    }

    std::string name() const override { return "LUD"; }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;

        Runner runner(gpu, copts);
        std::vector<double> out = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs =
            transferMs(static_cast<double>(n) * n * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, out, 1e-6);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // Blocked expert LUD with tile size B: per block step, the
        // diagonal/perimeter/internal kernels stream each trailing tile
        // through shared memory once instead of once per k.
        const int64_t tile = 16;
        const int64_t steps = ceilDiv(n, tile);
        double total = 0.0;
        for (int64_t s = 0; s < steps; s++) {
            const int64_t rem = n - s * tile;
            KernelStats stats;
            stats.totalBlocks =
                std::max<int64_t>(1, (rem / tile) * (rem / tile));
            stats.threadsPerBlock = tile * tile;
            stats.sharedMemPerBlock = 3 * tile * tile * 8;
            // Each trailing element read+written once per block step,
            // plus the perimeter tiles.
            const double bytes = static_cast<double>(rem) * rem * 8.0 * 2 +
                                 2.0 * rem * tile * 8.0;
            stats.transactions = bytes / gpu.config().transactionBytes;
            stats.usefulBytes = bytes;
            // tile multiply-accumulate per element per block step.
            stats.warpInstructions =
                static_cast<double>(rem) * rem * tile * 2.0 / 32.0;
            stats.smemAccesses =
                static_cast<double>(rem) * rem * tile * 2.0 / 32.0;
            stats.syncs = static_cast<double>(stats.totalBlocks) * tile;
            // Three launches per block step (diagonal, perimeter,
            // internal).
            total += computeTiming(stats, gpu.config()).totalMs +
                     2.0 * gpu.config().kernelLaunchOverheadUs * 1e-3;
        }
        return total;
    }

  private:
    void
    buildScale()
    {
        ProgramBuilder b("lud_scale");
        Arr a = b.inOutF64("a");
        sN = b.paramI64("n");
        sK = b.paramI64("k");
        sA = a;
        Ex np = sN, k = sK;
        b.foreach(np - k - 1, [&](Body &fn, Ex i) {
            Ex row = fn.let("row", k + 1 + i);
            fn.store(a, row * np + k, a(row * np + k) / a(k * np + k));
        });
        scale = std::make_shared<Program>(b.build());
    }

    void
    buildUpdate()
    {
        ProgramBuilder b("lud_update");
        Arr a = b.inOutF64("a");
        uN = b.paramI64("n");
        uK = b.paramI64("k");
        uA = a;
        Ex np = uN, k = uK;
        b.foreach(np - k - 1, [&](Body &outer, Ex i) {
            outer.foreach(np - k - 1, [&](Body &fn, Ex j) {
                Ex row = fn.let("row", k + 1 + i);
                Ex col = fn.let("col", k + 1 + Ex(j));
                fn.store(a, row * np + col,
                         a(row * np + col) -
                             a(row * np + k) * a(k * np + col));
            });
        });
        update = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> a = a0;
        for (int64_t k = 0; k + 1 < n; k++) {
            {
                Bindings args(*scale);
                args.scalar(sN, static_cast<double>(n));
                args.scalar(sK, static_cast<double>(k));
                args.array(sA, a);
                runner.launch(*scale, args);
            }
            {
                Bindings args(*update);
                args.scalar(uN, static_cast<double>(n));
                args.scalar(uK, static_cast<double>(k));
                args.array(uA, a);
                runner.launch(*update, args);
            }
        }
        return a;
    }

    int64_t n;
    std::vector<double> a0;
    std::shared_ptr<Program> scale, update;
    Arr sA, uA;
    Ex sN, sK, uN, uK;
};

} // namespace

std::unique_ptr<App>
makeLud(int64_t n)
{
    return std::make_unique<LudApp>(n);
}

} // namespace npp
