/**
 * @file
 * Hotspot: iterated 5-point heat-diffusion stencil over a 2-D grid of
 * temperatures with a per-cell power term. Two levels of parallelism;
 * the input of each iteration is the previous iteration's output
 * (ping-pong buffers on the host side).
 */

#include "apps/rodinia.h"
#include "support/rng.h"

namespace npp {

namespace {

class HotspotApp : public App
{
  public:
    HotspotApp(int64_t n, int iterations, bool colMajor)
        : n(n), iterations(iterations), colMajor(colMajor)
    {
        Rng rng(73);
        temp0.resize(n * n);
        power.resize(n * n);
        for (auto &t : temp0)
            t = rng.uniform(320, 340);
        for (auto &p : power)
            p = rng.uniform(0, 1e-3);
        build();
    }

    std::string
    name() const override
    {
        return colMajor ? "Hotspot(C)" : "Hotspot(R)";
    }

    AppResult
    run(const Gpu &gpu, Strategy strategy, bool validate) override
    {
        AppResult result;
        CompileOptions copts;
        copts.strategy = strategy;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};

        Runner runner(gpu, copts);
        std::vector<double> out = hostLoop(runner);
        result.gpuMs = runner.gpuMs;
        result.transferMs = transferMs(
            static_cast<double>(n) * n * 2 * 8, gpu.config());
        if (validate) {
            Runner ref;
            std::vector<double> expect = hostLoop(ref);
            result.referenceWork = ref.work;
            result.cpuMs = cpuTimeMs(ref.work.computeOps,
                                     ref.work.bytesRead +
                                         ref.work.bytesWritten);
            result.maxError = maxRelDiff(expect, out);
        }
        return result;
    }

    bool hasManual() const override { return true; }

    double
    runManualMs(const Gpu &gpu) override
    {
        // The Rodinia kernel uses a 16x16 2D block, raw pointers. (Its
        // pyramidal multi-iteration fusion is small-scale; the dominant
        // behavior is the coalesced 2D stencil.)
        CompileOptions copts;
        copts.strategy = Strategy::Fixed;
        copts.fixedMapping.levels = {{1, 8, SpanType::one()},
                                     {0, 32, SpanType::one()}};
        copts.rawPointers = true;
        copts.paramValues = {{nParam.ref()->varId,
                              static_cast<double>(n)}};
        Runner runner(gpu, copts);
        hostLoop(runner);
        return runner.gpuMs;
    }

  private:
    void
    build()
    {
        ProgramBuilder b(colMajor ? "hotspot_c" : "hotspot_r");
        tIn = b.inF64("tin");
        pArr = b.inF64("power");
        nParam = b.paramI64("n");
        tOut = b.outF64("tout");
        Ex np = nParam;
        Arr tin = tIn, p = pArr, tout = tOut;

        auto cell = [&](Body &fn, Ex i, Ex j) {
            Ex c = fn.let("c", tin(i * np + j));
            Ex up = fn.let("up", sel(i > 0, tin(max(i - 1, 0) * np + j), c));
            Ex dn = fn.let("dn",
                           sel(i < np - 1, tin(min(i + 1, np - 1) * np + j),
                               c));
            Ex lf = fn.let("lf", sel(j > 0, tin(i * np + max(j - 1, 0)), c));
            Ex rt = fn.let("rt",
                           sel(j < np - 1, tin(i * np + min(j + 1, np - 1)),
                               c));
            Ex next = fn.let(
                "next", c + 0.2 * (up + dn + lf + rt - 4.0 * c) +
                            100.0 * p(i * np + j));
            fn.store(tout, i * np + j, next);
        };

        if (colMajor) {
            b.foreach(np, [&](Body &outer, Ex j) {
                outer.foreach(np, [&](Body &inner, Ex i) {
                    cell(inner, i, Ex(j));
                });
            });
        } else {
            b.foreach(np, [&](Body &outer, Ex i) {
                outer.foreach(np, [&](Body &inner, Ex j) {
                    cell(inner, Ex(i), j);
                });
            });
        }
        prog = std::make_shared<Program>(b.build());
    }

    std::vector<double>
    hostLoop(Runner &runner)
    {
        std::vector<double> a = temp0;
        std::vector<double> c(n * n, 0.0);
        for (int it = 0; it < iterations; it++) {
            Bindings args(*prog);
            args.scalar(nParam, static_cast<double>(n));
            args.array(tIn, a);
            args.array(pArr, power);
            args.array(tOut, c);
            runner.launch(*prog, args);
            std::swap(a, c);
        }
        return a;
    }

    int64_t n;
    int iterations;
    bool colMajor;
    std::vector<double> temp0, power;
    std::shared_ptr<Program> prog;
    Arr tIn, pArr, tOut;
    Ex nParam;
};

} // namespace

std::unique_ptr<App>
makeHotspot(int64_t n, int iterations, bool colMajor)
{
    return std::make_unique<HotspotApp>(n, iterations, colMajor);
}

} // namespace npp
