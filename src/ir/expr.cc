#include "ir/expr.h"

#include <cmath>
#include <limits>

#include "support/logging.h"

namespace npp {

namespace {

ExprRef
make(Expr e)
{
    return std::make_shared<const Expr>(std::move(e));
}

} // namespace

bool
isUnaryOp(Op op)
{
    switch (op) {
      case Op::Neg:
      case Op::Not:
      case Op::Exp:
      case Op::Log:
      case Op::Sqrt:
      case Op::Abs:
      case Op::Floor:
        return true;
      default:
        return false;
    }
}

bool
isCombinerOp(Op op)
{
    return op == Op::Add || op == Op::Mul || op == Op::Min || op == Op::Max ||
           op == Op::And || op == Op::Or;
}

double
combinerIdentity(Op op)
{
    switch (op) {
      case Op::Add:
        return 0.0;
      case Op::Mul:
        return 1.0;
      case Op::Min:
        return std::numeric_limits<double>::infinity();
      case Op::Max:
        return -std::numeric_limits<double>::infinity();
      case Op::And:
        return 1.0;
      case Op::Or:
        return 0.0;
      default:
        NPP_PANIC("op {} is not a combiner", opName(op));
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Mul: return "*";
      case Op::Div: return "/";
      case Op::Mod: return "%";
      case Op::Min: return "min";
      case Op::Max: return "max";
      case Op::Pow: return "pow";
      case Op::Lt: return "<";
      case Op::Le: return "<=";
      case Op::Gt: return ">";
      case Op::Ge: return ">=";
      case Op::Eq: return "==";
      case Op::Ne: return "!=";
      case Op::And: return "&&";
      case Op::Or: return "||";
      case Op::Neg: return "neg";
      case Op::Not: return "!";
      case Op::Exp: return "exp";
      case Op::Log: return "log";
      case Op::Sqrt: return "sqrt";
      case Op::Abs: return "abs";
      case Op::Floor: return "floor";
    }
    return "?";
}

ExprRef
lit(double v)
{
    Expr e;
    e.kind = ExprKind::Lit;
    e.lit = v;
    e.type = ScalarKind::F64;
    return make(std::move(e));
}

ExprRef
litI(long long v)
{
    Expr e;
    e.kind = ExprKind::Lit;
    e.lit = static_cast<double>(v);
    e.type = ScalarKind::I64;
    return make(std::move(e));
}

ExprRef
litB(bool v)
{
    Expr e;
    e.kind = ExprKind::Lit;
    e.lit = v ? 1.0 : 0.0;
    e.type = ScalarKind::Bool;
    return make(std::move(e));
}

ExprRef
varRef(int varId, ScalarKind kind)
{
    NPP_ASSERT(varId >= 0, "varRef with unregistered variable");
    Expr e;
    e.kind = ExprKind::Var;
    e.varId = varId;
    e.type = kind;
    return make(std::move(e));
}

ExprRef
binary(Op op, ExprRef a, ExprRef b)
{
    NPP_ASSERT(a && b, "binary op {} with null operand", opName(op));
    NPP_ASSERT(!isUnaryOp(op), "unary op {} used as binary", opName(op));
    Expr e;
    e.kind = ExprKind::Binary;
    e.op = op;
    e.type = a->type;
    e.a = std::move(a);
    e.b = std::move(b);
    return make(std::move(e));
}

ExprRef
unary(Op op, ExprRef a)
{
    NPP_ASSERT(a, "unary op {} with null operand", opName(op));
    NPP_ASSERT(isUnaryOp(op), "binary op {} used as unary", opName(op));
    Expr e;
    e.kind = ExprKind::Unary;
    e.op = op;
    e.type = a->type;
    e.a = std::move(a);
    return make(std::move(e));
}

ExprRef
select(ExprRef cond, ExprRef ifTrue, ExprRef ifFalse)
{
    NPP_ASSERT(cond && ifTrue && ifFalse, "select with null operand");
    Expr e;
    e.kind = ExprKind::Select;
    e.type = ifTrue->type;
    e.a = std::move(cond);
    e.b = std::move(ifTrue);
    e.c = std::move(ifFalse);
    return make(std::move(e));
}

ExprRef
read(int arrayVarId, ExprRef index, ScalarKind kind)
{
    NPP_ASSERT(index, "read with null index");
    NPP_ASSERT(arrayVarId >= 0, "read of unregistered array");
    Expr e;
    e.kind = ExprKind::Read;
    e.varId = arrayVarId;
    e.a = std::move(index);
    e.type = kind;
    return make(std::move(e));
}

Ex operator+(Ex a, Ex b) { return Ex(binary(Op::Add, a.ref(), b.ref())); }
Ex operator-(Ex a, Ex b) { return Ex(binary(Op::Sub, a.ref(), b.ref())); }
Ex operator*(Ex a, Ex b) { return Ex(binary(Op::Mul, a.ref(), b.ref())); }
Ex operator/(Ex a, Ex b) { return Ex(binary(Op::Div, a.ref(), b.ref())); }
Ex operator%(Ex a, Ex b) { return Ex(binary(Op::Mod, a.ref(), b.ref())); }
Ex operator<(Ex a, Ex b) { return Ex(binary(Op::Lt, a.ref(), b.ref())); }
Ex operator<=(Ex a, Ex b) { return Ex(binary(Op::Le, a.ref(), b.ref())); }
Ex operator>(Ex a, Ex b) { return Ex(binary(Op::Gt, a.ref(), b.ref())); }
Ex operator>=(Ex a, Ex b) { return Ex(binary(Op::Ge, a.ref(), b.ref())); }
Ex operator==(Ex a, Ex b) { return Ex(binary(Op::Eq, a.ref(), b.ref())); }
Ex operator!=(Ex a, Ex b) { return Ex(binary(Op::Ne, a.ref(), b.ref())); }
Ex operator&&(Ex a, Ex b) { return Ex(binary(Op::And, a.ref(), b.ref())); }
Ex operator||(Ex a, Ex b) { return Ex(binary(Op::Or, a.ref(), b.ref())); }
Ex operator-(Ex a) { return Ex(unary(Op::Neg, a.ref())); }
Ex operator!(Ex a) { return Ex(unary(Op::Not, a.ref())); }

Ex min(Ex a, Ex b) { return Ex(binary(Op::Min, a.ref(), b.ref())); }
Ex max(Ex a, Ex b) { return Ex(binary(Op::Max, a.ref(), b.ref())); }
Ex exp(Ex a) { return Ex(unary(Op::Exp, a.ref())); }
Ex log(Ex a) { return Ex(unary(Op::Log, a.ref())); }
Ex sqrt(Ex a) { return Ex(unary(Op::Sqrt, a.ref())); }
Ex abs(Ex a) { return Ex(unary(Op::Abs, a.ref())); }
Ex floor(Ex a) { return Ex(unary(Op::Floor, a.ref())); }
Ex pow(Ex a, Ex b) { return Ex(binary(Op::Pow, a.ref(), b.ref())); }
Ex sel(Ex cond, Ex ifTrue, Ex ifFalse)
{
    return Ex(select(cond.ref(), ifTrue.ref(), ifFalse.ref()));
}

} // namespace npp
