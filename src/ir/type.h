/**
 * @file
 * Scalar element types for the parallel-pattern IR. Evaluation uses double
 * as the universal carrier (exact for integers up to 2^53, which covers all
 * index arithmetic in the workloads); the declared kind is kept for CUDA
 * code generation and for diagnostics.
 */

#ifndef NPP_IR_TYPE_H
#define NPP_IR_TYPE_H

#include <string>

namespace npp {

/** Scalar element kinds supported by the IR. */
enum class ScalarKind {
    F64, //!< double precision float
    I64, //!< 64-bit signed integer
    Bool //!< boolean (stored as 0.0 / 1.0)
};

/** CUDA type spelling for a scalar kind. */
std::string cudaTypeName(ScalarKind kind);

/** Human-readable name for a scalar kind. */
std::string scalarKindName(ScalarKind kind);

/** Size in bytes of one element of the given kind in device memory.
 *  Inline: the evaluator calls it on every probed array access. */
inline int
scalarBytes(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::F64:
      case ScalarKind::I64:
        return 8;
      case ScalarKind::Bool:
        return 1;
    }
    return 8;
}

} // namespace npp

#endif // NPP_IR_TYPE_H
