#include "ir/program.h"

#include <algorithm>

#include "ir/traverse.h"
#include "support/logging.h"

namespace npp {

int
Program::addVar(VarInfo info)
{
    info.id = static_cast<int>(vars_.size());
    vars_.push_back(std::move(info));
    return vars_.back().id;
}

const VarInfo &
Program::var(int id) const
{
    NPP_ASSERT(id >= 0 && id < numVars(), "var id {} out of range", id);
    return vars_[id];
}

VarInfo &
Program::var(int id)
{
    NPP_ASSERT(id >= 0 && id < numVars(), "var id {} out of range", id);
    return vars_[id];
}

const Pattern &
Program::root() const
{
    NPP_ASSERT(root_ != nullptr, "program {} has no root pattern", name_);
    return *root_;
}

Pattern &
Program::root()
{
    NPP_ASSERT(root_ != nullptr, "program {} has no root pattern", name_);
    return *root_;
}

int
Program::numLevels() const
{
    return root().depth();
}

namespace {

void
validateStmts(const Program &prog, const std::vector<StmtPtr> &stmts,
              bool atRoot);

void
validatePattern(const Program &prog, const Pattern &p, bool atRoot)
{
    if (!p.size)
        NPP_FATAL("{}: pattern {} has no size", prog.name(),
                  patternKindName(p.kind));
    if (p.indexVar < 0 || p.indexVar >= prog.numVars())
        NPP_FATAL("{}: pattern has unregistered index var", prog.name());
    if (prog.var(p.indexVar).role != VarRole::Index)
        NPP_FATAL("{}: pattern index var {} has wrong role", prog.name(),
                  prog.var(p.indexVar).name);

    // A runtime-sized domain may read bound input data (CSR row extents,
    // frontier degrees), but never an output array: the extent would
    // then depend on the launch's own stores, and neither the mapping
    // analysis nor the bin-build prologue could lay the domain out
    // before the kernel runs.
    walkExpr(p.size, [&](const Expr &e) {
        if (e.kind == ExprKind::Read && e.varId >= 0 &&
            prog.var(e.varId).role == VarRole::ArrayParam &&
            prog.var(e.varId).isOutput) {
            NPP_FATAL("{}: pattern size reads output array {} — a "
                      "domain extent must be launch- or "
                      "ancestor-determined, not a result of the launch",
                      prog.name(), prog.var(e.varId).name);
        }
    });

    switch (p.kind) {
      case PatternKind::Map:
      case PatternKind::ZipWith:
        if (!p.yield)
            NPP_FATAL("{}: map/zipWith needs a yield", prog.name());
        break;
      case PatternKind::Foreach:
        if (p.yield)
            NPP_FATAL("{}: foreach must not yield", prog.name());
        break;
      case PatternKind::Filter:
        if (!p.yield || !p.filterPred)
            NPP_FATAL("{}: filter needs yield and predicate", prog.name());
        break;
      case PatternKind::Reduce:
        if (!p.yield)
            NPP_FATAL("{}: reduce needs a yield", prog.name());
        if (!isCombinerOp(p.combiner))
            NPP_FATAL("{}: reduce combiner {} is not associative",
                      prog.name(), opName(p.combiner));
        break;
      case PatternKind::GroupBy:
        if (!p.yield || !p.key)
            NPP_FATAL("{}: groupBy needs yield and key", prog.name());
        if (!isCombinerOp(p.combiner))
            NPP_FATAL("{}: groupBy combiner {} is not associative",
                      prog.name(), opName(p.combiner));
        if (!atRoot && !p.keyDomain)
            NPP_FATAL("{}: nested groupBy needs a key-domain size "
                      "(the output array local's length)",
                      prog.name());
        break;
    }
    validateStmts(prog, p.body, false);
}

void
validateStmts(const Program &prog, const std::vector<StmtPtr> &stmts,
              bool atRoot)
{
    for (const auto &s : stmts) {
        switch (s->kind) {
          case StmtKind::Let:
          case StmtKind::Assign:
            if (!s->value || s->var < 0)
                NPP_FATAL("{}: malformed let/assign", prog.name());
            break;
          case StmtKind::Store:
            if (!s->value || !s->index || s->array < 0)
                NPP_FATAL("{}: malformed store", prog.name());
            if (prog.var(s->array).role != VarRole::ArrayParam &&
                prog.var(s->array).role != VarRole::ArrayLocal) {
                NPP_FATAL("{}: store target {} is not an array",
                          prog.name(), prog.var(s->array).name);
            }
            break;
          case StmtKind::If:
            if (!s->cond)
                NPP_FATAL("{}: if without condition", prog.name());
            validateStmts(prog, s->body, atRoot);
            validateStmts(prog, s->elseBody, atRoot);
            break;
          case StmtKind::SeqLoop:
            if (!s->trip || s->var < 0)
                NPP_FATAL("{}: malformed seq loop", prog.name());
            validateStmts(prog, s->body, false);
            break;
          case StmtKind::Nested:
            if (!s->pattern)
                NPP_FATAL("{}: nested stmt without pattern", prog.name());
            if (s->pattern->kind == PatternKind::Filter) {
                if (s->var < 0 ||
                    prog.var(s->var).role != VarRole::ArrayLocal) {
                    NPP_FATAL("{}: nested filter needs a result array "
                              "local",
                              prog.name());
                }
                if (s->countVar < 0 || s->countVar >= prog.numVars() ||
                    prog.var(s->countVar).role != VarRole::ScalarLocal) {
                    NPP_FATAL("{}: nested filter needs a kept-count "
                              "scalar local",
                              prog.name());
                }
            }
            validatePattern(prog, *s->pattern, false);
            break;
        }
    }
}

/**
 * Assign stable trace-site ids to every Pattern, Stmt, and Read expression
 * that does not have one yet. Ids are pre-order positions of the program's
 * structural walk, so rebuilding an identical program yields identical ids
 * — the simulator's access-grouping keys must not depend on node addresses
 * (which vary run to run and made simulated metrics nondeterministic).
 *
 * Assignment is write-once: nodes that already carry an id keep it. This
 * matters for rewritten programs (opt/fusion.cc) which share immutable
 * Expr subtrees with their source — the source's ids stay untouched (so
 * concurrent compiles of the source only ever *read* them) and only the
 * rewrite's fresh, thread-private nodes are numbered, continuing after the
 * largest id already present in the tree.
 */
void
assignTraceSites(const Pattern &root)
{
    int maxSite = -1;
    Walker scan;
    scan.onPattern = [&](const Pattern &p, const WalkCtx &) {
        maxSite = std::max(maxSite, p.site);
    };
    scan.onStmt = [&](const Stmt &s, const WalkCtx &) {
        maxSite = std::max(maxSite, s.site);
    };
    scan.onExpr = [&](const Expr &e, const WalkCtx &) {
        if (e.kind == ExprKind::Read)
            maxSite = std::max(maxSite, e.readSite);
    };
    walkPattern(root, scan);

    int next = maxSite + 1;
    Walker assign;
    assign.onPattern = [&](const Pattern &p, const WalkCtx &) {
        if (p.site < 0)
            p.site = next++;
    };
    assign.onStmt = [&](const Stmt &s, const WalkCtx &) {
        if (s.site < 0)
            s.site = next++;
    };
    assign.onExpr = [&](const Expr &e, const WalkCtx &) {
        if (e.kind == ExprKind::Read && e.readSite < 0)
            e.readSite = next++;
    };
    walkPattern(root, assign);
}

} // namespace

void
Program::validate() const
{
    if (!root_)
        NPP_FATAL("{}: no root pattern", name_);
    validatePattern(*this, *root_, true);
    assignTraceSites(*root_);

    const Pattern &r = *root_;
    const bool yields = r.kind != PatternKind::Foreach;
    if (yields) {
        if (rootOutput_ < 0)
            NPP_FATAL("{}: root pattern yields but no output bound", name_);
        if (var(rootOutput_).role != VarRole::ArrayParam ||
            !var(rootOutput_).isOutput) {
            NPP_FATAL("{}: root output {} is not an output array param",
                      name_, var(rootOutput_).name);
        }
    }
    if (r.kind == PatternKind::Filter && countOutput_ < 0)
        NPP_FATAL("{}: root filter needs a count output", name_);
}

} // namespace npp
