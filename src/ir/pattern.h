/**
 * @file
 * Statements and parallel patterns (Table I of the paper). A Pattern is a
 * parallel loop over an index domain [0, size) whose body is a statement
 * list plus a per-iteration yield value; nesting a Pattern statement inside
 * another pattern's body forms the nested parallel structures the mapping
 * analysis operates on.
 */

#ifndef NPP_IR_PATTERN_H
#define NPP_IR_PATTERN_H

#include <memory>
#include <vector>

#include "ir/expr.h"

namespace npp {

/** The parallel pattern vocabulary of Table I. */
enum class PatternKind {
    Map,     //!< out[i] = f(i)
    ZipWith, //!< Map reading two (or more) collections; same mapping rules
    Foreach, //!< effectful body, no yield
    Filter,  //!< keep yields whose predicate holds (order preserving)
    Reduce,  //!< fold yields with an associative combiner
    GroupBy  //!< reduce-by-key: combine yields per computed key
};

/** Human-readable pattern name. */
const char *patternKindName(PatternKind kind);

/** True if the pattern requires cross-iteration communication, which on a
 *  GPU means global synchronization within its dimension (hard constraint:
 *  Span(all), Section IV-C). */
bool requiresGlobalSync(PatternKind kind);

struct Pattern;

/** Statement discriminator. */
enum class StmtKind {
    Let,     //!< bind a scalar local to an expression
    Assign,  //!< reassign a mutable scalar local (inside SeqLoop bodies)
    Store,   //!< write array[index] = value
    If,      //!< conditional statement block
    SeqLoop, //!< sequential loop (no parallelism; e.g. escape-time loops)
    Nested   //!< a nested parallel pattern, result bound to a local
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using PatternPtr = std::unique_ptr<Pattern>;

/**
 * One statement in a pattern body. Field usage depends on `kind`.
 */
struct Stmt
{
    StmtKind kind = StmtKind::Let;

    /** Let/Assign: destination scalar local. Nested: result var
     *  (scalar local for Reduce, array local for Map/ZipWith/Filter;
     *  -1 for Foreach). SeqLoop: loop index var. */
    int var = -1;

    /** Let/Assign/Store value. */
    ExprRef value;

    /** Store: destination array var id. */
    int array = -1;

    /** Store: index expression. */
    ExprRef index;

    /** If: condition. SeqLoop: optional break condition (checked before
     *  each iteration; loop exits when it evaluates true). */
    ExprRef cond;

    /** If: then-branch. SeqLoop: loop body. */
    std::vector<StmtPtr> body;

    /** If: else-branch. */
    std::vector<StmtPtr> elseBody;

    /** SeqLoop: trip count expression. */
    ExprRef trip;

    /** Nested: the nested pattern. */
    PatternPtr pattern;

    /** Nested Filter only: scalar local receiving the kept-element count
     *  (the compacted prefix length of the result array local). -1 for
     *  every other statement. */
    int countVar = -1;

    /** Memory-trace grouping id (see Expr::readSite). Assigned by
     *  Program::validate() from the program's pre-order walk; shares one
     *  counter with Pattern::site and Expr::readSite so ids are unique
     *  across all probe key spaces. */
    mutable int site = -1;

    Stmt();
    ~Stmt();
    Stmt(Stmt &&) noexcept;
    Stmt &operator=(Stmt &&) noexcept;
    Stmt(const Stmt &) = delete;
    Stmt &operator=(const Stmt &) = delete;
};

/**
 * A parallel pattern over the index domain [0, size).
 *
 * The element function of Table I is represented as `body` (auxiliary
 * statements: lets, nested patterns, effects) followed by `yield`, the
 * per-iteration value. Foreach has no yield. Collection-argument patterns
 * (e.g. `in map f`) are expressed index-based: the body reads `in[i]`
 * explicitly, which is exactly what the access-pattern analysis needs.
 */
struct Pattern
{
    PatternKind kind = PatternKind::Map;

    /** Induction variable id (role Index). */
    int indexVar = -1;

    /** Domain size; may reference params, enclosing indices, and reads
     *  of bound *input* arrays (a runtime-sized domain: CSR row extents,
     *  frontier degrees). A size that is not launch-known (ir/affine.h
     *  sizeKnownAtLaunch) forces Span(all) on its level; such levels are
     *  where the consolidation mapping (analysis/consolidate.h)
     *  competes. Reading an output array in a size is rejected by
     *  Program::validate() — an extent must never depend on the
     *  launch's own stores. */
    ExprRef size;

    /** Auxiliary statements executed per iteration, before yield. */
    std::vector<StmtPtr> body;

    /** Per-iteration value (Map/ZipWith/Filter/Reduce/GroupBy). */
    ExprRef yield;

    /** Filter: keep iteration if predicate is nonzero. */
    ExprRef filterPred;

    /** GroupBy: key expression (integer-valued, in [0, numKeys)). */
    ExprRef key;

    /** Nested GroupBy only: output-domain size (number of distinct keys,
     *  known at kernel launch). The nested result array local has exactly
     *  this many slots. Root GroupBy sizes its output from the bound
     *  output array instead, so this stays null at the root. */
    ExprRef keyDomain;

    /** Reduce/GroupBy: associative combiner. */
    Op combiner = Op::Add;

    /** Memory-trace grouping id (see Expr::readSite). */
    mutable int site = -1;

    Pattern();
    ~Pattern();
    Pattern(Pattern &&) noexcept;
    Pattern &operator=(Pattern &&) noexcept;
    Pattern(const Pattern &) = delete;
    Pattern &operator=(const Pattern &) = delete;

    /** Nesting depth: 1 + max depth of nested patterns in the body. */
    int depth() const;

    /** Allocation size of the result array this pattern produces: the
     *  key domain for GroupBy, otherwise the index-domain size (which for
     *  Filter is the static upper bound the compacted output lives in). */
    const ExprRef &
    allocSize() const
    {
        return (kind == PatternKind::GroupBy && keyDomain) ? keyDomain
                                                           : size;
    }
};

/** Nesting depth of a statement list. */
int stmtListDepth(const std::vector<StmtPtr> &stmts);

/** Deep-copy helpers (used by optimization passes that rewrite bodies). */
StmtPtr cloneStmt(const Stmt &stmt);
PatternPtr clonePattern(const Pattern &pattern);
std::vector<StmtPtr> cloneStmtList(const std::vector<StmtPtr> &stmts);

} // namespace npp

#endif // NPP_IR_PATTERN_H
