#include "ir/affine.h"

#include <cmath>

#include "ir/traverse.h"
#include "support/logging.h"

namespace npp {

std::optional<double>
AnalysisEnv::resolveParam(int varId) const
{
    if (auto it = paramValues.find(varId); it != paramValues.end())
        return it->second;
    if (prog) {
        const auto &hints = prog->sizeHints();
        if (auto it = hints.find(varId); it != hints.end())
            return it->second;
    }
    return std::nullopt;
}

std::optional<double>
constEval(const ExprRef &expr, const AnalysisEnv &env)
{
    if (!expr)
        return std::nullopt;
    switch (expr->kind) {
      case ExprKind::Lit:
        return expr->lit;
      case ExprKind::Var: {
        if (env.prog &&
            env.prog->var(expr->varId).role == VarRole::ScalarParam) {
            return env.resolveParam(expr->varId);
        }
        return std::nullopt;
      }
      case ExprKind::Binary: {
        auto a = constEval(expr->a, env);
        auto b = constEval(expr->b, env);
        if (!a || !b)
            return std::nullopt;
        return applyOp(expr->op, *a, *b);
      }
      case ExprKind::Unary: {
        auto a = constEval(expr->a, env);
        if (!a)
            return std::nullopt;
        return applyOp(expr->op, *a, 0.0);
      }
      case ExprKind::Select: {
        auto c = constEval(expr->a, env);
        if (!c)
            return std::nullopt;
        return constEval(*c != 0.0 ? expr->b : expr->c, env);
      }
      case ExprKind::Read:
        return std::nullopt;
    }
    return std::nullopt;
}

double
sizeForAnalysis(const ExprRef &size, const AnalysisEnv &env)
{
    if (auto v = constEval(size, env))
        return *v;
    return env.defaultSize;
}

std::optional<double>
coeffOf(const ExprRef &expr, int varId, const AnalysisEnv &env)
{
    if (!expr)
        return std::nullopt;
    if (!mentionsVar(expr, varId))
        return 0.0;

    switch (expr->kind) {
      case ExprKind::Var:
        // mentionsVar above guarantees this is the variable itself.
        return 1.0;
      case ExprKind::Binary: {
        switch (expr->op) {
          case Op::Add: {
            auto a = coeffOf(expr->a, varId, env);
            auto b = coeffOf(expr->b, varId, env);
            if (!a || !b)
                return std::nullopt;
            return *a + *b;
          }
          case Op::Sub: {
            auto a = coeffOf(expr->a, varId, env);
            auto b = coeffOf(expr->b, varId, env);
            if (!a || !b)
                return std::nullopt;
            return *a - *b;
          }
          case Op::Mul: {
            const bool inA = mentionsVar(expr->a, varId);
            const bool inB = mentionsVar(expr->b, varId);
            if (inA && inB)
                return std::nullopt; // quadratic in var
            const ExprRef &varSide = inA ? expr->a : expr->b;
            const ExprRef &constSide = inA ? expr->b : expr->a;
            auto coeff = coeffOf(varSide, varId, env);
            auto scale = constEval(constSide, env);
            if (!coeff || !scale)
                return std::nullopt;
            return *coeff * *scale;
          }
          case Op::Div: {
            // (a / c) with c independent of var and constant.
            if (mentionsVar(expr->b, varId))
                return std::nullopt;
            auto coeff = coeffOf(expr->a, varId, env);
            auto scale = constEval(expr->b, env);
            if (!coeff || !scale || *scale == 0.0)
                return std::nullopt;
            // Integer index division is only affine when it divides evenly;
            // be conservative and require an integral coefficient.
            double c = *coeff / *scale;
            if (c != std::floor(c))
                return std::nullopt;
            return c;
          }
          default:
            return std::nullopt;
        }
      }
      case ExprKind::Unary: {
        if (expr->op == Op::Neg) {
            auto a = coeffOf(expr->a, varId, env);
            if (!a)
                return std::nullopt;
            return -*a;
        }
        return std::nullopt;
      }
      default:
        // Reads, selects, literals mentioning var (impossible for Lit).
        return std::nullopt;
    }
}

ExprRef
resolveLocals(const ExprRef &expr, const AnalysisEnv &env)
{
    if (!expr || env.localDefs.empty())
        return expr;
    switch (expr->kind) {
      case ExprKind::Var: {
        auto it = env.localDefs.find(expr->varId);
        return it != env.localDefs.end() ? it->second : expr;
      }
      case ExprKind::Binary:
        return binary(expr->op, resolveLocals(expr->a, env),
                      resolveLocals(expr->b, env));
      case ExprKind::Unary:
        return unary(expr->op, resolveLocals(expr->a, env));
      case ExprKind::Select:
        return select(resolveLocals(expr->a, env),
                      resolveLocals(expr->b, env),
                      resolveLocals(expr->c, env));
      case ExprKind::Read:
        // Keep the read node itself (its site identity matters); its
        // value is data-dependent anyway.
        return expr;
      case ExprKind::Lit:
        return expr;
    }
    return expr;
}

bool
sizeKnownAtLaunch(const ExprRef &expr, const Program &prog)
{
    bool known = true;
    walkExpr(expr, [&](const Expr &e) {
        if (e.kind == ExprKind::Read)
            known = false;
        else if (e.kind == ExprKind::Var &&
                 prog.var(e.varId).role != VarRole::ScalarParam)
            known = false;
    });
    return known;
}

bool
dependsOnAnyIndex(const ExprRef &expr, const Program &prog)
{
    bool found = false;
    walkExpr(expr, [&](const Expr &e) {
        if (e.kind == ExprKind::Var &&
            prog.var(e.varId).role == VarRole::Index) {
            found = true;
        }
    });
    return found;
}

} // namespace npp
