/**
 * @file
 * Human-readable pretty printer for IR programs, used in diagnostics,
 * documentation, and golden tests.
 */

#ifndef NPP_IR_PRINTER_H
#define NPP_IR_PRINTER_H

#include <string>

#include "ir/program.h"

namespace npp {

/** Render an expression as a compact string, e.g. "(m[((i*C)+j)])". */
std::string printExpr(const ExprRef &expr, const Program &prog);

/** Render the whole program, one statement per line, indented by level. */
std::string printProgram(const Program &prog);

} // namespace npp

#endif // NPP_IR_PRINTER_H
