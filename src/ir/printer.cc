#include "ir/printer.h"

#include <sstream>

#include "support/strings.h"

namespace npp {

namespace {

void
printExprRec(std::ostringstream &os, const ExprRef &e, const Program &prog)
{
    if (!e) {
        os << "<null>";
        return;
    }
    switch (e->kind) {
      case ExprKind::Lit:
        if (e->type == ScalarKind::I64)
            os << static_cast<long long>(e->lit);
        else
            os << e->lit;
        break;
      case ExprKind::Var:
        os << prog.var(e->varId).name;
        break;
      case ExprKind::Binary:
        os << '(';
        printExprRec(os, e->a, prog);
        os << ' ' << opName(e->op) << ' ';
        printExprRec(os, e->b, prog);
        os << ')';
        break;
      case ExprKind::Unary:
        os << opName(e->op) << '(';
        printExprRec(os, e->a, prog);
        os << ')';
        break;
      case ExprKind::Select:
        os << "sel(";
        printExprRec(os, e->a, prog);
        os << ", ";
        printExprRec(os, e->b, prog);
        os << ", ";
        printExprRec(os, e->c, prog);
        os << ')';
        break;
      case ExprKind::Read:
        os << prog.var(e->varId).name << '[';
        printExprRec(os, e->a, prog);
        os << ']';
        break;
    }
}

void printStmts(std::ostringstream &os, const std::vector<StmtPtr> &stmts,
                const Program &prog, int indent);

void
printPattern(std::ostringstream &os, const Pattern &p, const Program &prog,
             int indent, const std::string &binding)
{
    std::string pad = repeat("  ", indent);
    os << pad;
    if (!binding.empty())
        os << binding << " = ";
    os << patternKindName(p.kind) << '(' << prog.var(p.indexVar).name
       << " < " << printExpr(p.size, prog);
    if (p.kind == PatternKind::Reduce || p.kind == PatternKind::GroupBy)
        os << ", " << opName(p.combiner);
    os << ") {\n";
    printStmts(os, p.body, prog, indent + 1);
    if (p.key) {
        os << pad << "  key " << printExpr(p.key, prog) << '\n';
    }
    if (p.filterPred) {
        os << pad << "  where " << printExpr(p.filterPred, prog) << '\n';
    }
    if (p.yield) {
        os << pad << "  yield " << printExpr(p.yield, prog) << '\n';
    }
    os << pad << "}\n";
}

void
printStmts(std::ostringstream &os, const std::vector<StmtPtr> &stmts,
           const Program &prog, int indent)
{
    std::string pad = repeat("  ", indent);
    for (const auto &s : stmts) {
        switch (s->kind) {
          case StmtKind::Let:
            os << pad << (prog.var(s->var).isMutable ? "var " : "let ")
               << prog.var(s->var).name << " = " << printExpr(s->value, prog)
               << '\n';
            break;
          case StmtKind::Assign:
            os << pad << prog.var(s->var).name << " := "
               << printExpr(s->value, prog) << '\n';
            break;
          case StmtKind::Store:
            os << pad << prog.var(s->array).name << '['
               << printExpr(s->index, prog)
               << "] = " << printExpr(s->value, prog) << '\n';
            break;
          case StmtKind::If:
            os << pad << "if " << printExpr(s->cond, prog) << " {\n";
            printStmts(os, s->body, prog, indent + 1);
            if (!s->elseBody.empty()) {
                os << pad << "} else {\n";
                printStmts(os, s->elseBody, prog, indent + 1);
            }
            os << pad << "}\n";
            break;
          case StmtKind::SeqLoop:
            os << pad << "for " << prog.var(s->var).name << " < "
               << printExpr(s->trip, prog);
            if (s->cond)
                os << " until " << printExpr(s->cond, prog);
            os << " {\n";
            printStmts(os, s->body, prog, indent + 1);
            os << pad << "}\n";
            break;
          case StmtKind::Nested:
            printPattern(os, *s->pattern, prog, indent,
                         s->var >= 0 ? prog.var(s->var).name : "");
            break;
        }
    }
}

} // namespace

std::string
printExpr(const ExprRef &expr, const Program &prog)
{
    std::ostringstream os;
    printExprRec(os, expr, prog);
    return os.str();
}

std::string
printProgram(const Program &prog)
{
    std::ostringstream os;
    os << "program " << prog.name() << "(";
    bool first = true;
    for (const auto &v : prog.vars()) {
        if (v.role != VarRole::ScalarParam && v.role != VarRole::ArrayParam)
            continue;
        if (!first)
            os << ", ";
        first = false;
        if (v.role == VarRole::ArrayParam) {
            os << (v.isOutput ? "out " : "in ") << v.name << "[]";
        } else {
            os << v.name;
        }
    }
    os << ")\n";
    printPattern(os, prog.root(), prog, 0, "");
    return os.str();
}

} // namespace npp
