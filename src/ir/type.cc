#include "ir/type.h"

#include "support/logging.h"

namespace npp {

std::string
cudaTypeName(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::F64:
        return "double";
      case ScalarKind::I64:
        return "long long";
      case ScalarKind::Bool:
        return "bool";
    }
    NPP_PANIC("unknown scalar kind");
}

std::string
scalarKindName(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::F64:
        return "f64";
      case ScalarKind::I64:
        return "i64";
      case ScalarKind::Bool:
        return "bool";
    }
    NPP_PANIC("unknown scalar kind");
}

} // namespace npp
