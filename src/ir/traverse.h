/**
 * @file
 * Generic IR traversal helpers shared by the printer, the analysis, and the
 * optimization passes.
 */

#ifndef NPP_IR_TRAVERSE_H
#define NPP_IR_TRAVERSE_H

#include <functional>

#include "ir/pattern.h"

namespace npp {

/** Visit every node of an expression tree (pre-order). */
void walkExpr(const ExprRef &expr, const std::function<void(const Expr &)> &fn);

/**
 * Context passed to statement/pattern visitors: nesting level of the
 * innermost enclosing pattern (root = level 0) and the number of enclosing
 * If branches (used for the soft-constraint branch discount).
 */
struct WalkCtx
{
    int level = 0;
    int branchDepth = 0;
    int seqLoopDepth = 0;
};

/** Callbacks for a full structural walk. Any callback may be empty. */
struct Walker
{
    /** Called for each pattern, including the root. */
    std::function<void(const Pattern &, const WalkCtx &)> onPattern;
    /** Called for each statement. */
    std::function<void(const Stmt &, const WalkCtx &)> onStmt;
    /** Called for every expression appearing anywhere (yields, sizes,
     *  conditions, store indices/values, ...). */
    std::function<void(const Expr &, const WalkCtx &)> onExpr;
};

/** Walk a pattern tree rooted at `root` (level 0). */
void walkPattern(const Pattern &root, const Walker &walker);

/** True if the expression mentions the given variable. */
bool mentionsVar(const ExprRef &expr, int varId);

/** Collect pointers to all patterns with their levels, in pre-order. */
std::vector<std::pair<const Pattern *, int>>
collectPatterns(const Pattern &root);

/**
 * Largest trace-site id assigned anywhere in the tree (pattern, statement,
 * or read sites), or -1 for an unvalidated tree. Site ids are small dense
 * integers, so maxTraceSite(root) + 1 sizes direct-indexed per-site tables
 * (the simulator's coalescing probe and traffic attribution).
 */
int maxTraceSite(const Pattern &root);

} // namespace npp

#endif // NPP_IR_TRAVERSE_H
