#include "ir/var.h"

#include "support/logging.h"

namespace npp {

std::string
varRoleName(VarRole role)
{
    switch (role) {
      case VarRole::ScalarParam:
        return "scalar-param";
      case VarRole::ArrayParam:
        return "array-param";
      case VarRole::ScalarLocal:
        return "scalar-local";
      case VarRole::ArrayLocal:
        return "array-local";
      case VarRole::Index:
        return "index";
      case VarRole::SeqIndex:
        return "seq-index";
    }
    NPP_PANIC("unknown var role");
}

} // namespace npp
