/**
 * @file
 * Variable records for the parallel-pattern IR. Every named value in a
 * program — kernel parameters, pattern induction variables, let-bound
 * locals, sequential-loop indices — is registered in the owning Program's
 * variable table and referenced by integer id from expressions.
 */

#ifndef NPP_IR_VAR_H
#define NPP_IR_VAR_H

#include <string>

#include "ir/type.h"

namespace npp {

/** What role a variable plays in a program. */
enum class VarRole {
    ScalarParam, //!< scalar kernel argument (e.g. matrix dimensions)
    ArrayParam,  //!< array kernel argument (input or output buffer)
    ScalarLocal, //!< let-bound scalar inside a pattern body
    ArrayLocal,  //!< array produced by a nested pattern (prealloc target)
    Index,       //!< parallel pattern induction variable
    SeqIndex     //!< sequential loop induction variable
};

/** One entry in a Program's variable table. */
struct VarInfo
{
    int id = -1;
    std::string name;
    VarRole role = VarRole::ScalarLocal;
    ScalarKind kind = ScalarKind::F64;
    /** True for array params the program writes (outputs). */
    bool isOutput = false;
    /** True for scalar locals reassigned inside sequential loops. */
    bool isMutable = false;
};

/** Human-readable role name for diagnostics. */
std::string varRoleName(VarRole role);

} // namespace npp

#endif // NPP_IR_VAR_H
