#include "ir/pattern.h"

#include <algorithm>

#include "support/logging.h"

namespace npp {

const char *
patternKindName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Map: return "map";
      case PatternKind::ZipWith: return "zipWith";
      case PatternKind::Foreach: return "foreach";
      case PatternKind::Filter: return "filter";
      case PatternKind::Reduce: return "reduce";
      case PatternKind::GroupBy: return "groupBy";
    }
    return "?";
}

bool
requiresGlobalSync(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Reduce:
      case PatternKind::Filter:
      case PatternKind::GroupBy:
        return true;
      default:
        return false;
    }
}

Stmt::Stmt() = default;
Stmt::~Stmt() = default;
Stmt::Stmt(Stmt &&) noexcept = default;
Stmt &Stmt::operator=(Stmt &&) noexcept = default;

Pattern::Pattern() = default;
Pattern::~Pattern() = default;
Pattern::Pattern(Pattern &&) noexcept = default;
Pattern &Pattern::operator=(Pattern &&) noexcept = default;

int
stmtListDepth(const std::vector<StmtPtr> &stmts)
{
    int depth = 0;
    for (const auto &s : stmts) {
        switch (s->kind) {
          case StmtKind::Nested:
            depth = std::max(depth, s->pattern->depth());
            break;
          case StmtKind::If:
            depth = std::max(depth, stmtListDepth(s->body));
            depth = std::max(depth, stmtListDepth(s->elseBody));
            break;
          case StmtKind::SeqLoop:
            depth = std::max(depth, stmtListDepth(s->body));
            break;
          default:
            break;
        }
    }
    return depth;
}

int
Pattern::depth() const
{
    return 1 + stmtListDepth(body);
}

StmtPtr
cloneStmt(const Stmt &stmt)
{
    auto out = std::make_unique<Stmt>();
    out->kind = stmt.kind;
    out->var = stmt.var;
    out->value = stmt.value;
    out->array = stmt.array;
    out->index = stmt.index;
    out->cond = stmt.cond;
    out->trip = stmt.trip;
    out->countVar = stmt.countVar;
    out->body = cloneStmtList(stmt.body);
    out->elseBody = cloneStmtList(stmt.elseBody);
    if (stmt.pattern)
        out->pattern = clonePattern(*stmt.pattern);
    return out;
}

PatternPtr
clonePattern(const Pattern &pattern)
{
    auto out = std::make_unique<Pattern>();
    out->kind = pattern.kind;
    out->indexVar = pattern.indexVar;
    out->size = pattern.size;
    out->body = cloneStmtList(pattern.body);
    out->yield = pattern.yield;
    out->filterPred = pattern.filterPred;
    out->key = pattern.key;
    out->keyDomain = pattern.keyDomain;
    out->combiner = pattern.combiner;
    return out;
}

std::vector<StmtPtr>
cloneStmtList(const std::vector<StmtPtr> &stmts)
{
    std::vector<StmtPtr> out;
    out.reserve(stmts.size());
    for (const auto &s : stmts)
        out.push_back(cloneStmt(*s));
    return out;
}

} // namespace npp
