/**
 * @file
 * Affine analysis of index expressions. The constraint generator needs to
 * know, for every array access, the stride of the access with respect to
 * each enclosing pattern index: stride 1 means the pattern generates
 * sequential memory requests (coalescing soft constraint, Table II).
 *
 * Strides are resolved against an AnalysisEnv that knows actual parameter
 * values when the caller provides them, falls back to per-parameter size
 * hints, and finally to the paper's default assumption (1000).
 */

#ifndef NPP_IR_AFFINE_H
#define NPP_IR_AFFINE_H

#include <optional>
#include <unordered_map>

#include "ir/program.h"

namespace npp {

/**
 * Value resolution context for compile-time analysis.
 */
struct AnalysisEnv
{
    const Program *prog = nullptr;

    /** Actual parameter values, when known at compile/launch time. */
    std::unordered_map<int, double> paramValues;

    /** Definitions of (immutable) let-bound scalar locals in scope,
     *  already fully resolved. Lets like `row = t + 1 + i` must not hide
     *  index dependence from the stride analysis. */
    std::unordered_map<int, ExprRef> localDefs;

    /** Fallback when a pattern size is statically unknown (paper: 1000). */
    double defaultSize = 1000.0;

    /** Resolve a scalar param: actual value, then hint, then nothing. */
    std::optional<double> resolveParam(int varId) const;
};

/**
 * Evaluate an expression to a compile-time constant if possible.
 * Only literals, resolvable scalar params, and arithmetic over them fold.
 */
std::optional<double> constEval(const ExprRef &expr, const AnalysisEnv &env);

/**
 * Evaluate a pattern-size expression for analysis: constEval, falling back
 * to env.defaultSize when the size is statically unknown (e.g. depends on
 * an enclosing index, as in graph traversals).
 */
double sizeForAnalysis(const ExprRef &size, const AnalysisEnv &env);

/**
 * Coefficient of `varId` in `expr` when expr is affine in that variable
 * (expr == coeff * var + rest, with rest independent of var). The rest may
 * itself be non-constant (e.g. data-dependent offsets); only the
 * coefficient must fold. Returns nullopt when not affine in varId.
 */
std::optional<double> coeffOf(const ExprRef &expr, int varId,
                              const AnalysisEnv &env);

/** True if the expression mentions any parallel-pattern index variable. */
bool dependsOnAnyIndex(const ExprRef &expr, const Program &prog);

/**
 * Substitute every in-scope immutable scalar local with its definition
 * so stride analysis sees the underlying index arithmetic.
 */
ExprRef resolveLocals(const ExprRef &expr, const AnalysisEnv &env);

/**
 * True iff the expression folds from literals and scalar params only —
 * i.e. its value is known when the kernel is launched (Section IV-A).
 * Dependence on a pattern index, a local, or a memory read makes it
 * dynamic.
 */
bool sizeKnownAtLaunch(const ExprRef &expr, const Program &prog);

} // namespace npp

#endif // NPP_IR_AFFINE_H
