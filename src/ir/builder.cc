#include "ir/builder.h"

#include "support/logging.h"
#include "support/strings.h"

namespace npp {

namespace {

/** Fresh auto-generated local names: t0, t1, ... per program. */
std::string
freshName(Program &prog, const char *prefix)
{
    return fmt("{}{}", prefix, prog.numVars());
}

} // namespace

//
// Body
//

Ex
Body::let(const std::string &name, Ex value)
{
    NPP_ASSERT(value.valid(), "let {} with empty value", name);
    VarInfo info;
    info.name = name;
    info.role = VarRole::ScalarLocal;
    info.kind = value.ref()->type;
    int id = prog_.addVar(info);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Let;
    stmt->var = id;
    stmt->value = value.ref();
    stmts_.push_back(std::move(stmt));
    return Ex(varRef(id, info.kind));
}

Mut
Body::mut(const std::string &name, Ex init)
{
    NPP_ASSERT(init.valid(), "mut {} with empty init", name);
    VarInfo info;
    info.name = name;
    info.role = VarRole::ScalarLocal;
    info.kind = init.ref()->type;
    info.isMutable = true;
    int id = prog_.addVar(info);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Let;
    stmt->var = id;
    stmt->value = init.ref();
    stmts_.push_back(std::move(stmt));
    return Mut(id, info.kind);
}

void
Body::assign(Mut target, Ex value)
{
    NPP_ASSERT(value.valid(), "assign with empty value");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Assign;
    stmt->var = target.id();
    stmt->value = value.ref();
    stmts_.push_back(std::move(stmt));
}

void
Body::store(Arr array, Ex index, Ex value)
{
    NPP_ASSERT(array.valid(), "store to invalid array");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Store;
    stmt->array = array.id();
    stmt->index = index.ref();
    stmt->value = value.ref();
    stmts_.push_back(std::move(stmt));
}

PatternPtr
Body::buildNested(PatternKind kind, Ex size, Op combiner, const MapFn &fn)
{
    NPP_ASSERT(size.valid(), "nested {} with empty size",
               patternKindName(kind));
    auto p = std::make_unique<Pattern>();
    p->kind = kind;
    p->size = size.ref();
    p->combiner = combiner;

    VarInfo idx;
    idx.name = freshName(prog_, "i");
    idx.role = VarRole::Index;
    idx.kind = ScalarKind::I64;
    p->indexVar = prog_.addVar(idx);

    Body inner(prog_, p->body);
    Ex yield = fn(inner, Ex(varRef(p->indexVar, ScalarKind::I64)));
    if (kind != PatternKind::Foreach) {
        NPP_ASSERT(yield.valid(), "nested {} returned empty yield",
                   patternKindName(kind));
        p->yield = yield.ref();
    }
    return p;
}

Arr
Body::map(Ex size, const MapFn &fn, ScalarKind kind)
{
    auto p = buildNested(PatternKind::Map, size, Op::Add, fn);

    VarInfo res;
    res.name = freshName(prog_, "arr");
    res.role = VarRole::ArrayLocal;
    res.kind = kind;
    int resId = prog_.addVar(res);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = resId;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
    return Arr(resId, kind);
}

Arr
Body::zipWith(Ex size, const MapFn &fn, ScalarKind kind)
{
    auto p = buildNested(PatternKind::ZipWith, size, Op::Add, fn);

    VarInfo res;
    res.name = freshName(prog_, "arr");
    res.role = VarRole::ArrayLocal;
    res.kind = kind;
    int resId = prog_.addVar(res);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = resId;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
    return Arr(resId, kind);
}

Ex
Body::reduce(Ex size, Op combiner, const MapFn &fn)
{
    NPP_ASSERT(isCombinerOp(combiner), "reduce with non-associative op {}",
               opName(combiner));
    auto p = buildNested(PatternKind::Reduce, size, combiner, fn);

    VarInfo res;
    res.name = freshName(prog_, "acc");
    res.role = VarRole::ScalarLocal;
    res.kind = p->yield->type;
    int resId = prog_.addVar(res);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = resId;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
    return Ex(varRef(resId, res.kind));
}

Filtered
Body::filter(Ex size, const FilterFn &fn, ScalarKind kind)
{
    NPP_ASSERT(size.valid(), "nested filter with empty size");
    auto p = std::make_unique<Pattern>();
    p->kind = PatternKind::Filter;
    p->size = size.ref();

    VarInfo idx;
    idx.name = freshName(prog_, "i");
    idx.role = VarRole::Index;
    idx.kind = ScalarKind::I64;
    p->indexVar = prog_.addVar(idx);

    Body inner(prog_, p->body);
    FilterItem item = fn(inner, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(item.pred.valid() && item.value.valid(),
               "nested filter returned empty pred/value");
    p->filterPred = item.pred.ref();
    p->yield = item.value.ref();

    VarInfo res;
    res.name = freshName(prog_, "arr");
    res.role = VarRole::ArrayLocal;
    res.kind = kind;
    int resId = prog_.addVar(res);

    VarInfo cnt;
    cnt.name = freshName(prog_, "cnt");
    cnt.role = VarRole::ScalarLocal;
    cnt.kind = ScalarKind::I64;
    int cntId = prog_.addVar(cnt);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = resId;
    stmt->countVar = cntId;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
    return {Arr(resId, kind), Ex(varRef(cntId, ScalarKind::I64))};
}

Arr
Body::groupBy(Ex size, Ex numKeys, Op combiner, const GroupFn &fn,
              ScalarKind kind)
{
    NPP_ASSERT(size.valid(), "nested groupBy with empty size");
    NPP_ASSERT(numKeys.valid(), "nested groupBy with empty key domain");
    NPP_ASSERT(isCombinerOp(combiner),
               "groupBy with non-associative op {}", opName(combiner));
    auto p = std::make_unique<Pattern>();
    p->kind = PatternKind::GroupBy;
    p->size = size.ref();
    p->keyDomain = numKeys.ref();
    p->combiner = combiner;

    VarInfo idx;
    idx.name = freshName(prog_, "i");
    idx.role = VarRole::Index;
    idx.kind = ScalarKind::I64;
    p->indexVar = prog_.addVar(idx);

    Body inner(prog_, p->body);
    KeyedValue kv = fn(inner, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(kv.key.valid() && kv.value.valid(),
               "nested groupBy returned empty key/value");
    p->key = kv.key.ref();
    p->yield = kv.value.ref();

    VarInfo res;
    res.name = freshName(prog_, "arr");
    res.role = VarRole::ArrayLocal;
    res.kind = kind;
    int resId = prog_.addVar(res);

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = resId;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
    return Arr(resId, kind);
}

void
Body::foreach(Ex size, const VoidFn &fn)
{
    auto p = buildNested(PatternKind::Foreach, size, Op::Add,
                         [&](Body &b, Ex i) {
                             fn(b, i);
                             return Ex();
                         });

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Nested;
    stmt->var = -1;
    stmt->pattern = std::move(p);
    stmts_.push_back(std::move(stmt));
}

void
Body::branch(Ex cond, const BlockFn &thenFn, const BlockFn &elseFn)
{
    NPP_ASSERT(cond.valid(), "branch with empty condition");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->cond = cond.ref();
    {
        Body thenBody(prog_, stmt->body);
        thenFn(thenBody);
    }
    if (elseFn) {
        Body elseBody(prog_, stmt->elseBody);
        elseFn(elseBody);
    }
    stmts_.push_back(std::move(stmt));
}

void
Body::seqLoop(Ex trip, const VoidFn &fn, Ex breakCond)
{
    NPP_ASSERT(trip.valid(), "seqLoop with empty trip count");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::SeqLoop;
    stmt->trip = trip.ref();
    if (breakCond.valid())
        stmt->cond = breakCond.ref();

    VarInfo idx;
    idx.name = freshName(prog_, "k");
    idx.role = VarRole::SeqIndex;
    idx.kind = ScalarKind::I64;
    stmt->var = prog_.addVar(idx);

    Body body(prog_, stmt->body);
    fn(body, Ex(varRef(stmt->var, ScalarKind::I64)));
    stmts_.push_back(std::move(stmt));
}

//
// ProgramBuilder
//

Ex
ProgramBuilder::makeScalarParam(const std::string &name, ScalarKind kind)
{
    VarInfo info;
    info.name = name;
    info.role = VarRole::ScalarParam;
    info.kind = kind;
    int id = prog_.addVar(info);
    return Ex(varRef(id, kind));
}

Arr
ProgramBuilder::makeArrayParam(const std::string &name, ScalarKind kind,
                               bool output)
{
    VarInfo info;
    info.name = name;
    info.role = VarRole::ArrayParam;
    info.kind = kind;
    info.isOutput = output;
    int id = prog_.addVar(info);
    return Arr(id, kind);
}

Ex
ProgramBuilder::paramI64(const std::string &name)
{
    return makeScalarParam(name, ScalarKind::I64);
}

Ex
ProgramBuilder::paramF64(const std::string &name)
{
    return makeScalarParam(name, ScalarKind::F64);
}

Arr
ProgramBuilder::inF64(const std::string &name)
{
    return makeArrayParam(name, ScalarKind::F64, false);
}

Arr
ProgramBuilder::inI64(const std::string &name)
{
    return makeArrayParam(name, ScalarKind::I64, false);
}

Arr
ProgramBuilder::outF64(const std::string &name)
{
    return makeArrayParam(name, ScalarKind::F64, true);
}

Arr
ProgramBuilder::outI64(const std::string &name)
{
    return makeArrayParam(name, ScalarKind::I64, true);
}

Arr
ProgramBuilder::inOutF64(const std::string &name)
{
    return makeArrayParam(name, ScalarKind::F64, true);
}

void
ProgramBuilder::sizeHint(Ex param, double value)
{
    NPP_ASSERT(param.valid() && param.ref()->kind == ExprKind::Var,
               "size hint must name a scalar param");
    prog_.setSizeHint(param.ref()->varId, value);
}

PatternPtr
ProgramBuilder::makeRoot(PatternKind kind, Ex size)
{
    NPP_ASSERT(!rootSet_, "{}: root pattern set twice", prog_.name());
    NPP_ASSERT(size.valid(), "root {} with empty size",
               patternKindName(kind));
    rootSet_ = true;
    auto p = std::make_unique<Pattern>();
    p->kind = kind;
    p->size = size.ref();

    VarInfo idx;
    idx.name = freshName(prog_, "i");
    idx.role = VarRole::Index;
    idx.kind = ScalarKind::I64;
    p->indexVar = prog_.addVar(idx);
    return p;
}

void
ProgramBuilder::map(Ex size, Arr out, const MapFn &fn)
{
    auto p = makeRoot(PatternKind::Map, size);
    Body body(prog_, p->body);
    Ex yield = fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(yield.valid(), "root map returned empty yield");
    p->yield = yield.ref();
    prog_.setRoot(std::move(p));
    prog_.setRootOutput(out.id());
}

void
ProgramBuilder::zipWith(Ex size, Arr out, const MapFn &fn)
{
    auto p = makeRoot(PatternKind::ZipWith, size);
    Body body(prog_, p->body);
    Ex yield = fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(yield.valid(), "root zipWith returned empty yield");
    p->yield = yield.ref();
    prog_.setRoot(std::move(p));
    prog_.setRootOutput(out.id());
}

void
ProgramBuilder::foreach(Ex size, const VoidFn &fn)
{
    auto p = makeRoot(PatternKind::Foreach, size);
    Body body(prog_, p->body);
    fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    prog_.setRoot(std::move(p));
}

void
ProgramBuilder::reduce(Ex size, Op combiner, Arr out, const MapFn &fn)
{
    auto p = makeRoot(PatternKind::Reduce, size);
    p->combiner = combiner;
    Body body(prog_, p->body);
    Ex yield = fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(yield.valid(), "root reduce returned empty yield");
    p->yield = yield.ref();
    prog_.setRoot(std::move(p));
    prog_.setRootOutput(out.id());
}

void
ProgramBuilder::filter(Ex size, Arr out, Arr countOut, const FilterFn &fn)
{
    auto p = makeRoot(PatternKind::Filter, size);
    Body body(prog_, p->body);
    FilterItem item = fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(item.pred.valid() && item.value.valid(),
               "root filter returned empty pred/value");
    p->filterPred = item.pred.ref();
    p->yield = item.value.ref();
    prog_.setRoot(std::move(p));
    prog_.setRootOutput(out.id());
    prog_.setCountOutput(countOut.id());
}

void
ProgramBuilder::groupBy(Ex size, Op combiner, Arr out, const GroupFn &fn)
{
    auto p = makeRoot(PatternKind::GroupBy, size);
    p->combiner = combiner;
    Body body(prog_, p->body);
    KeyedValue kv = fn(body, Ex(varRef(p->indexVar, ScalarKind::I64)));
    NPP_ASSERT(kv.key.valid() && kv.value.valid(),
               "root groupBy returned empty key/value");
    p->key = kv.key.ref();
    p->yield = kv.value.ref();
    prog_.setRoot(std::move(p));
    prog_.setRootOutput(out.id());
}

Program
ProgramBuilder::build()
{
    prog_.validate();
    return std::move(prog_);
}

} // namespace npp
