/**
 * @file
 * A Program is one top-level parallel pattern (a GPU kernel candidate)
 * together with its variable table and output binding. A Module is an
 * ordered list of Programs sharing a parameter namespace — the unit an
 * application compiles (one kernel launch sequence per module execution).
 */

#ifndef NPP_IR_PROGRAM_H
#define NPP_IR_PROGRAM_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/pattern.h"
#include "ir/var.h"

namespace npp {

/**
 * One top-level parallel pattern plus its variable environment.
 */
class Program
{
  public:
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** @name Variable table
     *  @{
     */
    int addVar(VarInfo info);
    const VarInfo &var(int id) const;
    VarInfo &var(int id);
    int numVars() const { return static_cast<int>(vars_.size()); }
    const std::vector<VarInfo> &vars() const { return vars_; }
    /** @} */

    /** Root (level-0) pattern. */
    const Pattern &root() const;
    Pattern &root();
    void setRoot(PatternPtr root) { root_ = std::move(root); }
    bool hasRoot() const { return root_ != nullptr; }

    /** Array param receiving the root pattern's yields (-1 for Foreach). */
    int rootOutput() const { return rootOutput_; }
    void setRootOutput(int varId) { rootOutput_ = varId; }

    /** For root Filter: scalar-output array (1 element) receiving the
     *  number of kept elements; -1 otherwise. */
    int countOutput() const { return countOutput_; }
    void setCountOutput(int varId) { countOutput_ = varId; }

    /** Number of nest levels (root depth). */
    int numLevels() const;

    /**
     * Size hint for analysis when a pattern size is not a compile-time
     * constant (Section IV-C: default 1000, user-overridable per param).
     */
    void setSizeHint(int varId, double value) { sizeHints_[varId] = value; }
    const std::unordered_map<int, double> &sizeHints() const
    {
        return sizeHints_;
    }

    /** Check structural invariants; fatal() with a message on violation. */
    void validate() const;

  private:
    std::string name_;
    std::vector<VarInfo> vars_;
    PatternPtr root_;
    int rootOutput_ = -1;
    int countOutput_ = -1;
    std::unordered_map<int, double> sizeHints_;
};

} // namespace npp

#endif // NPP_IR_PROGRAM_H
