/**
 * @file
 * Builder EDSL for constructing pattern IR programs — the "thin wrapper
 * around the IR" language of Section III. Applications build programs with
 * natural C++ lambdas and operator syntax:
 *
 *     ProgramBuilder b("sumRows");
 *     Arr m = b.inF64("m");
 *     Ex R = b.paramI64("R"), C = b.paramI64("C");
 *     Arr out = b.outF64("out");
 *     b.map(R, out, [&](Body &fn, Ex i) {
 *         return fn.reduce(C, Op::Add,
 *                          [&](Body &, Ex j) { return m(i * C + j); });
 *     });
 *     Program prog = b.build();
 */

#ifndef NPP_IR_BUILDER_H
#define NPP_IR_BUILDER_H

#include <functional>
#include <string>

#include "ir/program.h"

namespace npp {

/** Lightweight handle to an array variable; call it to build a read. */
class Arr
{
  public:
    Arr() = default;
    Arr(int id, ScalarKind kind) : id_(id), kind_(kind) {}

    /** Build a read expression at the given index. */
    Ex operator()(Ex index) const { return Ex(read(id_, index.ref(), kind_)); }

    int id() const { return id_; }
    ScalarKind kind() const { return kind_; }
    bool valid() const { return id_ >= 0; }

  private:
    int id_ = -1;
    ScalarKind kind_ = ScalarKind::F64;
};

/** Handle to a mutable scalar local (loop-carried state in SeqLoops). */
class Mut
{
  public:
    Mut() = default;
    Mut(int id, ScalarKind kind) : id_(id), kind_(kind) {}

    /*implicit*/ operator Ex() const { return Ex(varRef(id_, kind_)); }
    Ex ex() const { return Ex(varRef(id_, kind_)); }
    int id() const { return id_; }

  private:
    int id_ = -1;
    ScalarKind kind_ = ScalarKind::F64;
};

/** A filter body yields a (keep?, value) pair. */
struct FilterItem
{
    Ex pred;
    Ex value;
};

/** A groupBy body yields a (key, value) pair. */
struct KeyedValue
{
    Ex key;
    Ex value;
};

class Body;

/** Result handles of a nested filter: the compacted array local (valid
 *  prefix only) and the kept-element count. */
struct Filtered
{
    Arr items;
    Ex count;
};

using MapFn = std::function<Ex(Body &, Ex)>;
using VoidFn = std::function<void(Body &, Ex)>;
using FilterFn = std::function<FilterItem(Body &, Ex)>;
using GroupFn = std::function<KeyedValue(Body &, Ex)>;
using BlockFn = std::function<void(Body &)>;

/**
 * Statement-list builder handed to body lambdas. All nested-pattern,
 * let-binding, control-flow, and store operations go through this class.
 */
class Body
{
  public:
    Body(Program &prog, std::vector<StmtPtr> &stmts)
        : prog_(prog), stmts_(stmts)
    {}

    /** Bind an expression to a named scalar local; returns its reference. */
    Ex let(const std::string &name, Ex value);

    /** Declare a mutable scalar local with an initial value. */
    Mut mut(const std::string &name, Ex init);

    /** Reassign a mutable local. */
    void assign(Mut target, Ex value);

    /** Write array[index] = value. */
    void store(Arr array, Ex index, Ex value);

    /** Nested map producing a fresh array local of length `size`. */
    Arr map(Ex size, const MapFn &fn,
            ScalarKind kind = ScalarKind::F64);

    /** Nested zipWith (semantically a map; reads live in the body). */
    Arr zipWith(Ex size, const MapFn &fn,
                ScalarKind kind = ScalarKind::F64);

    /** Nested reduce with the given associative combiner. */
    Ex reduce(Ex size, Op combiner, const MapFn &fn);

    /** Nested filter: produces an array local preallocated at the static
     *  upper bound `size`, holding the kept values compacted in iteration
     *  order, plus a scalar local with the kept count. Reads past the
     *  count are unspecified. */
    Filtered filter(Ex size, const FilterFn &fn,
                    ScalarKind kind = ScalarKind::F64);

    /** Nested groupBy (reduce-by-key): produces an array local of length
     *  `numKeys` where slot k holds the combiner-fold of all values whose
     *  key evaluated to k (combiner identity for untouched keys). */
    Arr groupBy(Ex size, Ex numKeys, Op combiner, const GroupFn &fn,
                ScalarKind kind = ScalarKind::F64);

    /** Nested foreach (effectful). */
    void foreach(Ex size, const VoidFn &fn);

    /** Conditional statement. */
    void branch(Ex cond, const BlockFn &thenFn, const BlockFn &elseFn = {});

    /** Sequential loop over [0, trip); optional break condition is
     *  evaluated before each iteration and exits the loop when true. */
    void seqLoop(Ex trip, const VoidFn &fn, Ex breakCond = Ex());

  private:
    friend class ProgramBuilder;

    PatternPtr buildNested(PatternKind kind, Ex size, Op combiner,
                           const MapFn &fn);

    Program &prog_;
    std::vector<StmtPtr> &stmts_;
};

/**
 * Top-level program builder: declares parameters and the root pattern.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name) : prog_(std::move(name)) {}

    /** @name Parameter declarations
     *  @{
     */
    Ex paramI64(const std::string &name);
    Ex paramF64(const std::string &name);
    Arr inF64(const std::string &name);
    Arr inI64(const std::string &name);
    Arr outF64(const std::string &name);
    Arr outI64(const std::string &name);
    /** Array param that is both read and written (e.g. in-place updates). */
    Arr inOutF64(const std::string &name);
    /** @} */

    /** Analysis size hint for a scalar param (Section IV-C). */
    void sizeHint(Ex param, double value);

    /** @name Root patterns
     *  @{
     */
    void map(Ex size, Arr out, const MapFn &fn);
    void zipWith(Ex size, Arr out, const MapFn &fn);
    void foreach(Ex size, const VoidFn &fn);
    /** Root reduce; the single result is written to out[0]. */
    void reduce(Ex size, Op combiner, Arr out, const MapFn &fn);
    /** Root filter; kept values compact into `out`, count into countOut[0]. */
    void filter(Ex size, Arr out, Arr countOut, const FilterFn &fn);
    /** Root groupBy (reduce-by-key); out[key] accumulates combined values
     *  and must be sized to the key domain by the caller. */
    void groupBy(Ex size, Op combiner, Arr out, const GroupFn &fn);
    /** @} */

    /** Validate and return the finished program. */
    Program build();

  private:
    Ex makeScalarParam(const std::string &name, ScalarKind kind);
    Arr makeArrayParam(const std::string &name, ScalarKind kind,
                       bool output);
    PatternPtr makeRoot(PatternKind kind, Ex size);

    Program prog_;
    bool rootSet_ = false;
};

} // namespace npp

#endif // NPP_IR_BUILDER_H
