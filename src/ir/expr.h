/**
 * @file
 * Expression nodes for the parallel-pattern IR (Section III of the paper).
 * Expressions are pure: literals, variable references, arithmetic/logic,
 * selects, and array reads. Effects (stores) and control structures live in
 * statements (ir/pattern.h). Expression trees are immutable and shared via
 * shared_ptr so builder code can freely reuse subtrees.
 */

#ifndef NPP_IR_EXPR_H
#define NPP_IR_EXPR_H

#include <cmath>
#include <memory>

#include "ir/type.h"
#include "support/logging.h"

namespace npp {

/** Operators usable in Binary/Unary expressions and Reduce combiners. */
enum class Op {
    // binary arithmetic
    Add, Sub, Mul, Div, Mod, Min, Max, Pow,
    // binary comparison / logic
    Lt, Le, Gt, Ge, Eq, Ne, And, Or,
    // unary
    Neg, Not, Exp, Log, Sqrt, Abs, Floor
};

/** True if op is a unary operator. */
bool isUnaryOp(Op op);

/** True if op is associative and usable as a Reduce/GroupBy combiner. */
bool isCombinerOp(Op op);

/** Identity element of an associative combiner. */
double combinerIdentity(Op op);

/** Relative compute cost of an operator (simple ops are 1). Inline: the
 *  interpreter charges it on every Binary/Unary node it evaluates. */
inline int
opCost(Op op)
{
    switch (op) {
      case Op::Div:
      case Op::Mod:
      case Op::Sqrt:
        return 4;
      case Op::Exp:
      case Op::Log:
      case Op::Pow:
        return 8;
      default:
        return 1;
    }
}

/** Operator name for printing. */
const char *opName(Op op);

/** Expression node discriminator. */
enum class ExprKind {
    Lit,    //!< literal constant
    Var,    //!< reference to any variable (param, local, index)
    Binary, //!< binary operator
    Unary,  //!< unary operator
    Select, //!< cond ? a : b
    Read    //!< array read: array var `arrayId` at index `a`
};

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

/**
 * A single immutable expression node. Fields are used depending on `kind`;
 * unused fields keep their defaults. Construction goes through the factory
 * functions below which enforce the per-kind invariants.
 */
struct Expr
{
    ExprKind kind = ExprKind::Lit;
    Op op = Op::Add;          //!< Binary/Unary operator
    double lit = 0.0;         //!< Lit value
    int varId = -1;           //!< Var: variable id; Read: array var id
    ExprRef a, b, c;          //!< operands (Read: a = index, Select: c)
    ScalarKind type = ScalarKind::F64;

    /** Memory-trace grouping id of this static Read site. Assigned by
     *  Program::validate() as the node's pre-order position, so it is
     *  identical across rebuilds of the same program — the simulator's
     *  grouping keys must not depend on process state such as node
     *  addresses (mutable: ids are bookkeeping, not IR semantics). */
    mutable int readSite = -1;
};

/** @name Expression factories
 *  @{
 */
ExprRef lit(double v);
ExprRef litI(long long v);
ExprRef litB(bool v);
ExprRef varRef(int varId, ScalarKind kind);
ExprRef binary(Op op, ExprRef a, ExprRef b);
ExprRef unary(Op op, ExprRef a);
ExprRef select(ExprRef cond, ExprRef ifTrue, ExprRef ifFalse);
ExprRef read(int arrayVarId, ExprRef index, ScalarKind kind);
/** @} */

/** Apply a binary/unary op to already-evaluated operands. Inline: this
 *  is the interpreter's innermost dispatch, executed once per evaluated
 *  operator node, and an out-of-line call here costs more than the op. */
inline double
applyOp(Op op, double a, double b)
{
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Div: return a / b;
      case Op::Mod: return a - b * std::floor(a / b);
      case Op::Min: return a < b ? a : b;
      case Op::Max: return a > b ? a : b;
      case Op::Pow: return std::pow(a, b);
      case Op::Lt: return a < b ? 1.0 : 0.0;
      case Op::Le: return a <= b ? 1.0 : 0.0;
      case Op::Gt: return a > b ? 1.0 : 0.0;
      case Op::Ge: return a >= b ? 1.0 : 0.0;
      case Op::Eq: return a == b ? 1.0 : 0.0;
      case Op::Ne: return a != b ? 1.0 : 0.0;
      case Op::And: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
      case Op::Or: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
      case Op::Neg: return -a;
      case Op::Not: return a == 0.0 ? 1.0 : 0.0;
      case Op::Exp: return std::exp(a);
      case Op::Log: return std::log(a);
      case Op::Sqrt: return std::sqrt(a);
      case Op::Abs: return std::fabs(a);
      case Op::Floor: return std::floor(a);
    }
    NPP_PANIC("unknown op");
}

/**
 * Value wrapper enabling natural C++ operator syntax in the builder EDSL.
 * An Ex holds an ExprRef; arithmetic on Ex values constructs IR nodes.
 */
class Ex
{
  public:
    Ex() = default;
    explicit Ex(ExprRef ref) : node(std::move(ref)) {}
    /*implicit*/ Ex(double v) : node(lit(v)) {}
    /*implicit*/ Ex(int v) : node(litI(v)) {}
    /*implicit*/ Ex(long v) : node(litI(v)) {}
    /*implicit*/ Ex(long long v) : node(litI(v)) {}

    const ExprRef &ref() const { return node; }
    bool valid() const { return node != nullptr; }

  private:
    ExprRef node;
};

Ex operator+(Ex a, Ex b);
Ex operator-(Ex a, Ex b);
Ex operator*(Ex a, Ex b);
Ex operator/(Ex a, Ex b);
Ex operator%(Ex a, Ex b);
Ex operator<(Ex a, Ex b);
Ex operator<=(Ex a, Ex b);
Ex operator>(Ex a, Ex b);
Ex operator>=(Ex a, Ex b);
Ex operator==(Ex a, Ex b);
Ex operator!=(Ex a, Ex b);
Ex operator&&(Ex a, Ex b);
Ex operator||(Ex a, Ex b);
Ex operator-(Ex a);
Ex operator!(Ex a);

Ex min(Ex a, Ex b);
Ex max(Ex a, Ex b);
Ex exp(Ex a);
Ex log(Ex a);
Ex sqrt(Ex a);
Ex abs(Ex a);
Ex floor(Ex a);
Ex pow(Ex a, Ex b);
Ex sel(Ex cond, Ex ifTrue, Ex ifFalse);

} // namespace npp

#endif // NPP_IR_EXPR_H
