#include "ir/traverse.h"

#include <algorithm>

namespace npp {

void
walkExpr(const ExprRef &expr, const std::function<void(const Expr &)> &fn)
{
    if (!expr)
        return;
    fn(*expr);
    walkExpr(expr->a, fn);
    walkExpr(expr->b, fn);
    walkExpr(expr->c, fn);
}

namespace {

void
visitExpr(const ExprRef &expr, const Walker &walker, const WalkCtx &ctx)
{
    if (!expr || !walker.onExpr)
        return;
    walkExpr(expr, [&](const Expr &e) { walker.onExpr(e, ctx); });
}

void walkStmts(const std::vector<StmtPtr> &stmts, const Walker &walker,
               WalkCtx ctx);

void
walkOnePattern(const Pattern &p, const Walker &walker, WalkCtx ctx)
{
    if (walker.onPattern)
        walker.onPattern(p, ctx);
    // The size expression is evaluated in the *enclosing* scope, but for
    // weight purposes it is part of this pattern's launch, so report it at
    // this pattern's context.
    visitExpr(p.size, walker, ctx);
    walkStmts(p.body, walker, ctx);
    visitExpr(p.yield, walker, ctx);
    visitExpr(p.filterPred, walker, ctx);
    visitExpr(p.key, walker, ctx);
    visitExpr(p.keyDomain, walker, ctx);
}

void
walkStmts(const std::vector<StmtPtr> &stmts, const Walker &walker,
          WalkCtx ctx)
{
    for (const auto &s : stmts) {
        if (walker.onStmt)
            walker.onStmt(*s, ctx);
        switch (s->kind) {
          case StmtKind::Let:
          case StmtKind::Assign:
            visitExpr(s->value, walker, ctx);
            break;
          case StmtKind::Store:
            visitExpr(s->index, walker, ctx);
            visitExpr(s->value, walker, ctx);
            break;
          case StmtKind::If: {
            visitExpr(s->cond, walker, ctx);
            WalkCtx inner = ctx;
            inner.branchDepth++;
            walkStmts(s->body, walker, inner);
            walkStmts(s->elseBody, walker, inner);
            break;
          }
          case StmtKind::SeqLoop: {
            visitExpr(s->trip, walker, ctx);
            WalkCtx inner = ctx;
            inner.seqLoopDepth++;
            visitExpr(s->cond, walker, inner);
            walkStmts(s->body, walker, inner);
            break;
          }
          case StmtKind::Nested: {
            WalkCtx inner = ctx;
            inner.level++;
            walkOnePattern(*s->pattern, walker, inner);
            break;
          }
        }
    }
}

} // namespace

void
walkPattern(const Pattern &root, const Walker &walker)
{
    walkOnePattern(root, walker, WalkCtx{});
}

bool
mentionsVar(const ExprRef &expr, int varId)
{
    bool found = false;
    walkExpr(expr, [&](const Expr &e) {
        if ((e.kind == ExprKind::Var || e.kind == ExprKind::Read) &&
            e.varId == varId) {
            found = true;
        }
    });
    return found;
}

std::vector<std::pair<const Pattern *, int>>
collectPatterns(const Pattern &root)
{
    std::vector<std::pair<const Pattern *, int>> out;
    Walker walker;
    walker.onPattern = [&](const Pattern &p, const WalkCtx &ctx) {
        out.emplace_back(&p, ctx.level);
    };
    walkPattern(root, walker);
    return out;
}

int
maxTraceSite(const Pattern &root)
{
    int maxSite = -1;
    Walker walker;
    walker.onPattern = [&](const Pattern &p, const WalkCtx &) {
        maxSite = std::max(maxSite, p.site);
    };
    walker.onStmt = [&](const Stmt &s, const WalkCtx &) {
        maxSite = std::max(maxSite, s.site);
    };
    walker.onExpr = [&](const Expr &e, const WalkCtx &) {
        if (e.kind == ExprKind::Read)
            maxSite = std::max(maxSite, e.readSite);
    };
    walkPattern(root, walker);
    return maxSite;
}

} // namespace npp
