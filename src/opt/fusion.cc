#include "opt/fusion.h"

#include <functional>
#include <unordered_map>

#include "ir/affine.h"
#include "ir/traverse.h"
#include "support/logging.h"

namespace npp {

namespace {

/** Clone an expression, replacing references to `varId` with `repl`. */
ExprRef
substituteVar(const ExprRef &expr, int varId, const ExprRef &repl)
{
    if (!expr)
        return expr;
    switch (expr->kind) {
      case ExprKind::Lit:
        return expr;
      case ExprKind::Var:
        return expr->varId == varId ? repl : expr;
      case ExprKind::Binary:
        return binary(expr->op, substituteVar(expr->a, varId, repl),
                      substituteVar(expr->b, varId, repl));
      case ExprKind::Unary:
        return unary(expr->op, substituteVar(expr->a, varId, repl));
      case ExprKind::Select:
        return select(substituteVar(expr->a, varId, repl),
                      substituteVar(expr->b, varId, repl),
                      substituteVar(expr->c, varId, repl));
      case ExprKind::Read:
        return read(expr->varId, substituteVar(expr->a, varId, repl),
                    expr->type);
    }
    return expr;
}

/** Clone an expression, replacing reads of array `arrayId` at any index
 *  expression `e` with subst(producer yield, producer index -> e). */
ExprRef
substituteReads(const ExprRef &expr, int arrayId, int producerIndexVar,
                const ExprRef &producerYield)
{
    if (!expr)
        return expr;
    if (expr->kind == ExprKind::Read && expr->varId == arrayId) {
        const ExprRef idx = substituteReads(
            expr->a, arrayId, producerIndexVar, producerYield);
        return substituteVar(producerYield, producerIndexVar, idx);
    }
    switch (expr->kind) {
      case ExprKind::Lit:
      case ExprKind::Var:
        return expr;
      case ExprKind::Binary:
        return binary(expr->op,
                      substituteReads(expr->a, arrayId, producerIndexVar,
                                      producerYield),
                      substituteReads(expr->b, arrayId, producerIndexVar,
                                      producerYield));
      case ExprKind::Unary:
        return unary(expr->op,
                     substituteReads(expr->a, arrayId, producerIndexVar,
                                     producerYield));
      case ExprKind::Select:
        return select(substituteReads(expr->a, arrayId, producerIndexVar,
                                      producerYield),
                      substituteReads(expr->b, arrayId, producerIndexVar,
                                      producerYield),
                      substituteReads(expr->c, arrayId, producerIndexVar,
                                      producerYield));
      case ExprKind::Read:
        return read(expr->varId,
                    substituteReads(expr->a, arrayId, producerIndexVar,
                                    producerYield),
                    expr->type);
    }
    return expr;
}

/** Count uses of array `varId` anywhere under the statement list. */
int
countUses(const std::vector<StmtPtr> &stmts, int varId)
{
    int uses = 0;
    auto scanExpr = [&](const ExprRef &e) {
        walkExpr(e, [&](const Expr &node) {
            if ((node.kind == ExprKind::Read ||
                 node.kind == ExprKind::Var) &&
                node.varId == varId) {
                uses++;
            }
        });
    };
    std::function<void(const std::vector<StmtPtr> &)> scan =
        [&](const std::vector<StmtPtr> &body) {
            for (const auto &s : body) {
                scanExpr(s->value);
                scanExpr(s->index);
                scanExpr(s->cond);
                scanExpr(s->trip);
                scan(s->body);
                scan(s->elseBody);
                if (s->pattern) {
                    scanExpr(s->pattern->size);
                    scanExpr(s->pattern->yield);
                    scanExpr(s->pattern->filterPred);
                    scanExpr(s->pattern->key);
                    scan(s->pattern->body);
                }
            }
        };
    scan(stmts);
    return uses;
}

int
countUsesInPattern(const Pattern &p, int varId)
{
    int uses = countUses(p.body, varId);
    auto scanExpr = [&](const ExprRef &e) {
        int n = 0;
        walkExpr(e, [&](const Expr &node) {
            if ((node.kind == ExprKind::Read ||
                 node.kind == ExprKind::Var) &&
                node.varId == varId) {
                n++;
            }
        });
        return n;
    };
    uses += scanExpr(p.yield);
    uses += scanExpr(p.filterPred);
    uses += scanExpr(p.key);
    uses += scanExpr(p.size);
    return uses;
}

class Fuser
{
  public:
    Fuser(Program &prog, int &fused) : prog(prog), fused(fused) {}

    void
    run()
    {
        fuseBody(prog.root().body, prog.root().yield);
    }

  private:
    /** Build the producer's effective yield with its lets inlined;
     *  returns null if the body has anything but Lets. */
    ExprRef
    flattenedYield(const Pattern &map)
    {
        std::unordered_map<int, ExprRef> defs;
        for (const auto &s : map.body) {
            if (s->kind != StmtKind::Let || prog.var(s->var).isMutable)
                return nullptr;
            AnalysisEnv env;
            env.localDefs = defs;
            defs[s->var] = resolveLocals(s->value, env);
        }
        AnalysisEnv env;
        env.localDefs = defs;
        return resolveLocals(map.yield, env);
    }

    void
    fuseBody(std::vector<StmtPtr> &stmts, ExprRef &enclosingYield)
    {
        for (size_t i = 0; i < stmts.size(); i++) {
            Stmt &s = *stmts[i];
            // Recurse first (inner bodies may fuse independently).
            if (s.kind == StmtKind::Nested) {
                fuseBody(s.pattern->body, s.pattern->yield);
            } else if (s.kind == StmtKind::If) {
                ExprRef none;
                fuseBody(s.body, none);
                fuseBody(s.elseBody, none);
            } else if (s.kind == StmtKind::SeqLoop) {
                ExprRef none;
                fuseBody(s.body, none);
            }

            if (s.kind != StmtKind::Nested || s.var < 0)
                continue;
            if (prog.var(s.var).role != VarRole::ArrayLocal)
                continue;
            const Pattern &map = *s.pattern;
            if (map.kind != PatternKind::Map &&
                map.kind != PatternKind::ZipWith) {
                continue;
            }
            ExprRef producer = flattenedYield(map);
            if (!producer)
                continue;

            // The consumer must be a later Reduce in this list that
            // accounts for every remaining use of the array.
            int totalUses = 0;
            for (size_t j = i + 1; j < stmts.size(); j++) {
                std::vector<StmtPtr> one;
                one.push_back(cloneStmt(*stmts[j]));
                totalUses += countUses(one, s.var);
            }
            if (enclosingYield && mentionsVar(enclosingYield, s.var))
                totalUses++; // cannot fuse a direct yield of the array

            Stmt *consumer = nullptr;
            for (size_t j = i + 1; j < stmts.size(); j++) {
                if (stmts[j]->kind == StmtKind::Nested &&
                    stmts[j]->pattern->kind == PatternKind::Reduce) {
                    consumer = stmts[j].get();
                    break;
                }
            }
            if (!consumer)
                continue;
            const int consumerUses =
                countUsesInPattern(*consumer->pattern, s.var);
            if (consumerUses == 0 || consumerUses != totalUses)
                continue;

            // Substitute and drop the producer.
            Pattern &red = *consumer->pattern;
            red.yield = substituteReads(red.yield, s.var, map.indexVar,
                                        producer);
            for (auto &rs : red.body)
                substituteInStmt(*rs, s.var, map.indexVar, producer);
            red.size = substituteReads(red.size, s.var, map.indexVar,
                                       producer);
            stmts.erase(stmts.begin() + i);
            fused++;
            i--; // re-examine this position
        }
    }

    void
    substituteInStmt(Stmt &s, int arrayId, int idxVar,
                     const ExprRef &producer)
    {
        s.value = substituteReads(s.value, arrayId, idxVar, producer);
        s.index = substituteReads(s.index, arrayId, idxVar, producer);
        s.cond = substituteReads(s.cond, arrayId, idxVar, producer);
        s.trip = substituteReads(s.trip, arrayId, idxVar, producer);
        for (auto &b : s.body)
            substituteInStmt(*b, arrayId, idxVar, producer);
        for (auto &b : s.elseBody)
            substituteInStmt(*b, arrayId, idxVar, producer);
        if (s.pattern) {
            s.pattern->size = substituteReads(s.pattern->size, arrayId,
                                              idxVar, producer);
            s.pattern->yield = substituteReads(s.pattern->yield, arrayId,
                                               idxVar, producer);
            for (auto &b : s.pattern->body)
                substituteInStmt(*b, arrayId, idxVar, producer);
        }
    }

    Program &prog;
    int &fused;
};

} // namespace

FusionResult
fuseMapReduce(const Program &prog)
{
    FusionResult result;
    // Clone into a fresh Program with an identical variable table so
    // bindings against the original stay valid.
    auto copy = std::make_shared<Program>(prog.name());
    for (const auto &v : prog.vars()) {
        VarInfo info = v;
        copy->addVar(info);
    }
    copy->setRoot(clonePattern(prog.root()));
    copy->setRootOutput(prog.rootOutput());
    copy->setCountOutput(prog.countOutput());
    for (const auto &[var, hint] : prog.sizeHints())
        copy->setSizeHint(var, hint);

    Fuser fuser(*copy, result.fused);
    fuser.run();
    result.program = std::move(copy);
    return result;
}

} // namespace npp
