#include "opt/prealloc.h"

#include "ir/affine.h"
#include "ir/traverse.h"

namespace npp {

std::vector<LocalArrayPlan>
planLocalArrays(const Program &prog, const MappingDecision &mapping,
                const PreallocOptions &options)
{
    std::vector<LocalArrayPlan> plans;
    Walker walker;
    walker.onStmt = [&](const Stmt &s, const WalkCtx &ctx) {
        if (s.kind != StmtKind::Nested || s.var < 0)
            return;
        if (prog.var(s.var).role != VarRole::ArrayLocal)
            return;
        LocalArrayPlan plan;
        plan.varId = s.var;
        plan.definingLevel = ctx.level + 1;
        plan.variableSize = s.pattern->kind == PatternKind::Filter;
        // Preallocation needs the same allocation size across outer
        // iterations, i.e. a launch-known allocation size (Section V-A).
        // For variable-size outputs (nested Filter) that is the static
        // upper bound — the full index domain; for nested GroupBy it is
        // the key-domain size.
        const bool preallocatable =
            options.enable &&
            sizeKnownAtLaunch(s.pattern->allocSize(), prog);
        plan.mode = preallocatable ? LocalArrayPlan::Mode::Prealloc
                                   : LocalArrayPlan::Mode::ThreadMalloc;
        if (options.enable && options.layoutFromMapping &&
            plan.definingLevel < mapping.numLevels()) {
            const bool innerIsX =
                mapping.levels[plan.definingLevel].dim == 0;
            plan.layout = innerIsX ? LocalArrayPlan::Layout::Contiguous
                                   : LocalArrayPlan::Layout::Interleaved;
        } else {
            plan.layout = LocalArrayPlan::Layout::Contiguous;
        }
        plans.push_back(plan);
    };
    walkPattern(prog.root(), walker);
    return plans;
}

} // namespace npp
