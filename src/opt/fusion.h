/**
 * @file
 * Vertical map-reduce fusion: a nested Map/ZipWith whose result array is
 * consumed only element-wise by a following Reduce at the same level is
 * inlined into the reduce's yield, eliminating the intermediate
 * allocation entirely. This matters most when the inner size is
 * dynamic (e.g. PageRank's per-node neighbor weights, Fig 5), where
 * preallocation is impossible and the naive translation would call
 * malloc per thread.
 *
 * The pass is opt-in (CompileOptions::fuseMapReduce): the paper's
 * Section V experiments deliberately study the materialized form.
 */

#ifndef NPP_OPT_FUSION_H
#define NPP_OPT_FUSION_H

#include <memory>

#include "ir/program.h"

namespace npp {

/** Result of the fusion pass. */
struct FusionResult
{
    /** Rewritten program (variable table layout is preserved, so
     *  bindings created against the original program remain valid). */
    std::shared_ptr<Program> program;

    /** Number of map-reduce pairs fused. */
    int fused = 0;
};

/** Apply vertical map-reduce fusion to every body in the program. */
FusionResult fuseMapReduce(const Program &prog);

} // namespace npp

#endif // NPP_OPT_FUSION_H
