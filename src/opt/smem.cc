#include "opt/smem.h"

#include <cmath>

#include "ir/traverse.h"

namespace npp {

namespace {

class PrefetchFinder
{
  public:
    PrefetchFinder(const Program &prog, const MappingDecision &mapping,
                   const AnalysisEnv &env, PrefetchPlan &out)
        : prog(prog), mapping(mapping), env(env), out(out)
    {
        // Does any deeper level provide x-lanes to prefetch with?
        deepestXLevel = -1;
        for (int lv = 0; lv < mapping.numLevels(); lv++) {
            if (mapping.levels[lv].dim == 0 &&
                mapping.levels[lv].blockSize >= 32) {
                deepestXLevel = lv;
            }
        }
    }

    void
    run()
    {
        visitPattern(prog.root(), 0);
    }

  private:
    void
    visitPattern(const Pattern &p, int level)
    {
        indexVars.push_back(p.indexVar);
        visitStmts(p.body, level);
        // The yield of a non-innermost pattern executes per own-level
        // iteration too, but yields feed stores handled elsewhere; treat
        // yield reads like body reads.
        scanExpr(p.yield, level, p.indexVar);
        scanExpr(p.filterPred, level, p.indexVar);
        scanExpr(p.key, level, p.indexVar);
        indexVars.pop_back();
    }

    void
    visitStmts(const std::vector<StmtPtr> &stmts, int level)
    {
        const int ownIndex = indexVars.back();
        for (const auto &s : stmts) {
            switch (s->kind) {
              case StmtKind::Let:
              case StmtKind::Assign:
                scanExpr(s->value, level, ownIndex);
                if (s->kind == StmtKind::Let &&
                    !prog.var(s->var).isMutable) {
                    env.localDefs[s->var] =
                        resolveLocals(s->value, env);
                }
                break;
              case StmtKind::Store:
                scanExpr(s->value, level, ownIndex);
                scanExpr(s->index, level, ownIndex);
                break;
              case StmtKind::If:
                scanExpr(s->cond, level, ownIndex);
                visitStmts(s->body, level);
                visitStmts(s->elseBody, level);
                break;
              case StmtKind::SeqLoop:
                scanExpr(s->trip, level, ownIndex);
                visitStmts(s->body, level);
                break;
              case StmtKind::Nested:
                scanExpr(s->pattern->size, level, ownIndex);
                visitPattern(*s->pattern, level + 1);
                break;
            }
        }
    }

    void
    scanExpr(const ExprRef &expr, int level, int ownIndex)
    {
        if (!expr)
            return;
        walkExpr(expr, [&](const Expr &e) {
            if (e.kind != ExprKind::Read)
                return;
            maybeAdd(e, level, ownIndex);
        });
    }

    void
    maybeAdd(const Expr &readExpr, int level, int ownIndex)
    {
        // Imperfect nesting: the read must be strictly above the deepest
        // x level (there must be inner x-lanes idle during this read).
        if (deepestXLevel < 0 || level >= deepestXLevel)
            return;
        // Level already on x: accesses are already coalesced.
        if (mapping.levels[level].dim == 0)
            return;
        // Global arrays only; preallocated locals pick their own layout.
        if (prog.var(readExpr.varId).role != VarRole::ArrayParam)
            return;
        // Contiguous chunk along this level's index.
        auto coeff = coeffOf(resolveLocals(readExpr.a, env), ownIndex,
                             env);
        if (!coeff || std::fabs(*coeff) != 1.0)
            return;

        if (out.sites.insert(&readExpr).second) {
            // Staging buffer: one element per level-L lane in the block.
            const int64_t lanes =
                std::max<int64_t>(1, mapping.levels[level].blockSize);
            out.sharedBytes +=
                lanes * scalarBytes(prog.var(readExpr.varId).kind);
        }
    }

    const Program &prog;
    const MappingDecision &mapping;
    AnalysisEnv env; // mutable copy: accumulates local definitions
    PrefetchPlan &out;
    std::vector<int> indexVars;
    int deepestXLevel = -1;
};

} // namespace

PrefetchPlan
findPrefetchable(const Program &prog, const MappingDecision &mapping,
                 const AnalysisEnv &env)
{
    PrefetchPlan out;
    PrefetchFinder finder(prog, mapping, env, out);
    finder.run();
    return out;
}

} // namespace npp
