/**
 * @file
 * Shared-memory prefetching for imperfectly nested patterns
 * (Section V-B): when memory reads exist outside the innermost pattern,
 * the generated kernel uses the threads of dimension x to fetch a
 * contiguous chunk of the outer-level data into shared memory, fixing
 * both the idle-thread underutilization and the outer access pattern.
 */

#ifndef NPP_OPT_SMEM_H
#define NPP_OPT_SMEM_H

#include <unordered_set>

#include "analysis/mapping.h"
#include "ir/affine.h"

namespace npp {

/** Result of the prefetch analysis. */
struct PrefetchPlan
{
    /** Read expressions staged through shared memory. */
    std::unordered_set<const Expr *> sites;
    /** Shared memory bytes per block needed for the staging buffers. */
    int64_t sharedBytes = 0;
};

/**
 * Find outer-level reads worth staging through shared memory for the
 * given mapping. A read qualifies when:
 *  - it sits at a non-innermost level L (the nest is imperfect),
 *  - its address does not depend on any level deeper than L,
 *  - its stride in level L's index is +-1 (a contiguous chunk exists),
 *  - level L is not already mapped to dimension x, and
 *  - some deeper level is mapped to x with at least a warp of threads
 *    (there are lanes to prefetch with).
 */
PrefetchPlan
findPrefetchable(const Program &prog, const MappingDecision &mapping,
                 const AnalysisEnv &env);

} // namespace npp

#endif // NPP_OPT_SMEM_H
