/**
 * @file
 * Dynamic-memory-allocation optimization (Section V-A): inner patterns
 * that produce arrays would naively call malloc per outer iteration;
 * instead the compiler preallocates one region for the whole kernel and,
 * using the mapping decision, picks the physical layout (contiguous or
 * interleaved, Fig 11) that makes the accesses coalesce.
 */

#ifndef NPP_OPT_PREALLOC_H
#define NPP_OPT_PREALLOC_H

#include "codegen/plan.h"

namespace npp {

/** Options for the preallocation pass (the Fig 16 ablation switches). */
struct PreallocOptions
{
    /** Preallocate instead of per-thread malloc. */
    bool enable = true;
    /** Choose layout from the mapping (false = always contiguous, the
     *  fixed row-major strategy of the Fig 16 middle bar). */
    bool layoutFromMapping = true;
};

/**
 * Build the allocation plan for every ArrayLocal in the program.
 * The layout rule: if the defining (inner) level is mapped to dimension
 * x, adjacent threads differ in the element index, so Contiguous
 * (Fig 11a) coalesces; otherwise adjacent threads differ in the outer
 * index and Interleaved (Fig 11b) coalesces.
 */
std::vector<LocalArrayPlan>
planLocalArrays(const Program &prog, const MappingDecision &mapping,
                const PreallocOptions &options = {});

} // namespace npp

#endif // NPP_OPT_PREALLOC_H
