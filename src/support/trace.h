/**
 * @file
 * Low-overhead tracing and counting registry for the whole pipeline.
 *
 * Usage sites annotate scopes and events:
 *
 *     void compile(...) {
 *         NPP_TRACE_SCOPE("compile");          // timed span
 *         NPP_TRACE_COUNT("compile.calls", 1); // named counter
 *         ...
 *     }
 *
 * Cost model:
 *  - compiled out entirely when NPP_TRACE_DISABLED is defined (the
 *    macros expand to nothing — enforced by tests/support/trace_test);
 *  - when compiled in but disabled (the default), each macro is one
 *    relaxed atomic load and a branch — no clock reads, no locks, no
 *    allocation, so instrumented hot paths (parallelFor bodies, cache
 *    probes) stay bit-identical in behavior and effectively free;
 *  - when enabled, spans and counters go through a mutex-guarded
 *    registry (the instrumented regions are milliseconds-coarse, so
 *    lock cost is irrelevant) that is safe under the task pool.
 *
 * The span store is a bounded ring buffer (NPP_TRACE_MAX_SPANS slots,
 * default 1<<20): once full, each new span overwrites the oldest one
 * and bumps droppedSpans, so a long sweep's export always holds its
 * most recent window rather than whatever happened first.
 *
 * Exporters: chrome://tracing "traceEvents" JSON (load the file via the
 * about:tracing UI or Perfetto) and a flat JSON summary of counters and
 * per-name timer aggregates.
 *
 * Enabling: programmatic via Trace::instance().setEnabled(true) (the
 * --trace flags in nppc and the bench binaries do this), or ambient via
 * the NPP_TRACE=1 environment variable.
 */

#ifndef NPP_SUPPORT_TRACE_H
#define NPP_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace npp {

/** True when the tracing macros are compiled in (see NPP_TRACE_DISABLED). */
#ifdef NPP_TRACE_DISABLED
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

/** Aggregate of all spans recorded under one name. */
struct TraceTimerStat
{
    uint64_t count = 0;
    double totalUs = 0.0;
    double minUs = 0.0;
    double maxUs = 0.0;
};

/**
 * Process-global trace registry. All methods are thread-safe; the
 * enabled gate is a relaxed atomic so disabled call sites never touch
 * the mutex.
 */
class Trace
{
  public:
    static Trace &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /** Microseconds since the registry was created (steady clock). */
    double nowUs() const;

    /** Add `delta` to the named counter. */
    void count(const char *name, double delta = 1.0);

    /** Record a completed span [beginUs, endUs] (ScopedTimer calls this). */
    void span(const char *name, double beginUs, double endUs);

    /** @name Exporters
     *  @{
     */
    std::string chromeTraceJson() const;
    std::string flatJson() const;
    /** Write an exporter's output to a file; warns and returns false on
     *  I/O failure. */
    bool writeChromeTrace(const std::string &path) const;
    bool writeFlatJson(const std::string &path) const;
    /** @} */

    /** @name Introspection for tests and reports
     *  @{
     */
    double counterValue(const std::string &name) const;
    TraceTimerStat timerStat(const std::string &name) const;
    uint64_t spanCount() const;
    /** Spans overwritten by the ring buffer (each wrap evicts — and
     *  counts — the oldest span). */
    uint64_t droppedSpans() const;
    /** Ring capacity in effect (NPP_TRACE_MAX_SPANS, default 1<<20). */
    uint64_t maxSpans() const;
    /** @} */

    /** Drop all recorded spans and counters (keeps the enabled state). */
    void clear();

  private:
    Trace();

    struct Impl;
    Impl *impl_;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII span: samples the clock on construction and records the span on
 * destruction. The enabled gate is sampled once, at construction, so a
 * span whose scope straddles setEnabled() is either fully recorded or
 * fully skipped.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name)
    {
        Trace &t = Trace::instance();
        if (t.enabled()) {
            name_ = name;
            beginUs_ = t.nowUs();
        }
    }

    ~ScopedTimer()
    {
        if (name_) {
            Trace &t = Trace::instance();
            t.span(name_, beginUs_, t.nowUs());
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const char *name_ = nullptr;
    double beginUs_ = 0.0;
};

} // namespace npp

#ifdef NPP_TRACE_DISABLED

#define NPP_TRACE_SCOPE(name) \
    do {                      \
    } while (0)
#define NPP_TRACE_COUNT(name, delta) \
    do {                             \
    } while (0)

#else

#define NPP_TRACE_CONCAT_(a, b) a##b
#define NPP_TRACE_CONCAT(a, b) NPP_TRACE_CONCAT_(a, b)

/** Time the enclosing scope under `name` (a string literal). */
#define NPP_TRACE_SCOPE(name) \
    ::npp::ScopedTimer NPP_TRACE_CONCAT(nppTraceScope_, __LINE__)(name)

/** Add `delta` to counter `name` (string literal) when tracing is on. */
#define NPP_TRACE_COUNT(name, delta)                         \
    do {                                                     \
        if (::npp::Trace::instance().enabled())              \
            ::npp::Trace::instance().count((name), (delta)); \
    } while (0)

#endif // NPP_TRACE_DISABLED

#endif // NPP_SUPPORT_TRACE_H
