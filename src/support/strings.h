/**
 * @file
 * Small string formatting utilities. GCC 12's libstdc++ lacks std::format,
 * so fmt() provides a positional "{}" replacement formatter that is good
 * enough for diagnostics and report printing.
 */

#ifndef NPP_SUPPORT_STRINGS_H
#define NPP_SUPPORT_STRINGS_H

#include <sstream>
#include <string>
#include <vector>

namespace npp {

namespace detail {

inline void
appendOne(std::ostringstream &os, const std::string &v)
{
    os << v;
}

inline void
appendOne(std::ostringstream &os, const char *v)
{
    os << v;
}

inline void
appendOne(std::ostringstream &os, bool v)
{
    os << (v ? "true" : "false");
}

template <typename T>
void
appendOne(std::ostringstream &os, const T &v)
{
    os << v;
}

inline void
fmtRec(std::ostringstream &os, const char *p)
{
    os << p;
}

template <typename T, typename... Rest>
void
fmtRec(std::ostringstream &os, const char *p, const T &v, Rest &&...rest)
{
    while (*p) {
        if (p[0] == '{' && p[1] == '}') {
            appendOne(os, v);
            fmtRec(os, p + 2, std::forward<Rest>(rest)...);
            return;
        }
        os << *p++;
    }
    // More arguments than placeholders: append space-separated.
    os << ' ';
    appendOne(os, v);
    fmtRec(os, p, std::forward<Rest>(rest)...);
}

} // namespace detail

/** Format a message by substituting "{}" placeholders in order. */
template <typename... Args>
std::string
fmt(const char *pattern, Args &&...args)
{
    std::ostringstream os;
    detail::fmtRec(os, pattern, std::forward<Args>(args)...);
    return os.str();
}

inline std::string
fmt()
{
    return {};
}

inline std::string
fmt(const std::string &s)
{
    return s;
}

/** Join elements with a separator using operator<<. */
template <typename Seq>
std::string
join(const Seq &seq, const std::string &sep)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &e : seq) {
        if (!first)
            os << sep;
        os << e;
        first = false;
    }
    return os.str();
}

/** Repeat a string n times. */
std::string repeat(const std::string &s, int n);

/** Left-pad a string to the given width with spaces. */
std::string padLeft(const std::string &s, int width);

/** Right-pad a string to the given width with spaces. */
std::string padRight(const std::string &s, int width);

/** Format a double with fixed precision. */
std::string fixed(double v, int precision);

} // namespace npp

#endif // NPP_SUPPORT_STRINGS_H
