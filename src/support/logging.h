/**
 * @file
 * Diagnostic helpers in the gem5 spirit: panic() for internal invariant
 * violations (a bug in this library), fatal() for unrecoverable user errors
 * (bad program, bad configuration), warn()/inform() for status output.
 */

#ifndef NPP_SUPPORT_LOGGING_H
#define NPP_SUPPORT_LOGGING_H

#include <string>

#include "support/strings.h"

namespace npp {

/** Print a panic message (library bug) and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print a fatal message (user error) and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace npp

#define NPP_PANIC(...) \
    ::npp::panicImpl(__FILE__, __LINE__, ::npp::fmt(__VA_ARGS__))

#define NPP_FATAL(...) \
    ::npp::fatalImpl(__FILE__, __LINE__, ::npp::fmt(__VA_ARGS__))

#define NPP_WARN(...) ::npp::warnImpl(::npp::fmt(__VA_ARGS__))

#define NPP_INFORM(...) ::npp::informImpl(::npp::fmt(__VA_ARGS__))

/** Internal invariant check; failure is a library bug, not a user error. */
#define NPP_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::npp::panicImpl(__FILE__, __LINE__,                           \
                             std::string("assertion failed: " #cond " ") + \
                                 ::npp::fmt(__VA_ARGS__));                 \
        }                                                                  \
    } while (0)

#endif // NPP_SUPPORT_LOGGING_H
