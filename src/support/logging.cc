#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace npp {

namespace {
bool verboseEnabled = true;
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseEnabled)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace npp
