/**
 * @file
 * Host-side parallel execution substrate: a lazily-started persistent task
 * pool plus chunked parallelFor / parallelMap helpers with deterministic
 * result ordering. The compile-and-simulate pipeline uses this to evaluate
 * independent mapping candidates concurrently (autotune trials, candidate
 * scoring, figure sweeps) without changing any observable result order.
 *
 * Design points:
 *  - Results are deterministic: parallelMap returns results indexed by the
 *    input position, never by completion order. Any reduction over the
 *    results must be folded by the caller in index order if it is
 *    order-sensitive (floating-point ties, first-wins selection).
 *  - Nested use is safe but not nested-parallel: a parallelFor issued from
 *    inside a worker runs inline on the calling thread. This keeps the
 *    pool deadlock-free without a work-stealing scheduler.
 *  - Exceptions thrown by body functions are captured and rethrown on the
 *    calling thread after all chunks finish (first failing chunk by index
 *    wins, deterministically).
 *  - Thread count: hardware_concurrency, overridable with NPP_THREADS
 *    (NPP_THREADS=1 forces fully serial inline execution).
 */

#ifndef NPP_SUPPORT_PARALLEL_H
#define NPP_SUPPORT_PARALLEL_H

#include <cstdint>
#include <functional>
#include <vector>

namespace npp {

/** Number of worker threads the pool targets (>= 1). Reads NPP_THREADS on
 *  first use; 1 means all parallel helpers degrade to inline loops. */
int parallelThreadCount();

/** Override the thread count programmatically (benches compare serial vs
 *  parallel in one process). 0 restores the default/NPP_THREADS value.
 *  Must not be called from inside a parallel region. */
void setParallelThreadCount(int threads);

/** True while the calling thread is executing inside a parallelFor body
 *  (worker or participating caller). Nested parallel calls run inline. */
bool inParallelRegion();

/**
 * Run body(i) for every i in [begin, end), distributing contiguous chunks
 * over the task pool. The calling thread participates. Returns after every
 * iteration completed; rethrows the first (lowest-index) captured
 * exception if any body threw.
 *
 * `grain` is the minimum number of iterations per chunk; 0 picks a chunk
 * size that yields ~4 chunks per thread.
 */
void parallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)> &body,
                 int64_t grain = 0);

/**
 * Map fn over [0, n) and collect results in input order. fn must be
 * invocable concurrently from multiple threads.
 */
template <typename T>
std::vector<T>
parallelMap(int64_t n, const std::function<T(int64_t)> &fn, int64_t grain = 0)
{
    std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
    parallelFor(
        0, n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); }, grain);
    return out;
}

} // namespace npp

#endif // NPP_SUPPORT_PARALLEL_H
