/**
 * @file
 * Hardened environment-variable parsing. Every NPP_* knob goes through
 * parseEnvInt / parseEnvBool so that garbage, zero/negative, and
 * out-of-range values produce one logged warning and a sane fallback
 * instead of a silent misconfiguration (NPP_THREADS=abc used to mean
 * "1 thread", NPP_EVAL_CACHE_MB=-1 used to mean "cache disabled by
 * overflow", NPP_EVAL_CACHE=off used to mean "cache enabled").
 */

#ifndef NPP_SUPPORT_ENV_H
#define NPP_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace npp {

/**
 * Read an integer environment variable with validation.
 *
 * Returns `fallback` (without a warning) when the variable is unset.
 * Otherwise the value must parse completely as a decimal integer and lie
 * inside [lo, hi]; non-numeric text, trailing junk, overflow, and
 * out-of-range values log one NPP_WARN naming the variable and the
 * accepted range, then return `fallback`.
 */
int64_t parseEnvInt(const char *name, int64_t fallback, int64_t lo,
                    int64_t hi);

/**
 * Read a boolean environment variable with validation (same
 * warn+fallback contract as parseEnvInt).
 *
 * Returns `fallback` (without a warning) when the variable is unset.
 * Accepted spellings, case-insensitive and whitespace-trimmed:
 * "1"/"true"/"on"/"yes" for true, "0"/"false"/"off"/"no" for false.
 * Anything else ("00", "disable", "2", "") logs one NPP_WARN naming the
 * variable and the accepted spellings, then returns `fallback`.
 */
bool parseEnvBool(const char *name, bool fallback);

/**
 * Read a string environment variable with hardening.
 *
 * Returns the value with leading/trailing whitespace trimmed. Unset,
 * empty, and whitespace-only values all return `fallback` — an exported
 * `NPP_EVAL_CACHE_DIR=""` must mean "unset", not "disk cache rooted at
 * the current directory". No warning is logged: an empty string is a
 * legitimate way to clear a knob.
 */
std::string parseEnvString(const char *name,
                           const std::string &fallback = {});

} // namespace npp

#endif // NPP_SUPPORT_ENV_H
