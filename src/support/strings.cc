#include "support/strings.h"

#include <iomanip>

namespace npp {

std::string
repeat(const std::string &s, int n)
{
    std::string out;
    out.reserve(s.size() * std::max(n, 0));
    for (int i = 0; i < n; i++)
        out += s;
    return out;
}

std::string
padLeft(const std::string &s, int width)
{
    if ((int)s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, int width)
{
    if ((int)s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace npp
