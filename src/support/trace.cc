#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "support/env.h"
#include "support/logging.h"

namespace npp {

namespace {

/** Default span capacity: ~48 MB of event storage at worst. The span
 *  store is a ring buffer — past the capacity the oldest spans are
 *  overwritten (and counted as dropped), so a long sweep keeps its most
 *  recent window instead of freezing the registry at startup spans (a
 *  sweep over a large figure can emit millions of cache-probe spans).
 *  Long multi-device sweeps can raise it with NPP_TRACE_MAX_SPANS. */
constexpr int64_t kDefaultMaxSpans = int64_t(1) << 20;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // Plain decimal with enough digits to round-trip microsecond spans.
    std::ostringstream os;
    os.precision(15);
    os << v;
    return os.str();
}

int
currentThreadId()
{
    static std::mutex mu;
    static std::map<std::thread::id, int> ids;
    thread_local int cached = -1;
    if (cached < 0) {
        std::lock_guard<std::mutex> lock(mu);
        auto [it, fresh] =
            ids.try_emplace(std::this_thread::get_id(),
                            static_cast<int>(ids.size()) + 1);
        (void)fresh;
        cached = it->second;
    }
    return cached;
}

} // namespace

struct Trace::Impl
{
    struct Span
    {
        const char *name;
        double beginUs;
        double durUs;
        int tid;
    };

    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    mutable std::mutex mu;
    /** Ring buffer: grows to maxSpans, then wraps. `head` is the next
     *  overwrite slot — equivalently the oldest retained span — once
     *  the buffer is full (0 while it is still growing). */
    std::vector<Span> spans;
    size_t head = 0;
    size_t maxSpans = static_cast<size_t>(kDefaultMaxSpans);
    uint64_t dropped = 0;
    bool warnedDrop = false;
    std::map<std::string, double> counters;

    /** Visit retained spans oldest-first (chronological order), however
     *  the ring has wrapped. Caller holds `mu`. */
    template <typename F>
    void
    eachSpan(F &&fn) const
    {
        const size_t n = spans.size();
        for (size_t i = 0; i < n; i++)
            fn(spans[(head + i) % n]);
    }
};

Trace::Trace()
    : impl_(new Impl)
{
    if (parseEnvBool("NPP_TRACE", false))
        enabled_.store(true, std::memory_order_relaxed);
    // Cap bounded below by 1 (a zero cap would make every span a drop
    // warning) and above well short of vector-capacity overflow.
    impl_->maxSpans = static_cast<size_t>(parseEnvInt(
        "NPP_TRACE_MAX_SPANS", kDefaultMaxSpans, 1, int64_t(1) << 31));
}

Trace &
Trace::instance()
{
    // Leaked intentionally: instrumented scopes may unwind during static
    // destruction.
    static Trace *trace = new Trace();
    return *trace;
}

void
Trace::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

double
Trace::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - impl_->epoch)
        .count();
}

void
Trace::count(const char *name, double delta)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->counters[name] += delta;
}

void
Trace::span(const char *name, double beginUs, double endUs)
{
    const int tid = currentThreadId();
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->spans.size() >= impl_->maxSpans) {
        // Ring wrap: keep the newest window, overwrite the oldest span
        // and count it as dropped.
        impl_->dropped++;
        if (!impl_->warnedDrop) {
            impl_->warnedDrop = true;
            NPP_WARN("trace span capacity ({}) reached; the registry "
                     "now overwrites its oldest spans (overwrites are "
                     "counted as droppedSpans / dropped_spans in the "
                     "flat-JSON export; raise the capacity with "
                     "NPP_TRACE_MAX_SPANS)",
                     impl_->maxSpans);
        }
        impl_->spans[impl_->head] = {name, beginUs, endUs - beginUs, tid};
        impl_->head = (impl_->head + 1) % impl_->maxSpans;
        return;
    }
    impl_->spans.push_back({name, beginUs, endUs - beginUs, tid});
}

std::string
Trace::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    impl_->eachSpan([&](const Impl::Span &s) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(s.name)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
           << ",\"ts\":" << jsonNumber(s.beginUs)
           << ",\"dur\":" << jsonNumber(std::max(s.durUs, 0.0)) << "}";
    });
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

std::string
Trace::flatJson() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);

    // Aggregate spans by name (std::map: deterministic output order).
    std::map<std::string, TraceTimerStat> timers;
    impl_->eachSpan([&](const Impl::Span &s) {
        TraceTimerStat &t = timers[s.name];
        if (t.count == 0) {
            t.minUs = s.durUs;
            t.maxUs = s.durUs;
        }
        t.count++;
        t.totalUs += s.durUs;
        t.minUs = std::min(t.minUs, s.durUs);
        t.maxUs = std::max(t.maxUs, s.durUs);
    });

    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : impl_->counters) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
    }
    os << "},\"timers\":{";
    first = true;
    for (const auto &[name, t] : timers) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":{\"count\":" << t.count
           << ",\"total_us\":" << jsonNumber(t.totalUs)
           << ",\"min_us\":" << jsonNumber(t.minUs)
           << ",\"max_us\":" << jsonNumber(t.maxUs) << "}";
    }
    os << "},\"span_count\":" << impl_->spans.size()
       << ",\"max_spans\":" << impl_->maxSpans
       << ",\"dropped_spans\":" << impl_->dropped << "}";
    return os.str();
}

namespace {

bool
writeWholeFile(const std::string &path, const std::string &contents)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        NPP_WARN("cannot open {} for writing", path);
        return false;
    }
    const bool ok =
        std::fwrite(contents.data(), 1, contents.size(), f) ==
        contents.size();
    std::fclose(f);
    if (!ok)
        NPP_WARN("short write to {}", path);
    return ok;
}

} // namespace

bool
Trace::writeChromeTrace(const std::string &path) const
{
    return writeWholeFile(path, chromeTraceJson());
}

bool
Trace::writeFlatJson(const std::string &path) const
{
    return writeWholeFile(path, flatJson());
}

double
Trace::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->counters.find(name);
    return it == impl_->counters.end() ? 0.0 : it->second;
}

TraceTimerStat
Trace::timerStat(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    TraceTimerStat t;
    impl_->eachSpan([&](const Impl::Span &s) {
        if (name != s.name)
            return;
        if (t.count == 0) {
            t.minUs = s.durUs;
            t.maxUs = s.durUs;
        }
        t.count++;
        t.totalUs += s.durUs;
        t.minUs = std::min(t.minUs, s.durUs);
        t.maxUs = std::max(t.maxUs, s.durUs);
    });
    return t;
}

uint64_t
Trace::spanCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->spans.size();
}

uint64_t
Trace::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->dropped;
}

uint64_t
Trace::maxSpans() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->maxSpans;
}

void
Trace::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->spans.clear();
    impl_->head = 0;
    impl_->counters.clear();
    impl_->dropped = 0;
    impl_->warnedDrop = false;
}

} // namespace npp
