#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "support/env.h"
#include "support/logging.h"
#include "support/trace.h"

namespace npp {

namespace {

thread_local bool tlInParallel = false;

int overrideThreads = 0; // set via setParallelThreadCount

int
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw ? static_cast<int>(hw) : 1;
    // 4096 threads is far beyond any machine this runs on; larger values
    // are typos (or unit confusion) rather than intent.
    return static_cast<int>(
        parseEnvInt("NPP_THREADS", fallback, 1, 4096));
}

/**
 * A persistent pool executing one parallelFor at a time. Workers park on a
 * condition variable between jobs; the job itself is a shared atomic chunk
 * cursor, so chunks are claimed dynamically but results stay position-
 * indexed. The pool is process-lifetime (leaked intentionally so worker
 * teardown never races static destruction).
 */
class TaskPool
{
  public:
    static TaskPool &instance()
    {
        static TaskPool *pool = new TaskPool();
        return *pool;
    }

    void run(int64_t begin, int64_t end,
             const std::function<void(int64_t)> &body, int64_t grain,
             int threads)
    {
        const int64_t n = end - begin;
        ensureWorkers(threads - 1);

        if (grain <= 0) {
            // ~4 chunks per thread keeps the tail short without paying a
            // cursor bump per iteration.
            grain = n / (static_cast<int64_t>(threads) * 4);
            if (grain < 1)
                grain = 1;
        }

        Job job;
        job.begin = begin;
        job.end = end;
        job.grain = grain;
        job.body = &body;
        job.cursor.store(begin, std::memory_order_relaxed);

        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_ = &job;
            ++generation_;
        }
        cv_.notify_all();

        // The caller participates in the same chunk loop.
        workOn(job);

        // Wait for workers to drain their claimed chunks.
        {
            std::unique_lock<std::mutex> lock(mutex_);
            done_.wait(lock, [&] { return busyWorkers_ == 0; });
            job_ = nullptr;
        }

        if (job.error)
            std::rethrow_exception(job.error);
    }

  private:
    struct Job
    {
        int64_t begin = 0;
        int64_t end = 0;
        int64_t grain = 1;
        const std::function<void(int64_t)> *body = nullptr;
        std::atomic<int64_t> cursor{0};
        // First-failing-chunk-by-index exception, for determinism.
        std::mutex errorMutex;
        int64_t errorChunk = -1;
        std::exception_ptr error;
    };

    TaskPool() = default;

    void ensureWorkers(int count)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (static_cast<int>(workers_.size()) < count)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void workerLoop()
    {
        uint64_t seen = 0;
        for (;;) {
            Job *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] { return generation_ != seen; });
                seen = generation_;
                job = job_;
                ++busyWorkers_;
            }
            if (job)
                workOn(*job);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                --busyWorkers_;
                if (busyWorkers_ == 0)
                    done_.notify_all();
            }
        }
    }

    static void workOn(Job &job)
    {
        tlInParallel = true;
        for (;;) {
            int64_t lo =
                job.cursor.fetch_add(job.grain, std::memory_order_relaxed);
            if (lo >= job.end)
                break;
            int64_t hi = lo + job.grain < job.end ? lo + job.grain : job.end;
            try {
                for (int64_t i = lo; i < hi; ++i)
                    (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.errorMutex);
                if (job.errorChunk < 0 || lo < job.errorChunk) {
                    job.errorChunk = lo;
                    job.error = std::current_exception();
                }
            }
        }
        tlInParallel = false;
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;
    uint64_t generation_ = 0;
    int busyWorkers_ = 0;
};

} // namespace

int
parallelThreadCount()
{
    if (overrideThreads >= 1)
        return overrideThreads;
    static int cached = defaultThreadCount();
    return cached;
}

void
setParallelThreadCount(int threads)
{
    NPP_ASSERT(!tlInParallel,
               "setParallelThreadCount inside a parallel region");
    overrideThreads = threads >= 1 ? threads : 0;
}

bool
inParallelRegion()
{
    return tlInParallel;
}

void
parallelFor(int64_t begin, int64_t end,
            const std::function<void(int64_t)> &body, int64_t grain)
{
    if (begin >= end)
        return;

    const int threads = parallelThreadCount();
    const int64_t n = end - begin;

    // Serial configurations and nested calls run inline: the pool executes
    // one job at a time, so a nested submission would deadlock; inline
    // execution keeps nested use legal (and exceptions propagate natively).
    if (threads <= 1 || n == 1 || tlInParallel) {
        for (int64_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    NPP_TRACE_SCOPE("parallel.for");
    NPP_TRACE_COUNT("parallel.jobs", 1);
    TaskPool::instance().run(begin, end, body, grain, threads);
}

} // namespace npp
