#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/logging.h"

namespace npp {

int64_t
parseEnvInt(const char *name, int64_t fallback, int64_t lo, int64_t hi)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;

    const char *p = env;
    while (std::isspace(static_cast<unsigned char>(*p)))
        p++;
    char *end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(p, &end, 10);
    const bool overflowed = errno == ERANGE;
    while (end && *end && std::isspace(static_cast<unsigned char>(*end)))
        end++;
    if (end == p || (end && *end) || overflowed) {
        NPP_WARN("{}={} is not an integer; using {}", name, env, fallback);
        return fallback;
    }
    if (parsed < lo || parsed > hi) {
        NPP_WARN("{}={} outside [{}, {}]; using {}", name, env, lo, hi,
                 fallback);
        return fallback;
    }
    return parsed;
}

bool
parseEnvBool(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;

    const char *begin = env;
    while (std::isspace(static_cast<unsigned char>(*begin)))
        begin++;
    const char *end = begin;
    while (*end && !std::isspace(static_cast<unsigned char>(*end)))
        end++;
    std::string word(begin, end);
    while (*end && std::isspace(static_cast<unsigned char>(*end)))
        end++;
    for (char &c : word)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

    if (*end == '\0') {
        if (word == "1" || word == "true" || word == "on" || word == "yes")
            return true;
        if (word == "0" || word == "false" || word == "off" || word == "no")
            return false;
    }
    NPP_WARN("{}={} is not a boolean (1/true/on/yes or 0/false/off/no); "
             "using {}",
             name, env, fallback ? "true" : "false");
    return fallback;
}

std::string
parseEnvString(const char *name, const std::string &fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    const char *begin = env;
    while (std::isspace(static_cast<unsigned char>(*begin)))
        begin++;
    const char *end = begin + std::string::traits_type::length(begin);
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(end[-1])))
        end--;
    if (end == begin)
        return fallback;
    return std::string(begin, end);
}

} // namespace npp
