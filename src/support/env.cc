#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "support/logging.h"

namespace npp {

int64_t
parseEnvInt(const char *name, int64_t fallback, int64_t lo, int64_t hi)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;

    const char *p = env;
    while (std::isspace(static_cast<unsigned char>(*p)))
        p++;
    char *end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(p, &end, 10);
    const bool overflowed = errno == ERANGE;
    while (end && *end && std::isspace(static_cast<unsigned char>(*end)))
        end++;
    if (end == p || (end && *end) || overflowed) {
        NPP_WARN("{}={} is not an integer; using {}", name, env, fallback);
        return fallback;
    }
    if (parsed < lo || parsed > hi) {
        NPP_WARN("{}={} outside [{}, {}]; using {}", name, env, lo, hi,
                 fallback);
        return fallback;
    }
    return parsed;
}

} // namespace npp
