#include "support/rng.h"

namespace npp {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &word : s)
        word = splitMix64(seed);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    return next() % n;
}

double
Rng::gaussian()
{
    // Irwin-Hall approximation: sum of 12 uniforms minus 6.
    double acc = 0.0;
    for (int i = 0; i < 12; i++)
        acc += uniform();
    return acc - 6.0;
}

} // namespace npp
