/**
 * @file
 * Small statistics helpers used by the simulator report machinery and the
 * benchmark harnesses.
 */

#ifndef NPP_SUPPORT_STATS_H
#define NPP_SUPPORT_STATS_H

#include <cstdint>
#include <vector>

namespace npp {

/** Online accumulator for min/max/mean over a stream of samples. */
class RunningStat
{
  public:
    void add(double v);

    uint64_t count() const { return n; }
    double mean() const;
    double min() const;
    double max() const;
    double total() const { return sum; }

  private:
    uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Geometric mean of a set of positive values (0 if empty). */
double geoMean(const std::vector<double> &values);

/** Integer ceiling division for non-negative operands. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round n up to the next multiple of m (m > 0). */
constexpr int64_t
roundUp(int64_t n, int64_t m)
{
    return ceilDiv(n, m) * m;
}

/** True if v is a power of two (v > 0). */
constexpr bool
isPow2(int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace npp

#endif // NPP_SUPPORT_STATS_H
