#include "support/stats.h"

#include <cmath>

namespace npp {

void
RunningStat::add(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        if (v < lo)
            lo = v;
        if (v > hi)
            hi = v;
    }
    sum += v;
    n++;
}

double
RunningStat::mean() const
{
    return n ? sum / n : 0.0;
}

double
RunningStat::min() const
{
    return lo;
}

double
RunningStat::max() const
{
    return hi;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / values.size());
}

} // namespace npp
