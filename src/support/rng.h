/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) used for
 * synthetic workload data. Determinism matters: experiments must be exactly
 * reproducible run-to-run.
 */

#ifndef NPP_SUPPORT_RNG_H
#define NPP_SUPPORT_RNG_H

#include <cstdint>

namespace npp {

/**
 * Small, fast, deterministic RNG (xoshiro256**), seeded via SplitMix64.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t below(uint64_t n);

    /** Approximate standard normal via sum of uniforms. */
    double gaussian();

  private:
    uint64_t s[4];
};

} // namespace npp

#endif // NPP_SUPPORT_RNG_H
