/**
 * @file
 * Multi-device fleet simulation and search. One program's root domain
 * is split into contiguous per-device shards (analysis/partition.h);
 * every shard runs as its own launch on one simulated device via
 * ExecOptions::rootShard*, and the shard results meet over a peer link
 * whose cost the timing model charges (interDeviceMs). The fleet
 * search sweeps (deviceCount, splitPoint) — scored by simulation, hard
 * filters explained per candidate — so device count joins block size
 * and span type as just another mapping parameter.
 *
 * Guarantees:
 *  - deviceCount == 1 is byte-for-byte today's single-device path: the
 *    ExecOptions are passed through untouched (no shard fields set),
 *    so simulated stats, timing, and EvalCache keys are bit-identical.
 *  - Functional multi-shard runs produce bit-identical outputs to the
 *    unsharded run: Map/ZipWith/Foreach shards write disjoint true
 *    indices; a Reduce root's per-shard partials are combined in shard
 *    order, which reassociates the same dyadic-rational sums the
 *    single-device block loop forms (pinned by tests/sim/multidev_test).
 */

#ifndef NPP_SIM_FLEET_H
#define NPP_SIM_FLEET_H

#include <string>
#include <vector>

#include "analysis/partition.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"

namespace npp {

/** Result of running one program across a fleet. */
struct FleetReport
{
    FleetConfig fleet;
    ShardPlan plan;

    /** One report per shard (empty when the plan is infeasible). */
    std::vector<SimReport> perDevice;

    /** Peer-link transfer + reduce-combine cost (0 for one device). */
    double interMs = 0.0;

    /** Devices run concurrently: max per-device time plus interMs. */
    double fleetMs = 0.0;

    /** Index of the slowest device (the critical path). */
    int criticalDevice = 0;
};

/**
 * Run `spec` across `fleet.deviceCount` devices. splitPoint -1 means
 * the balanced partition. With `specSeed` non-zero and a metrics-only
 * run, per-shard results go through the EvalCache (shard bounds join
 * the exec hash, so no cross-fleet entry can ever satisfy a lookup);
 * functional runs always simulate so caller arrays are written.
 * An infeasible partition returns plan.valid == false with the verdict
 * set and no per-device reports.
 */
FleetReport runOnFleet(const Gpu &gpu, const KernelSpec &spec,
                       const Bindings &args, const FleetConfig &fleet,
                       const ExecOptions &eopts = {},
                       int64_t splitPoint = -1, uint64_t specSeed = 0);

/** One scored (deviceCount, splitPoint) candidate of the fleet search. */
struct FleetCandidate
{
    int deviceCount = 1;
    int64_t splitPoint = -1;
    bool feasible = false;
    /** Hard-filter reason when infeasible; "ok" otherwise. */
    std::string verdict;
    double fleetMs = 0.0;
};

/** Outcome of the (deviceCount, splitPoint) sweep. */
struct FleetChoice
{
    /** The winning configuration (deviceCount 1 when sharding never
     *  beats one device or is hard-filtered). */
    int deviceCount = 1;
    int64_t splitPoint = -1;
    double fleetMs = 0.0;

    /** The single-device baseline time (the N=1 candidate). */
    double singleMs = 0.0;

    /** singleMs / fleetMs of the winner (1.0 when N=1 wins). */
    double speedup = 1.0;

    /** Every candidate evaluated or hard-filtered, in sweep order. */
    std::vector<FleetCandidate> candidates;

    /** Full report of the winning configuration. */
    FleetReport best;
};

/**
 * Sweep deviceCount in [1, maxFleet.deviceCount] and, per count, the
 * partitioner's split candidates (balanced plus root-block-aligned),
 * scoring each by metrics-only fleet simulation. `specSeed` (from the
 * compile fingerprint) enables per-shard eval caching.
 */
FleetChoice searchFleet(const Gpu &gpu, const KernelSpec &spec,
                        const Bindings &args, const FleetConfig &maxFleet,
                        const ExecOptions &eopts = {},
                        uint64_t specSeed = 0);

/** Human-readable sweep table + selection line (nppc --explain). */
std::string formatFleetChoice(const FleetChoice &choice);

/** JSON object for --stats exports and the serve protocol. */
std::string fleetChoiceJson(const FleetChoice &choice);

} // namespace npp

#endif // NPP_SIM_FLEET_H
