#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "runtime/eval.h"
#include "sim/timing.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

int64_t
rootDomainSize(const KernelSpec &spec, const Bindings &args)
{
    EvalCtx ctx(*spec.prog);
    args.seed(ctx);
    const double v = evalExpr(spec.prog->root().size, ctx);
    return v < 0.0 ? 0 : static_cast<int64_t>(std::llround(v));
}

/** Bytes each device ships to the combining device: one scalar partial
 *  for a reduction root, otherwise the shard's proportional share of
 *  every bound output array. */
std::vector<double>
shardOutputBytes(const KernelSpec &spec, const Bindings &args,
                 const ShardPlan &plan, bool reduceRoot)
{
    std::vector<double> bytes(plan.shards.size(), 0.0);
    if (reduceRoot) {
        std::fill(bytes.begin(), bytes.end(), 8.0);
        return bytes;
    }
    double outBytes = 0.0;
    const Program &prog = *spec.prog;
    for (int v = 0; v < prog.numVars(); v++) {
        const VarInfo &var = prog.var(v);
        if (var.role != VarRole::ArrayParam || !var.isOutput)
            continue;
        const ArraySlot &slot = args.arraySlot(v);
        if (slot.data)
            outBytes += static_cast<double>(slot.size) * 8.0;
    }
    const double total = std::max<double>(
        static_cast<double>(plan.outerSize), 1.0);
    for (size_t d = 0; d < plan.shards.size(); d++) {
        bytes[d] = outBytes *
                   (static_cast<double>(plan.shards[d].size()) / total);
    }
    return bytes;
}

std::string
fmtMs(double ms)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << ms;
    return os.str();
}

} // namespace

FleetReport
runOnFleet(const Gpu &gpu, const KernelSpec &spec, const Bindings &args,
           const FleetConfig &fleet, const ExecOptions &eopts,
           int64_t splitPoint, uint64_t specSeed)
{
    NPP_TRACE_SCOPE("fleet.run");
    FleetReport report;
    report.fleet = fleet;

    const Program &prog = *spec.prog;
    const int64_t outerSize = rootDomainSize(spec, args);
    report.plan = partitionOuter(prog, spec.mapping, outerSize,
                                 fleet.deviceCount, splitPoint);
    if (!report.plan.valid)
        return report;

    const bool reduceRoot = prog.root().kind == PatternKind::Reduce;
    const bool single = fleet.deviceCount == 1;
    // Cached replay is metrics-only territory: a shard entry captures
    // whole output arrays, which must not clobber other shards' ranges
    // on a functional fleet run.
    const bool useCache =
        specSeed != 0 && (eopts.metricsOnly || single);

    double combined = reduceRoot && !eopts.metricsOnly
                          ? combinerIdentity(prog.root().combiner)
                          : 0.0;
    double worst = -1.0;
    for (size_t d = 0; d < report.plan.shards.size(); d++) {
        const ShardRange &shard = report.plan.shards[d];
        ExecOptions shardOpts = eopts;
        if (!single) {
            // N=1 keeps the options byte-identical to the unsharded
            // path (same behavior, same EvalCache key).
            shardOpts.rootShardLo = shard.lo;
            shardOpts.rootShardHi = shard.hi;
        }
        SimReport r =
            useCache
                ? cachedRun(gpu, spec, args, shardOpts, specSeed,
                            /*wantOutputs=*/!eopts.metricsOnly)
                : gpu.run(spec, args, shardOpts);
        if (reduceRoot && !single && !eopts.metricsOnly) {
            // Each shard's launch left its partial in the root output
            // slot; fold it before the next shard overwrites it.
            const ArraySlot &out = args.arraySlot(prog.rootOutput());
            combined = applyOp(prog.root().combiner, combined,
                               out.data[0]);
        }
        if (r.totalMs > worst) {
            worst = r.totalMs;
            report.criticalDevice = static_cast<int>(d);
        }
        report.perDevice.push_back(std::move(r));
    }
    if (reduceRoot && !single && !eopts.metricsOnly)
        args.arraySlot(prog.rootOutput()).data[0] = combined;

    if (!single) {
        report.interMs = interDeviceMs(
            shardOutputBytes(spec, args, report.plan, reduceRoot), fleet,
            reduceRoot);
    }
    report.fleetMs = std::max(worst, 0.0) + report.interMs;
    return report;
}

FleetChoice
searchFleet(const Gpu &gpu, const KernelSpec &spec, const Bindings &args,
            const FleetConfig &maxFleet, const ExecOptions &eopts,
            uint64_t specSeed)
{
    NPP_TRACE_SCOPE("fleet.search");
    FleetChoice choice;

    // Scoring never needs materialized outputs; metrics-only runs also
    // unlock block classing and cache sharing with the mapping search.
    ExecOptions scoreOpts = eopts;
    scoreOpts.metricsOnly = true;

    const int64_t outerSize = rootDomainSize(spec, args);
    const int64_t unit = outerShardUnit(spec.mapping);
    const int maxDevices = std::max(maxFleet.deviceCount, 1);

    bool haveBest = false;
    for (int n = 1; n <= maxDevices; n++) {
        FleetConfig fleet = maxFleet;
        fleet.deviceCount = n;
        const std::vector<int64_t> splits =
            n == 1 ? std::vector<int64_t>{-1}
                   : splitPointCandidates(outerSize, n, unit);
        for (int64_t sp : splits) {
            FleetCandidate cand;
            cand.deviceCount = n;
            cand.splitPoint = sp;
            FleetReport report = runOnFleet(gpu, spec, args, fleet,
                                            scoreOpts, sp, specSeed);
            cand.verdict = report.plan.verdict;
            cand.feasible = report.plan.valid;
            if (report.plan.valid) {
                cand.fleetMs = report.fleetMs;
                cand.splitPoint = report.plan.splitPoint;
                // The balanced (-1) request resolves to a concrete split
                // that one of the unit-rounded candidates may repeat;
                // keep only the first occurrence.
                bool dup = false;
                for (const FleetCandidate &prev : choice.candidates)
                    dup |= prev.deviceCount == n && prev.feasible &&
                           prev.splitPoint == cand.splitPoint;
                if (dup)
                    continue;
                if (n == 1)
                    choice.singleMs = report.fleetMs;
                if (!haveBest || report.fleetMs < choice.fleetMs) {
                    haveBest = true;
                    choice.deviceCount = n;
                    choice.splitPoint =
                        n == 1 ? -1 : report.plan.splitPoint;
                    choice.fleetMs = report.fleetMs;
                    choice.best = std::move(report);
                }
            }
            const bool feasible = cand.feasible;
            choice.candidates.push_back(std::move(cand));
            // One infeasible candidate per device count is enough: the
            // hard filter (domain too small, cross-outer dependence)
            // does not depend on the split point.
            if (!feasible)
                break;
        }
    }
    if (choice.fleetMs > 0.0)
        choice.speedup = choice.singleMs / choice.fleetMs;
    return choice;
}

std::string
formatFleetChoice(const FleetChoice &choice)
{
    std::ostringstream os;
    os << "multi-device sweep (peer "
       << choice.best.fleet.peerBandwidthGBs << " GB/s, "
       << choice.best.fleet.peerLatencyUs << " us/transfer):\n";
    for (const FleetCandidate &c : choice.candidates) {
        os << "  devices=" << c.deviceCount;
        if (c.deviceCount > 1 && c.feasible)
            os << " split=" << c.splitPoint;
        if (c.feasible) {
            os << "  " << fmtMs(c.fleetMs) << " ms";
            if (choice.singleMs > 0.0 && c.fleetMs > 0.0)
                os << "  (" << fmtMs(choice.singleMs / c.fleetMs)
                   << "x vs one device)";
        } else {
            os << "  hard-filtered: " << c.verdict;
        }
        os << "\n";
    }
    os << "selected: devices=" << choice.deviceCount;
    if (choice.deviceCount > 1) {
        os << " split=" << choice.splitPoint << " — "
           << fmtMs(choice.speedup) << "x over one device ("
           << fmtMs(choice.best.interMs) << " ms inter-device)";
    } else {
        os << " (sharding does not pay off here)";
    }
    os << "\n";
    return os.str();
}

std::string
fleetChoiceJson(const FleetChoice &choice)
{
    std::ostringstream os;
    os << "{\"devices\":" << choice.deviceCount
       << ",\"split\":" << choice.splitPoint
       << ",\"fleet_ms\":" << choice.fleetMs
       << ",\"single_ms\":" << choice.singleMs
       << ",\"speedup\":" << choice.speedup
       << ",\"inter_ms\":" << choice.best.interMs
       << ",\"candidates\":[";
    bool first = true;
    for (const FleetCandidate &c : choice.candidates) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"devices\":" << c.deviceCount
           << ",\"split\":" << c.splitPoint << ",\"feasible\":"
           << (c.feasible ? "true" : "false");
        if (c.feasible)
            os << ",\"fleet_ms\":" << c.fleetMs;
        else
            os << ",\"verdict\":\"" << c.verdict << "\"";
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace npp
