#include "sim/classify.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ir/affine.h"
#include "ir/traverse.h"
#include "support/logging.h"
#include "support/stats.h"
#include "support/strings.h"

namespace npp {

namespace {

class Analyzer
{
  public:
    Analyzer(const KernelSpec &spec, const LaunchGeometry &geom,
             const std::vector<int64_t> &levelSizes, const EvalCtx &ctx,
             const DeviceConfig &device)
        : spec(spec),
          prog(*spec.prog),
          geom(geom),
          levelSizes(levelSizes),
          device(device)
    {
        env.prog = &prog;
        for (const auto &v : prog.vars()) {
            if (v.role == VarRole::ScalarParam)
                env.paramValues[v.id] = ctx.scalars[v.id];
        }
        chainVars.assign(geom.levels.size(), -1);
    }

    BlockClassPlan
    analyze()
    {
        for (const auto &g : geom.levels) {
            if (g.span.kind == SpanKind::Split)
                fail("split span carries cross-block partials");
        }
        if (ok)
            walkPatternNode(prog.root(), 0, /*resultVar=*/-1,
                            /*isRoot=*/true);

        BlockClassPlan plan;
        plan.classable = ok;
        plan.reason = reason;
        return plan;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok) {
            ok = false;
            reason = why;
        }
    }

    int64_t
    blockStepElems(int lv) const
    {
        const auto &g = geom.levels[lv];
        switch (g.span.kind) {
          case SpanKind::One:
            return g.blockSize;
          case SpanKind::N:
            return g.blockSize * g.span.factor;
          case SpanKind::All:
          case SpanKind::Split:
            return 0; // single block / gated earlier
        }
        return 0;
    }

    /** Value identical for corresponding lanes of any two blocks: free of
     *  parallel indices, reads, and mutable locals after let expansion. */
    bool
    blockUniform(const ExprRef &expr)
    {
        if (!expr)
            return true;
        bool uniform = true;
        walkExpr(resolveLocals(expr, env), [&](const Expr &x) {
            if (x.kind == ExprKind::Read)
                uniform = false;
            if (x.kind == ExprKind::Var) {
                const VarInfo &v = prog.var(x.varId);
                if (v.role == VarRole::Index || v.isMutable ||
                    dynamicVars.count(x.varId)) {
                    uniform = false;
                }
            }
        });
        return uniform;
    }

    /** Check control sites in an expression tree: Select conditions and
     *  And/Or short-circuit operands decide branch choice and op count,
     *  so they must be block-uniform. Array reads inside feed the address
     *  check. */
    void
    checkExpr(const ExprRef &expr)
    {
        if (!expr || !ok)
            return;
        walkExpr(expr, [&](const Expr &x) {
            if (!ok)
                return;
            if (x.kind == ExprKind::Select && !blockUniform(x.a))
                fail("select condition varies across blocks");
            if (x.kind == ExprKind::Binary &&
                (x.op == Op::And || x.op == Op::Or) && !blockUniform(x.a)) {
                fail("short-circuit operand varies across blocks");
            }
            if (x.kind == ExprKind::Read)
                checkAddress(x.varId, x.a);
        });
    }

    /** Affine + alignment check for one array access. */
    void
    checkAddress(int arrayVar, const ExprRef &indexExpr)
    {
        if (!ok)
            return;
        const VarInfo &av = prog.var(arrayVar);
        const ExprRef resolved = resolveLocals(indexExpr, env);

        bool clean = true;
        walkExpr(resolved, [&](const Expr &x) {
            if (x.kind == ExprKind::Read)
                clean = false;
            if (x.kind == ExprKind::Var && (prog.var(x.varId).isMutable ||
                                            dynamicVars.count(x.varId))) {
                clean = false;
            }
        });
        if (!clean) {
            fail(fmt("data-dependent address into {}", av.name));
            return;
        }

        std::vector<double> coeffs(geom.levels.size(), 0.0);
        for (size_t lv = 0; lv < chainVars.size(); lv++) {
            if (chainVars[lv] < 0)
                continue;
            const auto c = coeffOf(resolved, chainVars[lv], env);
            if (!c) {
                fail(fmt("non-affine index into {}", av.name));
                return;
            }
            coeffs[lv] = *c;
        }
        checkCoeffs(arrayVar, coeffs);
    }

    /** Fold the slot address transform into the logical coefficients and
     *  require transaction-aligned per-block shifts. */
    void
    checkCoeffs(int arrayVar, const std::vector<double> &logical)
    {
        const VarInfo &av = prog.var(arrayVar);
        std::vector<double> eff(geom.levels.size(), 0.0);

        if (av.role == VarRole::ArrayLocal) {
            const LocalArrayPlan *plan = nullptr;
            for (const auto &p : spec.locals) {
                if (p.varId == arrayVar)
                    plan = &p;
            }
            if (!plan) {
                fail(fmt("array local {} without plan", av.name));
                return;
            }
            const auto sizeIt = localInnerSize.find(arrayVar);
            if (sizeIt == localInnerSize.end()) {
                fail(fmt("local {} size not launch-known", av.name));
                return;
            }
            const int64_t innerSize = sizeIt->second;
            // Mirror bindLocalArray: the device address of logical index
            // l under enclosing tuple `outer` is base + outer*K + l*S.
            int64_t K = 0;
            int64_t S = 1;
            if (plan->mode == LocalArrayPlan::Mode::ThreadMalloc) {
                K = roundUp(innerSize + device.transactionBytes / 8, 16);
            } else if (plan->layout == LocalArrayPlan::Layout::Contiguous) {
                K = innerSize;
            } else {
                K = 1;
                S = 1;
                for (int lv = 0; lv < plan->definingLevel; lv++)
                    S *= std::max<int64_t>(levelSizes[lv], 1);
            }
            // outer = sum_lv idx_lv * prod_{m in (lv, def)} levelSizes[m]
            for (int lv = 0; lv < plan->definingLevel &&
                             lv < static_cast<int>(eff.size());
                 lv++) {
                int64_t prod = 1;
                for (int m = lv + 1; m < plan->definingLevel; m++)
                    prod *= std::max<int64_t>(levelSizes[m], 1);
                eff[lv] = static_cast<double>(prod * K);
            }
            for (size_t lv = 0; lv < eff.size(); lv++)
                eff[lv] += logical[lv] * static_cast<double>(S);
        } else {
            // Array params: addrBase separates arrays, addrStride is 1.
            eff = logical;
        }

        const int elemBytes = scalarBytes(av.kind);
        for (size_t lv = 0; lv < eff.size(); lv++) {
            if (geom.levels[lv].blocks <= 1)
                continue;
            const double coeff = eff[lv];
            if (coeff != std::floor(coeff)) {
                fail(fmt("fractional address coefficient into {}", av.name));
                return;
            }
            const double shiftBytes =
                coeff * static_cast<double>(blockStepElems(lv)) * elemBytes;
            if (std::fmod(shiftBytes,
                          static_cast<double>(device.transactionBytes)) !=
                0.0) {
                fail(fmt("{}: level {} block shift {}B not transaction-"
                         "aligned",
                         av.name, lv, shiftBytes));
                return;
            }
        }
    }

    void
    walkStmts(const std::vector<StmtPtr> &stmts, int lv)
    {
        for (const auto &s : stmts) {
            if (!ok)
                return;
            switch (s->kind) {
              case StmtKind::Let:
                checkExpr(s->value);
                if (!prog.var(s->var).isMutable) {
                    env.localDefs[s->var] = resolveLocals(s->value, env);
                }
                break;
              case StmtKind::Assign:
                checkExpr(s->value);
                break;
              case StmtKind::Store:
                checkExpr(s->index);
                checkExpr(s->value);
                checkAddress(s->array, s->index);
                break;
              case StmtKind::If:
                if (!blockUniform(s->cond))
                    fail("if condition varies across blocks");
                checkExpr(s->cond);
                walkStmts(s->body, lv);
                walkStmts(s->elseBody, lv);
                break;
              case StmtKind::SeqLoop:
                if (!blockUniform(s->trip))
                    fail("loop trip varies across blocks");
                if (s->cond && !blockUniform(s->cond))
                    fail("loop break varies across blocks");
                checkExpr(s->trip);
                checkExpr(s->cond);
                walkStmts(s->body, lv);
                break;
              case StmtKind::Nested:
                // A nested pattern's result (reduce scalar, map array) is
                // data, not geometry: it must never steer control flow or
                // addressing in a classed launch.
                if (s->var >= 0)
                    dynamicVars.insert(s->var);
                walkPatternNode(*s->pattern, lv + 1, s->var,
                                /*isRoot=*/false);
                break;
            }
        }
    }

    void
    walkPatternNode(const Pattern &p, int lv, int resultVar, bool isRoot)
    {
        if (!ok)
            return;
        if (p.kind == PatternKind::Filter || p.kind == PatternKind::GroupBy) {
            fail(fmt("{} pattern carries cross-block state",
                     patternKindName(p.kind)));
            return;
        }
        if (lv >= static_cast<int>(geom.levels.size())) {
            fail("pattern deeper than mapped levels");
            return;
        }
        const auto size = constEval(p.size, env);
        if (!size) {
            fail("pattern size not launch-known");
            return;
        }

        chainVars[lv] = p.indexVar;

        // Register the defining size of a nested array-local result so
        // local accesses can fold the layout coefficients.
        if (resultVar >= 0 &&
            prog.var(resultVar).role == VarRole::ArrayLocal) {
            localInnerSize[resultVar] = static_cast<int64_t>(*size);
        }

        walkStmts(p.body, lv);
        checkExpr(p.yield);

        // Where do the yields land? Root maps store to the root output
        // at the pattern index (coefficient 1 at this level); nested
        // maps store into the local array the same way. Root reduces
        // store only from block 0, which the executor salts into its own
        // class.
        if (p.kind == PatternKind::Map || p.kind == PatternKind::ZipWith) {
            std::vector<double> coeffs(geom.levels.size(), 0.0);
            coeffs[lv] = 1.0;
            if (isRoot) {
                checkCoeffs(prog.rootOutput(), coeffs);
            } else if (resultVar >= 0) {
                checkCoeffs(resultVar, coeffs);
            }
        }

        chainVars[lv] = -1;
    }

    const KernelSpec &spec;
    const Program &prog;
    const LaunchGeometry &geom;
    const std::vector<int64_t> &levelSizes;
    const DeviceConfig &device;

    AnalysisEnv env;
    std::vector<int> chainVars;
    std::unordered_map<int, int64_t> localInnerSize;
    std::unordered_set<int> dynamicVars;

    bool ok = true;
    std::string reason;
};

} // namespace

BlockClassPlan
analyzeBlockClasses(const KernelSpec &spec, const LaunchGeometry &geom,
                    const std::vector<int64_t> &levelSizes,
                    const EvalCtx &ctx, const DeviceConfig &device)
{
    Analyzer analyzer(spec, geom, levelSizes, ctx, device);
    return analyzer.analyze();
}

} // namespace npp
