#include "sim/classify.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ir/affine.h"
#include "ir/traverse.h"
#include "support/logging.h"
#include "support/stats.h"
#include "support/strings.h"

namespace npp {

namespace {

class Analyzer
{
  public:
    Analyzer(const KernelSpec &spec, const LaunchGeometry &geom,
             const std::vector<int64_t> &levelSizes, const EvalCtx &ctx,
             const DeviceConfig &device)
        : spec(spec),
          prog(*spec.prog),
          geom(geom),
          levelSizes(levelSizes),
          device(device)
    {
        env.prog = &prog;
        for (const auto &v : prog.vars()) {
            if (v.role == VarRole::ScalarParam)
                env.paramValues[v.id] = ctx.scalars[v.id];
        }
        chainVars.assign(geom.levels.size(), -1);
    }

    BlockClassPlan
    analyze()
    {
        for (const auto &g : geom.levels) {
            if (g.span.kind == SpanKind::Split)
                fail("split span carries cross-block partials");
        }
        if (ok)
            walkPatternNode(prog.root(), 0, /*resultVar=*/-1,
                            /*isRoot=*/true);

        BlockClassPlan plan;
        plan.classable = ok;
        plan.reason = reason;
        return plan;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok) {
            ok = false;
            reason = why;
        }
    }

    /** True when varId is an enclosing pattern index of a level that maps
     *  to a single block (span-all). Such an index runs through the same
     *  value sequence in every block, so it may feed class-invariant
     *  control flow, filter predicates, and groupBy keys. */
    bool
    singleBlockIndex(int varId) const
    {
        for (size_t lv = 0; lv < chainVars.size(); lv++) {
            if (chainVars[lv] == varId)
                return geom.levels[lv].blocks <= 1;
        }
        return false;
    }

    /** Value identical for corresponding lanes of any two blocks: free of
     *  reads, mutable locals, nested-pattern results, and partitioned
     *  parallel indices after let expansion. Span-all indices are allowed
     *  — their level has one block, so every block sees the same values. */
    bool
    blockUniform(const ExprRef &expr)
    {
        if (!expr)
            return true;
        bool uniform = true;
        walkExpr(resolveLocals(expr, env), [&](const Expr &x) {
            if (x.kind == ExprKind::Read)
                uniform = false;
            if (x.kind == ExprKind::Var) {
                const VarInfo &v = prog.var(x.varId);
                if (v.isMutable || dynamicVars.count(x.varId)) {
                    uniform = false;
                } else if (v.role == VarRole::Index &&
                           !singleBlockIndex(x.varId)) {
                    uniform = false;
                }
            }
        });
        return uniform;
    }

    /** Check control sites in an expression tree: Select conditions and
     *  And/Or short-circuit operands decide branch choice and op count,
     *  so they must be block-uniform. Array reads inside feed the address
     *  check. */
    void
    checkExpr(const ExprRef &expr)
    {
        if (!expr || !ok)
            return;
        walkExpr(expr, [&](const Expr &x) {
            if (!ok)
                return;
            if (x.kind == ExprKind::Select && !blockUniform(x.a))
                fail("select condition varies across blocks");
            if (x.kind == ExprKind::Binary &&
                (x.op == Op::And || x.op == Op::Or) && !blockUniform(x.a)) {
                fail("short-circuit operand varies across blocks");
            }
            if (x.kind == ExprKind::Read)
                checkAddress(x.varId, x.a);
        });
    }

    /** Affine + alignment check for one array access. */
    void
    checkAddress(int arrayVar, const ExprRef &indexExpr)
    {
        if (!ok)
            return;
        const VarInfo &av = prog.var(arrayVar);
        const ExprRef resolved = resolveLocals(indexExpr, env);

        bool clean = true;
        walkExpr(resolved, [&](const Expr &x) {
            if (x.kind == ExprKind::Read)
                clean = false;
            if (x.kind == ExprKind::Var && (prog.var(x.varId).isMutable ||
                                            dynamicVars.count(x.varId))) {
                clean = false;
            }
        });
        if (!clean) {
            fail(fmt("data-dependent address into {}", av.name));
            return;
        }

        std::vector<double> coeffs(geom.levels.size(), 0.0);
        for (size_t lv = 0; lv < chainVars.size(); lv++) {
            if (chainVars[lv] < 0)
                continue;
            const auto c = coeffOf(resolved, chainVars[lv], env);
            if (!c) {
                // Non-affine in a span-all index is harmless: that level
                // has one block, so the whole term is identical in every
                // block and contributes no per-block shift.
                if (geom.levels[lv].blocks <= 1)
                    continue;
                fail(fmt("non-affine index into {}", av.name));
                return;
            }
            coeffs[lv] = *c;
        }
        checkCoeffs(arrayVar, coeffs);
    }

    /** Fold the slot address transform into the logical coefficients and
     *  require whole-element per-block shifts. Affine integer
     *  coefficients mean corresponding lanes of any two blocks differ by
     *  one uniform address translation per level — and the coalescing
     *  model counts segments relative to each warp group's minimum
     *  address, so a uniform translation of any size (transaction-
     *  aligned or not) leaves every transaction count unchanged.
     *  Fractional coefficients stay refused: the floor in address
     *  formation shifts lanes non-uniformly, which is a real spacing
     *  change, not a translation. */
    void
    checkCoeffs(int arrayVar, const std::vector<double> &logical)
    {
        const VarInfo &av = prog.var(arrayVar);
        std::vector<double> eff(geom.levels.size(), 0.0);

        if (av.role == VarRole::ArrayLocal) {
            const LocalArrayPlan *plan = nullptr;
            for (const auto &p : spec.locals) {
                if (p.varId == arrayVar)
                    plan = &p;
            }
            if (!plan) {
                fail(fmt("array local {} without plan", av.name));
                return;
            }
            const auto sizeIt = localInnerSize.find(arrayVar);
            if (sizeIt == localInnerSize.end()) {
                fail(fmt("local {} size not launch-known", av.name));
                return;
            }
            const int64_t innerSize = sizeIt->second;
            // Mirror bindLocalArray: the device address of logical index
            // l under enclosing tuple `outer` is base + outer*K + l*S.
            int64_t K = 0;
            int64_t S = 1;
            if (plan->mode == LocalArrayPlan::Mode::ThreadMalloc) {
                K = roundUp(innerSize + device.transactionBytes / 8, 16);
            } else if (plan->layout == LocalArrayPlan::Layout::Contiguous) {
                K = innerSize;
            } else {
                K = 1;
                S = 1;
                for (int lv = 0; lv < plan->definingLevel; lv++)
                    S *= std::max<int64_t>(levelSizes[lv], 1);
            }
            // outer = sum_lv idx_lv * prod_{m in (lv, def)} levelSizes[m]
            for (int lv = 0; lv < plan->definingLevel &&
                             lv < static_cast<int>(eff.size());
                 lv++) {
                int64_t prod = 1;
                for (int m = lv + 1; m < plan->definingLevel; m++)
                    prod *= std::max<int64_t>(levelSizes[m], 1);
                eff[lv] = static_cast<double>(prod * K);
            }
            for (size_t lv = 0; lv < eff.size(); lv++)
                eff[lv] += logical[lv] * static_cast<double>(S);
        } else {
            // Array params: addrBase separates arrays, addrStride is 1.
            eff = logical;
        }

        for (size_t lv = 0; lv < eff.size(); lv++) {
            if (geom.levels[lv].blocks <= 1)
                continue;
            const double coeff = eff[lv];
            if (coeff != std::floor(coeff)) {
                fail(fmt("fractional address coefficient into {}", av.name));
                return;
            }
        }
    }

    void
    walkStmts(const std::vector<StmtPtr> &stmts, int lv)
    {
        for (const auto &s : stmts) {
            if (!ok)
                return;
            switch (s->kind) {
              case StmtKind::Let:
                checkExpr(s->value);
                if (!prog.var(s->var).isMutable) {
                    env.localDefs[s->var] = resolveLocals(s->value, env);
                }
                break;
              case StmtKind::Assign:
                checkExpr(s->value);
                break;
              case StmtKind::Store:
                checkExpr(s->index);
                checkExpr(s->value);
                checkAddress(s->array, s->index);
                break;
              case StmtKind::If:
                if (!blockUniform(s->cond))
                    fail("if condition varies across blocks");
                checkExpr(s->cond);
                walkStmts(s->body, lv);
                walkStmts(s->elseBody, lv);
                break;
              case StmtKind::SeqLoop:
                if (!blockUniform(s->trip))
                    fail("loop trip varies across blocks");
                if (s->cond && !blockUniform(s->cond))
                    fail("loop break varies across blocks");
                checkExpr(s->trip);
                checkExpr(s->cond);
                walkStmts(s->body, lv);
                break;
              case StmtKind::Nested:
                // A nested pattern's result (reduce scalar, map array) is
                // data, not geometry: it must never steer control flow or
                // addressing in a classed launch. The one exception is a
                // class-invariant filter's count var, which walkPatternNode
                // promotes back out of dynamicVars once the predicate is
                // proven identical across blocks.
                if (s->var >= 0)
                    dynamicVars.insert(s->var);
                if (s->countVar >= 0)
                    dynamicVars.insert(s->countVar);
                walkPatternNode(*s->pattern, lv + 1, s->var,
                                /*isRoot=*/false, s->countVar);
                break;
            }
        }
    }

    void
    walkPatternNode(const Pattern &p, int lv, int resultVar, bool isRoot,
                    int countVar = -1)
    {
        if (!ok)
            return;
        if (lv >= static_cast<int>(geom.levels.size())) {
            fail("pattern deeper than mapped levels");
            return;
        }
        const bool varSize = p.kind == PatternKind::Filter ||
                             p.kind == PatternKind::GroupBy;
        if (varSize) {
            if (isRoot && p.kind == PatternKind::Filter) {
                fail("root filter compacts through a cross-block output "
                     "cursor");
                return;
            }
            if (geom.levels[lv].blocks > 1) {
                fail(fmt("{} level {} is partitioned across blocks",
                         patternKindName(p.kind), lv));
                return;
            }
        }
        // Launch-known sizes are the common case; a class-invariant size
        // (a proven-invariant filter count var, possibly with arithmetic)
        // is equally good — every block runs the same trip count.
        const auto size = constEval(p.size, env);
        if (!size && !blockUniform(p.size)) {
            fail("pattern size neither launch-known nor class-invariant");
            return;
        }

        chainVars[lv] = p.indexVar;

        // Register the defining allocation size of a nested array-local
        // result so local accesses can fold the layout coefficients. The
        // allocation size (filter upper bound / groupBy key domain) is
        // what bindLocalArray addresses with, not the index-domain size.
        if (resultVar >= 0 &&
            prog.var(resultVar).role == VarRole::ArrayLocal) {
            const auto alloc = constEval(p.allocSize(), env);
            if (!alloc) {
                fail(fmt("local {} allocation size not launch-known",
                         prog.var(resultVar).name));
                chainVars[lv] = -1;
                return;
            }
            localInnerSize[resultVar] = static_cast<int64_t>(*alloc);
        }

        walkStmts(p.body, lv);
        checkExpr(p.yield);

        const std::vector<double> zeros(geom.levels.size(), 0.0);
        switch (p.kind) {
          case PatternKind::Map:
          case PatternKind::ZipWith: {
            // Yields land at the pattern index: coefficient 1 at this
            // level, into the root output or the local array. Root
            // reduces store only from block 0, which the executor salts
            // into its own class.
            std::vector<double> coeffs(geom.levels.size(), 0.0);
            coeffs[lv] = 1.0;
            if (isRoot) {
                checkCoeffs(prog.rootOutput(), coeffs);
            } else if (resultVar >= 0) {
                checkCoeffs(resultVar, coeffs);
            }
            break;
          }
          case PatternKind::Filter:
            // Kept yields land at the compaction cursor. The cursor is
            // driven by the predicate: class-invariant predicate means
            // every block walks the identical keep sequence, so the
            // cursor's value (logical coefficient 0 everywhere) and the
            // per-block kept count replicate exactly.
            checkExpr(p.filterPred);
            if (!blockUniform(p.filterPred)) {
                fail(fmt("filter predicate at level {} is data-dependent "
                         "across blocks",
                         lv));
            } else if (ok) {
                if (resultVar >= 0)
                    checkCoeffs(resultVar, zeros);
                // The kept count is now provably identical across blocks:
                // let it size inner patterns and feed uniform control.
                if (ok && countVar >= 0)
                    dynamicVars.erase(countVar);
            }
            break;
          case PatternKind::GroupBy:
            // Combines land at the key. A class-invariant key drives the
            // identical bin sequence in every block (logical coefficient
            // 0 at every partitioned level).
            checkExpr(p.key);
            if (!blockUniform(p.key)) {
                fail(fmt("groupBy key at level {} is data-dependent "
                         "across blocks; each block combines into its "
                         "own bins",
                         lv));
            } else if (ok) {
                checkCoeffs(isRoot ? prog.rootOutput() : resultVar, zeros);
            }
            break;
          case PatternKind::Reduce:
          case PatternKind::Foreach:
            break;
        }

        chainVars[lv] = -1;
    }

    const KernelSpec &spec;
    const Program &prog;
    const LaunchGeometry &geom;
    const std::vector<int64_t> &levelSizes;
    const DeviceConfig &device;

    AnalysisEnv env;
    std::vector<int> chainVars;
    std::unordered_map<int, int64_t> localInnerSize;
    std::unordered_set<int> dynamicVars;

    bool ok = true;
    std::string reason;
};

} // namespace

BlockClassPlan
analyzeBlockClasses(const KernelSpec &spec, const LaunchGeometry &geom,
                    const std::vector<int64_t> &levelSizes,
                    const EvalCtx &ctx, const DeviceConfig &device)
{
    Analyzer analyzer(spec, geom, levelSizes, ctx, device);
    return analyzer.analyze();
}

} // namespace npp
