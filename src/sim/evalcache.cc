#include "sim/evalcache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/printer.h"
#include "support/env.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvBytes(const void *data, size_t n, uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
mix(uint64_t h, uint64_t v)
{
    return fnvBytes(&v, sizeof(v), h);
}

uint64_t
mixDouble(uint64_t h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(h, bits);
}

/** Order-independent digest of an unordered int->double map. */
uint64_t
mixMap(uint64_t h, const std::unordered_map<int, double> &m)
{
    uint64_t acc = 0;
    for (const auto &[k, v] : m) {
        uint64_t one = mix(kFnvBasis, static_cast<uint64_t>(k));
        one = mixDouble(one, v);
        acc += one; // commutative fold: iteration order must not matter
    }
    h = mix(h, static_cast<uint64_t>(m.size()));
    return mix(h, acc);
}

int64_t
readCapacityBytes()
{
    // NPP_EVAL_CACHE=0/false/off/no disables the cache entirely (any
    // other spelling warns and keeps it enabled).
    if (!parseEnvBool("NPP_EVAL_CACHE", true))
        return 0;
    // Upper bound keeps mb * 2^20 comfortably inside int64 (8 EB would
    // overflow); use NPP_EVAL_CACHE=off — not a zero/negative size — to
    // disable the cache.
    const int64_t mb =
        parseEnvInt("NPP_EVAL_CACHE_MB", 4096, 1, int64_t(1) << 32);
    return mb * 1024 * 1024;
}

std::string
readDiskDirEnv()
{
    // Hardened read: unset, empty, and whitespace-only all mean "no
    // disk tier" (a raw getenv used to accept whitespace-only values
    // and root the disk cache at a junk path).
    const std::string dir = parseEnvString("NPP_EVAL_CACHE_DIR");
    if (dir.empty())
        return {};
    // NPP_EVAL_CACHE_DISK=off keeps the memory tier but detaches the
    // directory (e.g. to quarantine a shared cache without losing the
    // in-process one).
    if (!parseEnvBool("NPP_EVAL_CACHE_DISK", true))
        return {};
    return dir;
}

/** Best-effort single-level mkdir; existing directory is fine. */
void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        NPP_WARN("eval cache: cannot create {} ({}); disk tier will "
                 "miss/fail open",
                 dir, std::strerror(errno));
}

/** @name Disk-entry serialization
 *
 * One file per entry:
 *
 *     magic[8] "NPPEVC1\n"
 *     u32 format version (kEvalCacheDiskFormatVersion)
 *     u32 coalesce-model tag length, then the tag bytes
 *     u64 key (must match the probe key — guards renamed files)
 *     u64 payload byte count
 *     u64 payload FNV-1a checksum (guards torn/bit-rotted payloads)
 *     payload: serialized SimReport + optional output arrays
 *
 * Numbers are raw little-endian host encoding (the cache directory is a
 * same-machine artifact, not an interchange format); doubles travel as
 * their bit patterns, so replayed reports are bit-identical. Any header
 * or payload mismatch rejects the file as a miss — never trusts it.
 * @{
 */

constexpr char kDiskMagic[8] = {'N', 'P', 'P', 'E', 'V', 'C', '1', '\n'};

struct ByteWriter
{
    std::string buf;

    void
    u64(uint64_t v)
    {
        buf.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    void
    u32(uint32_t v)
    {
        buf.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void u8(uint8_t v) { buf.push_back(static_cast<char>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf.append(s);
    }
};

/** Bounds-checked reader: any overrun latches ok=false and returns
 *  zeros, so a truncated payload can never index out of range. */
struct ByteReader
{
    const char *p;
    size_t n;
    size_t off = 0;
    bool ok = true;

    bool
    take(void *out, size_t count)
    {
        if (!ok || n - off < count) {
            ok = false;
            return false;
        }
        std::memcpy(out, p + off, count);
        off += count;
        return true;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const uint64_t len = u64();
        if (!ok || n - off < len) {
            ok = false;
            return {};
        }
        std::string s(p + off, len);
        off += len;
        return s;
    }

    bool exhausted() const { return ok && off == n; }
};

void
putReport(ByteWriter &w, const SimReport &r)
{
    w.f64(r.totalMs);
    w.f64(r.computeMs);
    w.f64(r.memoryMs);
    w.f64(r.launchMs);
    w.f64(r.blockOverheadMs);
    w.f64(r.mallocMs);
    w.f64(r.combinerMs);
    w.f64(r.compactionMs);
    w.f64(r.achievedBandwidth);
    w.f64(r.residentWarps);
    w.i64(r.blocksPerSM);
    w.f64(r.occupancy);
    w.f64(r.coalescingEfficiency);

    const KernelStats &s = r.stats;
    w.f64(s.warpInstructions);
    w.f64(s.transactions);
    w.f64(s.usefulBytes);
    w.f64(s.smemAccesses);
    w.f64(s.syncs);
    w.f64(s.mallocs);
    w.i64(s.totalBlocks);
    w.i64(s.threadsPerBlock);
    w.i64(s.sharedMemPerBlock);
    w.u8(s.hasCombiner ? 1 : 0);
    w.f64(s.combinerTransactions);
    w.f64(s.combinerOps);
    w.i64(s.combinerThreads);
    w.u8(s.hasCompaction ? 1 : 0);
    w.f64(s.compactionTransactions);
    w.f64(s.compactionOps);
    w.i64(s.compactionThreads);
    w.f64(r.queueBuildMs);
    w.u8(s.hasConsolidation ? 1 : 0);
    w.f64(s.queueBuildTransactions);
    w.f64(s.queueBuildOps);
    w.i64(s.queueBuildThreads);
    w.i64(s.consolidationGroups);
    w.i64(s.consolidationParents);
    w.i64(s.consolidationEntries);
    w.i64(s.consolidationWaves);
    w.f64(s.binFill);
    w.f64(s.sampledFraction);
    w.i64(s.classedBlocks);
    w.str(s.classReason);
    w.u64(s.siteTraffic.size());
    for (const SiteTraffic &st : s.siteTraffic) {
        w.i64(st.site);
        w.f64(st.transactions);
        w.f64(st.usefulBytes);
        w.f64(st.accesses);
    }
}

SimReport
getReport(ByteReader &r)
{
    SimReport rep;
    rep.totalMs = r.f64();
    rep.computeMs = r.f64();
    rep.memoryMs = r.f64();
    rep.launchMs = r.f64();
    rep.blockOverheadMs = r.f64();
    rep.mallocMs = r.f64();
    rep.combinerMs = r.f64();
    rep.compactionMs = r.f64();
    rep.achievedBandwidth = r.f64();
    rep.residentWarps = r.f64();
    rep.blocksPerSM = r.i64();
    rep.occupancy = r.f64();
    rep.coalescingEfficiency = r.f64();

    KernelStats &s = rep.stats;
    s.warpInstructions = r.f64();
    s.transactions = r.f64();
    s.usefulBytes = r.f64();
    s.smemAccesses = r.f64();
    s.syncs = r.f64();
    s.mallocs = r.f64();
    s.totalBlocks = r.i64();
    s.threadsPerBlock = r.i64();
    s.sharedMemPerBlock = r.i64();
    s.hasCombiner = r.u8() != 0;
    s.combinerTransactions = r.f64();
    s.combinerOps = r.f64();
    s.combinerThreads = r.i64();
    s.hasCompaction = r.u8() != 0;
    s.compactionTransactions = r.f64();
    s.compactionOps = r.f64();
    s.compactionThreads = r.i64();
    rep.queueBuildMs = r.f64();
    s.hasConsolidation = r.u8() != 0;
    s.queueBuildTransactions = r.f64();
    s.queueBuildOps = r.f64();
    s.queueBuildThreads = r.i64();
    s.consolidationGroups = r.i64();
    s.consolidationParents = r.i64();
    s.consolidationEntries = r.i64();
    s.consolidationWaves = r.i64();
    s.binFill = r.f64();
    s.sampledFraction = r.f64();
    s.classedBlocks = r.i64();
    s.classReason = r.str();
    const uint64_t sites = r.u64();
    if (r.ok && sites <= (r.n - r.off) / (4 * sizeof(uint64_t))) {
        s.siteTraffic.resize(sites);
        for (uint64_t i = 0; i < sites; i++) {
            s.siteTraffic[i].site = r.i64();
            s.siteTraffic[i].transactions = r.f64();
            s.siteTraffic[i].usefulBytes = r.f64();
            s.siteTraffic[i].accesses = r.f64();
        }
    } else {
        r.ok = false;
    }
    return rep;
}

} // namespace

const char *
evalTierName(EvalTier tier)
{
    switch (tier) {
    case EvalTier::Simulated: return "simulated";
    case EvalTier::Memory: return "memory";
    case EvalTier::Disk: return "disk";
    }
    return "?";
}

namespace {

/** One memoized evaluation (either tier). */
struct CacheEntry
{
    uint64_t key = 0;
    SimReport report;
    bool hasOutputs = false;
    /** (varId, contents) per output array, captured from a functional
     *  run so wantOutputs hits can replay them. */
    std::vector<std::pair<int, std::vector<double>>> outputs;
    uint64_t bytes = 0;
};

} // namespace

struct EvalCache::Impl
{
    using Entry = CacheEntry;

    mutable std::mutex mu;
    std::list<Entry> lru; // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    std::string diskDir; // empty = no disk tier
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t diskHits = 0;
    uint64_t diskMisses = 0;
    uint64_t diskStores = 0;
    uint64_t diskRejects = 0;

    void
    evictTo(uint64_t capacity)
    {
        while (bytes > capacity && !lru.empty()) {
            const Entry &victim = lru.back();
            bytes -= victim.bytes;
            index.erase(victim.key);
            lru.pop_back();
            evictions++;
            NPP_TRACE_COUNT("evalcache.evictions", 1);
        }
    }

    /** Insert (or refresh) an entry; caller holds mu. */
    void
    insertLocked(Entry &&entry, uint64_t capacity)
    {
        auto it = index.find(entry.key);
        if (it != index.end()) {
            // Concurrent misses can race to store the same evaluation;
            // keep whichever entry carries outputs (otherwise equal).
            if (it->second->hasOutputs && !entry.hasOutputs) {
                lru.splice(lru.begin(), lru, it->second);
                return;
            }
            bytes -= it->second->bytes;
            lru.erase(it->second);
            index.erase(it);
        }
        const uint64_t key = entry.key;
        bytes += entry.bytes;
        lru.push_front(std::move(entry));
        index[key] = lru.begin();
        evictTo(capacity);
    }
};

namespace {

/** Actual footprint of a cache entry: struct + index/list overhead, the
 *  report's heap payload (per-site traffic tables, diagnostics), and the
 *  captured output arrays. The old estimate (sizeof(Entry) + 64) let a
 *  stats-heavy sweep blow far past the byte budget before any eviction
 *  fired. */
uint64_t
entryFootprint(const CacheEntry &entry)
{
    uint64_t b = sizeof(CacheEntry) + 64;
    b += entry.report.heapBytes();
    b += entry.outputs.capacity() *
         sizeof(std::pair<int, std::vector<double>>);
    for (const auto &[varId, contents] : entry.outputs) {
        (void)varId;
        b += contents.capacity() * sizeof(double);
    }
    return b;
}

std::string
diskPathFor(const std::string &dir, uint64_t key)
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name + ".nppeval";
}

std::string
serializeEntry(const CacheEntry &entry)
{
    ByteWriter w;
    putReport(w, entry.report);
    w.u8(entry.hasOutputs ? 1 : 0);
    w.u64(entry.outputs.size());
    for (const auto &[varId, contents] : entry.outputs) {
        w.i64(varId);
        w.u64(contents.size());
        w.buf.append(reinterpret_cast<const char *>(contents.data()),
                     contents.size() * sizeof(double));
    }
    return std::move(w.buf);
}

bool
deserializeEntry(const std::string &payload, CacheEntry *out)
{
    ByteReader r{payload.data(), payload.size()};
    out->report = getReport(r);
    out->hasOutputs = r.u8() != 0;
    const uint64_t count = r.u64();
    if (!r.ok || count > (r.n - r.off) / (2 * sizeof(uint64_t)))
        return false;
    out->outputs.clear();
    out->outputs.reserve(count);
    for (uint64_t i = 0; i < count; i++) {
        const int64_t varId = r.i64();
        const uint64_t elems = r.u64();
        if (!r.ok || elems > (r.n - r.off) / sizeof(double))
            return false;
        std::vector<double> contents(elems);
        if (!r.take(contents.data(), elems * sizeof(double)))
            return false;
        out->outputs.emplace_back(static_cast<int>(varId),
                                  std::move(contents));
    }
    return r.exhausted();
}

enum class DiskRead { Ok, NotFound, Reject };

/** Read + validate one disk entry. Every failure mode past "file does
 *  not exist" — short header, bad magic, version or model-tag mismatch,
 *  key mismatch (renamed file), size or checksum mismatch, payload that
 *  under- or over-runs — is a Reject: counted, treated as a miss, and
 *  never allowed to crash or corrupt the caller. */
DiskRead
readDiskEntry(const std::string &path, uint64_t key, CacheEntry *out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return DiskRead::NotFound;
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.append(buf, got);
    const bool readErr = std::ferror(f) != 0;
    std::fclose(f);
    if (readErr)
        return DiskRead::Reject;

    ByteReader r{data.data(), data.size()};
    char magic[sizeof kDiskMagic];
    if (!r.take(magic, sizeof magic) ||
        std::memcmp(magic, kDiskMagic, sizeof magic) != 0)
        return DiskRead::Reject;
    if (r.u32() != kEvalCacheDiskFormatVersion)
        return DiskRead::Reject;
    const uint32_t tagLen = r.u32();
    const std::string tag = kCoalesceModelVersion;
    if (!r.ok || tagLen != tag.size() || r.n - r.off < tagLen ||
        std::memcmp(r.p + r.off, tag.data(), tagLen) != 0)
        return DiskRead::Reject;
    r.off += tagLen;
    if (r.u64() != key)
        return DiskRead::Reject;
    const uint64_t payloadSize = r.u64();
    const uint64_t payloadFnv = r.u64();
    if (!r.ok || r.n - r.off != payloadSize)
        return DiskRead::Reject;
    if (fnvBytes(r.p + r.off, payloadSize) != payloadFnv)
        return DiskRead::Reject;

    std::string payload(r.p + r.off, payloadSize);
    if (!deserializeEntry(payload, out))
        return DiskRead::Reject;
    out->key = key;
    out->bytes = entryFootprint(*out);
    return DiskRead::Ok;
}

/** Write one disk entry via temp file + atomic rename: a concurrent
 *  reader either sees no file or a complete one, never a partial
 *  write. Returns false (with a one-line warning) on I/O failure. */
bool
writeDiskEntry(const std::string &dir, uint64_t key,
               const std::string &payload)
{
    ByteWriter header;
    header.buf.append(kDiskMagic, sizeof kDiskMagic);
    header.u32(kEvalCacheDiskFormatVersion);
    const std::string tag = kCoalesceModelVersion;
    header.u32(static_cast<uint32_t>(tag.size()));
    header.buf.append(tag);
    header.u64(key);
    header.u64(payload.size());
    header.u64(fnvBytes(payload.data(), payload.size()));

    std::string tmpPath = dir + "/.nppeval.XXXXXX";
    const int fd = ::mkstemp(tmpPath.data());
    if (fd < 0) {
        NPP_WARN("eval cache: cannot create temp file in {} ({})", dir,
                 std::strerror(errno));
        return false;
    }
    const auto writeAll = [&](const char *p, size_t n) {
        while (n > 0) {
            const ssize_t w = ::write(fd, p, n);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += w;
            n -= static_cast<size_t>(w);
        }
        return true;
    };
    const bool wrote = writeAll(header.buf.data(), header.buf.size()) &&
                       writeAll(payload.data(), payload.size());
    ::close(fd);
    if (!wrote || std::rename(tmpPath.c_str(),
                              diskPathFor(dir, key).c_str()) != 0) {
        NPP_WARN("eval cache: cannot write entry under {} ({})", dir,
                 std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return false;
    }
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace

EvalCache::EvalCache()
    : impl_(new Impl),
      capacityBytes_(readCapacityBytes())
{
    impl_->diskDir = readDiskDirEnv();
    if (!impl_->diskDir.empty())
        ensureDir(impl_->diskDir);
}

EvalCache &
EvalCache::instance()
{
    // Intentionally leaked: outlives every static destructor that might
    // still evaluate programs.
    static EvalCache *cache = new EvalCache();
    return *cache;
}

uint64_t
EvalCache::hashProgram(const Program &prog)
{
    const std::string text = printProgram(prog);
    uint64_t h = fnvBytes(text.data(), text.size());
    return mixMap(h, prog.sizeHints());
}

uint64_t
EvalCache::hashCompileOptions(const CompileOptions &copts)
{
    uint64_t h = kFnvBasis;
    h = mix(h, static_cast<uint64_t>(copts.strategy));
    h = mix(h, copts.fixedMapping.hashValue());
    // Consolidation granularity changes the launch geometry (lanes per
    // bin), so the two variants must never share an entry.
    h = mix(h, static_cast<uint64_t>(copts.binGranularity));
    h = mix(h, copts.prealloc.enable ? 1 : 0);
    h = mix(h, copts.prealloc.layoutFromMapping ? 1 : 0);
    h = mix(h, copts.smemPrefetch ? 1 : 0);
    h = mixMap(h, copts.paramValues);
    h = mix(h, static_cast<uint64_t>(copts.objective));
    h = mix(h, copts.rawPointers ? 1 : 0);
    h = mix(h, copts.fuseMapReduce ? 1 : 0);
    // keepCandidates and explainSearch only add diagnostics; they cannot
    // change the spec, so they are deliberately excluded from the key.
    return h;
}

uint64_t
EvalCache::hashDevice(const DeviceConfig &d)
{
    uint64_t h = fnvBytes(d.name.data(), d.name.size());
    h = mix(h, static_cast<uint64_t>(d.numSMs));
    h = mix(h, static_cast<uint64_t>(d.warpSize));
    h = mix(h, static_cast<uint64_t>(d.maxThreadsPerBlock));
    h = mix(h, static_cast<uint64_t>(d.maxThreadsPerSM));
    h = mix(h, static_cast<uint64_t>(d.maxBlocksPerSM));
    for (int dim : d.maxBlockDim)
        h = mix(h, static_cast<uint64_t>(dim));
    h = mix(h, static_cast<uint64_t>(d.dpLanesPerSM));
    h = mixDouble(h, d.clockGHz);
    h = mix(h, static_cast<uint64_t>(d.sharedMemPerSM));
    h = mix(h, static_cast<uint64_t>(d.sharedMemPerBlockLimit));
    h = mixDouble(h, d.dramBandwidthGBs);
    h = mixDouble(h, d.memLatencyCycles);
    h = mix(h, static_cast<uint64_t>(d.transactionBytes));
    h = mix(h, static_cast<uint64_t>(d.sharedMemBanks));
    h = mix(h, static_cast<uint64_t>(d.l1CacheBytes));
    h = mixDouble(h, d.pcieBandwidthGBs);
    h = mixDouble(h, d.kernelLaunchOverheadUs);
    h = mixDouble(h, d.blockScheduleCycles);
    h = mixDouble(h, d.deviceMallocCycles);
    h = mixDouble(h, d.mallocParallelism);
    h = mixDouble(h, d.syncthreadsCycles);
    h = mixDouble(h, d.wrapperTrafficFactor);
    h = mix(h, static_cast<uint64_t>(d.minBlockSize));
    h = mix(h, static_cast<uint64_t>(d.maxLogicalDims));
    return h;
}

uint64_t
EvalCache::hashBindings(const Bindings &args)
{
    return args.fingerprint();
}

uint64_t
EvalCache::hashExec(const ExecOptions &eopts)
{
    // metricsOnly and blockClasses are excluded on purpose: they are
    // report-identical execution modes (determinism test + the classed
    // differential suite), so trials in any mode can share entries; the
    // classedBlocks/classReason diagnostics of a replayed report may
    // therefore reflect the mode that originally populated the cache.
    // siteStats is NOT report-identical (it adds the per-site table), so
    // it is keyed.
    uint64_t h = mix(kFnvBasis, static_cast<uint64_t>(eopts.maxSampledBlocks));
    h = mix(h, eopts.siteStats ? 1 : 0);
    // Root shards are mixed in only when requested so every key of an
    // unsharded run — including all pre-existing disk-tier entries —
    // stays byte-identical to before the multi-device layer existed.
    if (eopts.sharded()) {
        h = mix(h, 0x5da4dull); // shard tag: distinct from the flat tail
        h = mix(h, static_cast<uint64_t>(eopts.rootShardLo));
        h = mix(h, static_cast<uint64_t>(eopts.rootShardHi));
    }
    return h;
}

uint64_t
EvalCache::hashFleet(const FleetConfig &fleet)
{
    uint64_t h = mix(kFnvBasis, hashDevice(fleet.device));
    h = mix(h, static_cast<uint64_t>(fleet.deviceCount));
    h = mixDouble(h, fleet.peerBandwidthGBs);
    h = mixDouble(h, fleet.peerLatencyUs);
    return h;
}

uint64_t
EvalCache::combine(uint64_t a, uint64_t b)
{
    return mix(mix(kFnvBasis, a), b);
}

std::optional<SimReport>
EvalCache::find(uint64_t key, bool wantOutputs, const Bindings *args,
                EvalTier *tierOut)
{
    if (!enabled())
        return std::nullopt;

    std::string diskDir;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        auto it = impl_->index.find(key);
        if (it != impl_->index.end()) {
            Impl::Entry &entry = *it->second;
            bool usable = true;
            if (wantOutputs) {
                // A report-only entry cannot satisfy a functional
                // request; neither can one whose captured outputs no
                // longer match the bound storage shape.
                usable = entry.hasOutputs;
                for (const auto &[varId, contents] : entry.outputs) {
                    if (!usable)
                        break;
                    const ArraySlot &slot = args->arraySlot(varId);
                    usable = slot.data &&
                             slot.physSize ==
                                 static_cast<int64_t>(contents.size());
                }
            }
            if (usable) {
                if (wantOutputs) {
                    for (const auto &[varId, contents] : entry.outputs) {
                        const ArraySlot &slot = args->arraySlot(varId);
                        std::memcpy(const_cast<double *>(slot.data),
                                    contents.data(),
                                    contents.size() * sizeof(double));
                    }
                }
                impl_->hits++;
                NPP_TRACE_COUNT("evalcache.hits", 1);
                impl_->lru.splice(impl_->lru.begin(), impl_->lru,
                                  it->second);
                if (tierOut)
                    *tierOut = EvalTier::Memory;
                return entry.report;
            }
        }
        impl_->misses++;
        NPP_TRACE_COUNT("evalcache.misses", 1);
        diskDir = impl_->diskDir;
    }

    if (diskDir.empty())
        return std::nullopt;

    // Memory missed: probe the disk tier outside the lock (atomic
    // renames guarantee any file we open is complete).
    CacheEntry entry;
    const DiskRead rd = readDiskEntry(diskPathFor(diskDir, key), key,
                                      &entry);
    if (rd != DiskRead::Ok) {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (rd == DiskRead::Reject) {
            impl_->diskRejects++;
            NPP_TRACE_COUNT("evalcache.disk_rejects", 1);
        }
        impl_->diskMisses++;
        NPP_TRACE_COUNT("evalcache.disk_misses", 1);
        return std::nullopt;
    }

    bool usable = true;
    if (wantOutputs) {
        usable = entry.hasOutputs;
        for (const auto &[varId, contents] : entry.outputs) {
            if (!usable)
                break;
            const ArraySlot &slot = args->arraySlot(varId);
            usable = slot.data &&
                     slot.physSize == static_cast<int64_t>(contents.size());
        }
        if (usable) {
            for (const auto &[varId, contents] : entry.outputs) {
                const ArraySlot &slot = args->arraySlot(varId);
                std::memcpy(const_cast<double *>(slot.data),
                            contents.data(),
                            contents.size() * sizeof(double));
            }
        }
    }

    SimReport report = entry.report;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        // Promote into memory either way — a later metrics-only probe
        // of the same key should not pay the disk read again.
        impl_->insertLocked(std::move(entry),
                            static_cast<uint64_t>(capacityBytes_));
        if (usable) {
            impl_->diskHits++;
            NPP_TRACE_COUNT("evalcache.disk_hits", 1);
        } else {
            impl_->diskMisses++;
            NPP_TRACE_COUNT("evalcache.disk_misses", 1);
        }
    }
    if (!usable)
        return std::nullopt;
    if (tierOut)
        *tierOut = EvalTier::Disk;
    return report;
}

void
EvalCache::store(uint64_t key, const SimReport &report,
                 const Bindings *outputsOf)
{
    if (!enabled())
        return;
    CacheEntry entry;
    entry.key = key;
    entry.report = report;
    if (outputsOf) {
        entry.hasOutputs = true;
        const Program &prog = outputsOf->program();
        for (const auto &v : prog.vars()) {
            if (v.role != VarRole::ArrayParam || !v.isOutput)
                continue;
            const ArraySlot &slot = outputsOf->arraySlot(v.id);
            if (!slot.data)
                continue;
            entry.outputs.emplace_back(
                v.id,
                std::vector<double>(slot.data, slot.data + slot.physSize));
        }
    }
    entry.bytes = entryFootprint(entry);

    std::string diskDir;
    std::string payload;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        diskDir = impl_->diskDir;
        if (!diskDir.empty())
            payload = serializeEntry(entry);
        impl_->insertLocked(std::move(entry),
                            static_cast<uint64_t>(capacityBytes_));
    }

    if (diskDir.empty())
        return;
    // Write-through. A report-only evaluation never clobbers an existing
    // file (it might carry outputs from a functional run); an evaluation
    // with outputs always refreshes it.
    const std::string path = diskPathFor(diskDir, key);
    if (!outputsOf && fileExists(path))
        return;
    if (writeDiskEntry(diskDir, key, payload)) {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->diskStores++;
        NPP_TRACE_COUNT("evalcache.disk_stores", 1);
    }
}

EvalCacheStats
EvalCache::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    EvalCacheStats s;
    s.hits = impl_->hits;
    s.misses = impl_->misses;
    s.evictions = impl_->evictions;
    s.entries = impl_->lru.size();
    s.bytes = impl_->bytes;
    s.diskHits = impl_->diskHits;
    s.diskMisses = impl_->diskMisses;
    s.diskStores = impl_->diskStores;
    s.diskRejects = impl_->diskRejects;
    return s;
}

std::string
EvalCacheStats::toJson() const
{
    return fmt("{\"hits\":{},\"misses\":{},\"evictions\":{},"
               "\"entries\":{},\"bytes\":{},\"hit_rate\":{},"
               "\"disk_hits\":{},\"disk_misses\":{},\"disk_stores\":{},"
               "\"disk_rejects\":{}}",
               hits, misses, evictions, entries, bytes,
               fixed(hitRate(), 6), diskHits, diskMisses, diskStores,
               diskRejects);
}

void
EvalCache::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->lru.clear();
    impl_->index.clear();
    impl_->bytes = 0;
    impl_->hits = 0;
    impl_->misses = 0;
    impl_->evictions = 0;
    impl_->diskHits = 0;
    impl_->diskMisses = 0;
    impl_->diskStores = 0;
    impl_->diskRejects = 0;
}

void
EvalCache::setCapacityBytes(int64_t bytes)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    capacityBytes_ = bytes;
    impl_->evictTo(static_cast<uint64_t>(bytes > 0 ? bytes : 0));
}

void
EvalCache::setDiskDir(const std::string &dir)
{
    if (!dir.empty())
        ensureDir(dir);
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->diskDir = dir;
}

std::string
EvalCache::diskDir() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->diskDir;
}

void
EvalCache::resetCounters()
{
    // Every effectiveness counter resets together: a per-phase report
    // must not show phase N's evictions or disk traffic next to phase
    // N+1's hit rate.
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->hits = 0;
    impl_->misses = 0;
    impl_->evictions = 0;
    impl_->diskHits = 0;
    impl_->diskMisses = 0;
    impl_->diskStores = 0;
    impl_->diskRejects = 0;
}

namespace {

std::mutex gObserverMutex;
ExactEvalObserver gObserver;

/** Copy-then-call: a concurrent setExactEvalObserver never races a
 *  running callback, and the callback runs outside the lock. */
void
notifyExactEval(const ExactEvalInfo &info)
{
    ExactEvalObserver obs;
    {
        std::lock_guard<std::mutex> lock(gObserverMutex);
        obs = gObserver;
    }
    if (obs)
        obs(info);
}

} // namespace

void
setExactEvalObserver(ExactEvalObserver observer)
{
    std::lock_guard<std::mutex> lock(gObserverMutex);
    gObserver = std::move(observer);
}

SimReport
cachedCompileAndRun(const Gpu &gpu, const Program &prog,
                    const Bindings &args, const CompileOptions &copts,
                    const ExecOptions &eopts, bool wantOutputs,
                    EvalTier *tierOut)
{
    EvalCache &cache = EvalCache::instance();
    ExecOptions eo = eopts;
    eo.metricsOnly = !wantOutputs;
    if (tierOut)
        *tierOut = EvalTier::Simulated;
    // The executed mapping is nameable without compiling only under
    // Strategy::Fixed (compile may still apply hard spans; our own
    // sweeps enumerate hard-feasible candidates, so the two agree).
    const MappingDecision *mapping =
        copts.strategy == Strategy::Fixed ? &copts.fixedMapping : nullptr;
    if (!cache.enabled()) {
        SimReport report = gpu.compileAndRun(prog, args, copts, eo);
        notifyExactEval({&prog, mapping, &copts.paramValues, &eo,
                         &gpu.config(), &report});
        return report;
    }

    const uint64_t specSeed = EvalCache::combine(
        EvalCache::combine(EvalCache::hashProgram(prog),
                           EvalCache::hashCompileOptions(copts)),
        EvalCache::hashDevice(gpu.config()));
    const uint64_t key = EvalCache::combine(
        EvalCache::combine(specSeed, EvalCache::hashBindings(args)),
        EvalCache::hashExec(eo));
    if (auto hit = cache.find(key, wantOutputs, &args, tierOut))
        return *hit;
    SimReport report = gpu.compileAndRun(prog, args, copts, eo);
    cache.store(key, report, wantOutputs ? &args : nullptr);
    notifyExactEval({&prog, mapping, &copts.paramValues, &eo,
                     &gpu.config(), &report});
    return report;
}

SimReport
cachedRun(const Gpu &gpu, const KernelSpec &spec, const Bindings &args,
          const ExecOptions &eopts, uint64_t specSeed, bool wantOutputs,
          EvalTier *tierOut)
{
    EvalCache &cache = EvalCache::instance();
    ExecOptions eo = eopts;
    eo.metricsOnly = !wantOutputs;
    if (tierOut)
        *tierOut = EvalTier::Simulated;
    if (!cache.enabled()) {
        SimReport report = gpu.run(spec, args, eo);
        notifyExactEval({spec.prog, &spec.mapping, nullptr, &eo,
                         &gpu.config(), &report});
        return report;
    }

    const uint64_t key = EvalCache::combine(
        EvalCache::combine(specSeed, EvalCache::hashBindings(args)),
        EvalCache::hashExec(eo));
    if (auto hit = cache.find(key, wantOutputs, &args, tierOut))
        return *hit;
    SimReport report = gpu.run(spec, args, eo);
    cache.store(key, report, wantOutputs ? &args : nullptr);
    notifyExactEval({spec.prog, &spec.mapping, nullptr, &eo,
                     &gpu.config(), &report});
    return report;
}

} // namespace npp
