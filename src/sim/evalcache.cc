#include "sim/evalcache.h"

#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/printer.h"
#include "support/env.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvBytes(const void *data, size_t n, uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
mix(uint64_t h, uint64_t v)
{
    return fnvBytes(&v, sizeof(v), h);
}

uint64_t
mixDouble(uint64_t h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(h, bits);
}

/** Order-independent digest of an unordered int->double map. */
uint64_t
mixMap(uint64_t h, const std::unordered_map<int, double> &m)
{
    uint64_t acc = 0;
    for (const auto &[k, v] : m) {
        uint64_t one = mix(kFnvBasis, static_cast<uint64_t>(k));
        one = mixDouble(one, v);
        acc += one; // commutative fold: iteration order must not matter
    }
    h = mix(h, static_cast<uint64_t>(m.size()));
    return mix(h, acc);
}

int64_t
readCapacityBytes()
{
    if (const char *off = std::getenv("NPP_EVAL_CACHE"))
        if (std::strcmp(off, "0") == 0)
            return 0;
    // Upper bound keeps mb * 2^20 comfortably inside int64 (8 EB would
    // overflow); use NPP_EVAL_CACHE=0 — not a zero/negative size — to
    // disable the cache.
    const int64_t mb =
        parseEnvInt("NPP_EVAL_CACHE_MB", 4096, 1, int64_t(1) << 32);
    return mb * 1024 * 1024;
}

} // namespace

struct EvalCache::Impl
{
    struct Entry
    {
        uint64_t key = 0;
        SimReport report;
        bool hasOutputs = false;
        /** (varId, contents) per output array, captured from a
         *  functional run so wantOutputs hits can replay them. */
        std::vector<std::pair<int, std::vector<double>>> outputs;
        uint64_t bytes = 0;
    };

    mutable std::mutex mu;
    std::list<Entry> lru; // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    void
    evictTo(uint64_t capacity)
    {
        while (bytes > capacity && !lru.empty()) {
            const Entry &victim = lru.back();
            bytes -= victim.bytes;
            index.erase(victim.key);
            lru.pop_back();
            evictions++;
            NPP_TRACE_COUNT("evalcache.evictions", 1);
        }
    }
};

EvalCache::EvalCache()
    : impl_(new Impl),
      capacityBytes_(readCapacityBytes())
{}

EvalCache &
EvalCache::instance()
{
    // Intentionally leaked: outlives every static destructor that might
    // still evaluate programs.
    static EvalCache *cache = new EvalCache();
    return *cache;
}

uint64_t
EvalCache::hashProgram(const Program &prog)
{
    const std::string text = printProgram(prog);
    uint64_t h = fnvBytes(text.data(), text.size());
    return mixMap(h, prog.sizeHints());
}

uint64_t
EvalCache::hashCompileOptions(const CompileOptions &copts)
{
    uint64_t h = kFnvBasis;
    h = mix(h, static_cast<uint64_t>(copts.strategy));
    h = mix(h, copts.fixedMapping.hashValue());
    h = mix(h, copts.prealloc.enable ? 1 : 0);
    h = mix(h, copts.prealloc.layoutFromMapping ? 1 : 0);
    h = mix(h, copts.smemPrefetch ? 1 : 0);
    h = mixMap(h, copts.paramValues);
    h = mix(h, static_cast<uint64_t>(copts.objective));
    h = mix(h, copts.rawPointers ? 1 : 0);
    h = mix(h, copts.fuseMapReduce ? 1 : 0);
    // keepCandidates and explainSearch only add diagnostics; they cannot
    // change the spec, so they are deliberately excluded from the key.
    return h;
}

uint64_t
EvalCache::hashDevice(const DeviceConfig &d)
{
    uint64_t h = fnvBytes(d.name.data(), d.name.size());
    h = mix(h, static_cast<uint64_t>(d.numSMs));
    h = mix(h, static_cast<uint64_t>(d.warpSize));
    h = mix(h, static_cast<uint64_t>(d.maxThreadsPerBlock));
    h = mix(h, static_cast<uint64_t>(d.maxThreadsPerSM));
    h = mix(h, static_cast<uint64_t>(d.maxBlocksPerSM));
    for (int dim : d.maxBlockDim)
        h = mix(h, static_cast<uint64_t>(dim));
    h = mix(h, static_cast<uint64_t>(d.dpLanesPerSM));
    h = mixDouble(h, d.clockGHz);
    h = mix(h, static_cast<uint64_t>(d.sharedMemPerSM));
    h = mix(h, static_cast<uint64_t>(d.sharedMemPerBlockLimit));
    h = mixDouble(h, d.dramBandwidthGBs);
    h = mixDouble(h, d.memLatencyCycles);
    h = mix(h, static_cast<uint64_t>(d.transactionBytes));
    h = mix(h, static_cast<uint64_t>(d.sharedMemBanks));
    h = mix(h, static_cast<uint64_t>(d.l1CacheBytes));
    h = mixDouble(h, d.pcieBandwidthGBs);
    h = mixDouble(h, d.kernelLaunchOverheadUs);
    h = mixDouble(h, d.blockScheduleCycles);
    h = mixDouble(h, d.deviceMallocCycles);
    h = mixDouble(h, d.mallocParallelism);
    h = mixDouble(h, d.syncthreadsCycles);
    h = mixDouble(h, d.wrapperTrafficFactor);
    h = mix(h, static_cast<uint64_t>(d.minBlockSize));
    h = mix(h, static_cast<uint64_t>(d.maxLogicalDims));
    return h;
}

uint64_t
EvalCache::hashBindings(const Bindings &args)
{
    return args.fingerprint();
}

uint64_t
EvalCache::hashExec(const ExecOptions &eopts)
{
    // metricsOnly and blockClasses are excluded on purpose: they are
    // report-identical execution modes (determinism test + the classed
    // differential suite), so trials in any mode can share entries; the
    // classedBlocks/classReason diagnostics of a replayed report may
    // therefore reflect the mode that originally populated the cache.
    // siteStats is NOT report-identical (it adds the per-site table), so
    // it is keyed.
    uint64_t h = mix(kFnvBasis, static_cast<uint64_t>(eopts.maxSampledBlocks));
    return mix(h, eopts.siteStats ? 1 : 0);
}

uint64_t
EvalCache::combine(uint64_t a, uint64_t b)
{
    return mix(mix(kFnvBasis, a), b);
}

std::optional<SimReport>
EvalCache::find(uint64_t key, bool wantOutputs, const Bindings *args)
{
    if (!enabled())
        return std::nullopt;
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->index.find(key);
    if (it == impl_->index.end()) {
        impl_->misses++;
        NPP_TRACE_COUNT("evalcache.misses", 1);
        return std::nullopt;
    }
    Impl::Entry &entry = *it->second;
    if (wantOutputs) {
        // A report-only entry cannot satisfy a functional request.
        if (!entry.hasOutputs) {
            impl_->misses++;
            NPP_TRACE_COUNT("evalcache.misses", 1);
            return std::nullopt;
        }
        for (const auto &[varId, contents] : entry.outputs) {
            const ArraySlot &slot = args->arraySlot(varId);
            if (!slot.data ||
                slot.physSize != static_cast<int64_t>(contents.size())) {
                impl_->misses++;
                NPP_TRACE_COUNT("evalcache.misses", 1);
                return std::nullopt;
            }
        }
        for (const auto &[varId, contents] : entry.outputs) {
            const ArraySlot &slot = args->arraySlot(varId);
            std::memcpy(const_cast<double *>(slot.data), contents.data(),
                        contents.size() * sizeof(double));
        }
    }
    impl_->hits++;
    NPP_TRACE_COUNT("evalcache.hits", 1);
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    return entry.report;
}

void
EvalCache::store(uint64_t key, const SimReport &report,
                 const Bindings *outputsOf)
{
    if (!enabled())
        return;
    Impl::Entry entry;
    entry.key = key;
    entry.report = report;
    entry.bytes = sizeof(Impl::Entry) + 64; // index/list overhead estimate
    if (outputsOf) {
        entry.hasOutputs = true;
        const Program &prog = outputsOf->program();
        for (const auto &v : prog.vars()) {
            if (v.role != VarRole::ArrayParam || !v.isOutput)
                continue;
            const ArraySlot &slot = outputsOf->arraySlot(v.id);
            if (!slot.data)
                continue;
            entry.outputs.emplace_back(
                v.id,
                std::vector<double>(slot.data, slot.data + slot.physSize));
            entry.bytes += slot.physSize * sizeof(double);
        }
    }

    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->index.find(key);
    if (it != impl_->index.end()) {
        // Concurrent misses can race to store the same evaluation; keep
        // whichever entry carries outputs (they are otherwise equal).
        if (it->second->hasOutputs && !entry.hasOutputs) {
            impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
            return;
        }
        impl_->bytes -= it->second->bytes;
        impl_->lru.erase(it->second);
        impl_->index.erase(it);
    }
    impl_->bytes += entry.bytes;
    impl_->lru.push_front(std::move(entry));
    impl_->index[key] = impl_->lru.begin();
    impl_->evictTo(static_cast<uint64_t>(capacityBytes_));
}

EvalCacheStats
EvalCache::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    EvalCacheStats s;
    s.hits = impl_->hits;
    s.misses = impl_->misses;
    s.evictions = impl_->evictions;
    s.entries = impl_->lru.size();
    s.bytes = impl_->bytes;
    return s;
}

std::string
EvalCacheStats::toJson() const
{
    return fmt("{\"hits\":{},\"misses\":{},\"evictions\":{},"
               "\"entries\":{},\"bytes\":{},\"hit_rate\":{}}",
               hits, misses, evictions, entries, bytes,
               fixed(hitRate(), 6));
}

void
EvalCache::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->lru.clear();
    impl_->index.clear();
    impl_->bytes = 0;
    impl_->hits = 0;
    impl_->misses = 0;
    impl_->evictions = 0;
}

void
EvalCache::setCapacityBytes(int64_t bytes)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    capacityBytes_ = bytes;
    impl_->evictTo(static_cast<uint64_t>(bytes > 0 ? bytes : 0));
}

void
EvalCache::resetCounters()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->hits = 0;
    impl_->misses = 0;
}

SimReport
cachedCompileAndRun(const Gpu &gpu, const Program &prog,
                    const Bindings &args, const CompileOptions &copts,
                    const ExecOptions &eopts, bool wantOutputs)
{
    EvalCache &cache = EvalCache::instance();
    ExecOptions eo = eopts;
    eo.metricsOnly = !wantOutputs;
    if (!cache.enabled())
        return gpu.compileAndRun(prog, args, copts, eo);

    const uint64_t specSeed = EvalCache::combine(
        EvalCache::combine(EvalCache::hashProgram(prog),
                           EvalCache::hashCompileOptions(copts)),
        EvalCache::hashDevice(gpu.config()));
    const uint64_t key = EvalCache::combine(
        EvalCache::combine(specSeed, EvalCache::hashBindings(args)),
        EvalCache::hashExec(eo));
    if (auto hit = cache.find(key, wantOutputs, &args))
        return *hit;
    SimReport report = gpu.compileAndRun(prog, args, copts, eo);
    cache.store(key, report, wantOutputs ? &args : nullptr);
    return report;
}

SimReport
cachedRun(const Gpu &gpu, const KernelSpec &spec, const Bindings &args,
          const ExecOptions &eopts, uint64_t specSeed, bool wantOutputs)
{
    EvalCache &cache = EvalCache::instance();
    ExecOptions eo = eopts;
    eo.metricsOnly = !wantOutputs;
    if (!cache.enabled())
        return gpu.run(spec, args, eo);

    const uint64_t key = EvalCache::combine(
        EvalCache::combine(specSeed, EvalCache::hashBindings(args)),
        EvalCache::hashExec(eo));
    if (auto hit = cache.find(key, wantOutputs, &args))
        return *hit;
    SimReport report = gpu.run(spec, args, eo);
    cache.store(key, report, wantOutputs ? &args : nullptr);
    return report;
}

} // namespace npp
