/**
 * @file
 * Statistics collected by the simulator's functional execution and the
 * timing report derived from them.
 */

#ifndef NPP_SIM_METRICS_H
#define NPP_SIM_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace npp {

/**
 * Version tag of the transaction-counting model, exported in the stats
 * JSON so archived figure rows record which model produced them. Bump on
 * any change that alters transaction counts: "relative-base-v2" counts a
 * warp group's segments against a base at the group's minimum lane
 * address (shift-invariant); v1 counted absolute address / transaction
 * size.
 */
inline constexpr const char *kCoalesceModelVersion = "relative-base-v2";

/**
 * Global-memory traffic attributed to one static access site (trace-site
 * id), collected when ExecOptions::siteStats is set. Per-site coalescing
 * efficiency is usefulBytes / (transactions x transaction size) — 1.0
 * for perfectly coalesced unit-stride access, ~1/16 for a fully strided
 * 8-byte walk on a 128-byte-transaction device.
 */
struct SiteTraffic
{
    int64_t site = 0;
    double transactions = 0.0;
    double usefulBytes = 0.0;
    double accesses = 0.0;

    bool operator==(const SiteTraffic &o) const
    {
        return site == o.site && transactions == o.transactions &&
               usefulBytes == o.usefulBytes && accesses == o.accesses;
    }
};

/**
 * Work counters for one kernel launch. "Warp instructions" are weighted
 * scalar-op counts normalized to warp granularity (32 lanes executing one
 * instruction count as 1), so redundant execution of outer-level code by
 * inner-dimension lanes is charged exactly as the hardware would.
 */
struct KernelStats
{
    /** Warp-granular weighted compute operations. */
    double warpInstructions = 0.0;

    /** 128-byte global memory transactions after coalescing. */
    double transactions = 0.0;

    /** Bytes the program semantically asked for (useful bytes). */
    double usefulBytes = 0.0;

    /** Shared-memory accesses (prefetch fills + reduce combines). */
    double smemAccesses = 0.0;

    /** __syncthreads() executions (per block, summed over blocks). */
    double syncs = 0.0;

    /** In-kernel device-heap mallocs (one per thread-local allocation). */
    double mallocs = 0.0;

    /** Launch geometry. */
    int64_t totalBlocks = 1;
    int64_t threadsPerBlock = 1;
    int64_t sharedMemPerBlock = 0;

    /** Split-combiner kernel work (zero when no split level). */
    bool hasCombiner = false;
    double combinerTransactions = 0.0;
    double combinerOps = 0.0;
    int64_t combinerThreads = 0;

    /** Compaction finalize-kernel work for variable-size nested outputs
     *  (count/scan/scatter; zero when the program has no nested filter).
     *  Whole-grid exact — never extrapolated from sampled blocks. */
    bool hasCompaction = false;
    double compactionTransactions = 0.0;
    double compactionOps = 0.0;
    int64_t compactionThreads = 0;

    /** Consolidated queue-build prologue work (Strategy::Consolidate):
     *  per-parent extent gathering plus writing/reading one queue entry
     *  per child. Whole-grid exact — never extrapolated. The bin
     *  diagnostics feed the explain report's cost terms. */
    bool hasConsolidation = false;
    double queueBuildTransactions = 0.0;
    double queueBuildOps = 0.0;
    int64_t queueBuildThreads = 0;
    int64_t consolidationGroups = 0;  //!< bin groups (one queue each)
    int64_t consolidationParents = 0; //!< outer iterations served
    int64_t consolidationEntries = 0; //!< total queued child work items
    int64_t consolidationWaves = 0;   //!< full-lane consumption passes
    /** Bin fill efficiency: entries / (waves x lanes), 1.0 = no idle
     *  lanes in any consumption wave. */
    double binFill = 1.0;

    /** Fraction of blocks whose traffic was measured (rest extrapolated). */
    double sampledFraction = 1.0;

    /** Blocks whose metrics were replicated from an equivalence-class
     *  representative instead of being simulated (diagnostics; 0 when
     *  classing is off or the launch is not classable). */
    int64_t classedBlocks = 0;

    /** Why block-equivalence classing did not engage for this run: empty
     *  when classes were used, otherwise the first disqualifying reason
     *  (classing disabled, functional run, too few blocks, the legality
     *  analysis' fail(...) reason, or a dynamic verification divergence).
     *  A diagnostic like classedBlocks: excluded from the bit-exactness
     *  contract between execution modes. */
    std::string classReason;

    /** Per-trace-site traffic, sorted by site id; populated only when
     *  ExecOptions::siteStats is set (empty otherwise so the default
     *  report payload is unchanged). */
    std::vector<SiteTraffic> siteTraffic;

    void
    scaleTraffic(double factor)
    {
        warpInstructions *= factor;
        transactions *= factor;
        usefulBytes *= factor;
        smemAccesses *= factor;
        syncs *= factor;
        for (SiteTraffic &st : siteTraffic) {
            st.transactions *= factor;
            st.usefulBytes *= factor;
            st.accesses *= factor;
        }
    }
};

/**
 * Timing report for one kernel launch (model time, Section "hardware
 * substitution" of DESIGN.md).
 */
struct SimReport
{
    double totalMs = 0.0;

    /** @name Breakdown
     *  @{
     */
    double computeMs = 0.0;
    double memoryMs = 0.0;
    double launchMs = 0.0;
    double blockOverheadMs = 0.0;
    double mallocMs = 0.0;
    double combinerMs = 0.0;
    double compactionMs = 0.0;
    double queueBuildMs = 0.0;
    /** @} */

    /** Achieved DRAM bandwidth GB/s (diagnostics). */
    double achievedBandwidth = 0.0;

    /** Resident warps that were available to hide latency. */
    double residentWarps = 0.0;

    /** Blocks resident per SM under occupancy limits. */
    int64_t blocksPerSM = 0;

    /** Achieved occupancy: resident warps per active SM over the device's
     *  warp capacity per SM (0..1). */
    double occupancy = 0.0;

    /** Whole-kernel coalescing efficiency: useful bytes over bytes moved
     *  (transactions x transaction size), 0..1. */
    double coalescingEfficiency = 0.0;

    KernelStats stats;

    /** Heap bytes owned by this report beyond sizeof(SimReport): the
     *  per-site traffic table (siteStats runs) and the classing
     *  diagnostic string. Used by the EvalCache byte accounting so a
     *  stats-heavy entry is charged what it actually costs. */
    uint64_t heapBytes() const;

    std::string toString() const;

    /** Machine-readable export (--stats): every field of the report and
     *  its KernelStats, overhead shares of totalMs, and the per-site
     *  traffic table when present. `transactionBytes` is the device's
     *  transaction size, used for per-site efficiency. */
    std::string toJson(int64_t transactionBytes = 128) const;
};

/**
 * Bitwise equality of two reports — every timing field and every metric,
 * including the compaction/combiner stages and the per-site traffic
 * table. The execution-mode diagnostics (classedBlocks, classReason) are
 * deliberately ignored: they record *how* the result was obtained and
 * are the only fields allowed to differ between exact and classed runs.
 */
bool reportsBitIdentical(const SimReport &a, const SimReport &b);

} // namespace npp

#endif // NPP_SIM_METRICS_H
