#include "sim/coalesce.h"

namespace npp {

namespace {

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

void
CoalesceProbe::onAccess(int64_t site, int arrayVar, int64_t physIndex,
                        bool isWrite, int bytes)
{
    (void)arrayVar;
    stats.usefulBytes += bytes;
    if (!countTraffic)
        return;
    if (siteTraffic) {
        SiteTraffic &st = (*siteTraffic)[site];
        st.site = site;
        st.usefulBytes += bytes;
        st.accesses += 1.0;
    }

    const int64_t byteAddr = physIndex * bytes;
    const int64_t segment = byteAddr / device.transactionBytes;

    if (!isWrite && prefetchedSites && prefetchedSites->count(site)) {
        // Served from shared memory; the global fetch happens once per
        // block per segment in the prefetch prologue.
        stats.smemAccesses += warpMultiplier;
        blockPrefetchSegments.insert(segment);
        return;
    }

    if (lineReuse) {
        uint64_t tkey = mix(static_cast<uint64_t>(site),
                            static_cast<uint64_t>(warpTile) * 37 +
                                static_cast<uint64_t>(laneInWarp));
        auto [it, fresh] = lastLine.try_emplace(tkey, segment);
        if (!fresh) {
            if (it->second == segment)
                return; // L1 line hit
            it->second = segment;
        }
    }

    uint64_t key = mix(static_cast<uint64_t>(site), sig);
    key = mix(key, static_cast<uint64_t>(warpTile));

    Pending &p = pending[key];
    if (p.visits == 0) {
        // Stores from outer levels are guarded to a single lane in the
        // generated code (Fig 9 line 15), so broadcast writes are not
        // replicated across the unbound-dimension warps.
        p.multiplier = isWrite ? 1.0 : warpMultiplier;
        p.site = site;
    }
    p.add(segment);
    p.visits++;
    if (p.visits >= laneVisitsPerGroup) {
        charge(p);
        pending.erase(key);
    }
}

void
CoalesceProbe::charge(const Pending &p)
{
    const double transactions = p.numSegments * p.multiplier;
    stats.transactions += transactions;
    if (siteTraffic)
        (*siteTraffic)[p.site].transactions += transactions;
}

void
CoalesceProbe::flushAll()
{
    for (auto &[key, p] : pending) {
        if (p.numSegments > 0)
            charge(p);
    }
    pending.clear();
}

void
CoalesceProbe::finishBlock()
{
    flushAll();
    lastLine.clear();
    if (!blockPrefetchSegments.empty()) {
        // The prologue fetches each needed segment once, fully coalesced,
        // plus the staging stores and one barrier.
        stats.transactions += blockPrefetchSegments.size();
        stats.smemAccesses += blockPrefetchSegments.size();
        stats.syncs += 1;
        blockPrefetchSegments.clear();
    }
}

} // namespace npp
