#include "sim/coalesce.h"

#include <algorithm>
#include <bit>

#include "support/logging.h"

namespace npp {

void
CoalesceProbe::configure(int sites, int64_t tiles, int numArrayVars)
{
    numSites = std::max(sites, 1);
    tilesPerBlock = std::max<int64_t>(tiles, 1);
    const size_t laneSlots = static_cast<size_t>(numSites) * tilesPerBlock *
                             kMaxLanes;
    lineBase.assign(laneSlots, 0);
    lineEpoch.assign(laneSlots, 0);
    epoch = 1;
    prefetchAddrs.assign(static_cast<size_t>(std::max(numArrayVars, 1)),
                         {});
    prefetchTouched.clear();
}

size_t
CoalesceProbe::findOrInsert(uint64_t sigKey, uint64_t siteTile)
{
    if ((used + 1) * 4 >= capacity * 3)
        rehash(capacity * 2);
    size_t i = hashKey(sigKey, siteTile) & mask;
    while (true) {
        if (gSiteTile[i] == kEmptyKey) {
            gKey[i] = sigKey;
            gSiteTile[i] = siteTile;
            gVisits[i] = 0;
            gCount[i] = 0;
            used++;
            return i;
        }
        if (gKey[i] == sigKey && gSiteTile[i] == siteTile)
            return i;
        i = (i + 1) & mask;
    }
}

void
CoalesceProbe::rehash(size_t newCap)
{
    const std::vector<uint64_t> oldKey = std::move(gKey);
    const std::vector<uint64_t> oldSiteTile = std::move(gSiteTile);
    const std::vector<int32_t> oldVisits = std::move(gVisits);
    const std::vector<int32_t> oldCount = std::move(gCount);
    const std::vector<double> oldMult = std::move(gMult);
    const std::vector<int64_t> oldMin = std::move(gMin);
    const std::vector<int64_t> oldAddr = std::move(gAddr);
    const size_t oldCap = capacity;

    capacity = newCap;
    mask = capacity - 1;
    for (size_t &c : slotCache)
        c = 0; // keep cached indices < capacity (validated on use anyway)
    gKey.assign(capacity, 0);
    gSiteTile.assign(capacity, kEmptyKey);
    gVisits.assign(capacity, 0);
    gCount.assign(capacity, 0);
    gMult.assign(capacity, 1.0);
    gMin.assign(capacity, 0);
    gAddr.assign(capacity * kMaxLanes, 0);
    used = 0;

    for (size_t s = 0; s < oldCap; s++) {
        if (oldSiteTile[s] == kEmptyKey)
            continue;
        const size_t d = findOrInsert(oldKey[s], oldSiteTile[s]);
        gVisits[d] = oldVisits[s];
        gCount[d] = oldCount[s];
        gMult[d] = oldMult[s];
        gMin[d] = oldMin[s];
        std::copy_n(&oldAddr[s * kMaxLanes], oldCount[s],
                    &gAddr[d * kMaxLanes]);
    }
}

void
CoalesceProbe::eraseSlot(size_t slot)
{
    // Backward-shift deletion keeps linear probe chains gap-free.
    used--;
    size_t hole = slot;
    size_t i = slot;
    while (true) {
        i = (i + 1) & mask;
        if (gSiteTile[i] == kEmptyKey)
            break;
        const size_t home = hashKey(gKey[i], gSiteTile[i]) & mask;
        // Move i into the hole unless its home lies strictly after the
        // hole along the probe chain (cyclic distance test).
        if (((i - home) & mask) >= ((i - hole) & mask)) {
            gKey[hole] = gKey[i];
            gSiteTile[hole] = gSiteTile[i];
            gVisits[hole] = gVisits[i];
            gCount[hole] = gCount[i];
            gMult[hole] = gMult[i];
            gMin[hole] = gMin[i];
            std::copy_n(&gAddr[i * kMaxLanes], gCount[i],
                        &gAddr[hole * kMaxLanes]);
            hole = i;
        }
    }
    gSiteTile[hole] = kEmptyKey;
}

void
CoalesceProbe::onAccess(int64_t site, int arrayVar, int64_t physIndex,
                        bool isWrite, int bytes)
{
    stats.usefulBytes += bytes;
    if (!countTraffic)
        return;
    if (siteTraffic) {
        SiteTraffic &st = (*siteTraffic)[site];
        st.site = site;
        st.usefulBytes += bytes;
        st.accesses += 1.0;
    }

    const int64_t byteAddr = physIndex * bytes;

    if (!isWrite && prefetchedSites && prefetchedSites->count(site)) {
        // Served from shared memory; the global fetch happens once per
        // block per segment in the prefetch prologue.
        stats.smemAccesses += warpMultiplier;
        auto &fetched = prefetchAddrs[arrayVar];
        if (fetched.empty())
            prefetchTouched.push_back(arrayVar);
        fetched.insert(byteAddr);
        return;
    }

    const uint64_t siteTile =
        static_cast<uint64_t>(site) * tilesPerBlock +
        static_cast<uint64_t>(warpTile);

    if (lineReuse) {
        const size_t li = siteTile * kMaxLanes + laneInWarp;
        if (lineEpoch[li] == epoch) {
            const int64_t off = byteAddr - lineBase[li];
            if (off >= 0 && off < txBytes)
                return; // L1 line hit
        }
        lineEpoch[li] = epoch;
        lineBase[li] = byteAddr;
    }

    const size_t ci = siteTile & (kSlotCacheSize - 1);
    size_t slot = slotCache[ci];
    if (gKey[slot] != sig || gSiteTile[slot] != siteTile) {
        slot = findOrInsert(sig, siteTile);
        slotCache[ci] = slot;
    }
    int32_t &count = gCount[slot];
    if (gVisits[slot] == 0) {
        // Stores from outer levels are guarded to a single lane in the
        // generated code (Fig 9 line 15), so broadcast writes are not
        // replicated across the unbound-dimension warps.
        gMult[slot] = isWrite ? 1.0 : warpMultiplier;
        gMin[slot] = byteAddr;
        gAddr[slot * kMaxLanes] = byteAddr;
        count = 1;
    } else {
        int64_t *addrs = &gAddr[slot * kMaxLanes];
        bool seen = false;
        for (int i = 0; i < count; i++) {
            if (addrs[i] == byteAddr) {
                seen = true;
                break;
            }
        }
        if (!seen && count < kMaxLanes) {
            addrs[count++] = byteAddr;
            gMin[slot] = std::min(gMin[slot], byteAddr);
        }
    }
    if (++gVisits[slot] >= laneVisitsPerGroup) {
        charge(slot);
        eraseSlot(slot);
    }
}

int
CoalesceProbe::relativeSegments(const int64_t *addrs, int n,
                                int64_t minAddr) const
{
    // Segment-aligned base at the group's minimum address: address a
    // lands in segment (a - min) / T. One 64-bit bitmap covers groups
    // spanning up to 64 segments (the common, mostly-coalesced case);
    // wider spreads (large strides) fall back to a small distinct-value
    // scan — still no sorting, no allocation.
    uint64_t bitmap = 0;
    int64_t far[kMaxLanes];
    int numFar = 0;
    for (int i = 0; i < n; i++) {
        const int64_t rel = (addrs[i] - minAddr) / txBytes;
        if (rel < 64) {
            bitmap |= 1ull << rel;
            continue;
        }
        bool seen = false;
        for (int j = 0; j < numFar; j++) {
            if (far[j] == rel) {
                seen = true;
                break;
            }
        }
        if (!seen)
            far[numFar++] = rel;
    }
    return std::popcount(bitmap) + numFar;
}

void
CoalesceProbe::charge(size_t slot)
{
    const int segments =
        relativeSegments(&gAddr[slot * kMaxLanes], gCount[slot], gMin[slot]);
    const double transactions = segments * gMult[slot];
    stats.transactions += transactions;
    if (siteTraffic) {
        const int64_t site =
            static_cast<int64_t>(gSiteTile[slot] / tilesPerBlock);
        (*siteTraffic)[site].transactions += transactions;
    }
}

void
CoalesceProbe::flushAll()
{
    if (used == 0)
        return;
    std::vector<size_t> live;
    live.reserve(used);
    for (size_t s = 0; s < capacity && live.size() < used; s++) {
        if (gSiteTile[s] != kEmptyKey)
            live.push_back(s);
    }
    std::sort(live.begin(), live.end(), [this](size_t a, size_t b) {
        if (gSiteTile[a] != gSiteTile[b])
            return gSiteTile[a] < gSiteTile[b];
        return gKey[a] < gKey[b];
    });
    for (size_t s : live) {
        if (gCount[s] > 0)
            charge(s);
        gSiteTile[s] = kEmptyKey;
    }
    used = 0;
}

void
CoalesceProbe::finishBlock()
{
    flushAll();
    // One outlier block must not leave a huge table for every later
    // block's flush scan.
    if (capacity > 4 * kDefaultCapacity)
        rehash(kDefaultCapacity);

    epoch++;
    if (epoch == 0) {
        // Wrapped: stamp everything invalid the slow way, once per 2^32
        // blocks.
        std::fill(lineEpoch.begin(), lineEpoch.end(), 0u);
        epoch = 1;
    }

    if (!prefetchTouched.empty()) {
        // The prologue fetches each needed segment once, fully coalesced,
        // plus the staging stores and one barrier. Segments are counted
        // per array against the array's minimum fetched address so the
        // fill cost, like the warp-group model, is shift-invariant.
        std::sort(prefetchTouched.begin(), prefetchTouched.end());
        int64_t segments = 0;
        for (int var : prefetchTouched) {
            auto &fetched = prefetchAddrs[var];
            std::vector<int64_t> addrs(fetched.begin(), fetched.end());
            std::sort(addrs.begin(), addrs.end());
            int64_t lastSeg = -1;
            for (int64_t a : addrs) {
                const int64_t rel = (a - addrs.front()) / txBytes;
                if (rel != lastSeg) {
                    segments++;
                    lastSeg = rel;
                }
            }
            fetched.clear();
        }
        stats.transactions += static_cast<double>(segments);
        stats.smemAccesses += static_cast<double>(segments);
        stats.syncs += 1;
        prefetchTouched.clear();
    }
}

} // namespace npp
