#include "sim/gpu.h"

#include <cmath>

#include "support/logging.h"
#include "support/trace.h"

namespace npp {

SimReport
Gpu::run(const KernelSpec &spec, const Bindings &args,
         const ExecOptions &options) const
{
    NPP_TRACE_SCOPE("sim.run");
    NPP_TRACE_COUNT("sim.runs", 1);
    KernelStats stats = executeOnDevice(spec, args, config_, options);
    return computeTiming(stats, config_);
}

SimReport
Gpu::compileAndRun(const Program &prog, const Bindings &args,
                   const CompileOptions &copts,
                   const ExecOptions &eopts) const
{
    CompileResult compiled = compileProgram(prog, config_, copts);
    return run(compiled.spec, args, eopts);
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    NPP_ASSERT(a.size() == b.size(), "size mismatch: {} vs {}", a.size(),
               b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); i++)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

double
maxRelDiff(const std::vector<double> &a, const std::vector<double> &b,
           double floor)
{
    NPP_ASSERT(a.size() == b.size(), "size mismatch: {} vs {}", a.size(),
               b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); i++) {
        const double denom =
            std::max({std::fabs(a[i]), std::fabs(b[i]), floor});
        worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
    }
    return worst;
}

} // namespace npp
