/**
 * @file
 * Tiered memoization cache for compile-and-simulate evaluations. Autotune
 * picks, figure sweeps, repeated Runner launches, and mapping-service
 * requests frequently re-evaluate the exact same (program,
 * mapping/options, bindings) triple; the cache keys evaluations by
 * structural program hash, compile-option hash (including the
 * MappingDecision), binding fingerprint (scalar values, array sizes and
 * contents), and execution-option hash, and returns the memoized
 * SimReport — skipping both compileProgram and the simulated run.
 *
 * Two tiers (see DESIGN.md "Tiered eval cache + mapping service"):
 *  - an in-process, mutex-guarded, LRU byte-capped memory tier (default
 *    4 GB; NPP_EVAL_CACHE_MB overrides, NPP_EVAL_CACHE=off disables);
 *  - an optional on-disk, content-addressed tier shared across
 *    processes: one file per entry under NPP_EVAL_CACHE_DIR, named by
 *    the 64-bit key, with a versioned binary header (magic, format
 *    version, coalesce-model tag, key, payload checksum). Memory misses
 *    fall through to disk; disk hits promote into memory; stores
 *    write through via temp-file + atomic rename, so concurrent
 *    processes never observe a partial entry. Truncated, corrupt,
 *    wrong-version, or wrong-model files are rejected as misses (and
 *    counted), never trusted. NPP_EVAL_CACHE_DISK=off keeps the memory
 *    tier but ignores the directory.
 *
 * Invalidation rules:
 *  - any change to the program text, size hints, compile options, device
 *    parameters, bound scalars, or bound array contents changes the key
 *    (there is no in-place invalidation — stale memory entries age out
 *    via LRU; stale disk entries are unreachable garbage);
 *  - a change to the coalescing model (kCoalesceModelVersion) or the
 *    serialized report layout (bump kEvalCacheDiskFormatVersion)
 *    invalidates every disk entry via the header check;
 *  - metricsOnly/blockClasses execution modes are excluded from the key
 *    because they are report-identical by construction (enforced by the
 *    determinism test), so metrics-only autotune trials warm the cache
 *    for later functional runs;
 *  - entries carry output-array contents only when stored from a
 *    functional run; a wantOutputs lookup ignores report-only entries
 *    in both tiers.
 */

#ifndef NPP_SIM_EVALCACHE_H
#define NPP_SIM_EVALCACHE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/gpu.h"

namespace npp {

/** Bump on any change to the serialized disk-entry layout. v2 added the
 *  consolidation stage (queueBuildMs + queue/bin counters). */
inline constexpr uint32_t kEvalCacheDiskFormatVersion = 2;

/** Where an evaluation's report came from (cache-tier provenance,
 *  reported per request by the mapping service). */
enum class EvalTier {
    Simulated, //!< both tiers missed; the simulator ran
    Memory,    //!< in-process LRU hit
    Disk       //!< on-disk entry hit (promoted into memory)
};

const char *evalTierName(EvalTier tier);

/** Cache occupancy and effectiveness counters. hits/misses count
 *  memory-tier probes; the disk counters record what happened when a
 *  memory miss fell through to a configured disk tier (they stay zero
 *  without one). */
struct EvalCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;

    /** @name Disk tier (all zero when NPP_EVAL_CACHE_DIR is unset)
     *  @{
     */
    uint64_t diskHits = 0;    //!< valid entry served from disk
    uint64_t diskMisses = 0;  //!< no usable file for the key
    uint64_t diskStores = 0;  //!< entries written (atomic rename done)
    uint64_t diskRejects = 0; //!< corrupt/truncated/wrong-version files
    /** @} */

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }

    /** Machine-readable export for --stats. */
    std::string toJson() const;
};

class EvalCache
{
  public:
    static EvalCache &instance();

    /** @name Key components
     *  @{
     */
    static uint64_t hashProgram(const Program &prog);
    static uint64_t hashCompileOptions(const CompileOptions &copts);
    static uint64_t hashDevice(const DeviceConfig &device);
    static uint64_t hashBindings(const Bindings &args);
    static uint64_t hashExec(const ExecOptions &eopts);
    /** Fleet description hash for multi-device keys (device config,
     *  count, peer link): mixed into serve-protocol fingerprints so
     *  evaluations against different fleets can never coalesce or
     *  satisfy one another. */
    static uint64_t hashFleet(const FleetConfig &fleet);
    static uint64_t combine(uint64_t a, uint64_t b);
    /** @} */

    bool enabled() const { return capacityBytes_ > 0; }

    /** Probe the tiers in order (memory, then disk when configured). On
     *  a hit with wantOutputs, the memoized output arrays are copied
     *  into `args`'s bound storage (a report-only entry is treated as a
     *  miss). When `tierOut` is non-null it reports where the hit came
     *  from (unchanged on a miss). */
    std::optional<SimReport> find(uint64_t key, bool wantOutputs,
                                  const Bindings *args,
                                  EvalTier *tierOut = nullptr);

    /** Insert an evaluation into both tiers (write-through when a disk
     *  directory is configured). When `outputsOf` is non-null the
     *  current contents of its output arrays are captured so later
     *  wantOutputs lookups can replay them. */
    void store(uint64_t key, const SimReport &report,
               const Bindings *outputsOf);

    EvalCacheStats stats() const;

    /** Drop every memory-tier entry and reset all counters. Disk-tier
     *  files are untouched (they are the point: a cleared or restarted
     *  process re-hits them). */
    void clear();

    /** Reset every effectiveness counter (hits, misses, evictions, and
     *  the disk-tier counters) without dropping entries — per-phase
     *  bench reports must not carry one phase's counts into the next. */
    void resetCounters();

    /** Override the byte budget of the memory tier (0 disables the
     *  whole cache, disk tier included). Used by benches/tests to
     *  compare cached vs uncached pipelines in one process; evicts down
     *  to the new budget immediately. */
    void setCapacityBytes(int64_t bytes);
    int64_t capacityBytes() const { return capacityBytes_; }

    /** Point the disk tier at a directory (created if missing), or
     *  detach it with an empty string. Programmatic override of
     *  NPP_EVAL_CACHE_DIR for tests and benches. */
    void setDiskDir(const std::string &dir);
    std::string diskDir() const;

  private:
    EvalCache();

    struct Impl;
    Impl *impl_;
    int64_t capacityBytes_ = 0;
};

/** @name Exact-evaluation observer
 *
 * Hook invoked after every *genuinely simulated* evaluation that flows
 * through the cached entry points (cache hits never fire it — they are
 * replays of an evaluation that already fired). The predict layer
 * installs a harvester here so every exact simulation becomes a labeled
 * (features, time) training pair; sim/ cannot depend on predict/, so
 * the hook is a plain setter. `mapping` is the executed decision when
 * the call site can name one (cachedRun's spec, cachedCompileAndRun
 * under Strategy::Fixed) and null otherwise; `paramValues` is null when
 * the call site has no CompileOptions (cachedRun). The observer may be
 * invoked concurrently (parallel sweeps) and must not re-enter the
 * cached entry points.
 *  @{
 */
struct ExactEvalInfo
{
    const Program *prog = nullptr;
    const MappingDecision *mapping = nullptr;                //!< may be null
    const std::unordered_map<int, double> *paramValues = nullptr; //!< may be null
    const ExecOptions *eopts = nullptr;
    const DeviceConfig *device = nullptr;
    const SimReport *report = nullptr;
};

using ExactEvalObserver = std::function<void(const ExactEvalInfo &)>;

/** Install (or clear, with an empty function) the process-global
 *  observer. Thread-safe; the observer is copied per invocation so a
 *  concurrent reinstall never races a running callback. */
void setExactEvalObserver(ExactEvalObserver observer);
/** @} */

/**
 * Memoized Gpu::compileAndRun. `wantOutputs` selects functional fidelity:
 * true runs (and stores) full outputs; false runs metrics-only, which is
 * cheaper (block classing) and race-free under concurrency. `tierOut`
 * (optional) reports the cache-tier provenance of the returned report;
 * EvalTier::Simulated when both tiers missed or the cache is disabled.
 */
SimReport cachedCompileAndRun(const Gpu &gpu, const Program &prog,
                              const Bindings &args,
                              const CompileOptions &copts,
                              const ExecOptions &eopts, bool wantOutputs,
                              EvalTier *tierOut = nullptr);

/**
 * Memoized Gpu::run for an already-compiled spec. `specSeed` must
 * identify how the spec was produced (combine of program/options/device
 * hashes); the caller computes it once per compile.
 */
SimReport cachedRun(const Gpu &gpu, const KernelSpec &spec,
                    const Bindings &args, const ExecOptions &eopts,
                    uint64_t specSeed, bool wantOutputs,
                    EvalTier *tierOut = nullptr);

} // namespace npp

#endif // NPP_SIM_EVALCACHE_H
