/**
 * @file
 * Memoization cache for compile-and-simulate evaluations. Autotune picks,
 * figure sweeps, and repeated Runner launches frequently re-evaluate the
 * exact same (program, mapping/options, bindings) triple; the cache keys
 * evaluations by structural program hash, compile-option hash (including
 * the MappingDecision), binding fingerprint (scalar values, array sizes
 * and contents), and execution-option hash, and returns the memoized
 * SimReport — skipping both compileProgram and the simulated run.
 *
 * Invalidation rules (see DESIGN.md "Performance architecture"):
 *  - any change to the program text, size hints, compile options, device
 *    parameters, bound scalars, or bound array contents changes the key
 *    (there is no in-place invalidation — stale entries age out via LRU);
 *  - metricsOnly/blockClasses execution modes are excluded from the key
 *    because they are report-identical by construction (enforced by the
 *    determinism test), so metrics-only autotune trials warm the cache
 *    for later functional runs;
 *  - entries carry output-array contents only when stored from a
 *    functional run; a wantOutputs lookup ignores report-only entries.
 *
 * The cache is process-global, mutex-guarded, and LRU-bounded by bytes
 * (default 4 GB — one full figure sweep stores ~0.7 GB of memoized
 * outputs; NPP_EVAL_CACHE_MB overrides, NPP_EVAL_CACHE=0 disables).
 */

#ifndef NPP_SIM_EVALCACHE_H
#define NPP_SIM_EVALCACHE_H

#include <cstdint>
#include <optional>

#include "sim/gpu.h"

namespace npp {

/** Cache occupancy and effectiveness counters. */
struct EvalCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }

    /** Machine-readable export for --stats. */
    std::string toJson() const;
};

class EvalCache
{
  public:
    static EvalCache &instance();

    /** @name Key components
     *  @{
     */
    static uint64_t hashProgram(const Program &prog);
    static uint64_t hashCompileOptions(const CompileOptions &copts);
    static uint64_t hashDevice(const DeviceConfig &device);
    static uint64_t hashBindings(const Bindings &args);
    static uint64_t hashExec(const ExecOptions &eopts);
    static uint64_t combine(uint64_t a, uint64_t b);
    /** @} */

    bool enabled() const { return capacityBytes_ > 0; }

    /** Probe the cache. On a hit with wantOutputs, the memoized output
     *  arrays are copied into `args`'s bound storage (a report-only
     *  entry is treated as a miss). */
    std::optional<SimReport> find(uint64_t key, bool wantOutputs,
                                  const Bindings *args);

    /** Insert an evaluation. When `outputsOf` is non-null the current
     *  contents of its output arrays are captured so later wantOutputs
     *  lookups can replay them. */
    void store(uint64_t key, const SimReport &report,
               const Bindings *outputsOf);

    EvalCacheStats stats() const;
    void clear();
    /** Reset the hit/miss counters without dropping entries. */
    void resetCounters();

    /** Override the byte budget (0 disables). Used by benches/tests to
     *  compare cached vs uncached pipelines in one process; evicts down
     *  to the new budget immediately. */
    void setCapacityBytes(int64_t bytes);
    int64_t capacityBytes() const { return capacityBytes_; }

  private:
    EvalCache();

    struct Impl;
    Impl *impl_;
    int64_t capacityBytes_ = 0;
};

/**
 * Memoized Gpu::compileAndRun. `wantOutputs` selects functional fidelity:
 * true runs (and stores) full outputs; false runs metrics-only, which is
 * cheaper (block classing) and race-free under concurrency.
 */
SimReport cachedCompileAndRun(const Gpu &gpu, const Program &prog,
                              const Bindings &args,
                              const CompileOptions &copts,
                              const ExecOptions &eopts, bool wantOutputs);

/**
 * Memoized Gpu::run for an already-compiled spec. `specSeed` must
 * identify how the spec was produced (combine of program/options/device
 * hashes); the caller computes it once per compile.
 */
SimReport cachedRun(const Gpu &gpu, const KernelSpec &spec,
                    const Bindings &args, const ExecOptions &eopts,
                    uint64_t specSeed, bool wantOutputs);

} // namespace npp

#endif // NPP_SIM_EVALCACHE_H
