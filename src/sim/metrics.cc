#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/strings.h"

namespace npp {

namespace {

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

uint64_t
SimReport::heapBytes() const
{
    return stats.siteTraffic.capacity() * sizeof(SiteTraffic) +
           stats.classReason.capacity();
}

std::string
SimReport::toString() const
{
    return fmt("total {} ms (compute {}, mem {}, launch {}, blocks {}, "
               "malloc {}, combiner {}, compaction {}, queue {}); "
               "bw {} GB/s, warps {}, trans {}, warpInstr {}",
               fixed(totalMs, 4), fixed(computeMs, 4), fixed(memoryMs, 4),
               fixed(launchMs, 4), fixed(blockOverheadMs, 4),
               fixed(mallocMs, 4), fixed(combinerMs, 4),
               fixed(compactionMs, 4), fixed(queueBuildMs, 4),
               fixed(achievedBandwidth, 1), fixed(residentWarps, 0),
               fixed(stats.transactions, 0),
               fixed(stats.warpInstructions, 0));
}

std::string
SimReport::toJson(int64_t transactionBytes) const
{
    const double total = std::max(totalMs, 1e-12);
    std::ostringstream os;
    os << "{";
    os << "\"total_ms\":" << num(totalMs);
    os << ",\"compute_ms\":" << num(computeMs);
    os << ",\"memory_ms\":" << num(memoryMs);
    os << ",\"launch_ms\":" << num(launchMs);
    os << ",\"block_overhead_ms\":" << num(blockOverheadMs);
    os << ",\"malloc_ms\":" << num(mallocMs);
    os << ",\"combiner_ms\":" << num(combinerMs);
    os << ",\"compaction_ms\":" << num(compactionMs);
    os << ",\"queue_build_ms\":" << num(queueBuildMs);
    os << ",\"launch_share\":" << num(launchMs / total);
    os << ",\"block_overhead_share\":" << num(blockOverheadMs / total);
    os << ",\"achieved_bandwidth_gbs\":" << num(achievedBandwidth);
    os << ",\"resident_warps\":" << num(residentWarps);
    os << ",\"blocks_per_sm\":" << blocksPerSM;
    os << ",\"occupancy\":" << num(occupancy);
    os << ",\"coalescing_efficiency\":" << num(coalescingEfficiency);
    os << ",\"coalesce_model\":\"" << kCoalesceModelVersion << "\"";
    os << ",\"stats\":{";
    os << "\"warp_instructions\":" << num(stats.warpInstructions);
    os << ",\"transactions\":" << num(stats.transactions);
    os << ",\"useful_bytes\":" << num(stats.usefulBytes);
    os << ",\"smem_accesses\":" << num(stats.smemAccesses);
    os << ",\"syncs\":" << num(stats.syncs);
    os << ",\"mallocs\":" << num(stats.mallocs);
    os << ",\"total_blocks\":" << stats.totalBlocks;
    os << ",\"threads_per_block\":" << stats.threadsPerBlock;
    os << ",\"shared_mem_per_block\":" << stats.sharedMemPerBlock;
    os << ",\"has_combiner\":" << (stats.hasCombiner ? "true" : "false");
    os << ",\"combiner_transactions\":" << num(stats.combinerTransactions);
    os << ",\"combiner_ops\":" << num(stats.combinerOps);
    os << ",\"combiner_threads\":" << stats.combinerThreads;
    os << ",\"has_compaction\":"
       << (stats.hasCompaction ? "true" : "false");
    os << ",\"compaction_transactions\":"
       << num(stats.compactionTransactions);
    os << ",\"compaction_ops\":" << num(stats.compactionOps);
    os << ",\"compaction_threads\":" << stats.compactionThreads;
    os << ",\"has_consolidation\":"
       << (stats.hasConsolidation ? "true" : "false");
    os << ",\"queue_build_transactions\":"
       << num(stats.queueBuildTransactions);
    os << ",\"queue_build_ops\":" << num(stats.queueBuildOps);
    os << ",\"queue_build_threads\":" << stats.queueBuildThreads;
    os << ",\"consolidation_groups\":" << stats.consolidationGroups;
    os << ",\"consolidation_parents\":" << stats.consolidationParents;
    os << ",\"consolidation_entries\":" << stats.consolidationEntries;
    os << ",\"consolidation_waves\":" << stats.consolidationWaves;
    os << ",\"bin_fill\":" << num(stats.binFill);
    os << ",\"sampled_fraction\":" << num(stats.sampledFraction);
    os << ",\"classed_blocks\":" << stats.classedBlocks;
    os << ",\"class_reason\":\"" << jsonEscape(stats.classReason) << "\"";
    os << "}";
    if (!stats.siteTraffic.empty()) {
        os << ",\"sites\":[";
        bool first = true;
        for (const SiteTraffic &st : stats.siteTraffic) {
            if (!first)
                os << ",";
            first = false;
            const double moved =
                st.transactions * static_cast<double>(transactionBytes);
            os << "{\"site\":" << st.site
               << ",\"transactions\":" << num(st.transactions)
               << ",\"useful_bytes\":" << num(st.usefulBytes)
               << ",\"accesses\":" << num(st.accesses)
               << ",\"coalescing_efficiency\":"
               << num(moved > 0.0
                          ? std::min(st.usefulBytes / moved, 1.0)
                          : 1.0)
               << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

bool
reportsBitIdentical(const SimReport &a, const SimReport &b)
{
    const KernelStats &s = a.stats;
    const KernelStats &t = b.stats;
    return a.totalMs == b.totalMs && a.computeMs == b.computeMs &&
           a.memoryMs == b.memoryMs && a.launchMs == b.launchMs &&
           a.blockOverheadMs == b.blockOverheadMs &&
           a.mallocMs == b.mallocMs && a.combinerMs == b.combinerMs &&
           a.compactionMs == b.compactionMs &&
           a.achievedBandwidth == b.achievedBandwidth &&
           a.residentWarps == b.residentWarps &&
           a.blocksPerSM == b.blocksPerSM && a.occupancy == b.occupancy &&
           a.coalescingEfficiency == b.coalescingEfficiency &&
           s.warpInstructions == t.warpInstructions &&
           s.transactions == t.transactions &&
           s.usefulBytes == t.usefulBytes &&
           s.smemAccesses == t.smemAccesses && s.syncs == t.syncs &&
           s.mallocs == t.mallocs && s.totalBlocks == t.totalBlocks &&
           s.threadsPerBlock == t.threadsPerBlock &&
           s.sharedMemPerBlock == t.sharedMemPerBlock &&
           s.hasCombiner == t.hasCombiner &&
           s.combinerTransactions == t.combinerTransactions &&
           s.combinerOps == t.combinerOps &&
           s.combinerThreads == t.combinerThreads &&
           s.hasCompaction == t.hasCompaction &&
           s.compactionTransactions == t.compactionTransactions &&
           s.compactionOps == t.compactionOps &&
           s.compactionThreads == t.compactionThreads &&
           a.queueBuildMs == b.queueBuildMs &&
           s.hasConsolidation == t.hasConsolidation &&
           s.queueBuildTransactions == t.queueBuildTransactions &&
           s.queueBuildOps == t.queueBuildOps &&
           s.queueBuildThreads == t.queueBuildThreads &&
           s.consolidationGroups == t.consolidationGroups &&
           s.consolidationParents == t.consolidationParents &&
           s.consolidationEntries == t.consolidationEntries &&
           s.consolidationWaves == t.consolidationWaves &&
           s.binFill == t.binFill &&
           s.sampledFraction == t.sampledFraction &&
           s.siteTraffic == t.siteTraffic;
}

} // namespace npp
