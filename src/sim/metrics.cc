#include "sim/metrics.h"

#include "support/strings.h"

namespace npp {

std::string
SimReport::toString() const
{
    return fmt("total {} ms (compute {}, mem {}, launch {}, blocks {}, "
               "malloc {}, combiner {}); bw {} GB/s, warps {}, "
               "trans {}, warpInstr {}",
               fixed(totalMs, 4), fixed(computeMs, 4), fixed(memoryMs, 4),
               fixed(launchMs, 4), fixed(blockOverheadMs, 4),
               fixed(mallocMs, 4), fixed(combinerMs, 4),
               fixed(achievedBandwidth, 1), fixed(residentWarps, 0),
               fixed(stats.transactions, 0),
               fixed(stats.warpInstructions, 0));
}

} // namespace npp
