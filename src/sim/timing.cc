#include "sim/timing.h"

#include <algorithm>
#include <cmath>

#include "support/stats.h"

namespace npp {

SimReport
computeTiming(const KernelStats &stats, const DeviceConfig &device)
{
    SimReport report;
    report.stats = stats;

    const double cyclesPerSec = device.cyclesPerSecond();
    const int64_t threadsPerBlock = std::max<int64_t>(stats.threadsPerBlock, 1);
    const int64_t warpsPerBlock =
        ceilDiv(threadsPerBlock, device.warpSize);

    // Occupancy: how many blocks fit on one SM.
    int64_t blocksPerSM = std::min<int64_t>(
        device.maxBlocksPerSM, device.maxThreadsPerSM / threadsPerBlock);
    if (stats.sharedMemPerBlock > 0) {
        blocksPerSM = std::min(
            blocksPerSM, device.sharedMemPerSM /
                             std::max<int64_t>(stats.sharedMemPerBlock, 1));
    }
    blocksPerSM = std::max<int64_t>(blocksPerSM, 1);
    report.blocksPerSM = blocksPerSM;

    const int64_t activeSMs =
        std::min<int64_t>(device.numSMs, stats.totalBlocks);
    const double totalWarps =
        static_cast<double>(stats.totalBlocks) * warpsPerBlock;
    const double residentWarps = std::min(
        totalWarps,
        static_cast<double>(blocksPerSM * warpsPerBlock * activeSMs));
    report.residentWarps = residentWarps;

    const double warpCapacityPerSM = static_cast<double>(
        std::max<int64_t>(device.maxThreadsPerSM / device.warpSize, 1));
    report.occupancy = std::min(
        1.0, residentWarps / std::max<double>(activeSMs, 1) /
                 warpCapacityPerSM);
    const double movedBytes =
        stats.transactions * static_cast<double>(device.transactionBytes);
    report.coalescingEfficiency =
        movedBytes > 0.0 ? std::min(stats.usefulBytes / movedBytes, 1.0)
                         : 1.0;

    // Compute: DP pipes need several resident warps per SM to saturate.
    const double warpsPerActiveSM =
        residentWarps / std::max<double>(activeSMs, 1);
    const double dpThroughputPerSM =
        std::min(2.0, std::max(warpsPerActiveSM, 1.0) / 4.0);
    const double computeCycles =
        (stats.warpInstructions + stats.smemAccesses) /
        std::max(dpThroughputPerSM * activeSMs, 1e-9);
    const double syncCycles =
        stats.syncs * device.syncthreadsCycles / std::max<double>(activeSMs, 1);
    report.computeMs =
        (computeCycles + syncCycles) / cyclesPerSec * 1e3;

    // Memory: peak bandwidth, derated when too few warps are resident to
    // cover the load-to-use latency (Little's law).
    const double latencySec = device.memLatencyCycles / cyclesPerSec;
    const double outstandingPerWarp = 4.0;
    const double concurrencyBytes =
        residentWarps * outstandingPerWarp * device.transactionBytes;
    const double latencyBoundBw = concurrencyBytes / latencySec;
    const double effBw =
        std::min(device.dramBandwidthGBs * 1e9, latencyBoundBw);
    const double trafficBytes =
        stats.transactions * device.transactionBytes;
    report.memoryMs = trafficBytes / std::max(effBw, 1.0) * 1e3;
    report.achievedBandwidth =
        report.memoryMs > 0
            ? trafficBytes / (report.memoryMs * 1e-3) / 1e9
            : 0.0;

    // Fixed costs.
    report.launchMs = device.kernelLaunchOverheadUs * 1e-3;
    report.blockOverheadMs =
        static_cast<double>(stats.totalBlocks) * device.blockScheduleCycles /
        (device.numSMs * cyclesPerSec) * 1e3;
    // Device-heap allocation is heavily serialized.
    report.mallocMs = stats.mallocs * device.deviceMallocCycles /
                      (device.mallocParallelism * cyclesPerSec) * 1e3;

    // Combiner kernel (Split): its own launch plus its memory time at
    // whatever concurrency its thread count sustains.
    if (stats.hasCombiner) {
        const double combWarps = std::max(
            1.0, static_cast<double>(stats.combinerThreads) /
                     device.warpSize);
        const double combBw = std::min(
            device.dramBandwidthGBs * 1e9,
            std::min(combWarps, static_cast<double>(
                                    device.numSMs * 64)) *
                outstandingPerWarp * device.transactionBytes / latencySec);
        const double combBytes =
            stats.combinerTransactions * device.transactionBytes;
        report.combinerMs = device.kernelLaunchOverheadUs * 1e-3 +
                            combBytes / std::max(combBw, 1.0) * 1e3 +
                            stats.combinerOps / 32.0 /
                                std::max(2.0 * device.numSMs, 1.0) /
                                cyclesPerSec * 1e3;
    }

    // Compaction finalize kernel (variable-size nested outputs): an
    // extra launch that counts, scans, and scatters — same cost shape as
    // the combiner kernel, at its own thread count's concurrency.
    if (stats.hasCompaction) {
        const double compWarps = std::max(
            1.0, static_cast<double>(stats.compactionThreads) /
                     device.warpSize);
        const double compBw = std::min(
            device.dramBandwidthGBs * 1e9,
            std::min(compWarps, static_cast<double>(
                                    device.numSMs * 64)) *
                outstandingPerWarp * device.transactionBytes / latencySec);
        const double compBytes =
            stats.compactionTransactions * device.transactionBytes;
        report.compactionMs = device.kernelLaunchOverheadUs * 1e-3 +
                              compBytes / std::max(compBw, 1.0) * 1e3 +
                              stats.compactionOps / 32.0 /
                                  std::max(2.0 * device.numSMs, 1.0) /
                                  cyclesPerSec * 1e3;
    }

    // Consolidated queue build (Strategy::Consolidate): the bin-build
    // prologue gathers per-parent extents and writes one queue entry per
    // child; consumption reads the entries back. Charged as its own
    // stage — the skew-robustness of consolidation has to pay for the
    // queue round trip.
    if (stats.hasConsolidation) {
        const double qWarps = std::max(
            1.0, static_cast<double>(stats.queueBuildThreads) /
                     device.warpSize);
        const double qBw = std::min(
            device.dramBandwidthGBs * 1e9,
            std::min(qWarps, static_cast<double>(
                                 device.numSMs * 64)) *
                outstandingPerWarp * device.transactionBytes / latencySec);
        const double qBytes =
            stats.queueBuildTransactions * device.transactionBytes;
        report.queueBuildMs = device.kernelLaunchOverheadUs * 1e-3 +
                              qBytes / std::max(qBw, 1.0) * 1e3 +
                              stats.queueBuildOps / 32.0 /
                                  std::max(2.0 * device.numSMs, 1.0) /
                                  cyclesPerSec * 1e3;
    }

    report.totalMs = report.launchMs +
                     std::max(report.computeMs, report.memoryMs) +
                     report.blockOverheadMs + report.mallocMs +
                     report.combinerMs + report.compactionMs +
                     report.queueBuildMs;
    return report;
}

double
transferMs(double bytes, const DeviceConfig &device)
{
    // Fixed 10 us DMA setup. Kept as a literal so the figure rows that
    // predate the generic overload stay bit-identical.
    return bytes / (device.pcieBandwidthGBs * 1e9) * 1e3 + 0.01;
}

double
transferMs(double bytes, double bandwidthGBs, double latencyUs)
{
    return bytes / (bandwidthGBs * 1e9) * 1e3 + latencyUs * 1e-3;
}

double
interDeviceMs(const std::vector<double> &bytesPerDevice,
              const FleetConfig &fleet, bool reduceRoot)
{
    if (fleet.deviceCount <= 1)
        return 0.0;
    // Shard results funnel onto device 0 over one shared peer link, so
    // the transfers serialize: one bandwidth + setup-latency term per
    // non-root device.
    double ms = 0.0;
    for (size_t d = 1; d < bytesPerDevice.size(); d++) {
        ms += transferMs(bytesPerDevice[d], fleet.peerBandwidthGBs,
                         fleet.peerLatencyUs);
    }
    if (reduceRoot) {
        // Combining N scalar partials costs one synchronization hop per
        // participating device — the flops are free, the fan-in is not.
        ms += fleet.deviceCount * fleet.peerLatencyUs * 1e-3;
    }
    return ms;
}

double
cpuTimeMs(double computeOps, double bytes, const CpuConfig &cpu)
{
    const double flopsSec =
        cpu.cores * cpu.clockGHz * 1e9 * cpu.opsPerCycle;
    const double computeSec = computeOps / flopsSec;
    const double memSec =
        bytes * cpu.cacheFactor / (cpu.memBandwidthGBs * 1e9);
    return (std::max(computeSec, memSec) + cpu.dispatchUs * 1e-6) * 1e3;
}

} // namespace npp
