#include "sim/consolidation.h"

#include <iomanip>
#include <sstream>

#include "analysis/consolidate.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

std::string
fmtMs(double ms)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << ms;
    return os.str();
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/** Compile + metrics-only cached evaluation of one candidate. */
ConsolidationCandidate
evalCandidate(const Gpu &gpu, const Program &prog, const Bindings &args,
              CompileOptions copts, const ExecOptions &eopts,
              std::string label)
{
    ConsolidationCandidate cand;
    cand.label = std::move(label);
    cand.strategy = copts.strategy;
    cand.granularity = copts.binGranularity;
    copts.keepCandidates = false;
    copts.explainSearch = false;

    const CompileResult compiled = compileProgram(prog, gpu.config(), copts);
    const uint64_t specSeed = EvalCache::combine(
        EvalCache::combine(EvalCache::hashProgram(prog),
                           EvalCache::hashCompileOptions(copts)),
        EvalCache::hashDevice(gpu.config()));

    ExecOptions scoreOpts = eopts;
    scoreOpts.metricsOnly = true;
    const SimReport r = cachedRun(gpu, compiled.spec, args, scoreOpts,
                                  specSeed, /*wantOutputs=*/false,
                                  &cand.tier);
    cand.feasible = true;
    cand.totalMs = r.totalMs;
    cand.queueBuildMs = r.queueBuildMs;
    cand.binFill = r.stats.binFill;
    cand.verdict = compiled.spec.consolidation.verdict;
    return cand;
}

} // namespace

ConsolidationChoice
searchConsolidation(const Gpu &gpu, const Program &prog,
                    const Bindings &args, const CompileOptions &base,
                    const ExecOptions &eopts)
{
    NPP_TRACE_SCOPE("consolidation.search");
    ConsolidationChoice choice;

    // Static baseline: the mapping the caller's options would launch
    // (the searched multi-dim mapping unless a fixed one was given).
    CompileOptions staticOpts = base;
    if (staticOpts.strategy == Strategy::Consolidate)
        staticOpts.strategy = Strategy::MultiDim;
    choice.candidates.push_back(evalCandidate(
        gpu, prog, args, staticOpts, eopts,
        fmt("static ({})", strategyName(staticOpts.strategy))));
    choice.staticMs = choice.candidates[0].totalMs;
    choice.bestMs = choice.staticMs;

    if (!hasDynamicInnerExtent(prog)) {
        choice.verdict = "not consolidated: no runtime-sized inner "
                         "domain (every extent is known at launch)";
        return choice;
    }
    const std::string reason = consolidationEligibility(prog);
    if (!reason.empty()) {
        ConsolidationCandidate cand;
        cand.label = "consolidate";
        cand.strategy = Strategy::Consolidate;
        cand.verdict = reason;
        choice.candidates.push_back(std::move(cand));
        choice.verdict = "not consolidated: " + reason;
        return choice;
    }

    // Track the winner by index: each push_back may reallocate the
    // candidate vector, so references into it do not survive the loop.
    size_t bestIdx = 0;
    for (BinGranularity g :
         {BinGranularity::Warp, BinGranularity::Block}) {
        CompileOptions copts = base;
        copts.strategy = Strategy::Consolidate;
        copts.binGranularity = g;
        choice.candidates.push_back(evalCandidate(
            gpu, prog, args, copts, eopts,
            fmt("{}-bin queues", binGranularityName(g))));
        if (bestIdx == 0 || choice.candidates.back().totalMs <
                                choice.candidates[bestIdx].totalMs)
            bestIdx = choice.candidates.size() - 1;
    }
    const ConsolidationCandidate *best =
        bestIdx > 0 ? &choice.candidates[bestIdx] : nullptr;

    if (best && best->totalMs < choice.staticMs) {
        choice.consolidated = true;
        choice.granularity = best->granularity;
        choice.bestMs = best->totalMs;
        choice.speedup = choice.staticMs / std::max(best->totalMs, 1e-12);
        choice.verdict =
            fmt("consolidated: {}-bin queues beat the best static "
                "mapping ({}x; bin fill {}, queue build {} ms)",
                binGranularityName(best->granularity),
                fmtMs(choice.speedup), fixed(best->binFill, 3),
                fmtMs(best->queueBuildMs));
    } else {
        const double bestConsMs = best ? best->totalMs : 0.0;
        choice.verdict = fmt(
            "not consolidated: queue build outweighs the skew savings "
            "(best static {} ms vs consolidated {} ms)",
            fmtMs(choice.staticMs), fmtMs(bestConsMs));
        choice.speedup =
            choice.bestMs > 0.0 ? choice.staticMs / choice.bestMs : 1.0;
    }
    return choice;
}

std::string
formatConsolidationChoice(const ConsolidationChoice &choice)
{
    std::ostringstream os;
    os << "consolidation sweep (runtime-sized inner domains):\n";
    for (const ConsolidationCandidate &c : choice.candidates) {
        os << "  " << c.label;
        if (c.feasible) {
            os << "  " << fmtMs(c.totalMs) << " ms";
            if (c.strategy == Strategy::Consolidate) {
                os << "  (bin fill " << fixed(c.binFill, 3)
                   << ", queue build " << fmtMs(c.queueBuildMs)
                   << " ms)";
            }
        } else {
            os << "  hard-filtered: " << c.verdict;
        }
        os << "\n";
    }
    os << "selected: " << choice.verdict << "\n";
    return os.str();
}

std::string
consolidationChoiceJson(const ConsolidationChoice &choice)
{
    std::ostringstream os;
    os << "{\"consolidated\":"
       << (choice.consolidated ? "true" : "false");
    if (choice.consolidated) {
        os << ",\"granularity\":"
           << jsonStr(binGranularityName(choice.granularity));
    }
    os << ",\"verdict\":" << jsonStr(choice.verdict)
       << ",\"static_ms\":" << choice.staticMs
       << ",\"best_ms\":" << choice.bestMs
       << ",\"speedup\":" << choice.speedup << ",\"candidates\":[";
    bool first = true;
    for (const ConsolidationCandidate &c : choice.candidates) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"label\":" << jsonStr(c.label)
           << ",\"feasible\":" << (c.feasible ? "true" : "false");
        if (c.feasible) {
            os << ",\"total_ms\":" << c.totalMs
               << ",\"queue_build_ms\":" << c.queueBuildMs
               << ",\"bin_fill\":" << c.binFill;
        } else {
            os << ",\"verdict\":" << jsonStr(c.verdict);
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace npp
